"""Shared test configuration.

Hypothesis profiles: deadlines are disabled because CP propagation work is
intentionally bursty (bitset reallocation, numpy warm-up) and wall-clock
deadlines make property tests flaky on loaded CI machines.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    deadline=None,
    max_examples=300,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def small_region():
    """A small heterogeneous region used across integration tests."""
    from repro.fabric.devices import irregular_device
    from repro.fabric.region import PartialRegion

    return PartialRegion.whole_device(irregular_device(32, 12, seed=3))


@pytest.fixture
def tiny_homogeneous():
    from repro.fabric.devices import homogeneous_device
    from repro.fabric.region import PartialRegion

    return PartialRegion.whole_device(homogeneous_device(8, 6))


@pytest.fixture
def small_modules():
    """A small module set that fits comfortably on ``small_region``."""
    from repro.modules.generator import GeneratorConfig, ModuleGenerator

    cfg = GeneratorConfig(clb_min=4, clb_max=10, bram_max=1,
                          height_min=2, height_max=4)
    return ModuleGenerator(seed=11, config=cfg).generate_set(4)


@pytest.fixture
def solvable_instance(small_region, small_modules):
    """(region, modules) pair for end-to-end placer tests."""
    return small_region, small_modules

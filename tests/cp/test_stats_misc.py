"""Coverage for statistics objects and miscellaneous solver surfaces."""

from __future__ import annotations

import pytest

from repro.cp.domain import Domain
from repro.cp.model import Model
from repro.cp.solver import Solver, Status
from repro.cp.stats import EngineStats, SearchStats, SolveStats


class TestStats:
    def test_engine_stats_add_and_reset(self):
        a = EngineStats(1, 2, 3)
        b = EngineStats(10, 20, 30)
        c = a + b
        assert (c.propagations, c.domain_updates, c.failures) == (11, 22, 33)
        a.reset()
        assert a.propagations == 0

    def test_search_stats_add(self):
        a = SearchStats(nodes=5, backtracks=2, solutions=1, max_depth=3,
                        elapsed=0.5, stop_reason="")
        b = SearchStats(nodes=7, backtracks=1, solutions=0, max_depth=9,
                        elapsed=0.25, stop_reason="time")
        c = a + b
        assert c.nodes == 12 and c.max_depth == 9
        assert c.stop_reason == "time"
        assert c.elapsed == pytest.approx(0.75)

    def test_solve_stats_summary(self):
        s = SolveStats()
        s.search.nodes = 42
        assert "nodes=42" in s.summary()


class TestSolverSurfaces:
    def test_minimize_trajectory_recorded(self):
        m = Model()
        x = m.int_var(0, 9, "x")
        y = m.int_var(0, 9, "y")
        m.add_linear_le([1, 1], [x, y], 9)
        res = Solver(m, [x, y]).minimize(x)
        assert res.status is Status.OPTIMAL
        assert res.trajectory  # at least one improving step recorded
        assert res.trajectory[-1][1] == res.objective == 0

    def test_found_property(self):
        m = Model()
        x = m.int_var(0, 1, "x")
        res = Solver(m, [x]).solve()
        assert res.found

    def test_model_repr(self):
        m = Model("demo")
        m.int_var(0, 3)
        assert "demo" in repr(m)
        assert "vars=1" in repr(m)

    def test_variable_repr_and_values(self):
        m = Model()
        v = m.int_var(1, 3, "v")
        assert "v" in repr(v)
        assert list(v.values()) == [1, 2, 3]
        assert 2 in v

    def test_constant(self):
        m = Model()
        c = m.constant(7)
        assert c.is_fixed() and c.value() == 7

    def test_domain_repr_large_and_small(self):
        small = Domain([1, 2, 3])
        assert "1, 2, 3" in repr(small)
        big = Domain(range(100))
        assert "size=100" in repr(big)
        assert repr(Domain()) == "Domain({})"

    def test_domain_reversed(self):
        d = Domain([3, 1, 5])
        assert list(reversed(d)) == [5, 3, 1]

"""Count / AtMost / AtLeast constraints."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.solver import Solver


class TestCount:
    def test_atmost_saturation_prunes(self):
        m = Model()
        xs = [m.int_var(0, 2, f"v{i}") for i in range(3)]
        m.add_atmost(xs, 1, 1)
        xs[0].fix(1)
        m.engine.fixpoint()
        assert 1 not in xs[1].domain and 1 not in xs[2].domain

    def test_atleast_forces(self):
        m = Model()
        xs = [m.int_var(0, 2, f"v{i}") for i in range(3)]
        m.add_atleast(xs, 2, 3)
        m.engine.fixpoint()
        assert all(x.value() == 2 for x in xs)

    def test_overflow_fails(self):
        m = Model()
        xs = [m.int_var(1, 1, f"v{i}") for i in range(3)]
        with pytest.raises(Inconsistent):
            m.add_atmost(xs, 1, 2)

    def test_underflow_fails(self):
        m = Model()
        xs = [m.int_var(0, 0, f"v{i}") for i in range(2)]
        with pytest.raises(Inconsistent):
            m.add_atleast(xs, 5, 1)

    def test_validation(self):
        m = Model()
        from repro.cp.constraints import Count

        with pytest.raises(ValueError):
            Count([], 0)
        with pytest.raises(ValueError):
            Count([m.int_var(0, 1)], 0, lo=2, hi=1)

    @given(
        st.integers(2, 4),
        st.integers(0, 2),
        st.integers(0, 3),
        st.integers(0, 3),
    )
    def test_solution_set_matches_brute_force(self, n, value, lo, hi):
        if lo > hi or hi > n:
            return
        m = Model()
        xs = [m.int_var(0, 2, f"v{i}") for i in range(n)]
        try:
            m.add_count(xs, value, lo, hi)
        except Inconsistent:
            got = set()
        else:
            got = {
                tuple(s[f"v{i}"] for i in range(n))
                for s in Solver(m, xs).enumerate()
            }
        want = {
            combo
            for combo in itertools.product(range(3), repeat=n)
            if lo <= sum(1 for v in combo if v == value) <= hi
        }
        assert got == want

"""Random-CSP completeness: search + propagation vs brute force.

Generates small random binary CSPs over the constraint library and checks
the enumerated solution set against exhaustive evaluation — the strongest
general statement about solver soundness and completeness we can test.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.solver import Solver

# a binary constraint is (kind, i, j, parameter)
_KINDS = ["le", "eq", "ne", "mindist"]


constraint_strategy = st.tuples(
    st.sampled_from(_KINDS),
    st.integers(0, 3),
    st.integers(0, 3),
    st.integers(-2, 2),
)


def _holds(kind: str, a: int, b: int, p: int) -> bool:
    if kind == "le":
        return a + p <= b
    if kind == "eq":
        return a == b + p
    if kind == "ne":
        return a != b + p
    if kind == "mindist":
        return abs(a - b) >= max(0, p)
    raise AssertionError(kind)


class TestRandomBinaryCSP:
    @given(
        st.integers(2, 4),
        st.lists(constraint_strategy, max_size=6),
        st.integers(2, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_solution_sets_match(self, n_vars, constraints, dom_hi):
        constraints = [
            (k, i % n_vars, j % n_vars, p)
            for k, i, j, p in constraints
            if i % n_vars != j % n_vars
        ]
        m = Model()
        xs = [m.int_var(0, dom_hi, f"v{i}") for i in range(n_vars)]
        try:
            for kind, i, j, p in constraints:
                if kind == "le":
                    m.add_le(xs[i], xs[j], p)
                elif kind == "eq":
                    m.add_eq(xs[i], xs[j], p)
                elif kind == "ne":
                    m.add_ne(xs[i], xs[j], p)
                elif kind == "mindist":
                    m.add_min_distance(xs[i], xs[j], max(0, p))
        except Inconsistent:
            got = set()
        else:
            got = {
                tuple(s[f"v{i}"] for i in range(n_vars))
                for s in Solver(m, xs).enumerate()
            }
        want = {
            combo
            for combo in itertools.product(range(dom_hi + 1), repeat=n_vars)
            if all(
                _holds(kind, combo[i], combo[j], p)
                for kind, i, j, p in constraints
            )
        }
        assert got == want


class TestTrailStateMachine:
    """Randomized push/modify/pop sequences must always restore domains."""

    @given(
        st.lists(
            st.one_of(
                st.just(("push",)),
                st.just(("pop",)),
                st.tuples(
                    st.just("narrow"), st.integers(0, 2), st.integers(0, 9)
                ),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pop_restores_snapshots(self, ops):
        m = Model()
        xs = [m.int_var(0, 9, f"v{i}") for i in range(3)]
        snapshots = []  # domains at each push
        for op in ops:
            if op[0] == "push":
                snapshots.append([x.domain for x in xs])
                m.engine.push_level()
            elif op[0] == "pop":
                if snapshots:
                    m.engine.pop_level()
                    expected = snapshots.pop()
                    assert [x.domain for x in xs] == expected
            else:
                _, idx, val = op
                try:
                    xs[idx].remove(val)
                except Inconsistent:
                    # a wiped domain is fine; restore to last snapshot
                    if snapshots:
                        m.engine.pop_level()
                        expected = snapshots.pop()
                        assert [x.domain for x in xs] == expected
        # unwind everything that is still open
        while snapshots:
            m.engine.pop_level()
            expected = snapshots.pop()
            assert [x.domain for x in xs] == expected

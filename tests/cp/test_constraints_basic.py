"""Arithmetic, linear, element, min/max, table and logical constraints.

Each propagator is checked two ways: targeted unit scenarios, and
hypothesis cross-checks where the full solution set produced by search is
compared with brute-force enumeration of the constraint's definition.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.solver import Solver


def enumerate_solutions(model, variables):
    return Solver(model, variables).enumerate()


def brute(domains, predicate):
    return [
        combo for combo in itertools.product(*domains) if predicate(*combo)
    ]


# ----------------------------------------------------------------------
class TestLessEqualOffset:
    def test_bounds_prune(self):
        m = Model()
        x, y = m.int_var(0, 9, "x"), m.int_var(0, 9, "y")
        m.add_le(x, y, 3)  # x + 3 <= y
        assert x.max() == 6
        assert y.min() == 3

    def test_inconsistent(self):
        m = Model()
        x, y = m.int_var(5, 9), m.int_var(0, 4)
        with pytest.raises(Inconsistent):
            m.add_le(x, y, 1)

    @given(st.integers(-3, 3))
    def test_solution_set(self, c):
        m = Model()
        x, y = m.int_var(0, 4, "x"), m.int_var(0, 4, "y")
        m.add_le(x, y, c)
        got = {(s["x"], s["y"]) for s in enumerate_solutions(m, [x, y])}
        want = {
            (a, b)
            for a in range(5)
            for b in range(5)
            if a + c <= b
        }
        assert got == want


class TestEqualOffset:
    def test_domain_consistency(self):
        m = Model()
        x = m.int_var_from([1, 3, 5, 9], "x")
        y = m.int_var_from([0, 2, 5, 8], "y")
        m.add_eq(x, y, 1)  # x == y + 1
        assert list(x.domain) == [1, 3, 9]
        assert list(y.domain) == [0, 2, 8]

    def test_fix_propagates(self):
        m = Model()
        x, y = m.int_var(0, 9, "x"), m.int_var(0, 9, "y")
        m.add_eq(x, y, -2)
        x.fix(3)
        m.engine.fixpoint()
        assert y.value() == 5


class TestNotEqual:
    def test_prunes_on_fix(self):
        m = Model()
        x, y = m.int_var(3, 3, "x"), m.int_var(0, 9, "y")
        m.add_ne(x, y)
        assert 3 not in y.domain

    def test_offset_variant(self):
        m = Model()
        x, y = m.int_var(0, 9, "x"), m.int_var(4, 4, "y")
        m.add_ne(x, y, 2)  # x != y + 2 = 6
        assert 6 not in x.domain

    def test_solution_count(self):
        m = Model()
        x, y = m.int_var(0, 3, "x"), m.int_var(0, 3, "y")
        m.add_ne(x, y)
        assert len(enumerate_solutions(m, [x, y])) == 12


class TestSumOfTwo:
    @given(st.integers(0, 6), st.integers(0, 6))
    def test_solution_set(self, xa, ya):
        m = Model()
        x = m.int_var(0, xa, "x")
        y = m.int_var(0, ya, "y")
        z = m.int_var(0, 12, "z")
        m.add_sum(z, x, y)
        got = {(s["x"], s["y"], s["z"]) for s in enumerate_solutions(m, [x, y, z])}
        want = {
            (a, b, a + b) for a in range(xa + 1) for b in range(ya + 1)
        }
        assert got == want

    def test_backward_propagation(self):
        m = Model()
        x, y = m.int_var(0, 9, "x"), m.int_var(0, 9, "y")
        z = m.int_var(12, 14, "z")
        m.add_sum(z, x, y)
        assert x.min() == 3  # 12 - 9


class TestLinear:
    def test_le_prunes(self):
        m = Model()
        xs = [m.int_var(0, 9, f"v{i}") for i in range(3)]
        m.add_linear_le([1, 1, 1], xs, 5)
        assert all(v.max() == 5 for v in xs)

    def test_le_with_negative_coeff(self):
        m = Model()
        x, y = m.int_var(0, 9, "x"), m.int_var(0, 9, "y")
        m.add_linear_le([1, -1], [x, y], -4)  # x - y <= -4  =>  x + 4 <= y
        assert x.max() == 5
        assert y.min() == 4

    @given(
        st.lists(st.integers(-3, 3), min_size=2, max_size=3),
        st.integers(-6, 10),
    )
    def test_eq_solution_set(self, coeffs, c):
        m = Model()
        xs = [m.int_var(0, 3, f"v{i}") for i in range(len(coeffs))]
        try:
            m.add_linear_eq(coeffs, xs, c)
        except Inconsistent:
            got = set()
        else:
            got = {
                tuple(s[f"v{i}"] for i in range(len(coeffs)))
                for s in enumerate_solutions(m, xs)
            }
        want = {
            combo
            for combo in itertools.product(range(4), repeat=len(coeffs))
            if sum(a * v for a, v in zip(coeffs, combo)) == c
        }
        assert got == want

    def test_length_mismatch_rejected(self):
        m = Model()
        with pytest.raises(ValueError):
            m.add_linear_le([1, 2], [m.int_var(0, 1)], 3)


class TestElement:
    def test_forward(self):
        m = Model()
        idx = m.int_var(0, 4, "i")
        res = m.element_of([3, 1, 4, 1, 5], idx, "r")
        assert set(res.domain) == {1, 3, 4, 5}

    def test_backward(self):
        m = Model()
        idx = m.int_var(0, 4, "i")
        res = m.element_of([3, 1, 4, 1, 5], idx, "r")
        res.remove(1)
        res.remove(3)
        m.engine.fixpoint()
        assert set(idx.domain) == {2, 4}

    def test_index_clamped_to_table(self):
        m = Model()
        idx = m.int_var(0, 99, "i")
        m.element_of([7, 8], idx)
        assert idx.max() == 1

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=6))
    def test_solution_set(self, table):
        m = Model()
        idx = m.int_var(0, len(table) - 1, "i")
        res = m.int_var(0, 5, "r")
        m.add_element(table, idx, res)
        got = {(s["i"], s["r"]) for s in enumerate_solutions(m, [idx, res])}
        want = {(i, table[i]) for i in range(len(table))}
        assert got == want


class TestMinMax:
    def test_max_bounds(self):
        m = Model()
        xs = [m.int_var(0, i + 3, f"v{i}") for i in range(3)]
        mx = m.max_of(xs, "mx")
        assert mx.max() == 5
        assert mx.min() == 0

    def test_max_pushes_operands_down(self):
        m = Model()
        xs = [m.int_var(0, 9, f"v{i}") for i in range(3)]
        mx = m.int_var(0, 4, "mx")
        m.add_max(mx, xs)
        assert all(v.max() == 4 for v in xs)

    def test_single_supporter_forced_up(self):
        m = Model()
        a = m.int_var(0, 3, "a")
        b = m.int_var(0, 9, "b")
        mx = m.int_var(7, 9, "mx")
        m.add_max(mx, [a, b])
        assert b.min() == 7

    @given(st.integers(2, 4))
    def test_max_solution_set(self, n):
        m = Model()
        xs = [m.int_var(0, 2, f"v{i}") for i in range(n)]
        mx = m.int_var(0, 2, "mx")
        m.add_max(mx, xs)
        got = {
            tuple(s[f"v{i}"] for i in range(n)) + (s["mx"],)
            for s in enumerate_solutions(m, xs + [mx])
        }
        want = {
            combo + (max(combo),)
            for combo in itertools.product(range(3), repeat=n)
        }
        assert got == want

    def test_min_solution_set(self):
        m = Model()
        xs = [m.int_var(0, 2, f"v{i}") for i in range(2)]
        mn = m.int_var(0, 2, "mn")
        m.add_min(mn, xs)
        got = {
            (s["v0"], s["v1"], s["mn"])
            for s in enumerate_solutions(m, xs + [mn])
        }
        want = {
            (a, b, min(a, b)) for a in range(3) for b in range(3)
        }
        assert got == want


class TestTable:
    def test_gac(self):
        m = Model()
        x, y = m.int_var(0, 3, "x"), m.int_var(0, 3, "y")
        m.add_table([x, y], [(0, 1), (1, 2), (1, 3)])
        assert set(x.domain) == {0, 1}
        assert set(y.domain) == {1, 2, 3}

    def test_solution_set(self):
        tuples = [(0, 1), (2, 2), (3, 0)]
        m = Model()
        x, y = m.int_var(0, 3, "x"), m.int_var(0, 3, "y")
        m.add_table([x, y], tuples)
        got = {(s["x"], s["y"]) for s in enumerate_solutions(m, [x, y])}
        assert got == set(tuples)

    def test_empty_after_filtering_fails(self):
        m = Model()
        x, y = m.int_var(2, 3, "x"), m.int_var(0, 0, "y")
        with pytest.raises(Inconsistent):
            m.add_table([x, y], [(0, 1), (1, 1)])

    def test_arity_mismatch_rejected(self):
        m = Model()
        with pytest.raises(ValueError):
            m.add_table([m.int_var(0, 1)], [(0, 1)])


class TestLogical:
    def test_iff_le_forward(self):
        m = Model()
        b, x = m.bool_var("b"), m.int_var(0, 9, "x")
        m.add_iff_le(b, x, 4)
        b.fix(1)
        m.engine.fixpoint()
        assert x.max() == 4

    def test_iff_le_backward(self):
        m = Model()
        b, x = m.bool_var("b"), m.int_var(6, 9, "x")
        m.add_iff_le(b, x, 4)
        assert b.value() == 0

    def test_iff_in_set(self):
        m = Model()
        b, x = m.bool_var("b"), m.int_var(0, 5, "x")
        m.add_iff_in(b, x, [1, 3])
        b.fix(0)
        m.engine.fixpoint()
        assert set(x.domain) == {0, 2, 4, 5}

    def test_or_unit_propagation(self):
        m = Model()
        bs = [m.bool_var(f"b{i}") for i in range(3)]
        m.add_or(bs)
        bs[0].fix(0)
        bs[1].fix(0)
        m.engine.fixpoint()
        assert bs[2].value() == 1

    def test_or_falsified(self):
        m = Model()
        bs = [m.bool_var(f"b{i}") for i in range(2)]
        m.add_or(bs)
        bs[0].fix(0)
        m.engine.fixpoint()
        with pytest.raises(Inconsistent):
            bs[1].fix(0)
            m.engine.fixpoint()

    def test_non_bool_rejected(self):
        m = Model()
        with pytest.raises(ValueError):
            m.add_iff_le(m.int_var(0, 2), m.int_var(0, 5), 3)

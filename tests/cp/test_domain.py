"""Domain: bitset semantics checked against Python set semantics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cp.domain import Domain, EMPTY_DOMAIN

values = st.sets(st.integers(-50, 80), max_size=25)
nonempty = st.sets(st.integers(-50, 80), min_size=1, max_size=25)


# ----------------------------------------------------------------------
# Construction and basic queries
# ----------------------------------------------------------------------
class TestConstruction:
    def test_empty(self):
        d = Domain()
        assert d.is_empty()
        assert len(d) == 0
        assert not d
        assert list(d) == []

    def test_singleton(self):
        d = Domain.singleton(7)
        assert d.is_singleton()
        assert d.value() == 7
        assert d.min() == d.max() == 7

    def test_range(self):
        d = Domain.range(3, 7)
        assert list(d) == [3, 4, 5, 6, 7]
        assert d.min() == 3 and d.max() == 7

    def test_range_inverted_is_empty(self):
        assert Domain.range(5, 4).is_empty()

    def test_negative_values(self):
        d = Domain([-3, -1, 4])
        assert list(d) == [-3, -1, 4]
        assert d.min() == -3 and d.max() == 4

    def test_from_mask_normalizes_offset(self):
        d = Domain.from_mask(0b1100, 10)  # values 12, 13
        assert d.offset == 12
        assert list(d) == [12, 13]

    def test_duplicates_collapse(self):
        assert list(Domain([2, 2, 2])) == [2]

    def test_min_max_of_empty_raise(self):
        with pytest.raises(ValueError):
            EMPTY_DOMAIN.min()
        with pytest.raises(ValueError):
            EMPTY_DOMAIN.max()

    def test_value_of_non_singleton_raises(self):
        with pytest.raises(ValueError):
            Domain([1, 2]).value()

    @given(values)
    def test_iteration_matches_sorted_set(self, vs):
        assert list(Domain(vs)) == sorted(vs)

    @given(nonempty)
    def test_min_max_size(self, vs):
        d = Domain(vs)
        assert d.min() == min(vs)
        assert d.max() == max(vs)
        assert len(d) == len(vs)

    @given(values, st.integers(-60, 90))
    def test_contains(self, vs, probe):
        assert (probe in Domain(vs)) == (probe in vs)


# ----------------------------------------------------------------------
# Set algebra
# ----------------------------------------------------------------------
class TestAlgebra:
    @given(values, values)
    def test_intersect(self, a, b):
        assert set(Domain(a).intersect(Domain(b))) == a & b

    @given(values, values)
    def test_union(self, a, b):
        assert set(Domain(a).union(Domain(b))) == a | b

    @given(values, values)
    def test_difference(self, a, b):
        assert set(Domain(a).difference(Domain(b))) == a - b

    @given(values, st.integers(-60, 90))
    def test_remove(self, vs, v):
        assert set(Domain(vs).remove(v)) == vs - {v}

    @given(values, st.integers(-60, 90))
    def test_remove_below(self, vs, lo):
        assert set(Domain(vs).remove_below(lo)) == {v for v in vs if v >= lo}

    @given(values, st.integers(-60, 90))
    def test_remove_above(self, vs, hi):
        assert set(Domain(vs).remove_above(hi)) == {v for v in vs if v <= hi}

    @given(values, st.integers(-60, 90), st.integers(-60, 90))
    def test_clamp(self, vs, lo, hi):
        assert set(Domain(vs).clamp(lo, hi)) == {v for v in vs if lo <= v <= hi}

    @given(values, st.integers(-30, 30))
    def test_shift(self, vs, delta):
        assert set(Domain(vs).shift(delta)) == {v + delta for v in vs}

    @given(values)
    def test_negate(self, vs):
        assert set(Domain(vs).negate()) == {-v for v in vs}

    @given(values)
    def test_negate_involution(self, vs):
        d = Domain(vs)
        assert d.negate().negate() == d

    @given(values, values)
    def test_subset(self, a, b):
        assert Domain(a).is_subset_of(Domain(b)) == (a <= b)

    @given(values, st.integers(-60, 90))
    def test_next_value(self, vs, v):
        expected = min((x for x in vs if x >= v), default=None)
        assert Domain(vs).next_value(v) == expected

    @given(values, st.integers(-60, 90))
    def test_prev_value(self, vs, v):
        expected = max((x for x in vs if x <= v), default=None)
        assert Domain(vs).prev_value(v) == expected

    @given(values, values)
    def test_equality_is_extensional(self, a, b):
        assert (Domain(a) == Domain(b)) == (a == b)

    @given(values)
    def test_hash_consistent(self, vs):
        assert hash(Domain(vs)) == hash(Domain(sorted(vs)))


# ----------------------------------------------------------------------
# NumPy bridges
# ----------------------------------------------------------------------
class TestNumpyBridge:
    @given(st.sets(st.integers(0, 63), max_size=30))
    def test_bool_array_round_trip(self, vs):
        d = Domain(vs)
        vec = d.to_bool_array(64)
        assert {i for i, b in enumerate(vec) if b} == vs
        assert Domain.from_bool_array(vec) == d

    def test_bool_array_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Domain([70]).to_bool_array(64)
        with pytest.raises(ValueError):
            Domain([-1]).to_bool_array(64)

    def test_empty_bool_array(self):
        assert not EMPTY_DOMAIN.to_bool_array(8).any()
        assert Domain.from_bool_array([False] * 8).is_empty()

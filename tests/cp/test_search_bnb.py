"""Search and branch-and-bound: completeness, limits, optimality."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cp.bnb import BranchAndBound, Objective
from repro.cp.branching import (
    largest_domain,
    max_value,
    median_value,
    min_value,
    random_selector,
    random_value,
    smallest_domain,
    smallest_min,
)
from repro.cp.model import Model
from repro.cp.search import DepthFirstSearch, SearchLimit
from repro.cp.solver import Solver, Status


def queens_model(n):
    m = Model()
    qs = [m.int_var(0, n - 1, f"q{i}") for i in range(n)]
    m.add_alldifferent(qs)
    for i in range(n):
        for j in range(i + 1, n):
            m.add_ne(qs[i], qs[j], j - i)
            m.add_ne(qs[i], qs[j], i - j)
    return m, qs


QUEENS_COUNTS = {4: 2, 5: 10, 6: 4, 7: 40, 8: 92}


class TestSearchCompleteness:
    @pytest.mark.parametrize("n,count", sorted(QUEENS_COUNTS.items()))
    def test_n_queens_counts(self, n, count):
        m, qs = queens_model(n)
        assert Solver(m, qs).enumerate() != [] or count == 0
        m, qs = queens_model(n)
        assert len(Solver(m, qs).enumerate()) == count

    @pytest.mark.parametrize(
        "var_select", [smallest_domain, largest_domain, smallest_min, random_selector(3)]
    )
    def test_heuristics_preserve_completeness(self, var_select):
        m, qs = queens_model(6)
        solver = Solver(m, qs, var_select=var_select)
        assert len(solver.enumerate()) == 4

    @pytest.mark.parametrize("val_select", [min_value, max_value, median_value, random_value(7)])
    def test_value_orders_preserve_completeness(self, val_select):
        m, qs = queens_model(6)
        solver = Solver(m, qs, val_select=val_select)
        assert len(solver.enumerate()) == 4

    def test_state_restored_after_search(self):
        m, qs = queens_model(5)
        sizes = [q.size() for q in qs]
        Solver(m, qs).enumerate()
        assert [q.size() for q in qs] == sizes
        assert m.engine.depth() == 0

    def test_infeasible_detected_at_post(self):
        from repro.cp.engine import Inconsistent

        m = Model()
        x = m.int_var(0, 2, "x")
        y = m.int_var(0, 2, "y")
        m.add_le(x, y, 1)
        with pytest.raises(Inconsistent):
            m.add_le(y, x, 1)  # x + 1 <= y and y + 1 <= x: impossible

    def test_infeasible_detected_by_search(self):
        # propagation alone cannot refute x != y on 0/1 domains with parity
        # constraint; search must exhaust and report INFEASIBLE
        m = Model()
        x = m.int_var(0, 1, "x")
        y = m.int_var(0, 1, "y")
        z = m.int_var(0, 1, "z")
        m.add_ne(x, y)
        m.add_ne(y, z)
        m.add_ne(x, z)  # 3-coloring of a triangle with 2 colors
        r = Solver(m, [x, y, z]).solve()
        assert r.status is Status.INFEASIBLE


class TestSearchLimits:
    def test_node_limit(self):
        m, qs = queens_model(8)
        search = DepthFirstSearch(
            m.engine, qs, limit=SearchLimit(nodes=10)
        )
        list(search.solutions())
        assert search.stats.stop_reason == "nodes"
        assert search.stats.nodes <= 11

    def test_solution_limit(self):
        m, qs = queens_model(8)
        sols = Solver(m, qs, limit=SearchLimit(solutions=5)).enumerate()
        assert len(sols) == 5

    def test_time_limit_zero_stops_immediately(self):
        m, qs = queens_model(8)
        search = DepthFirstSearch(
            m.engine, qs, limit=SearchLimit(time_seconds=0.0)
        )
        assert list(search.solutions()) == []
        assert search.stats.stop_reason == "time"

    def test_failure_limit(self):
        m, qs = queens_model(8)
        search = DepthFirstSearch(
            m.engine, qs, limit=SearchLimit(failures=5)
        )
        list(search.solutions())
        assert search.stats.stop_reason in ("failures", "exhausted")


class TestBranchAndBound:
    def test_optimum_matches_brute_force(self):
        # minimize 3x - 2y subject to x + y == 6, x,y in [0,6]
        m = Model()
        x = m.int_var(0, 6, "x")
        y = m.int_var(0, 6, "y")
        m.add_linear_eq([1, 1], [x, y], 6)
        obj = m.int_var(-12, 18, "obj")
        m.add_linear_eq([3, -2, -1], [x, y, obj], 0)
        res = Solver(m, [x, y]).minimize(obj)
        want = min(
            3 * a - 2 * b
            for a in range(7)
            for b in range(7)
            if a + b == 6
        )
        assert res.status is Status.OPTIMAL
        assert res.objective == want

    def test_maximize(self):
        m = Model()
        x = m.int_var(0, 9, "x")
        y = m.int_var(0, 9, "y")
        m.add_linear_le([1, 1], [x, y], 10)
        s = m.int_var(0, 18, "s")
        m.add_linear_eq([1, 1, -1], [x, y, s], 0)
        bnb = BranchAndBound(m.engine, Objective.maximize(s), [x, y])
        res = bnb.run()
        assert res.objective == 10
        assert res.proved_optimal

    def test_trajectory_is_monotone(self):
        m, qs = queens_model(6)
        obj = m.int_var(0, 5, "obj")
        m.add_max(obj, [qs[0]])
        res = Solver(m, qs).minimize(obj)
        values = [v for _, v in res.trajectory]
        assert values == sorted(values, reverse=True)
        assert res.status is Status.OPTIMAL

    def test_infeasible_minimize(self):
        m = Model()
        x = m.int_var(0, 1, "x")
        y = m.int_var(0, 1, "y")
        m.add_ne(x, y)
        m.add_eq(x, y)
        r = Solver(m, [x, y]).minimize(x)
        assert r.status is Status.INFEASIBLE

    @given(st.lists(st.integers(0, 8), min_size=2, max_size=4))
    def test_min_of_maximum(self, highs):
        """Minimizing max(xs) with sum constraint equals brute force."""
        total = sum(highs) // 2
        m = Model()
        xs = [m.int_var(0, h, f"v{i}") for i, h in enumerate(highs)]
        try:
            m.add_linear_eq([1] * len(xs), xs, total)
        except Exception:
            return
        obj = m.int_var(0, max(highs), "obj")
        m.add_max(obj, xs)
        res = Solver(m, xs).minimize(obj)
        want = min(
            (
                max(combo)
                for combo in itertools.product(
                    *[range(h + 1) for h in highs]
                )
                if sum(combo) == total
            ),
            default=None,
        )
        assert res.objective == want


class TestSolverFacade:
    def test_feasible_status(self):
        m = Model()
        x = m.int_var(0, 5, "x")
        r = Solver(m, [x]).solve()
        assert r.status is Status.FEASIBLE
        assert r.found

    def test_unknown_status_on_limit(self):
        m, qs = queens_model(8)
        r = Solver(m, qs, limit=SearchLimit(time_seconds=0.0)).solve()
        assert r.status is Status.UNKNOWN

    def test_enumerate_callback(self):
        m = Model()
        x = m.int_var(0, 3, "x")
        seen = []
        Solver(m, [x]).enumerate(callback=lambda s: seen.append(s["x"]))
        assert seen == [0, 1, 2, 3]

"""Trail and engine: trailing, events, propagation queue."""

from __future__ import annotations

import pytest

from repro.cp.domain import Domain
from repro.cp.engine import Engine, Inconsistent
from repro.cp.events import Event, classify
from repro.cp.propagator import Priority, Propagator
from repro.cp.trail import Trail


class TestTrail:
    def test_push_pop_level(self):
        t = Trail()
        log = []
        t.push_level()
        t.push(lambda: log.append("a"))
        t.push(lambda: log.append("b"))
        t.pop_level()
        assert log == ["b", "a"]  # reverse order

    def test_nested_levels(self):
        t = Trail()
        log = []
        t.push_level()
        t.push(lambda: log.append(1))
        t.push_level()
        t.push(lambda: log.append(2))
        t.pop_level()
        assert log == [2]
        t.pop_level()
        assert log == [2, 1]

    def test_pop_to(self):
        t = Trail()
        log = []
        for i in range(4):
            t.push_level()
            t.push(lambda i=i: log.append(i))
        t.pop_to(1)
        assert log == [3, 2, 1]
        assert t.depth() == 1

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError):
            Trail().pop_level()

    def test_entries_below_level_survive(self):
        t = Trail()
        log = []
        t.push(lambda: log.append("root"))
        t.push_level()
        t.pop_level()
        assert log == []  # root entry untouched


class TestEvents:
    def test_classify_value_removal(self):
        ev = classify(0, 9, 10, 0, 9, 9)
        assert ev == Event.DOMAIN

    def test_classify_bounds(self):
        ev = classify(0, 9, 10, 1, 9, 9)
        assert Event.BOUNDS in ev and Event.DOMAIN in ev

    def test_classify_fix(self):
        ev = classify(0, 9, 10, 4, 4, 1)
        assert Event.FIX in ev and Event.BOUNDS in ev


class _Recorder(Propagator):
    """Counts how often it is propagated."""

    def __init__(self, var, events=Event.ANY):
        super().__init__("recorder")
        self.var = var
        self.events = events
        self.runs = 0

    def post(self, engine):
        self.var.watch(self, self.events)

    def propagate(self, engine):
        self.runs += 1


class TestEngine:
    def test_update_domain_trails(self):
        e = Engine()
        v = e.new_var(0, 9, "v")
        e.push_level()
        v.remove_above(5)
        assert v.max() == 5
        e.pop_level()
        assert v.max() == 9

    def test_update_to_same_domain_is_noop(self):
        e = Engine()
        v = e.new_var(0, 9)
        assert v.remove_above(9) is False
        assert e.stats.domain_updates == 0

    def test_wipeout_raises_and_counts(self):
        e = Engine()
        v = e.new_var(0, 3)
        with pytest.raises(Inconsistent):
            v.set_domain(Domain([]))
        assert e.stats.failures == 1

    def test_grow_rejected(self):
        e = Engine()
        v = e.new_var(2, 4)
        with pytest.raises(ValueError):
            v.set_domain(Domain.range(0, 9))

    def test_event_filtering(self):
        e = Engine()
        v = e.new_var(0, 9)
        bounds_watcher = _Recorder(v, Event.BOUNDS)
        any_watcher = _Recorder(v, Event.ANY)
        e.post(bounds_watcher)
        e.post(any_watcher)
        v.remove(5)  # interior removal: DOMAIN only
        e.fixpoint()
        assert bounds_watcher.runs == 0
        assert any_watcher.runs == 1
        v.remove_above(7)  # bounds change
        e.fixpoint()
        assert bounds_watcher.runs == 1
        assert any_watcher.runs == 2

    def test_self_modifier_requeued_until_quiescent(self):
        # a non-idempotent propagator that prunes its own watched variable
        # must be re-run (the lost-wake-up fix); the second run changes
        # nothing, so it settles after exactly two runs
        e = Engine()
        v = e.new_var(0, 9)

        class SelfModifier(Propagator):
            def __init__(self):
                super().__init__()
                self.runs = 0

            def post(self, engine):
                v.watch(self, Event.ANY)
                engine.schedule(self)

            def propagate(self, engine):
                self.runs += 1
                v.remove_above(8, cause=self)  # no-op from the 2nd run on

        p = SelfModifier()
        e.post(p)
        assert p.runs == 2

    def test_idempotent_self_modifier_not_rescheduled(self):
        # declaring ``idempotent = True`` restores the single-run behavior:
        # one run reaches the propagator's own fixpoint by contract
        e = Engine()
        v = e.new_var(0, 9)

        class IdempotentSelfModifier(Propagator):
            idempotent = True

            def __init__(self):
                super().__init__()
                self.runs = 0

            def post(self, engine):
                v.watch(self, Event.ANY)
                engine.schedule(self)

            def propagate(self, engine):
                self.runs += 1
                v.remove_above(8, cause=self)

        p = IdempotentSelfModifier()
        e.post(p)
        assert p.runs == 1

    def test_priority_order(self):
        e = Engine()
        v = e.new_var(0, 9)
        order = []

        class P(Propagator):
            def __init__(self, tag, prio):
                super().__init__(tag)
                self.priority = prio

            def post(self, engine):
                pass

            def propagate(self, engine):
                order.append(self.name)

        slow = P("slow", Priority.EXPENSIVE)
        fast = P("fast", Priority.UNARY)
        e.schedule(slow)
        e.schedule(fast)
        e.fixpoint()
        assert order == ["fast", "slow"]

    def test_deactivated_propagator_skipped(self):
        e = Engine()
        v = e.new_var(0, 9)
        r = _Recorder(v)
        e.post(r)
        e.push_level()
        r.deactivate(e)
        v.remove_above(5)
        e.fixpoint()
        assert r.runs == 0
        e.pop_level()  # reactivates via trail
        v.remove_above(3)
        e.fixpoint()
        assert r.runs == 1

    def test_all_fixed(self):
        e = Engine()
        a = e.new_var(1, 1)
        b = e.new_var(0, 1)
        assert not e.all_fixed()
        assert e.all_fixed([a])
        b.fix(0)
        assert e.all_fixed()

    def test_new_var_from_empty_rejected(self):
        e = Engine()
        with pytest.raises(ValueError):
            e.new_var_from(Domain([]))

"""Luby restarts and randomized-value search."""

from __future__ import annotations

import pytest

from repro.cp.model import Model
from repro.cp.restart import RestartingSearch, luby, shuffled_min_first
from repro.cp.branching import smallest_domain


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8
        ]

    def test_invalid(self):
        with pytest.raises(ValueError):
            luby(0)

    def test_powers(self):
        # terms at positions 2^k - 1 are 2^(k-1)
        for k in range(1, 10):
            assert luby((1 << k) - 1) == 1 << (k - 1)


class TestShuffledMinFirst:
    def test_min_always_first(self):
        m = Model()
        v = m.int_var(3, 9, "v")
        for seed in range(10):
            order = list(shuffled_min_first(seed)(v))
            assert order[0] == 3
            assert sorted(order) == list(range(3, 10))

    def test_singleton(self):
        m = Model()
        v = m.int_var(5, 5, "v")
        assert list(shuffled_min_first(0)(v)) == [5]


def queens_model(n):
    m = Model()
    qs = [m.int_var(0, n - 1, f"q{i}") for i in range(n)]
    m.add_alldifferent(qs)
    for i in range(n):
        for j in range(i + 1, n):
            m.add_ne(qs[i], qs[j], j - i)
            m.add_ne(qs[i], qs[j], i - j)
    return m, qs


class TestRestartingSearch:
    def test_finds_solution(self):
        m, qs = queens_model(8)
        search = RestartingSearch(m.engine, qs, var_select=smallest_domain,
                                  base_failures=8, seed=1)
        sol = search.first_solution()
        assert sol is not None
        vals = [sol[f"q{i}"] for i in range(8)]
        assert len(set(vals)) == 8

    def test_restores_state(self):
        m, qs = queens_model(6)
        sizes = [q.size() for q in qs]
        RestartingSearch(m.engine, qs, base_failures=4, seed=2).first_solution()
        assert [q.size() for q in qs] == sizes

    def test_proves_infeasibility(self):
        m = Model()
        x = m.int_var(0, 1, "x")
        y = m.int_var(0, 1, "y")
        z = m.int_var(0, 1, "z")
        m.add_ne(x, y)
        m.add_ne(y, z)
        m.add_ne(x, z)
        search = RestartingSearch(m.engine, [x, y, z], base_failures=100)
        assert search.first_solution() is None
        assert search.stats.stop_reason == "exhausted"

    def test_time_limit(self):
        m, qs = queens_model(10)
        search = RestartingSearch(
            m.engine, qs, base_failures=1, time_limit=0.0
        )
        assert search.first_solution() is None
        assert search.stats.stop_reason == "time"

    def test_on_solution_sees_live_state(self):
        m, qs = queens_model(6)
        seen = {}

        def capture(sol):
            # engine state must reflect the solution right now
            seen["fixed"] = all(q.is_fixed() for q in qs)

        search = RestartingSearch(
            m.engine, qs, base_failures=64, on_solution=capture
        )
        assert search.first_solution() is not None
        assert seen["fixed"]

    def test_restart_counter(self):
        m, qs = queens_model(8)
        search = RestartingSearch(m.engine, qs, base_failures=1, seed=0)
        search.first_solution()
        # with a 1-failure budget, 8-queens all but surely needs restarts
        assert search.restarts >= 1


class TestPlacerRestartConstruction:
    def test_restart_construction_places_all(self):
        from repro.core.placer import CPPlacer, PlacerConfig
        from repro.fabric.devices import irregular_device
        from repro.fabric.region import PartialRegion
        from repro.modules.generator import ModuleGenerator

        region = PartialRegion.whole_device(irregular_device(96, 20, seed=13))
        modules = ModuleGenerator(seed=21).generate_set(8)
        cfg = PlacerConfig(
            time_limit=6.0, first_solution_only=True, construction="restart",
            seed=4,
        )
        res = CPPlacer(cfg).place(region, modules)
        assert res.all_placed
        res.verify()
        assert "restarts" in res.stats

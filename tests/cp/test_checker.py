"""Solution checker: declarative constraint semantics as a test oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cp.checker import (
    check_solution,
    checkable,
    violated_constraints,
)
from repro.cp.constraints import Rect, Task
from repro.cp.model import Model
from repro.cp.solver import Solver


class TestCheckers:
    def test_every_model_helper_constraint_is_checkable(self):
        m = Model()
        a = m.int_var(0, 5, "a")
        b = m.int_var(0, 5, "b")
        z = m.int_var(0, 10, "z")
        bool1 = m.bool_var("b1")
        m.add_le(a, b)
        m.add_eq(a, b)
        m.add_sum(z, a, b)
        m.add_linear_le([1, 1], [a, b], 10)
        m.add_linear_eq([1, -1], [a, b], 0)
        m.add_element([0, 1, 2, 3, 4, 5], a, b)
        m.add_max(z, [a, b])
        m.add_table([a, b], [(0, 0), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5)])
        m.add_alldifferent([a, z])
        m.add_count([a, b], 0, 0, 2)
        m.add_iff_le(bool1, a, 3)
        m.add_or([bool1])
        m.add_cumulative([Task(a, 1, 1)], 2)
        m.add_diffn([Rect(a, b, 1, 1)])
        m.add_abs_diff(z, a, b)
        m.add_min_distance(a, b, 0)
        assert all(checkable(c) for c in m.constraints)

    def test_violations_pinpointed(self):
        m = Model()
        a = m.int_var(0, 9, "a")
        b = m.int_var(0, 9, "b")
        le = m.add_le(a, b, 2)
        ne = m.add_ne(a, b)
        bad = {"a": 5, "b": 5}
        violated = violated_constraints(m, bad)
        assert set(violated) == {le, ne}
        assert not check_solution(m, bad)
        good = {"a": 1, "b": 4}
        assert check_solution(m, good)

    def test_missing_variable_raises(self):
        m = Model()
        a = m.int_var(0, 2, "a")
        b = m.int_var(0, 2, "b")
        m.add_le(a, b)
        with pytest.raises(KeyError):
            check_solution(m, {"a": 1})

    def test_strict_mode_rejects_uncheckable(self):
        from repro.cp.propagator import Propagator

        class Opaque(Propagator):
            def post(self, engine):
                pass

            def propagate(self, engine):
                pass

        m = Model()
        m.post(Opaque())
        assert check_solution(m, {})  # lenient: skipped
        with pytest.raises(TypeError):
            check_solution(m, {}, strict=True)

    def test_count_subclasses_dispatch(self):
        m = Model()
        xs = [m.int_var(0, 2, f"v{i}") for i in range(3)]
        atmost = m.add_atmost(xs, 1, 1)
        assert checkable(atmost)
        assert not check_solution(m, {"v0": 1, "v1": 1, "v2": 0})
        assert check_solution(m, {"v0": 1, "v1": 0, "v2": 0})


class TestSearchAgainstOracle:
    """Every solution the engine emits must satisfy the declarative oracle."""

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_random_models(self, seed):
        import random

        rng = random.Random(seed)
        m = Model()
        xs = [m.int_var(0, 4, f"v{i}") for i in range(3)]
        from repro.cp.engine import Inconsistent

        try:
            for _ in range(rng.randint(1, 4)):
                kind = rng.choice(["le", "ne", "sum", "count", "dist"])
                i, j = rng.sample(range(3), 2)
                if kind == "le":
                    m.add_le(xs[i], xs[j], rng.randint(-2, 2))
                elif kind == "ne":
                    m.add_ne(xs[i], xs[j])
                elif kind == "sum":
                    k = 3 - i - j
                    m.add_sum(xs[k], xs[i], xs[j])
                elif kind == "count":
                    m.add_count(xs, rng.randint(0, 4), 0, rng.randint(1, 3))
                else:
                    m.add_min_distance(xs[i], xs[j], rng.randint(0, 3))
        except Inconsistent:
            return
        for sol in Solver(m, xs).enumerate():
            assert check_solution(m, sol), f"leaked invalid solution {sol}"

    def test_queens_solutions_validated(self):
        m = Model()
        n = 6
        qs = [m.int_var(0, n - 1, f"q{i}") for i in range(n)]
        m.add_alldifferent(qs)
        for i in range(n):
            for j in range(i + 1, n):
                m.add_ne(qs[i], qs[j], j - i)
                m.add_ne(qs[i], qs[j], i - j)
        sols = Solver(m, qs).enumerate()
        assert len(sols) == 4
        for sol in sols:
            assert check_solution(m, sol)

"""AllDifferent, Cumulative and DiffN: checked against brute force."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cp.constraints import Rect, Task
from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.solver import Solver


def enumerate_solutions(model, variables):
    return Solver(model, variables).enumerate()


class TestAllDifferent:
    def test_forward_checking(self):
        m = Model()
        xs = [m.int_var(0, 3, f"v{i}") for i in range(3)]
        m.add_alldifferent(xs)
        xs[0].fix(2)
        m.engine.fixpoint()
        assert 2 not in xs[1].domain and 2 not in xs[2].domain

    def test_hall_interval(self):
        m = Model()
        a = m.int_var(1, 2, "a")
        b = m.int_var(1, 2, "b")
        c = m.int_var(1, 3, "c")
        m.add_alldifferent([a, b, c])
        # {a, b} saturate [1, 2] => c must leave it
        assert c.value() == 3

    def test_pigeonhole_failure(self):
        m = Model()
        xs = [m.int_var(0, 1, f"v{i}") for i in range(3)]
        with pytest.raises(Inconsistent):
            m.add_alldifferent(xs)

    def test_permutation_count(self):
        m = Model()
        xs = [m.int_var(0, 3, f"v{i}") for i in range(4)]
        m.add_alldifferent(xs)
        assert len(enumerate_solutions(m, xs)) == 24

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)).map(
                lambda t: (min(t), max(t))
            ),
            min_size=2,
            max_size=4,
        )
    )
    def test_solution_set_matches_brute_force(self, ranges):
        m = Model()
        xs = [m.int_var(lo, hi, f"v{i}") for i, (lo, hi) in enumerate(ranges)]
        try:
            m.add_alldifferent(xs)
        except Inconsistent:
            got = set()
        else:
            got = {
                tuple(s[f"v{i}"] for i in range(len(ranges)))
                for s in enumerate_solutions(m, xs)
            }
        want = {
            combo
            for combo in itertools.product(
                *[range(lo, hi + 1) for lo, hi in ranges]
            )
            if len(set(combo)) == len(combo)
        }
        assert got == want


def _cumulative_ok(starts, durations, demands, capacity):
    events = {}
    for s, d, dem in zip(starts, durations, demands):
        for t in range(s, s + d):
            events[t] = events.get(t, 0) + dem
    return all(v <= capacity for v in events.values())


class TestCumulative:
    def test_profile_overflow_detected(self):
        m = Model()
        a = m.int_var(0, 0, "a")
        b = m.int_var(0, 0, "b")
        with pytest.raises(Inconsistent):
            m.add_cumulative([Task(a, 3, 2), Task(b, 3, 2)], 3)

    def test_pushes_start_past_busy_segment(self):
        m = Model()
        a = m.int_var(0, 0, "a")        # fixed: occupies [0, 4) at demand 2
        b = m.int_var(0, 10, "b")       # demand 2, capacity 3 -> cannot overlap
        m.add_cumulative([Task(a, 4, 2), Task(b, 2, 2)], 3)
        assert b.min() == 4

    def test_demand_exceeding_capacity_rejected(self):
        m = Model()
        with pytest.raises(ValueError):
            m.add_cumulative([Task(m.int_var(0, 1), 1, 5)], 4)

    def test_zero_duration_tasks_ignored(self):
        m = Model()
        a = m.int_var(0, 5, "a")
        m.add_cumulative([Task(a, 0, 100)], 1)  # no-op
        assert a.size() == 6

    @given(
        st.lists(
            st.tuples(st.integers(1, 3), st.integers(1, 3)),
            min_size=2,
            max_size=3,
        ),
        st.integers(2, 4),
    )
    def test_no_solution_lost(self, tasks, capacity):
        """Filtering must keep every brute-force-valid assignment."""
        horizon = 6
        m = Model()
        xs = [m.int_var(0, horizon, f"v{i}") for i in range(len(tasks))]
        ts = [
            Task(x, d, min(dem, capacity))
            for x, (d, dem) in zip(xs, tasks)
        ]
        try:
            m.add_cumulative(ts, capacity)
        except Inconsistent:
            got = set()
        else:
            got = {
                tuple(s[f"v{i}"] for i in range(len(tasks)))
                for s in enumerate_solutions(m, xs)
            }
        want = {
            combo
            for combo in itertools.product(range(horizon + 1), repeat=len(tasks))
            if _cumulative_ok(
                combo,
                [d for d, _ in tasks],
                [min(dem, capacity) for _, dem in tasks],
                capacity,
            )
        }
        assert got == want


def _rects_disjoint(placements, sizes):
    boxes = [
        (x, y, x + w, y + h)
        for (x, y), (w, h) in zip(placements, sizes)
    ]
    for i in range(len(boxes)):
        for j in range(i + 1, len(boxes)):
            a, b = boxes[i], boxes[j]
            if a[0] < b[2] and b[0] < a[2] and a[1] < b[3] and b[1] < a[3]:
                return False
    return True


class TestDiffN:
    def test_forced_overlap_fails(self):
        m = Model()
        r1 = Rect(m.int_var(0, 0, "x1"), m.int_var(0, 0, "y1"), 2, 2)
        r2 = Rect(m.int_var(1, 1, "x2"), m.int_var(1, 1, "y2"), 2, 2)
        with pytest.raises(Inconsistent):
            m.add_diffn([r1, r2])

    def test_separation_propagates(self):
        m = Model()
        # both 3 wide in a 4-wide corridor: y-overlap forced -> x must split
        x1, y1 = m.int_var(0, 1, "x1"), m.int_var(0, 0, "y1")
        x2, y2 = m.int_var(0, 4, "x2"), m.int_var(0, 0, "y2")
        m.add_diffn([Rect(x1, y1, 3, 1), Rect(x2, y2, 3, 1)])
        x1.fix(0)
        m.engine.fixpoint()
        assert x2.min() == 3

    def test_invalid_rect_rejected(self):
        m = Model()
        with pytest.raises(ValueError):
            Rect(m.int_var(0, 1), m.int_var(0, 1), 0, 2)

    def test_self_notification_reaches_own_fixpoint(self):
        # Lost-wake-up regression: one pairwise pass is not a fixpoint.
        # Pairs run in order (0,1), (0,2), (1,2); here the *last* pair
        # pushes r2 right (r1 at x=1 forces r2.min 2 -> 3), which only
        # then lets the *earlier* pair (0,2) push r0 right (r2 left of r0
        # forces r0.min 4 -> 5).  Without the engine re-queuing a
        # propagator that pruned its own watched variables, fixpoint()
        # would return with r0.min still at 4.
        m = Model()
        r0 = Rect(m.int_var(4, 9, "x0"), m.int_var(0, 0, "y0"), 2, 2)
        r1 = Rect(m.int_var(1, 1, "x1"), m.int_var(0, 0, "y1"), 2, 2)
        r2 = Rect(m.int_var(2, 4, "x2"), m.int_var(0, 0, "y2"), 2, 2)
        prop = m.add_diffn([r0, r1, r2])
        assert r2.x.min() == 3
        assert r0.x.min() == 5
        # and the engine's fixpoint really is DiffN's own fixpoint: one
        # more manual run changes nothing
        before = m.engine.stats.domain_updates
        prop.propagate(m.engine)
        assert m.engine.stats.domain_updates == before

    @given(
        st.lists(
            st.tuples(st.integers(1, 2), st.integers(1, 2)),
            min_size=2,
            max_size=3,
        )
    )
    def test_solution_set_matches_brute_force(self, sizes):
        W = H = 4
        m = Model()
        rects = []
        xs = []
        for i, (w, h) in enumerate(sizes):
            x = m.int_var(0, W - w, f"x{i}")
            y = m.int_var(0, H - h, f"y{i}")
            rects.append(Rect(x, y, w, h))
            xs.extend([x, y])
        try:
            m.add_diffn(rects)
        except Inconsistent:
            got = set()
        else:
            got = {
                tuple((s[f"x{i}"], s[f"y{i}"]) for i in range(len(sizes)))
                for s in enumerate_solutions(m, xs)
            }
        domains = [
            [(x, y) for x in range(W - w + 1) for y in range(H - h + 1)]
            for w, h in sizes
        ]
        want = {
            combo
            for combo in itertools.product(*domains)
            if _rects_disjoint(combo, sizes)
        }
        assert got == want

"""Property tests for the bitset Domain against a reference set model.

Every operation is mirrored on a plain Python ``set``; random seeded
instances (one subtest per seed) check that bounds, holes and the
normalization invariant (``offset == min`` for non-empty domains) are
preserved by the whole operation algebra.
"""

from __future__ import annotations

import random

import pytest

from repro.cp.domain import EMPTY_DOMAIN, Domain


def check_matches(d: Domain, ref: set, ctx: str = "") -> None:
    """Domain and reference set agree on every observable."""
    assert set(d) == ref, ctx
    assert len(d) == len(ref), ctx
    assert bool(d) == bool(ref), ctx
    assert d.is_empty() == (not ref), ctx
    if ref:
        assert d.min() == min(ref), ctx
        assert d.max() == max(ref), ctx
        # normalization: the representation anchors at the minimum
        assert d.offset == d.min(), ctx
        assert d.mask & 1 == 1, ctx
    assert d.is_singleton() == (len(ref) == 1), ctx
    assert list(d) == sorted(ref), f"iteration must be sorted: {ctx}"


def random_values(rng: random.Random):
    n = rng.randint(0, 12)
    span = rng.choice([(0, 15), (-8, 8), (100, 140), (-40, -20)])
    return {rng.randint(*span) for _ in range(n)}


@pytest.mark.parametrize("seed", range(150))
def test_operation_algebra_matches_set_model(seed):
    rng = random.Random(seed)
    ref = random_values(rng)
    d = Domain(ref)
    check_matches(d, ref, f"seed={seed} construction")

    for step in range(8):
        op = rng.choice(
            ["remove", "remove_below", "remove_above", "clamp",
             "intersect", "union", "difference", "shift", "negate"]
        )
        ctx = f"seed={seed} step={step} op={op} ref={sorted(ref)}"
        if op == "remove":
            v = rng.randint(-45, 145)
            d, ref = d.remove(v), ref - {v}
        elif op == "remove_below":
            v = rng.randint(-45, 145)
            d, ref = d.remove_below(v), {x for x in ref if x >= v}
        elif op == "remove_above":
            v = rng.randint(-45, 145)
            d, ref = d.remove_above(v), {x for x in ref if x <= v}
        elif op == "clamp":
            lo = rng.randint(-45, 145)
            hi = lo + rng.randint(0, 30)
            d, ref = d.clamp(lo, hi), {x for x in ref if lo <= x <= hi}
        elif op == "shift":
            delta = rng.randint(-20, 20)
            d, ref = d.shift(delta), {x + delta for x in ref}
        elif op == "negate":
            d, ref = d.negate(), {-x for x in ref}
        else:
            other_ref = random_values(rng)
            other = Domain(other_ref)
            if op == "intersect":
                d, ref = d.intersect(other), ref & other_ref
            elif op == "union":
                d, ref = d.union(other), ref | other_ref
            else:
                d, ref = d.difference(other), ref - other_ref
        check_matches(d, ref, ctx)


@pytest.mark.parametrize("seed", range(60))
def test_membership_and_neighbors(seed):
    rng = random.Random(seed)
    ref = random_values(rng)
    d = Domain(ref)
    for _ in range(10):
        v = rng.randint(-50, 150)
        assert (v in d) == (v in ref), f"seed={seed} v={v}"
        above = [x for x in ref if x >= v]
        below = [x for x in ref if x <= v]
        assert d.next_value(v) == (min(above) if above else None)
        assert d.prev_value(v) == (max(below) if below else None)


@pytest.mark.parametrize("seed", range(40))
def test_range_constructor_and_subset(seed):
    rng = random.Random(seed)
    lo = rng.randint(-30, 30)
    hi = lo + rng.randint(-2, 20)
    d = Domain.range(lo, hi)
    ref = set(range(lo, hi + 1))
    check_matches(d, ref, f"seed={seed} range({lo},{hi})")
    sub = d.remove_below(lo + 1)
    assert sub.is_subset_of(d)
    if ref:
        assert not d.union(Domain.singleton(hi + 5)).is_subset_of(d)


@pytest.mark.parametrize("seed", range(40))
def test_bool_array_bridge_round_trips(seed):
    rng = random.Random(seed)
    length = rng.randint(1, 64)
    ref = {rng.randrange(length) for _ in range(rng.randint(0, 10))}
    d = Domain(ref)
    vec = d.to_bool_array(length)
    assert vec.sum() == len(ref)
    assert {i for i, b in enumerate(vec) if b} == ref
    assert Domain.from_bool_array(vec) == d


@pytest.mark.parametrize("seed", range(30))
def test_negate_on_wide_sparse_domains(seed):
    """negate() on domains spanning ~1e5: the arithmetic bit reversal must
    stay exact (and fast) where the old text round-trip was quadratic."""
    rng = random.Random(seed)
    span = rng.choice([10_000, 100_000, 1_000_000])
    lo = rng.randint(-span, span)
    ref = {lo + rng.randrange(span) for _ in range(rng.randint(1, 40))}
    ref.add(lo)  # pin the offset
    d = Domain(ref)
    neg = d.negate()
    check_matches(neg, {-x for x in ref}, f"seed={seed} span={span}")
    # involution: double negation restores the original exactly
    check_matches(neg.negate(), ref, f"seed={seed} double-negate")


def test_negate_extremes():
    assert EMPTY_DOMAIN.negate() is EMPTY_DOMAIN
    check_matches(Domain.singleton(7).negate(), {-7})
    check_matches(Domain.singleton(-3).negate(), {3})
    # two far-apart values: the mask is one set bit at each end of a very
    # wide word, the worst case for any width-dependent reversal
    wide = Domain({0, 10**6})
    check_matches(wide.negate(), {0, -(10**6)})
    dense = Domain.range(-5, 1000)
    check_matches(dense.negate(), set(range(-1000, 6)))


def test_empty_domain_edge_cases():
    assert EMPTY_DOMAIN.is_empty()
    with pytest.raises(ValueError):
        EMPTY_DOMAIN.min()
    with pytest.raises(ValueError):
        EMPTY_DOMAIN.value()
    assert Domain.range(5, 3) == EMPTY_DOMAIN
    assert EMPTY_DOMAIN.remove(3) is EMPTY_DOMAIN

"""Cross-module integration scenarios.

Each test threads several subsystems together the way a downstream user
would: generate fabric + modules, place with different engines, compare
and verify, exercise the flow artefacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lns import LNSConfig, LNSPlacer
from repro.core.placer import CPPlacer, PlacerConfig, place
from repro.core.report import render_placement
from repro.core.result import PlacementResult
from repro.fabric.devices import irregular_device
from repro.fabric.io import region_from_dict, region_to_dict
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.metrics.utilization import extent_utilization
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.spec import module_from_dict, module_to_dict
from repro.placer import BottomLeftPlacer


@pytest.fixture(scope="module")
def table1_style_instance():
    region = PartialRegion.whole_device(irregular_device(96, 20, seed=13))
    modules = ModuleGenerator(seed=21).generate_set(12)
    return region, modules


class TestPaperStory:
    """The paper's central claims on a mid-size instance."""

    def test_alternatives_improve_utilization(self, table1_style_instance):
        region, modules = table1_style_instance
        without = LNSPlacer(LNSConfig(time_limit=5.0, seed=3)).place(
            region, [m.restricted(1) for m in modules]
        )
        with_alts = LNSPlacer(LNSConfig(time_limit=5.0, seed=3)).place(
            region, modules
        )
        assert without.all_placed and with_alts.all_placed
        without.verify()
        with_alts.verify()
        assert extent_utilization(with_alts) >= extent_utilization(without)

    def test_cp_beats_greedy(self, table1_style_instance):
        region, modules = table1_style_instance
        greedy = BottomLeftPlacer().place(region, modules)
        cp = LNSPlacer(LNSConfig(time_limit=5.0, seed=3)).place(region, modules)
        if greedy.all_placed and cp.all_placed:
            assert cp.extent <= greedy.extent

    def test_placements_respect_heterogeneity(self, table1_style_instance):
        region, modules = table1_style_instance
        res = CPPlacer(
            PlacerConfig(time_limit=5.0, first_solution_only=True)
        ).place(region, modules)
        assert res.all_placed
        grid = region.grid.cells
        for p in res.placements:
            for x, y, kind in p.absolute_cells():
                assert grid[y, x] == int(kind)

    def test_bram_demand_lands_on_bram_columns(self, table1_style_instance):
        region, modules = table1_style_instance
        res = CPPlacer(
            PlacerConfig(time_limit=5.0, first_solution_only=True)
        ).place(region, modules)
        bram_cells = sum(
            1
            for p in res.placements
            for _, _, k in p.footprint.cells
            if k is ResourceType.BRAM
        )
        expected = sum(
            p.footprint.resource_counts().get(ResourceType.BRAM, 0)
            for p in res.placements
        )
        assert bram_cells == expected


class TestRoundTripPipelines:
    def test_spec_to_placement_round_trip(self, tmp_path, table1_style_instance):
        """Serialize region+modules, reload, place, verify — full pipeline."""
        region, modules = table1_style_instance
        region2 = region_from_dict(region_to_dict(region))
        modules2 = [module_from_dict(module_to_dict(m)) for m in modules[:6]]
        res = place(region2, modules2, time_limit=3.0,
                    first_solution_only=True)
        assert res.all_placed
        res.verify()

    def test_render_matches_occupancy(self, table1_style_instance):
        region, modules = table1_style_instance
        res = CPPlacer(
            PlacerConfig(time_limit=3.0, first_solution_only=True)
        ).place(region, modules[:6])
        art = render_placement(res)
        lines = art.splitlines()
        occupancy = res.occupancy_mask()
        module_chars = set("0123456789abcdef")
        for y in range(region.height):
            for x in range(region.width):
                ch = lines[region.height - 1 - y][x]
                assert (ch in module_chars) == bool(occupancy[y, x])


class TestDeterminism:
    def test_cp_placer_is_deterministic(self, table1_style_instance):
        region, modules = table1_style_instance
        cfg = PlacerConfig(time_limit=None, node_limit=4000)
        a = CPPlacer(cfg).place(region, modules[:5])
        b = CPPlacer(cfg).place(region, modules[:5])
        assert [(p.module.name, p.shape_index, p.x, p.y) for p in a.placements] \
            == [(p.module.name, p.shape_index, p.x, p.y) for p in b.placements]

    def test_generator_fabric_pairing_stable(self):
        a = irregular_device(48, 12, seed=99)
        b = irregular_device(48, 12, seed=99)
        assert a == b
        ma = ModuleGenerator(seed=7).generate_set(5)
        mb = ModuleGenerator(seed=7).generate_set(5)
        assert [m.shapes for m in ma] == [m.shapes for m in mb]

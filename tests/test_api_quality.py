"""API surface quality gates.

Library-wide checks: every public module/class/function is documented,
the package __all__ lists resolve, and the examples at least import.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.cp",
    "repro.cp.constraints",
    "repro.geost",
    "repro.fabric",
    "repro.modules",
    "repro.core",
    "repro.placer",
    "repro.metrics",
    "repro.flow",
    "repro.experiments",
]


def iter_modules():
    seen = set()
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__, prefix=pkg_name + "."):
            if info.name not in seen:
                seen.add(info.name)
                yield importlib.import_module(info.name)


class TestDocumentation:
    def test_every_module_has_docstring(self):
        undocumented = [
            m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert missing == [], f"undocumented public items: {missing}"


class TestExports:
    @pytest.mark.parametrize("pkg_name", PACKAGES)
    def test_all_lists_resolve(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        exported = getattr(pkg, "__all__", [])
        for name in exported:
            assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name}"

    def test_version_available(self):
        assert repro.__version__


class TestExamples:
    def test_examples_compile(self):
        root = Path(__file__).resolve().parent.parent / "examples"
        scripts = sorted(root.glob("*.py"))
        assert len(scripts) >= 8
        for script in scripts:
            compile(script.read_text(), str(script), "exec")

    def test_examples_have_main_and_doc(self):
        root = Path(__file__).resolve().parent.parent / "examples"
        for script in sorted(root.glob("*.py")):
            text = script.read_text()
            assert '"""' in text.split("\n", 2)[1] or text.startswith(
                "#!"
            ), f"{script.name} lacks a docstring"
            assert "def main()" in text, f"{script.name} lacks main()"

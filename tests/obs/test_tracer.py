"""Tracers: recording, streaming, null, and engine integration."""

from __future__ import annotations

import io
import json

import pytest

from repro.cp.engine import Engine, Inconsistent
from repro.cp.model import Model
from repro.cp.search import DepthFirstSearch
from repro.obs import (
    NullTracer,
    RecordingTracer,
    StreamTracer,
    TraceEvent,
    validate_event,
)
from repro.obs import trace as T


class TestRecordingTracer:
    def test_records_events_with_payload(self):
        tr = RecordingTracer()
        tr.emit("custom.kind", a=1, b="x")
        assert len(tr) == 1
        ev = tr.events[0]
        assert ev.kind == "custom.kind"
        assert ev.data == {"a": 1, "b": "x"}
        assert ev.t >= 0.0

    def test_by_kind_and_count(self):
        tr = RecordingTracer()
        for i in range(3):
            tr.emit("a", i=i)
        tr.emit("b")
        assert tr.count("a") == 3
        assert tr.count("b") == 1
        assert tr.count("missing") == 0
        assert [e.data["i"] for e in tr.by_kind("a")] == [0, 1, 2]
        assert tr.kinds() == {"a": 3, "b": 1}

    def test_capacity_ring(self):
        tr = RecordingTracer(capacity=2)
        for i in range(5):
            tr.emit("k", i=i)
        assert tr.total == 5  # emitted count is not capped
        assert [e.data["i"] for e in tr.events] == [3, 4]

    def test_clear(self):
        tr = RecordingTracer()
        tr.emit("k")
        tr.clear()
        assert len(tr) == 0 and tr.total == 0

    def test_event_to_dict_round_trips_json(self):
        tr = RecordingTracer()
        tr.emit("k", x=1)
        doc = json.loads(json.dumps(tr.events[0].to_dict()))
        assert doc["kind"] == "k" and doc["x"] == 1


class TestNullTracer:
    def test_disabled_and_silent(self):
        tr = NullTracer()
        assert not tr.enabled and not tr.fine
        tr.emit("anything", a=1)  # must be a no-op, not an error
        tr.record(TraceEvent("k", 0.0, {}))
        tr.close()

    def test_engine_normalizes_null_to_none(self):
        eng = Engine(tracer=NullTracer())
        assert eng.tracer is None


class TestStreamTracer:
    def test_writes_jsonl(self):
        buf = io.StringIO()
        tr = StreamTracer(buf)
        tr.emit("a", x=1)
        tr.emit("b", y="z")
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [d["kind"] for d in lines] == ["a", "b"]
        assert lines[0]["x"] == 1 and lines[1]["y"] == "z"

    def test_to_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tr = StreamTracer.to_path(path)
        tr.emit("search.node", var="x", value=3, depth=1)
        tr.close()
        docs = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(docs) == 1
        assert validate_event(docs[0]) == []


def _queens_model(n: int = 6):
    m = Model("queens")
    qs = [m.int_var(0, n - 1, f"q{i}") for i in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            m.add_ne(qs[i], qs[j])
            m.add_ne(qs[i], qs[j], j - i)
            m.add_ne(qs[i], qs[j], -(j - i))
    return m, qs


class TestEngineEmission:
    def test_search_emits_structured_events(self):
        tr = RecordingTracer()
        m, qs = _queens_model(6)
        m.engine.attach_tracer(tr)
        search = DepthFirstSearch(m.engine, qs)
        n_solutions = sum(1 for _ in search.solutions())
        assert n_solutions == 4
        assert tr.count(T.SOLUTION) == 4
        assert tr.count(T.NODE_OPENED) == search.stats.nodes
        # NODE_FAILED marks decisions that failed propagation; the stats
        # counter additionally counts unwinding pops, so it dominates
        assert 0 < tr.count(T.NODE_FAILED) <= search.stats.backtracks
        # fine-grained channels are on for the default RecordingTracer
        assert tr.count(T.PROPAGATE) > 0
        assert tr.count(T.DOMAIN_UPDATE) > 0
        # every known event payload matches the published schema
        for ev in tr.events:
            assert validate_event(ev.to_dict()) == [], ev

    def test_coarse_tracer_skips_fine_events(self):
        tr = RecordingTracer(fine=False)
        m, qs = _queens_model(6)
        m.engine.attach_tracer(tr)
        search = DepthFirstSearch(m.engine, qs)
        sum(1 for _ in search.solutions())
        assert tr.count(T.NODE_OPENED) > 0
        assert tr.count(T.PROPAGATE) == 0
        assert tr.count(T.DOMAIN_UPDATE) == 0

    def test_failure_event_on_wipeout(self):
        tr = RecordingTracer()
        m = Model()
        x = m.int_var(0, 1, "x")
        y = m.int_var(0, 1, "y")
        m.add_ne(x, y)
        m.engine.attach_tracer(tr)
        x.fix(0)
        with pytest.raises(Inconsistent):
            y.fix(0)
            m.engine.fixpoint()
        assert tr.count(T.ENGINE_FAILURE) >= 1

"""SolveProfile: capture, merge, export, schema validation, reporting."""

from __future__ import annotations

import json

import pytest

from repro.core.placer import CPPlacer, PlacerConfig
from repro.fabric.devices import homogeneous_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.module import Module
from repro.obs import (
    PROFILE_SCHEMA_VERSION,
    PropagatorProfile,
    SolveProfile,
    profile_report,
    profiling_session,
    validate_profile,
)
from repro.obs.context import current


def _tiny_instance():
    region = PartialRegion.whole_device(homogeneous_device(6, 3))
    modules = [
        Module("a", [Footprint.rectangle(2, 2)]),
        Module("b", [Footprint.rectangle(2, 1), Footprint.rectangle(1, 2)]),
    ]
    return region, modules


def _solve_with_profile() -> SolveProfile:
    region, modules = _tiny_instance()
    result = CPPlacer(
        PlacerConfig(time_limit=None, profile=True)
    ).place(region, modules)
    assert result.status == "optimal"
    return result.stats["profile"]


class TestPropagatorProfile:
    def test_merge_sums_counters(self):
        a = PropagatorProfile("k", calls=2, time_s=0.5, prunes=3, failures=1)
        b = PropagatorProfile("k", calls=1, time_s=0.25, prunes=4, failures=0)
        c = a + b
        assert (c.calls, c.prunes, c.failures) == (3, 7, 1)
        assert c.time_s == pytest.approx(0.75)

    def test_merge_rejects_different_names(self):
        with pytest.raises(ValueError):
            PropagatorProfile("a") + PropagatorProfile("b")

    def test_dict_round_trip(self):
        a = PropagatorProfile("k", calls=2, time_s=0.5, prunes=3, failures=1)
        assert PropagatorProfile.from_dict(a.to_dict()) == a


class TestSolveProfileCapture:
    def test_capture_from_real_solve(self):
        profile = _solve_with_profile()
        assert profile.nodes > 0
        assert profile.solutions >= 1
        assert profile.propagations > 0
        assert profile.domain_updates > 0
        assert profile.propagators  # per-propagator table populated
        assert profile.meta["placer"] == "cp"
        # sanity: per-propagator calls sum to the engine's total
        assert (
            sum(p.calls for p in profile.propagators.values())
            == profile.propagations
        )

    def test_merge_adds_counts_and_propagators(self):
        p1 = _solve_with_profile()
        p2 = _solve_with_profile()
        merged = p1 + p2
        for key, value in merged.counts().items():
            if key == "max_depth":
                assert value == max(p1.max_depth, p2.max_depth)
            else:
                assert value == p1.counts()[key] + p2.counts()[key]
        for name, rec in merged.propagators.items():
            expect = p1.propagators[name].calls + p2.propagators[name].calls
            assert rec.calls == expect


class TestExportFormats:
    def test_json_round_trip_preserves_counts(self, tmp_path):
        profile = _solve_with_profile()
        path = tmp_path / "profile.json"
        profile.save(path)
        restored = SolveProfile.load(path)
        assert restored.counts() == profile.counts()
        assert set(restored.propagators) == set(profile.propagators)
        for name in profile.propagators:
            assert (
                restored.propagators[name].prunes
                == profile.propagators[name].prunes
            )
        assert restored.meta == profile.meta

    def test_schema_version_checked(self):
        profile = _solve_with_profile()
        doc = profile.to_dict()
        doc["schema_version"] = PROFILE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            SolveProfile.from_dict(doc)

    def test_exported_doc_validates(self):
        doc = _solve_with_profile().to_dict()
        assert validate_profile(doc) == []
        # and survives an actual json round trip
        assert validate_profile(json.loads(json.dumps(doc))) == []

    def test_validate_flags_problems(self):
        doc = _solve_with_profile().to_dict()
        doc["nodes"] = -1
        del doc["elapsed"]
        problems = validate_profile(doc)
        assert any("nodes" in p for p in problems)
        assert any("elapsed" in p for p in problems)

    def test_csv_export(self):
        profile = _solve_with_profile()
        lines = profile.to_csv().splitlines()
        assert lines[0] == "propagator,calls,time_s,prunes,failures"
        assert len(lines) == 1 + len(profile.propagators)

    def test_report_is_human_readable(self):
        profile = _solve_with_profile()
        text = profile_report(profile)
        assert "nodes" in text
        for name in profile.propagators:
            assert name in text


class TestProfilingSession:
    def test_session_collects_profiles(self):
        region, modules = _tiny_instance()
        with profiling_session("unit") as session:
            # note: no profile=True — the active session forces capture
            CPPlacer(PlacerConfig(time_limit=None)).place(region, modules)
            CPPlacer(PlacerConfig(time_limit=None)).place(region, modules)
        assert len(session.profiles) == 2
        merged = session.merged()
        assert merged.meta["session"] == "unit"
        assert merged.meta["solves"] == 2
        assert merged.nodes == sum(p.nodes for p in session.profiles)

    def test_session_restores_previous(self):
        assert current() is None
        with profiling_session("outer") as outer:
            with profiling_session("inner"):
                assert current() is not None
            assert current() is outer
        assert current() is None

    def test_no_profile_without_opt_in(self):
        region, modules = _tiny_instance()
        result = CPPlacer(PlacerConfig(time_limit=None)).place(region, modules)
        assert "profile" not in result.stats

"""Golden search-statistics regression tests.

Three fixed (fabric, modules) instances are solved to proven optimality
(``time_limit=None`` — no wall-clock dependence) and the exact counter
vector of the resulting :class:`~repro.obs.SolveProfile` is pinned.  Any
change to propagation strength, branching, symmetry breaking or the
objective coupling shifts these numbers; the point of the test is to make
such shifts *visible* in review instead of silent.

If a change is intentional, re-run with ``--golden-print`` semantics::

    PYTHONPATH=src python -m tests.obs.test_golden_stats

which prints the fresh counter vectors to paste below.
"""

from __future__ import annotations

import pytest

from repro.core.placer import CPPlacer, PlacerConfig
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module
from repro.obs import SolveProfile

COUNT_KEYS = (
    "nodes", "backtracks", "solutions", "max_depth",
    "restarts", "propagations", "domain_updates", "failures",
    "geost_dirty", "geost_reused", "geost_rasterized",
)

#: instance name -> pinned counter vector, ordered as COUNT_KEYS
GOLDEN = {
    "homogeneous-corridor": (36, 36, 2, 6, 0, 180, 189, 22, 51, 2, 13),
    "irregular-bram": (25, 25, 1, 6, 0, 28, 45, 19, 16, 3, 3),
    "generated-16x8": (60, 60, 1, 11, 0, 69, 108, 49, 28, 9, 4),
}


def golden_instances():
    """The three pinned instances; deterministic by construction."""
    out = {}
    r1 = PartialRegion.whole_device(homogeneous_device(10, 4))
    m1 = [
        Module("a", [Footprint.rectangle(3, 2), Footprint.rectangle(2, 3)]),
        Module("b", [Footprint.rectangle(2, 2)]),
        Module("c", [Footprint.rectangle(4, 1), Footprint.rectangle(1, 4),
                     Footprint.rectangle(2, 2)]),
    ]
    out["homogeneous-corridor"] = (r1, m1)

    r2 = PartialRegion.whole_device(
        irregular_device(12, 6, seed=9, bram_stride=4, jitter=0,
                         clk_rows=0, io_edges=False)
    )
    m2 = [
        Module("bram1", [Footprint([(0, 0, ResourceType.BRAM),
                                    (1, 0, ResourceType.CLB)])]),
        Module("clb1", [Footprint.rectangle(2, 2), Footprint.rectangle(4, 1)]),
        Module("clb2", [Footprint.rectangle(3, 2)]),
    ]
    out["irregular-bram"] = (r2, m2)

    r3 = PartialRegion.whole_device(irregular_device(16, 8, seed=5))
    cfg = GeneratorConfig(clb_min=4, clb_max=8, bram_max=1,
                          height_min=2, height_max=3)
    m3 = ModuleGenerator(seed=7, config=cfg).generate_set(4)
    out["generated-16x8"] = (r3, m3)
    return out


def _solve(name: str) -> SolveProfile:
    region, modules = golden_instances()[name]
    result = CPPlacer(
        PlacerConfig(time_limit=None, profile=True)
    ).place(region, modules)
    assert result.status == "optimal", f"{name} no longer solves to optimality"
    return result.stats["profile"]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_counts(name):
    profile = _solve(name)
    got = tuple(profile.counts()[k] for k in COUNT_KEYS)
    assert got == GOLDEN[name], (
        f"{name}: search statistics drifted.\n"
        f"  pinned: {dict(zip(COUNT_KEYS, GOLDEN[name]))}\n"
        f"  got:    {dict(zip(COUNT_KEYS, got))}\n"
        "If the drift is an intended propagation/branching change, refresh "
        "GOLDEN by running: PYTHONPATH=src python -m tests.obs.test_golden_stats"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_json_round_trip(name):
    """Export → load → identical counts, per the issue's acceptance bar."""
    profile = _solve(name)
    restored = SolveProfile.from_json(profile.to_json())
    assert restored.counts() == profile.counts()
    assert set(restored.propagators) == set(profile.propagators)
    for pname, rec in profile.propagators.items():
        other = restored.propagators[pname]
        assert (rec.calls, rec.prunes, rec.failures) == (
            other.calls, other.prunes, other.failures,
        )


def test_golden_instances_are_deterministic():
    """Two in-process solves of one instance agree exactly."""
    a = _solve("homogeneous-corridor").counts()
    b = _solve("homogeneous-corridor").counts()
    assert a == b


if __name__ == "__main__":  # regenerate the pinned vectors
    for name in sorted(GOLDEN):
        got = tuple(_solve(name).counts()[k] for k in COUNT_KEYS)
        print(f'    "{name}": {got},')

"""Transforms (group properties), Module, generator, library, specs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.library import ModuleLibrary
from repro.modules.module import Module
from repro.modules.spec import (
    load_modules,
    module_from_dict,
    module_to_dict,
    save_modules,
)
from repro.modules.transform import (
    build_body,
    distinct_footprints,
    external_relayout,
    internal_relayout,
    mirror_horizontal,
    mirror_vertical,
    rotate90,
    rotate180,
    rotate270,
)

cells_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),
        st.integers(0, 5),
        st.sampled_from([ResourceType.CLB, ResourceType.BRAM]),
    ),
    min_size=1,
    max_size=10,
    unique_by=lambda c: (c[0], c[1]),
)


class TestRigidTransforms:
    @given(cells_strategy)
    def test_rotate180_involution(self, cells):
        fp = Footprint(cells)
        assert rotate180(rotate180(fp)) == fp

    @given(cells_strategy)
    def test_rotate90_four_times_identity(self, cells):
        fp = Footprint(cells)
        assert rotate90(rotate90(rotate90(rotate90(fp)))) == fp

    @given(cells_strategy)
    def test_rotate90_270_inverse(self, cells):
        fp = Footprint(cells)
        assert rotate270(rotate90(fp)) == fp

    @given(cells_strategy)
    def test_mirror_involutions(self, cells):
        fp = Footprint(cells)
        assert mirror_horizontal(mirror_horizontal(fp)) == fp
        assert mirror_vertical(mirror_vertical(fp)) == fp

    @given(cells_strategy)
    def test_transforms_preserve_resources(self, cells):
        fp = Footprint(cells)
        for t in (rotate90, rotate180, rotate270, mirror_horizontal, mirror_vertical):
            assert t(fp).resource_counts() == fp.resource_counts()

    @given(cells_strategy)
    def test_rotate90_swaps_bbox(self, cells):
        fp = Footprint(cells)
        r = rotate90(fp)
        assert (r.width, r.height) == (fp.height, fp.width)

    def test_rotate180_concrete(self):
        fp = Footprint([(0, 0, ResourceType.BRAM), (1, 0, ResourceType.CLB)])
        r = rotate180(fp)
        assert (0, 0, ResourceType.CLB) in r.cells
        assert (1, 0, ResourceType.BRAM) in r.cells


class TestBodyBuilder:
    def test_area_exact(self):
        fp = build_body(17, 5)
        assert fp.resource_counts() == {ResourceType.CLB: 17}
        assert fp.height == 5 and fp.width == 4  # ceil(17/5)

    def test_bram_strip_inserted(self):
        fp = build_body(10, 5, bram_cells=3, bram_column=1)
        counts = fp.resource_counts()
        assert counts[ResourceType.BRAM] == 3
        assert counts[ResourceType.CLB] == 10
        assert fp.cells_of(ResourceType.BRAM) == {(1, 0), (1, 1), (1, 2)}

    def test_bram_from_top(self):
        fp = build_body(10, 5, bram_cells=2, bram_column=0, bram_from_top=True)
        assert fp.cells_of(ResourceType.BRAM) == {(0, 3), (0, 4)}

    def test_validation(self):
        with pytest.raises(ValueError):
            build_body(0, 5)
        with pytest.raises(ValueError):
            build_body(10, 0)
        with pytest.raises(ValueError):
            build_body(10, 5, bram_cells=1, bram_column=99)

    @given(st.integers(1, 60), st.integers(1, 10), st.integers(0, 4))
    def test_counts_always_exact(self, n_clb, height, n_bram):
        n_cols = -(-n_clb // height)
        fp = build_body(n_clb, height, n_bram, bram_column=min(1, n_cols))
        counts = fp.resource_counts()
        assert counts.get(ResourceType.CLB, 0) == n_clb
        assert counts.get(ResourceType.BRAM, 0) == n_bram


class TestRelayouts:
    def test_internal_preserves_bbox_and_counts(self):
        import random

        base = build_body(12, 4, bram_cells=2, bram_column=1)
        alt = internal_relayout(base, random.Random(1))
        assert alt.resource_counts() == base.resource_counts()
        assert (alt.width, alt.height) == (base.width, base.height)

    def test_internal_noop_without_dedicated(self):
        base = build_body(12, 4)
        assert internal_relayout(base) == base

    def test_external_changes_bbox(self):
        base = build_body(24, 6, bram_cells=2, bram_column=1)
        alt = external_relayout(base, 8)
        assert alt.resource_counts() == base.resource_counts()
        assert alt.height != base.height

    def test_external_rejects_unsupported_resources(self):
        fp = Footprint([(0, 0, ResourceType.DSP), (1, 0, ResourceType.CLB)])
        with pytest.raises(ValueError):
            external_relayout(fp, 3)

    def test_distinct_footprints_dedupes(self):
        fp = Footprint.rectangle(2, 2)
        out = distinct_footprints([fp, rotate180(fp), fp])
        assert out == [fp]  # symmetric square collapses


class TestModule:
    def test_requires_shape(self):
        with pytest.raises(ValueError):
            Module("m", [])

    def test_dedupes_shapes(self):
        fp = Footprint.rectangle(2, 2)
        m = Module("m", [fp, rotate180(fp)])
        assert m.n_alternatives == 1

    def test_restricted(self):
        fp1 = Footprint.rectangle(2, 3)
        fp2 = Footprint.rectangle(3, 2)
        m = Module("m", [fp1, fp2])
        assert m.restricted(1).n_alternatives == 1
        assert m.restricted(1).primary() == fp1
        with pytest.raises(ValueError):
            m.restricted(0)

    def test_resource_equivalence(self):
        a = Footprint.rectangle(2, 3)
        b = Footprint.rectangle(3, 2)
        c = Footprint.rectangle(2, 2)
        assert Module("m", [a, b]).is_resource_equivalent()
        assert not Module("m", [a, c]).is_resource_equivalent()

    def test_uses(self):
        m = Module("m", [build_body(4, 2, bram_cells=1, bram_column=0)])
        assert m.uses(ResourceType.BRAM)
        assert not m.uses(ResourceType.DSP)

    def test_min_max_area(self):
        a = Footprint.rectangle(2, 2)
        b = Footprint.rectangle(3, 3)
        m = Module("m", [a, b])
        assert m.min_area() == 4 and m.max_area() == 9


class TestGenerator:
    def test_paper_parameter_ranges(self):
        gen = ModuleGenerator(seed=0)
        for m in gen.generate_set(40):
            counts = m.primary().resource_counts()
            assert 20 <= counts[ResourceType.CLB] <= 100
            assert 0 <= counts.get(ResourceType.BRAM, 0) <= 4

    def test_four_alternatives_by_default(self):
        gen = ModuleGenerator(seed=1)
        mods = gen.generate_set(30)
        # paper: 30 modules yield (up to) 120 shapes
        assert sum(m.n_alternatives for m in mods) > 100
        assert all(1 <= m.n_alternatives <= 4 for m in mods)

    def test_deterministic(self):
        a = ModuleGenerator(seed=5).generate_set(10)
        b = ModuleGenerator(seed=5).generate_set(10)
        assert [m.shapes for m in a] == [m.shapes for m in b]

    def test_alternatives_resource_equivalent(self):
        # our generator keeps resources identical across alternatives,
        # matching the paper's Table I (CLB/BRAM change = 0)
        for m in ModuleGenerator(seed=3).generate_set(20):
            assert m.is_resource_equivalent()

    def test_max_width_respected(self):
        cfg = GeneratorConfig(max_width=5)
        for m in ModuleGenerator(seed=2, config=cfg).generate_set(20):
            base = m.primary()
            clb_cols = {x for x, _, k in base.cells if k is ResourceType.CLB}
            assert len(clb_cols) <= 5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(clb_min=0).validate()
        with pytest.raises(ValueError):
            GeneratorConfig(n_alternatives=0).validate()
        with pytest.raises(ValueError):
            GeneratorConfig(height_min=9, height_max=2).validate()

    def test_unique_names(self):
        mods = ModuleGenerator(seed=9).generate_set(25)
        assert len({m.name for m in mods}) == 25


class TestLibraryAndSpec:
    def _library(self):
        return ModuleLibrary(ModuleGenerator(seed=4).generate_set(6))

    def test_add_get_remove(self):
        lib = self._library()
        name = lib.names()[0]
        assert lib.get(name).name == name
        lib.remove(name)
        assert name not in lib
        with pytest.raises(KeyError):
            lib.get(name)

    def test_duplicate_rejected(self):
        lib = self._library()
        with pytest.raises(ValueError):
            lib.add(lib.get(lib.names()[0]))

    def test_restricted_library(self):
        lib = self._library()
        r = lib.restricted(1)
        assert r.total_shapes() == len(lib)

    def test_stats(self):
        lib = self._library()
        s = lib.stats()
        assert s["modules"] == 6
        assert s["total_area"] == lib.total_area()

    def test_spec_round_trip_dict(self):
        m = ModuleGenerator(seed=7).generate()
        back = module_from_dict(module_to_dict(m))
        assert back.shapes == m.shapes
        assert back.name == m.name

    def test_spec_round_trip_file(self, tmp_path):
        lib = self._library()
        path = tmp_path / "modules.json"
        save_modules(lib, path)
        back = load_modules(path)
        assert back.names() == lib.names()
        for name in lib.names():
            assert back.get(name).shapes == lib.get(name).shapes

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            module_from_dict({"name": "x"})

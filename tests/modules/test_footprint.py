"""Footprint: normalization, rendering, conversions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fabric.resource import ResourceType
from repro.fabric.tile import TileSet
from repro.modules.footprint import Footprint

cells_strategy = st.lists(
    st.tuples(
        st.integers(-5, 5),
        st.integers(-5, 5),
        st.sampled_from([ResourceType.CLB, ResourceType.BRAM, ResourceType.DSP]),
    ),
    min_size=1,
    max_size=12,
    unique_by=lambda c: (c[0], c[1]),
)


class TestConstruction:
    def test_normalization(self):
        fp = Footprint([(3, 4, ResourceType.CLB), (4, 5, ResourceType.CLB)])
        assert (0, 0, ResourceType.CLB) in fp.cells
        assert fp.width == 2 and fp.height == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Footprint([])

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            Footprint([(0, 0, ResourceType.CLB), (0, 0, ResourceType.BRAM)])

    def test_unavailable_rejected(self):
        with pytest.raises(ValueError):
            Footprint([(0, 0, ResourceType.UNAVAILABLE)])

    def test_immutable(self):
        fp = Footprint.rectangle(2, 2)
        with pytest.raises(AttributeError):
            fp.width = 5

    @given(cells_strategy)
    def test_normalized_origin(self, cells):
        fp = Footprint(cells)
        assert min(x for x, _, _ in fp.cells) == 0
        assert min(y for _, y, _ in fp.cells) == 0

    @given(cells_strategy)
    def test_area_and_counts(self, cells):
        fp = Footprint(cells)
        assert fp.area == len(cells)
        assert sum(fp.resource_counts().values()) == len(cells)


class TestGeometry:
    def test_rectangle(self):
        fp = Footprint.rectangle(3, 2, ResourceType.BRAM)
        assert fp.area == 6 and fp.is_rectangular()
        assert fp.resource_counts() == {ResourceType.BRAM: 6}

    def test_rectangle_validation(self):
        with pytest.raises(ValueError):
            Footprint.rectangle(0, 2)

    def test_non_rectangular(self):
        fp = Footprint([(0, 0, ResourceType.CLB), (1, 1, ResourceType.CLB)])
        assert not fp.is_rectangular()
        assert fp.bbox_area == 4 and fp.area == 2

    def test_grid_layout(self):
        fp = Footprint([(0, 0, ResourceType.CLB), (1, 0, ResourceType.BRAM)])
        g = fp.grid()
        assert g.shape == (1, 2)
        assert g[0, 0] == int(ResourceType.CLB)
        assert g[0, 1] == int(ResourceType.BRAM)

    def test_occupancy_and_offsets(self):
        fp = Footprint([(0, 0, ResourceType.CLB), (1, 1, ResourceType.CLB)])
        occ = fp.occupancy()
        assert occ.sum() == 2
        offsets = fp.offsets()
        assert sorted(map(tuple, offsets.tolist())) == [[0, 0], [1, 1]] or \
            sorted(map(tuple, offsets.tolist())) == [(0, 0), (1, 1)]

    def test_cells_of(self):
        fp = Footprint([(0, 0, ResourceType.CLB), (1, 0, ResourceType.BRAM)])
        assert fp.cells_of(ResourceType.BRAM) == {(1, 0)}


class TestRoundTrips:
    @given(cells_strategy)
    def test_render_parse_round_trip(self, cells):
        fp = Footprint(cells)
        assert Footprint.from_rows(fp.render().splitlines()) == fp

    @given(cells_strategy)
    def test_tileset_round_trip(self, cells):
        fp = Footprint(cells)
        assert Footprint.from_tilesets(fp.tilesets()) == fp

    def test_from_rows_with_gaps(self):
        fp = Footprint.from_rows(["B .", "..."])
        assert fp.area == 5
        assert fp.resource_counts()[ResourceType.BRAM] == 1

    def test_from_rows_rejects_bad_chars(self):
        with pytest.raises(ValueError):
            Footprint.from_rows(["#"])  # UNAVAILABLE is not placeable
        with pytest.raises(ValueError):
            Footprint.from_rows(["?"])

    def test_equality_and_hash(self):
        a = Footprint([(2, 2, ResourceType.CLB), (3, 2, ResourceType.CLB)])
        b = Footprint([(0, 0, ResourceType.CLB), (1, 0, ResourceType.CLB)])
        assert a == b and hash(a) == hash(b)

    def test_tilesets_group_by_kind(self):
        fp = Footprint(
            [(0, 0, ResourceType.CLB), (1, 0, ResourceType.CLB),
             (0, 1, ResourceType.BRAM)]
        )
        ts = fp.tilesets()
        assert len(ts) == 2
        kinds = {t.kind for t in ts}
        assert kinds == {ResourceType.CLB, ResourceType.BRAM}

"""Module design-rule validation."""

from __future__ import annotations

import pytest

from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.generator import ModuleGenerator
from repro.modules.module import Module
from repro.modules.validation import (
    check_aspect,
    check_connectivity,
    check_vertical_strips,
    connected_components,
    validate_footprint,
    validate_module,
)


class TestConnectedComponents:
    def test_single_cell(self):
        assert len(connected_components({(0, 0)})) == 1

    def test_l_shape_connected(self):
        cells = {(0, 0), (0, 1), (1, 0)}
        assert len(connected_components(cells)) == 1

    def test_diagonal_not_connected(self):
        cells = {(0, 0), (1, 1)}
        assert len(connected_components(cells)) == 2

    def test_two_islands(self):
        cells = {(0, 0), (0, 1), (5, 5), (5, 6), (5, 7)}
        comps = connected_components(cells)
        assert sorted(len(c) for c in comps) == [2, 3]


class TestRules:
    def test_connected_shape_passes(self):
        fp = Footprint.rectangle(3, 2)
        assert check_connectivity(fp) == []

    def test_disconnected_shape_flagged(self):
        fp = Footprint([(0, 0, ResourceType.CLB), (2, 0, ResourceType.CLB)])
        vs = check_connectivity(fp)
        assert len(vs) == 1 and vs[0].rule == "connectivity"

    def test_vertical_strip_passes(self):
        fp = Footprint(
            [(0, 0, ResourceType.BRAM), (0, 1, ResourceType.BRAM),
             (1, 0, ResourceType.CLB), (1, 1, ResourceType.CLB)]
        )
        assert check_vertical_strips(fp) == []

    def test_broken_strip_flagged(self):
        fp = Footprint(
            [(0, 0, ResourceType.BRAM), (0, 2, ResourceType.BRAM),
             (0, 1, ResourceType.CLB)]
        )
        vs = check_vertical_strips(fp)
        assert len(vs) == 1 and vs[0].rule == "vertical-strip"

    def test_horizontal_strip_allowed_if_separate_columns(self):
        # one BRAM per column is a valid (degenerate) vertical run each
        fp = Footprint(
            [(0, 0, ResourceType.BRAM), (1, 0, ResourceType.BRAM)]
        )
        assert check_vertical_strips(fp) == []

    def test_aspect_flagged(self):
        fp = Footprint.rectangle(10, 1)
        assert check_aspect(fp, max_ratio=8.0)
        assert check_aspect(fp, max_ratio=10.0) == []

    def test_validate_footprint_aggregates(self):
        fp = Footprint([(0, 0, ResourceType.CLB), (9, 0, ResourceType.CLB)])
        rules = {v.rule for v in validate_footprint(fp)}
        assert "connectivity" in rules
        assert "aspect" in rules


class TestValidateModule:
    def test_clean_module(self):
        m = Module("ok", [Footprint.rectangle(3, 3)])
        report = validate_module(m)
        assert report.ok
        assert "ok" in str(report)

    def test_report_pinpoints_shape(self):
        good = Footprint.rectangle(2, 2)
        bad = Footprint([(0, 0, ResourceType.CLB), (3, 3, ResourceType.CLB)])
        report = validate_module(Module("mix", [good, bad]))
        assert not report.ok
        assert list(report.by_shape) == [1]
        assert "shape 1" in str(report)

    def test_generator_output_is_rule_clean(self):
        """The paper excludes nonadjacent-tile alternatives; so do we."""
        for m in ModuleGenerator(seed=11).generate_set(25):
            report = validate_module(m, max_aspect_ratio=30.0)
            assert report.ok, str(report)

"""A10 acceptance pin: reservations strictly reduce rejections.

The reservation comparison serves one seeded slack-heavy trace twice on
the same narrow fabric — admit-now (``reservation_horizon=0``) vs the
book-ahead probe — and the probe must strictly reduce the rejection
count.  The default configuration is pinned exactly (the run is fully
deterministic: greedy probe, no wall-clock budgets), and the strict
reduction is additionally checked across seeds so the effect is a
property of the mechanism, not of one lucky trace.
"""

from __future__ import annotations

import pytest

from repro.experiments.runtime_exp import (
    format_reservations,
    reservation_comparison,
    reservation_runtime_region,
    slack_heavy_trace,
)


def by_label(rows):
    return {r.label.split(":")[1].strip().split("(")[0]: r for r in rows}


class TestReservationComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return reservation_comparison()

    def test_every_request_resolves_in_both_runs(self, rows):
        n = len(slack_heavy_trace())
        for r in rows:
            assert r.total == n

    def test_strict_reject_reduction(self, rows):
        base, resv = rows
        assert base.booked == 0  # horizon 0 never books
        assert resv.booked > 0
        assert resv.rejected < base.rejected

    def test_default_configuration_is_pinned(self, rows):
        """The acceptance numbers of the committed A10 artefact."""
        base, resv = rows
        assert (base.admitted, base.rejected) == (60, 20)
        assert (resv.admitted, resv.rejected) == (75, 5)
        assert resv.booked == resv.reservation_admits == 35
        assert resv.expired == 0  # every booking was honoured
        assert resv.mean_utilization > base.mean_utilization

    def test_reduction_holds_across_seeds(self):
        for seed in (3, 5, 11):
            base, resv = reservation_comparison(seed=seed)
            assert resv.rejected < base.rejected, f"seed {seed}"

    def test_formatting(self, rows):
        art = format_reservations(rows)
        assert "admission policy" in art
        assert "admit-now" in art
        assert "reserve(h=16)" in art

    def test_runner_exposes_a10(self):
        from repro.experiments.runner import EXPERIMENTS

        assert "a10" in EXPERIMENTS

    def test_region_is_narrow_on_purpose(self):
        region = reservation_runtime_region()
        assert region.width == 32  # the 48-wide demo fabric absorbs all

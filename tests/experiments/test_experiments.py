"""Experiment drivers: mini Table I, figures, ablation plumbing.

These run scaled-down configurations (tiny budgets) so the *machinery* is
fully exercised in CI time; the full-scale numbers are produced by the
benchmark suite (and REPRO_FULL=1).
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    alternatives_sweep,
    baseline_comparison,
    format_sweep,
    heterogeneity_sweep,
    solver_strategy_sweep,
)
from repro.experiments.config import Table1Config, default_fabric, full_scale
from repro.experiments.figures import (
    figure1_gallery,
    figure1_module,
    figure3_comparison,
    figure4_constraint_anatomy,
)
from repro.experiments.table1 import format_table1, run_table1


class TestConfig:
    def test_default_fabric_is_heterogeneous(self):
        region = default_fabric()
        counts = region.available_counts()
        assert len(counts) >= 3  # CLB, BRAM, CLK at least

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_scale()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_scale()
        monkeypatch.setenv("REPRO_FULL", "0")
        assert not full_scale()

    def test_table1_config_scales_with_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert Table1Config().n_runs == 50
        monkeypatch.setenv("REPRO_FULL", "0")
        assert Table1Config().n_runs < 50


class TestTable1Mini:
    @pytest.fixture(scope="class")
    def rows(self):
        cfg = Table1Config(n_runs=1, n_modules=10, time_limit=4.0)
        return run_table1(cfg)

    def test_two_rows(self, rows):
        assert [r.label for r in rows] == [
            "No design alternatives",
            "Design alternatives",
        ]

    def test_alternatives_do_not_hurt_utilization(self, rows):
        without, with_alts = rows
        assert with_alts.mean_utilization >= without.mean_utilization - 0.02

    def test_resource_deltas_are_zero(self, rows):
        # paper Table I: CLB and BRAM change is 0 (same resources consumed)
        without, with_alts = rows
        assert without.mean_clb == with_alts.mean_clb
        assert without.mean_bram == with_alts.mean_bram

    def test_formatting(self, rows):
        out = format_table1(rows)
        assert "No design alternatives" in out
        assert "Change" in out
        assert "paper" in out


class TestFigures:
    def test_figure1_module_has_multiple_layouts(self):
        m = figure1_module()
        assert m.n_alternatives >= 3
        assert m.is_resource_equivalent()

    def test_figure1_gallery_renders(self):
        assert "design alternatives" in figure1_gallery()

    def test_figure4_monotone_shrinkage(self):
        anatomy = figure4_constraint_anatomy()
        assert anatomy.monotone()
        # heterogeneity must actually bite (strict drop at step b)
        assert anatomy.resource_matched < anatomy.in_bounds
        assert anatomy.in_region < anatomy.resource_matched

    def test_figure3_comparison_small(self):
        without, with_alts, fig = figure3_comparison(
            n_modules=4, time_limit=1.5
        )
        assert without.all_placed and with_alts.all_placed
        without.verify()
        with_alts.verify()
        assert with_alts.extent <= without.extent
        assert "extent" in fig


class TestAblations:
    def test_alternatives_sweep_mini(self):
        points = alternatives_sweep(counts=(1, 2), n_modules=6, time_limit=1.5)
        assert [p.label for p in points] == ["alternatives=1", "alternatives=2"]
        assert all(p.placed == 6 for p in points)
        # more alternatives never hurt (same seeds, superset shapes)
        assert points[1].extent <= points[0].extent

    def test_heterogeneity_sweep_mini(self):
        points = heterogeneity_sweep(n_modules=5, time_limit=1.5)
        labels = {p.label for p in points}
        assert labels == {"homogeneous", "columnar", "irregular"}
        homog = next(p for p in points if p.label == "homogeneous")
        irreg = next(p for p in points if p.label == "irregular")
        assert homog.utilization >= irreg.utilization - 0.02

    def test_baseline_comparison_mini(self):
        points = baseline_comparison(n_modules=8, time_limit=2.0)
        by_label = {p.label: p for p in points}
        assert "cp-lns" in by_label and "kamer" in by_label
        cp = by_label["cp-lns"]
        for label, p in by_label.items():
            if label != "cp-lns" and p.unplaced == 0 and p.extent:
                assert cp.extent <= p.extent + 1

    def test_solver_strategy_sweep_mini(self):
        points = solver_strategy_sweep(n_modules=5, time_limit=1.0)
        assert len(points) == 3
        assert all(p.placed == 5 for p in points)

    def test_format_sweep(self):
        points = alternatives_sweep(counts=(1,), n_modules=3, time_limit=0.5)
        out = format_sweep(points, title="demo")
        assert "demo" in out and "alternatives=1" in out


class TestStaticFractionSweep:
    def test_mini_sweep(self):
        from repro.experiments.ablations import static_fraction_sweep

        points = static_fraction_sweep(
            fractions=(0.0, 0.5), n_modules=5, time_limit=1.5
        )
        assert [p.label for p in points] == ["static=0%", "static=50%"]
        assert all(p.placed == 5 for p in points)
        assert points[1].extent >= points[0].extent

    def test_invalid_fraction_rejected(self):
        import pytest as _pytest

        from repro.experiments.ablations import static_fraction_sweep

        with _pytest.raises(ValueError):
            static_fraction_sweep(fractions=(1.5,), n_modules=2,
                                  time_limit=0.5)

"""Online service-level experiment and the CLI runner."""

from __future__ import annotations

import pytest

from repro.experiments.online import (
    OnlineStats,
    format_online,
    generate_trace,
    online_comparison,
    simulate_incremental,
    simulate_kamer,
)
from repro.experiments.runner import EXPERIMENTS, main
from repro.fabric.devices import irregular_device
from repro.fabric.region import PartialRegion


class TestTrace:
    def test_trace_is_ordered_and_seeded(self):
        a = generate_trace(10, seed=4)
        b = generate_trace(10, seed=4)
        c = generate_trace(10, seed=5)
        assert [r.arrival for r in a] == sorted(r.arrival for r in a)
        assert [(r.module.name, r.arrival) for r in a] == [
            (r.module.name, r.arrival) for r in b
        ]
        assert [r.arrival for r in a] != [r.arrival for r in c] or [
            r.lifetime for r in a
        ] != [r.lifetime for r in c]

    def test_lifetimes_positive(self):
        assert all(r.lifetime > 0 for r in generate_trace(20, seed=1))


class TestOnlineSimulation:
    @pytest.fixture(scope="class")
    def setup(self):
        region = PartialRegion.whole_device(irregular_device(40, 12, seed=9))
        trace = generate_trace(16, seed=3)
        return region, trace

    def test_kamer_accounts_every_request(self, setup):
        region, trace = setup
        stats = simulate_kamer(region, trace, True, "k")
        assert stats.total == len(trace)
        assert len(stats.rejected_names) == stats.rejected

    def test_incremental_accounts_every_request(self, setup):
        region, trace = setup
        stats = simulate_incremental(region, trace, True, "cp",
                                     sub_time_limit=0.3)
        assert stats.total == len(trace)

    def test_alternatives_never_hurt_acceptance(self, setup):
        region, trace = setup
        without = simulate_kamer(region, trace, False, "w/o")
        with_alts = simulate_kamer(region, trace, True, "with")
        assert with_alts.accepted >= without.accepted

    def test_acceptance_ratio_bounds(self):
        s = OnlineStats("x", accepted=3, rejected=1)
        assert s.acceptance_ratio == 0.75
        assert OnlineStats("y").acceptance_ratio == 0.0

    def test_format(self):
        out = format_online([OnlineStats("mgr", accepted=2, rejected=2)])
        assert "mgr" in out and "50.0%" in out


class TestRunnerCLI:
    def test_experiment_registry_covers_paper(self):
        assert {"table1", "fig1", "fig3", "fig4", "fig5"} <= set(EXPERIMENTS)
        assert {"a1", "a2", "a3", "a4", "a5"} <= set(EXPERIMENTS)

    def test_fig1_via_cli(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "design alternatives" in out

    def test_fig4_via_cli(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "monotone shrinkage: True" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

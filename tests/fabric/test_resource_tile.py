"""Resource types and the formal tile/tileset layer."""

from __future__ import annotations

import pytest

from repro.fabric.resource import (
    RESOURCE_CHARS,
    ResourceType,
    parse_resource,
)
from repro.fabric.tile import Tile, TileSet


class TestResourceType:
    def test_all_types_have_chars(self):
        assert set(RESOURCE_CHARS) == set(ResourceType)

    def test_chars_unique(self):
        chars = list(RESOURCE_CHARS.values())
        assert len(chars) == len(set(chars))

    def test_placeable(self):
        assert ResourceType.CLB.is_placeable
        assert ResourceType.BRAM.is_placeable
        assert not ResourceType.UNAVAILABLE.is_placeable

    def test_dedicated(self):
        assert ResourceType.BRAM.is_dedicated
        assert ResourceType.DSP.is_dedicated
        assert not ResourceType.CLB.is_dedicated
        assert not ResourceType.IO.is_dedicated

    @pytest.mark.parametrize("kind", list(ResourceType))
    def test_parse_round_trips(self, kind):
        assert parse_resource(kind.name) is kind
        assert parse_resource(int(kind)) is kind
        assert parse_resource(RESOURCE_CHARS[kind]) is kind
        assert parse_resource(kind) is kind

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_resource("nonsense")

    def test_int8_compatible(self):
        assert all(0 <= int(k) < 128 for k in ResourceType)


class TestTile:
    def test_translation(self):
        t = Tile(2, 3, ResourceType.CLB)
        assert t.translated(1, -1) == Tile(3, 2, ResourceType.CLB)

    def test_ordering_and_equality(self):
        a = Tile(0, 0, ResourceType.CLB)
        b = Tile(0, 1, ResourceType.CLB)
        assert a < b
        assert a == Tile(0, 0, ResourceType.CLB)

    def test_str(self):
        assert "CLB" in str(Tile(1, 2, ResourceType.CLB))


class TestTileSet:
    def test_paper_multiplier_example(self):
        # "A multiplier module is modelled as a tileset T consisting of four
        # tiles ... {t_0,0,k, t_0,1,k, t_1,0,k, t_1,1,k}"
        ts = TileSet.block(0, 0, 2, 2, ResourceType.DSP)
        assert len(ts) == 4
        assert ts.coords() == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_paper_clb_example(self):
        # "A CLB forms the tileset T_k = {t_0,0,k} consisting of a single tile"
        ts = TileSet.block(0, 0, 1, 1, ResourceType.CLB)
        assert len(ts) == 1

    def test_empty_rejected(self):
        # "T_k = {...}, where n > 0, i.e. the set is not empty"
        with pytest.raises(ValueError):
            TileSet([])

    def test_mixed_kinds_rejected(self):
        with pytest.raises(ValueError):
            TileSet([Tile(0, 0, ResourceType.CLB), Tile(1, 0, ResourceType.BRAM)])

    def test_from_coords(self):
        ts = TileSet.from_coords([(0, 0), (5, 5)], ResourceType.BRAM)
        assert ts.kind is ResourceType.BRAM
        assert len(ts) == 2

    def test_translation_preserves_shape(self):
        ts = TileSet.block(0, 0, 2, 3, ResourceType.CLB)
        moved = ts.translated(4, 5)
        assert moved.bounding_box() == (4, 5, 2, 3)
        assert len(moved) == len(ts)

    def test_bounding_box(self):
        ts = TileSet.from_coords([(1, 2), (4, 7)], ResourceType.CLB)
        assert ts.bounding_box() == (1, 2, 4, 6)

    def test_overlaps(self):
        a = TileSet.block(0, 0, 2, 2, ResourceType.CLB)
        b = TileSet.block(1, 1, 2, 2, ResourceType.CLB)
        c = TileSet.block(2, 2, 2, 2, ResourceType.CLB)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_block_rejects_degenerate(self):
        with pytest.raises(ValueError):
            TileSet.block(0, 0, 0, 2, ResourceType.CLB)

    def test_hash_and_eq(self):
        a = TileSet.block(0, 0, 2, 2, ResourceType.CLB)
        b = TileSet.block(0, 0, 2, 2, ResourceType.CLB)
        assert a == b and hash(a) == hash(b)

"""PartialRegion, anchor masks (vs brute force) and JSON round trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.grid import FabricGrid
from repro.fabric.io import load_region, region_from_dict, region_to_dict, save_region
from repro.fabric.masks import (
    anchors_list,
    brute_force_anchor_mask,
    compatibility_masks,
    valid_anchor_mask,
)
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.generator import ModuleGenerator


class TestPartialRegion:
    def test_whole_device(self):
        g = homogeneous_device(8, 4)
        pr = PartialRegion.whole_device(g)
        assert pr.available_area() == 32

    def test_static_box_reduces_area(self):
        g = homogeneous_device(8, 4)
        pr = PartialRegion.with_static_box(g, 0, 0, 4, 4)
        assert pr.available_area() == 16
        assert not pr.reconfigurable[0, 0]
        assert pr.reconfigurable[0, 4]

    def test_reconfigurable_box(self):
        g = homogeneous_device(8, 4)
        pr = PartialRegion.reconfigurable_box(g, 2, 1, 3, 2)
        assert pr.available_area() == 6
        assert pr.bounding_box() == (2, 1, 3, 2)

    def test_unavailable_tiles_excluded(self):
        g = homogeneous_device(4, 2)
        g.cells[0, 0] = int(ResourceType.UNAVAILABLE)
        pr = PartialRegion.whole_device(g)
        assert pr.available_area() == 7

    def test_box_validation(self):
        g = homogeneous_device(4, 4)
        with pytest.raises(ValueError):
            PartialRegion.with_static_box(g, 2, 2, 4, 4)
        with pytest.raises(ValueError):
            PartialRegion.reconfigurable_box(g, 0, 0, 0, 2)

    def test_mask_shape_validation(self):
        g = homogeneous_device(4, 4)
        with pytest.raises(ValueError):
            PartialRegion(g, np.ones((2, 2), dtype=bool))

    def test_available_counts(self):
        g = irregular_device(24, 8, seed=5)
        pr = PartialRegion.whole_device(g)
        counts = pr.available_counts()
        assert counts[ResourceType.CLB] == g.count(ResourceType.CLB)
        assert ResourceType.UNAVAILABLE not in counts

    def test_render_marks_static(self):
        g = homogeneous_device(4, 2)
        pr = PartialRegion.with_static_box(g, 0, 0, 2, 2)
        assert "#" in pr.render()


footprint_cells = st.lists(
    st.tuples(
        st.integers(0, 4),
        st.integers(0, 4),
        st.sampled_from([ResourceType.CLB, ResourceType.BRAM, ResourceType.DSP]),
    ),
    min_size=1,
    max_size=8,
    unique_by=lambda c: (c[0], c[1]),
)


class TestAnchorMasks:
    @given(footprint_cells, st.integers(0, 30))
    @settings(max_examples=40)
    def test_vectorized_matches_brute_force(self, cells, seed):
        fp = Footprint(cells)
        region = PartialRegion.whole_device(irregular_device(16, 10, seed=seed))
        fast = valid_anchor_mask(region, sorted(fp.cells))
        slow = brute_force_anchor_mask(region, sorted(fp.cells))
        assert np.array_equal(fast, slow)

    @given(footprint_cells, st.integers(0, 30))
    @settings(max_examples=20)
    def test_static_region_respected(self, cells, seed):
        fp = Footprint(cells)
        g = irregular_device(16, 10, seed=seed)
        region = PartialRegion.with_static_box(g, 0, 0, 8, 10)
        fast = valid_anchor_mask(region, sorted(fp.cells))
        slow = brute_force_anchor_mask(region, sorted(fp.cells))
        assert np.array_equal(fast, slow)

    def test_rectangle_on_homogeneous(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 6))
        fp = Footprint.rectangle(3, 2)
        mask = valid_anchor_mask(region, sorted(fp.cells))
        assert int(mask.sum()) == (8 - 3 + 1) * (6 - 2 + 1)

    def test_unnormalized_cells_rejected(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 4))
        with pytest.raises(ValueError):
            valid_anchor_mask(region, [(1, 1, ResourceType.CLB)])

    def test_empty_footprint_rejected(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 4))
        with pytest.raises(ValueError):
            valid_anchor_mask(region, [])

    def test_precomputed_compat_equivalent(self):
        region = PartialRegion.whole_device(irregular_device(16, 8, seed=1))
        fp = ModuleGenerator(seed=2).generate().primary()
        compat = compatibility_masks(region)
        a = valid_anchor_mask(region, sorted(fp.cells), compat)
        b = valid_anchor_mask(region, sorted(fp.cells))
        assert np.array_equal(a, b)

    def test_anchors_list_bottom_left_order(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[2, 1] = mask[0, 1] = mask[3, 0] = True
        anchors = anchors_list(mask)
        assert anchors == [(0, 3), (1, 0), (1, 2)]

    def test_footprint_too_large_has_no_anchor(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 4))
        fp = Footprint.rectangle(5, 1)
        assert not valid_anchor_mask(region, sorted(fp.cells)).any()


class TestRegionIO:
    def test_round_trip_dict(self):
        g = irregular_device(12, 6, seed=8)
        pr = PartialRegion.with_static_box(g, 0, 0, 6, 6, name="demo")
        d = region_to_dict(pr)
        back = region_from_dict(d)
        assert back.grid == pr.grid
        assert np.array_equal(back.reconfigurable, pr.reconfigurable)
        assert back.name == "demo"

    def test_round_trip_file(self, tmp_path):
        pr = PartialRegion.whole_device(irregular_device(10, 5, seed=2))
        path = tmp_path / "region.json"
        save_region(pr, path)
        back = load_region(path)
        assert back.grid == pr.grid

    def test_mask_validation(self):
        g = homogeneous_device(3, 2)
        d = {"fabric": g.render().splitlines(), "reconfigurable": ["111"]}
        with pytest.raises(ValueError):
            region_from_dict(d)
        d = {"fabric": g.render().splitlines(), "reconfigurable": ["11x", "111"]}
        with pytest.raises(ValueError):
            region_from_dict(d)

"""Fabric characterization metrics."""

from __future__ import annotations

import pytest

from repro.fabric.analysis import (
    clb_run_lengths,
    column_profile,
    format_summary,
    heterogeneity_index,
    interruption_count,
    resource_summary,
)
from repro.fabric.devices import columnar_device, homogeneous_device, irregular_device
from repro.fabric.grid import FabricGrid
from repro.fabric.resource import ResourceType


class TestColumnProfile:
    def test_homogeneous_all_clb_uniform(self):
        p = column_profile(homogeneous_device(8, 4))
        assert all(k is ResourceType.CLB for k in p.kinds)
        assert all(p.uniform)

    def test_columnar_classification(self):
        g = columnar_device(24, 8)
        p = column_profile(g)
        assert p.kinds[0] is ResourceType.IO
        assert ResourceType.BRAM in p.kinds
        assert all(p.uniform)  # regular columns are pure

    def test_interrupted_column_not_uniform(self):
        g = FabricGrid.from_rows(["B.", "K.", "B."])
        p = column_profile(g)
        assert p.kinds[0] is ResourceType.BRAM  # dominant
        assert not p.uniform[0]
        assert p.uniform[1]

    def test_columns_of(self):
        g = columnar_device(24, 8)
        p = column_profile(g)
        for x in p.columns_of(ResourceType.BRAM):
            assert g.kind_at(x, 0) is ResourceType.BRAM


class TestRunsAndIndices:
    def test_homogeneous_single_run(self):
        assert clb_run_lengths(homogeneous_device(10, 3)) == [10]

    def test_columnar_runs_between_special_columns(self):
        g = columnar_device(24, 8, bram_stride=8, dsp_stride=0)
        runs = clb_run_lengths(g)
        assert sum(runs) == g.count(ResourceType.CLB) // 8
        assert all(r >= 1 for r in runs)

    def test_heterogeneity_index_bounds(self):
        assert heterogeneity_index(homogeneous_device(5, 5)) == 0.0
        g = irregular_device(40, 12, seed=3)
        assert 0.0 < heterogeneity_index(g) < 1.0

    def test_interruptions_counted(self):
        g = irregular_device(40, 12, seed=3, clk_rows=1)
        assert interruption_count(g) > 0
        g2 = irregular_device(40, 12, seed=3, clk_rows=0)
        assert interruption_count(g2) == 0

    def test_summary_and_format(self):
        g = irregular_device(40, 12, seed=3)
        s = resource_summary(g)
        assert s["width"] == 40
        assert s["max_run_width"] >= s["min_run_width"] >= 0
        text = format_summary(g, "test-device")
        assert "test-device" in text and "CLB runs" in text

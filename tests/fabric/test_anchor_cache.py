"""Anchor-mask cache: keys, hit accounting, and the incremental path.

The load-bearing guarantee is *bit-identity*: a mask served from the
cache — or derived incrementally from cached base-region masks for a
:class:`~repro.fabric.region.NarrowedRegion` — must equal the mask a
fresh cross-correlation would produce, anchor for anchor.  The
differential suite below checks that across 30 seeded (region,
frozen-set, module-library) instances, at both the single-mask level and
the assembled kernel-bank level.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cp.model import Model
from repro.fabric.cache import (
    AnchorMaskCache,
    footprint_signature,
    region_fingerprint,
)
from repro.fabric.devices import irregular_device
from repro.fabric.masks import valid_anchor_mask
from repro.fabric.region import NarrowedRegion, PartialRegion
from repro.geost.placement import PlacementKernel
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator


def build_kernel(region, modules, cache=None):
    m = Model()
    xs = [m.int_var(0, region.width - 1, f"x{i}") for i in range(len(modules))]
    ys = [m.int_var(0, region.height - 1, f"y{i}") for i in range(len(modules))]
    ss = [
        m.int_var(0, mod.n_alternatives - 1, f"s{i}")
        for i, mod in enumerate(modules)
    ]
    return PlacementKernel(region, modules, xs, ys, ss, cache=cache)


def random_instance(seed: int):
    """One differential instance: (region, modules, blocked frozen cells).

    The frozen set mimics what the LNS driver freezes: a batch of cells
    inside the allowed area (drawn at random, which is strictly more
    varied than real placements — any blocked subset must narrow
    identically).
    """
    rng = random.Random(seed)
    region = PartialRegion.whole_device(
        irregular_device(
            rng.choice([24, 32, 48]), rng.choice([8, 12, 16]),
            seed=rng.randrange(1 << 16),
        )
    )
    cfg = GeneratorConfig(clb_min=6, clb_max=18, bram_max=1,
                          height_min=2, height_max=4)
    modules = ModuleGenerator(seed=seed, config=cfg).generate_set(
        rng.randint(2, 5)
    )
    allowed = np.argwhere(region.allowed_mask())
    n_blocked = rng.randint(0, min(60, len(allowed)))
    idx = rng.sample(range(len(allowed)), n_blocked)
    blocked = allowed[idx].astype(np.int64).reshape(-1, 2)
    return region, modules, blocked


class TestKeys:
    def test_fingerprint_ignores_name_not_content(self):
        grid = irregular_device(16, 8, seed=3)
        a = PartialRegion.whole_device(grid, name="a")
        b = PartialRegion.whole_device(grid, name="something-else")
        assert region_fingerprint(a) == region_fingerprint(b)
        c = PartialRegion.with_static_box(grid, 0, 0, 2, 2, name="a")
        assert region_fingerprint(a) != region_fingerprint(c)

    def test_fingerprint_depends_on_grid_cells(self):
        a = PartialRegion.whole_device(irregular_device(16, 8, seed=3))
        b = PartialRegion.whole_device(irregular_device(16, 8, seed=4))
        assert region_fingerprint(a) != region_fingerprint(b)

    def test_footprint_signature_is_cell_identity(self):
        a = Footprint.rectangle(2, 3)
        b = Footprint.rectangle(2, 3)
        c = Footprint.rectangle(3, 2)
        assert footprint_signature(a) == footprint_signature(b)
        assert footprint_signature(a) != footprint_signature(c)


class TestCacheLookups:
    def test_hit_returns_identical_mask(self):
        region = PartialRegion.whole_device(irregular_device(24, 8, seed=1))
        fp = Footprint.rectangle(3, 2)
        cache = AnchorMaskCache()
        first = cache.anchor_mask(region, fp)
        again = cache.anchor_mask(region, fp)
        assert cache.misses == 1 and cache.hits == 1
        assert again is first  # the memoized array itself
        fresh = valid_anchor_mask(region, sorted(fp.cells))
        assert np.array_equal(first, fresh)

    def test_cached_masks_are_write_protected(self):
        region = PartialRegion.whole_device(irregular_device(24, 8, seed=1))
        cache = AnchorMaskCache()
        mask = cache.anchor_mask(region, Footprint.rectangle(2, 2))
        with pytest.raises(ValueError):
            mask[0, 0] = False

    def test_structurally_equal_regions_share_entries(self):
        """Two deserialized copies of one payload hit the same entries."""
        grid = irregular_device(24, 8, seed=5)
        r1 = PartialRegion.whole_device(grid.copy(), name="worker-1")
        r2 = PartialRegion.whole_device(grid.copy(), name="worker-2")
        cache = AnchorMaskCache()
        fp = Footprint.rectangle(4, 2)
        cache.anchor_mask(r1, fp)
        cache.anchor_mask(r2, fp)
        assert cache.stats() == {
            "hits": 1, "misses": 1, "narrowed": 0, "evictions": 0,
            "entries": 1,
        }

    def test_warm_precomputes_every_shape(self):
        region = PartialRegion.whole_device(irregular_device(24, 8, seed=2))
        modules = ModuleGenerator(seed=3).generate_set(4)
        cache = AnchorMaskCache()
        n = cache.warm(region, modules)
        assert n == sum(m.n_alternatives for m in modules)
        assert cache.misses == len(cache) <= n  # duplicates share entries
        before = cache.misses
        cache.warm(region, modules)
        assert cache.misses == before  # second warm is all hits


class TestDifferential:
    """Cached/incremental masks are bit-identical to fresh computation."""

    @pytest.mark.parametrize("seed", range(30))
    def test_incremental_bank_matches_fresh_bank(self, seed):
        region, modules, blocked = random_instance(seed)
        sub = NarrowedRegion(region, blocked, f"{region.name}-lns")
        # reference: an uncached kernel over a structurally identical
        # plain region (fresh cross-correlation against the carved fabric)
        plain = PartialRegion(region.grid, sub.reconfigurable, "plain")
        reference = build_kernel(plain, modules, cache=None)

        cache = AnchorMaskCache()
        cache.warm(region, modules)  # the LNS initial solve does this
        incremental = build_kernel(sub, modules, cache=cache)

        assert incremental.cache_stats["misses"] == 0
        assert incremental.cache_stats["narrowed"] == len(reference.bank)
        assert np.array_equal(incremental.bank, reference.bank)
        for inc_rows, ref_rows in zip(incremental.valid, reference.valid):
            for inc_mask, ref_mask in zip(inc_rows, ref_rows):
                assert np.array_equal(inc_mask, ref_mask)

    @pytest.mark.parametrize("seed", range(30, 40))
    def test_cached_single_masks_match_fresh(self, seed):
        region, modules, blocked = random_instance(seed)
        sub = NarrowedRegion(region, blocked, "sub")
        cache = AnchorMaskCache()
        for mod in modules:
            for fp in mod.shapes:
                cached = cache.anchor_mask(region, fp)
                assert np.array_equal(
                    cached, valid_anchor_mask(region, sorted(fp.cells))
                )
                # the narrowed region served as a *plain* region (no base
                # lineage used) must also be exact
                assert np.array_equal(
                    cache.anchor_mask(sub, fp),
                    valid_anchor_mask(sub, sorted(fp.cells)),
                )

    def test_cold_cache_incremental_path_is_still_exact(self):
        """Unwarmed cache + NarrowedRegion: misses, but identical masks."""
        region, modules, blocked = random_instance(99)
        sub = NarrowedRegion(region, blocked, "cold")
        plain = PartialRegion(region.grid, sub.reconfigurable, "plain")
        cache = AnchorMaskCache()
        incremental = build_kernel(sub, modules, cache=cache)
        reference = build_kernel(plain, modules, cache=None)
        assert incremental.cache_stats["hits"] == 0
        assert incremental.cache_stats["misses"] > 0
        assert np.array_equal(incremental.bank, reference.bank)


class TestLRUCapacity:
    """Opt-in bounded mode: eviction order, counters, unbounded default."""

    def _regions(self, n):
        # distinct widths: structurally distinct fingerprints guaranteed
        # (same-size irregular devices can collide across seeds)
        return [
            PartialRegion.whole_device(irregular_device(16 + 4 * s, 8, seed=s))
            for s in range(n)
        ]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AnchorMaskCache(capacity=0)
        with pytest.raises(ValueError):
            AnchorMaskCache(capacity=-3)
        AnchorMaskCache(capacity=1)  # fine
        AnchorMaskCache(capacity=None)  # fine (unbounded default)

    def test_mask_store_evicts_least_recently_used(self):
        region = PartialRegion.whole_device(irregular_device(24, 8, seed=7))
        cache = AnchorMaskCache(capacity=2)
        a, b, c = (Footprint.rectangle(w, 2) for w in (2, 3, 4))
        cache.anchor_mask(region, a)
        cache.anchor_mask(region, b)
        cache.anchor_mask(region, a)  # refresh a: b is now the LRU entry
        cache.anchor_mask(region, c)  # evicts b
        assert cache.evictions >= 1
        misses = cache.misses
        cache.anchor_mask(region, a)  # survived — a hit
        assert cache.misses == misses
        cache.anchor_mask(region, b)  # evicted — recomputed
        assert cache.misses == misses + 1

    def test_evicted_mask_recomputes_bit_identically(self):
        region = PartialRegion.whole_device(irregular_device(24, 8, seed=8))
        fp = Footprint.rectangle(3, 2)
        cache = AnchorMaskCache(capacity=1)
        first = cache.anchor_mask(region, fp).copy()
        cache.anchor_mask(region, Footprint.rectangle(5, 2))  # evicts fp
        again = cache.anchor_mask(region, fp)
        assert np.array_equal(first, again)

    def test_compat_store_is_bounded_too(self):
        regions = self._regions(4)
        cache = AnchorMaskCache(capacity=2)
        for r in regions:
            cache.compat(r)
        assert len(cache._compat) == 2
        assert cache.evictions >= 2

    def test_unbounded_default_never_evicts(self):
        regions = self._regions(5)
        cache = AnchorMaskCache()
        for r in regions:
            for w in (2, 3, 4):
                cache.anchor_mask(r, Footprint.rectangle(w, 2))
        assert cache.evictions == 0
        assert len(cache) == 15

    def test_eviction_counter_flows_through_delta_and_stats(self):
        region = PartialRegion.whole_device(irregular_device(24, 8, seed=9))
        cache = AnchorMaskCache(capacity=1)
        snap = cache.snapshot()
        cache.anchor_mask(region, Footprint.rectangle(2, 2))
        cache.anchor_mask(region, Footprint.rectangle(3, 2))
        d = cache.delta(snap)
        assert d["evictions"] == cache.evictions > 0
        assert cache.stats()["evictions"] == cache.evictions
        # old 3-tuple snapshots (pre-eviction consumers) still work
        assert cache.delta((0, 0, 0))["misses"] == 2


class TestPersistence:
    """save()/load() round-trips warmed entries across processes."""

    def test_round_trip_is_bit_identical_and_all_hits(self, tmp_path):
        region = PartialRegion.whole_device(irregular_device(24, 8, seed=11))
        modules = ModuleGenerator(seed=4).generate_set(3)
        cache = AnchorMaskCache()
        n = cache.warm(region, modules)
        path = tmp_path / "masks.pkl"
        assert cache.save(str(path)) == len(cache)

        loaded = AnchorMaskCache.load(str(path))
        assert len(loaded) == len(cache)
        # counters start fresh in the loaded copy
        assert loaded.stats() == {
            "hits": 0, "misses": 0, "narrowed": 0, "evictions": 0,
            "entries": len(cache),
        }
        loaded.warm(region, modules)  # every lookup served from disk state
        assert loaded.misses == 0
        assert loaded.hits == n
        for fp in (s for m in modules for s in m.shapes):
            assert np.array_equal(
                loaded.anchor_mask(region, fp),
                cache.anchor_mask(region, fp),
            )

    def test_loaded_masks_stay_write_protected(self, tmp_path):
        region = PartialRegion.whole_device(irregular_device(16, 8, seed=12))
        cache = AnchorMaskCache()
        cache.anchor_mask(region, Footprint.rectangle(2, 2))
        path = tmp_path / "masks.pkl"
        cache.save(str(path))
        loaded = AnchorMaskCache.load(str(path))
        mask = loaded.anchor_mask(region, Footprint.rectangle(2, 2))
        with pytest.raises(ValueError):
            mask[0, 0] = False

    def test_load_rejects_unknown_version(self, tmp_path):
        import pickle

        path = tmp_path / "bad.pkl"
        path.write_bytes(
            pickle.dumps({"version": 999, "masks": [], "compat": []})
        )
        with pytest.raises(ValueError, match="version"):
            AnchorMaskCache.load(str(path))

    def test_load_with_capacity_bounds_and_resets_evictions(self, tmp_path):
        region = PartialRegion.whole_device(irregular_device(24, 8, seed=13))
        cache = AnchorMaskCache()
        for w in (2, 3, 4, 5):
            cache.anchor_mask(region, Footprint.rectangle(w, 2))
        path = tmp_path / "masks.pkl"
        cache.save(str(path))
        loaded = AnchorMaskCache.load(str(path), capacity=2)
        assert len(loaded) == 2
        assert loaded.evictions == 0  # accounting starts clean post-load


class TestNarrowedRegion:
    def test_blocks_cells_and_keeps_lineage(self):
        region = PartialRegion.whole_device(irregular_device(16, 8, seed=1))
        blocked = np.array([[0, 0], [3, 5]], dtype=np.int64)
        sub = NarrowedRegion(region, blocked, "sub")
        assert not sub.reconfigurable[0, 0] and not sub.reconfigurable[3, 5]
        assert sub.base is region
        assert sub.available_area() == region.available_area() - 2

    def test_empty_block_set_is_identity(self):
        region = PartialRegion.whole_device(irregular_device(16, 8, seed=1))
        sub = NarrowedRegion(region, np.empty((0, 2), dtype=np.int64))
        assert np.array_equal(sub.reconfigurable, region.reconfigurable)
        assert sub.name == f"{region.name}-narrowed"

    def test_out_of_bounds_blocks_rejected(self):
        region = PartialRegion.whole_device(irregular_device(16, 8, seed=1))
        with pytest.raises(ValueError):
            NarrowedRegion(region, np.array([[8, 0]]))  # y == height
        with pytest.raises(ValueError):
            NarrowedRegion(region, np.array([[0, -1]]))

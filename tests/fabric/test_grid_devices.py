"""FabricGrid and the device generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fabric.devices import (
    columnar_device,
    device_catalog,
    homogeneous_device,
    irregular_device,
    make_device,
    with_static_columns,
)
from repro.fabric.grid import FabricGrid
from repro.fabric.resource import ResourceType
from repro.fabric.tile import TileSet


class TestFabricGrid:
    def test_filled(self):
        g = FabricGrid.filled(4, 3)
        assert g.width == 4 and g.height == 3 and g.area == 12
        assert g.count(ResourceType.CLB) == 12

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            FabricGrid.filled(0, 3)
        with pytest.raises(ValueError):
            FabricGrid(np.zeros((2, 2, 2), dtype=np.int8))

    def test_unknown_codes_rejected(self):
        with pytest.raises(ValueError):
            FabricGrid(np.full((2, 2), 99, dtype=np.int8))

    def test_render_round_trip(self):
        g = irregular_device(12, 6, seed=1)
        assert FabricGrid.from_rows(g.render().splitlines()) == g

    def test_from_rows_top_first(self):
        g = FabricGrid.from_rows(["B.", ".."])
        # top row first: the BRAM is at (0, 1) in bottom-origin coords
        assert g.kind_at(0, 1) is ResourceType.BRAM
        assert g.kind_at(0, 0) is ResourceType.CLB

    def test_from_rows_validation(self):
        with pytest.raises(ValueError):
            FabricGrid.from_rows([])
        with pytest.raises(ValueError):
            FabricGrid.from_rows(["..", "..."])
        with pytest.raises(ValueError):
            FabricGrid.from_rows(["ZZ"])

    def test_kind_at_bounds(self):
        g = FabricGrid.filled(3, 3)
        with pytest.raises(IndexError):
            g.kind_at(3, 0)

    def test_resource_counts_sum_to_area(self):
        g = irregular_device(24, 12, seed=2)
        assert sum(g.resource_counts().values()) == g.area

    def test_resource_mask_consistent_with_counts(self):
        g = columnar_device(24, 12)
        for kind, n in g.resource_counts().items():
            assert int(g.resource_mask(kind).sum()) == n

    def test_tileset_round_trip(self):
        g = irregular_device(10, 5, seed=3)
        rebuilt = FabricGrid.from_tilesets(g.tilesets())
        assert rebuilt == g

    def test_from_tilesets_rejects_overlap(self):
        a = TileSet.block(0, 0, 2, 2, ResourceType.CLB)
        b = TileSet.block(1, 1, 2, 2, ResourceType.BRAM)
        with pytest.raises(ValueError):
            FabricGrid.from_tilesets([a, b])

    def test_from_tilesets_rejects_negative(self):
        t = TileSet.block(-1, 0, 2, 2, ResourceType.CLB)
        with pytest.raises(ValueError):
            FabricGrid.from_tilesets([t])

    def test_copy_is_independent(self):
        g = FabricGrid.filled(3, 3)
        c = g.copy()
        c.cells[0, 0] = int(ResourceType.BRAM)
        assert g.kind_at(0, 0) is ResourceType.CLB


class TestDevices:
    def test_homogeneous_is_all_clb(self):
        g = homogeneous_device(16, 8)
        assert g.count(ResourceType.CLB) == g.area

    def test_columnar_has_full_columns(self):
        g = columnar_device(32, 8)
        for x in range(g.width):
            column = g.cells[:, x]
            assert len(set(column.tolist())) == 1  # columns are uniform

    def test_columnar_io_edges(self):
        g = columnar_device(32, 8)
        assert all(g.kind_at(0, y) is ResourceType.IO for y in range(8))
        assert all(g.kind_at(31, y) is ResourceType.IO for y in range(8))

    def test_irregular_deterministic_per_seed(self):
        a = irregular_device(40, 16, seed=9)
        b = irregular_device(40, 16, seed=9)
        c = irregular_device(40, 16, seed=10)
        assert a == b
        assert a != c

    def test_irregular_has_clock_interruptions(self):
        g = irregular_device(40, 16, seed=9)
        assert g.count(ResourceType.CLK) > 0
        # clock tiles sit in (former) dedicated columns near mid-height
        ys, xs = np.nonzero(g.resource_mask(ResourceType.CLK))
        assert set(ys.tolist()) == {16 // 2}

    def test_irregular_spacing_respects_stride_and_jitter(self):
        g = irregular_device(80, 16, seed=4, bram_stride=8, jitter=2)
        cols = sorted(
            {int(x) for x in np.nonzero(
                g.resource_mask(ResourceType.BRAM).any(axis=0) |
                g.resource_mask(ResourceType.CLK).any(axis=0)
            )[0]}
        )
        gaps = [b - a for a, b in zip(cols, cols[1:])]
        assert all(g >= 8 - 2 * 2 for g in gaps)

    def test_irregular_validation(self):
        with pytest.raises(ValueError):
            irregular_device(10, 10, bram_stride=-1)
        with pytest.raises(ValueError):
            irregular_device(0, 10)

    def test_with_static_columns(self):
        g = with_static_columns(homogeneous_device(10, 4), 2, 4)
        assert g.count(ResourceType.UNAVAILABLE) == 3 * 4
        with pytest.raises(ValueError):
            with_static_columns(g, 8, 12)

    def test_catalog_instantiates(self):
        for name in device_catalog():
            g = make_device(name)
            assert g.area > 0

    def test_catalog_unknown_name(self):
        with pytest.raises(KeyError):
            make_device("no-such-device")

    def test_make_device_deterministic(self):
        assert make_device("irregular-24x16") == make_device("irregular-24x16")

    @given(
        st.integers(4, 40),
        st.integers(2, 20),
        st.integers(0, 50),
    )
    def test_irregular_resource_partition(self, w, h, seed):
        """Every cell has exactly one resource type and counts add up."""
        g = irregular_device(w, h, seed=seed)
        assert sum(g.resource_counts().values()) == w * h

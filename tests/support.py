"""Shared helpers for the test suite.

The geost cross-validation machinery lived as near-identical copies in
``tests/geost/test_cross_validation.py`` and
``tests/geost/test_placement_kernel.py``; it is consolidated here because
the differential harness (many random instances, three independent
implementations of the paper's constraint) is now used by several files.

Three ways to enumerate the solutions of one placement instance:

* :func:`brute_force_solutions` — literal M_a ∧ M_b ∧ M_c from the
  per-shape anchor masks, the ground truth;
* :func:`kernel_solutions` — search over the vectorized
  :class:`~repro.geost.placement.PlacementKernel`;
* :func:`geost_solutions` — search over the reference interval
  :class:`~repro.geost.kernel.Geost` with heterogeneity encoded as
  resource-typed forbidden regions.

All three return sets of per-module ``(shape, x, y)`` tuples, so equality
is a complete cross-check of the solution *sets*, not just counts.

On top of those, the **cross-kernel differential-oracle harness** runs
any pair of :class:`OracleConfig` settings — kernel (``placement`` /
``geost``) × ``incremental`` × ``bitboard`` — over seeded instance
generators and asserts *bit-identical* behavior: equal solution sets,
equal search-tree fingerprints (nodes, backtracks, solutions, depth,
failures, propagations, domain updates) and the per-config profile
invariants (e.g. a scalar run must report zero vectorized row scans).
Instance generators cover sparse (:func:`random_small_instance`), dense
(:func:`random_dense_instance`), shape-alternative-heavy
(:func:`random_alt_heavy_instance`) and 3-D pure-geost
(:func:`random_geost3d_instance`) regimes.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.search import DepthFirstSearch
from repro.cp.solver import Solver
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.masks import brute_force_anchor_mask
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.geost.boxes import Box, ShiftedBox
from repro.geost.forbidden import ForbiddenRegion
from repro.geost.incremental import IncStats
from repro.geost.kernel import Geost
from repro.geost.objects import GeostObject
from repro.geost.placement import PlacementKernel
from repro.geost.shapes import GeostShape, ShapeTable
from repro.modules.footprint import Footprint
from repro.modules.module import Module

#: one placement: per-module (shape index, anchor x, anchor y)
SolutionSet = Set[Tuple[Tuple[int, int, int], ...]]


def build_kernel(
    m: Model,
    region: PartialRegion,
    modules: Sequence[Module],
    incremental: bool = True,
    bitboard: bool = True,
):
    """Post a PlacementKernel over fresh x/y/s variables; returns all four."""
    xs = [m.int_var(0, region.width - 1, f"x{i}") for i in range(len(modules))]
    ys = [m.int_var(0, region.height - 1, f"y{i}") for i in range(len(modules))]
    ss = [
        m.int_var(0, mod.n_alternatives - 1, f"s{i}")
        for i, mod in enumerate(modules)
    ]
    kernel = PlacementKernel(region, modules, xs, ys, ss,
                             incremental=incremental, bitboard=bitboard)
    m.post(kernel)
    return kernel, xs, ys, ss


def kernel_solutions(
    region: PartialRegion, modules: Sequence[Module]
) -> SolutionSet:
    """All solutions of the vectorized placement kernel."""
    m = Model()
    try:
        _, xs, ys, ss = build_kernel(m, region, modules)
    except Inconsistent:
        return set()
    dv = []
    for x, y, s in zip(xs, ys, ss):
        dv.extend([x, y, s])
    return {
        tuple(
            (sol[f"s{i}"], sol[f"x{i}"], sol[f"y{i}"])
            for i in range(len(modules))
        )
        for sol in Solver(m, dv).enumerate()
    }


def brute_force_solutions(
    region: PartialRegion, modules: Sequence[Module]
) -> SolutionSet:
    """All (s, x, y) per module satisfying M_a, M_b, M_c — ground truth."""
    per_module = []
    for mod in modules:
        options = []
        for si, fp in enumerate(mod.shapes):
            mask = brute_force_anchor_mask(region, sorted(fp.cells))
            ys_, xs_ = np.nonzero(mask)
            options.extend(
                (si, int(x), int(y)) for x, y in zip(xs_, ys_)
            )
        per_module.append(options)
    out: SolutionSet = set()
    for combo in itertools.product(*per_module):
        cells = set()
        ok = True
        for mod, (si, x, y) in zip(modules, combo):
            for dx, dy, _ in mod.shapes[si].cells:
                c = (x + dx, y + dy)
                if c in cells:
                    ok = False
                    break
                cells.add(c)
            if not ok:
                break
        if ok:
            out.add(combo)
    return out


def fabric_to_forbidden_regions(region: PartialRegion, kinds):
    """Encode heterogeneity as resource-typed forbidden 1x1 regions.

    For every resource kind used by the modules, each cell that is NOT of
    that kind (or is static) forbids boxes of that kind; cells outside the
    fabric are excluded by a surrounding wall for all kinds.
    """
    out = []
    allowed = region.allowed_mask()
    grid = region.grid.cells
    H, W = region.height, region.width
    for kind in kinds:
        for y in range(H):
            for x in range(W):
                if not allowed[y, x] or grid[y, x] != int(kind):
                    out.append(
                        ForbiddenRegion(Box((x, y), (1, 1)), kind)
                    )
    # walls (block everything)
    out.append(ForbiddenRegion(Box((-100, -100), (100, 200 + W))))        # left
    out.append(ForbiddenRegion(Box((W, -100), (100, 200 + W))))           # right
    out.append(ForbiddenRegion(Box((-100, -100), (200 + W, 100))))        # below
    out.append(ForbiddenRegion(Box((-100, H), (200 + W, 100))))           # above
    return out


def geost_solutions(
    region: PartialRegion, modules: Sequence[Module]
) -> SolutionSet:
    """All solutions of the reference interval geost kernel."""
    kinds = {
        k for mod in modules for fp in mod.shapes for _, _, k in fp.cells
    }
    regions = fabric_to_forbidden_regions(region, kinds)
    m = Model()
    table = ShapeTable()
    objects = []
    dv = []
    for i, mod in enumerate(modules):
        sids = [table.add_footprint(fp) for fp in mod.shapes]
        x = m.int_var(0, region.width - 1, f"x{i}")
        y = m.int_var(0, region.height - 1, f"y{i}")
        s = m.int_var(min(sids), max(sids), f"s{i}")
        objects.append(GeostObject(i, [x, y], s, table))
        dv.extend([x, y, s])
    try:
        m.post(Geost(objects, regions))
    except Inconsistent:
        return set()
    sols = Solver(m, dv).enumerate()
    out: SolutionSet = set()
    for sol in sols:
        key = []
        offset = 0
        for i, mod in enumerate(modules):
            key.append((sol[f"s{i}"] - offset, sol[f"x{i}"], sol[f"y{i}"]))
            offset += mod.n_alternatives
        out.add(tuple(key))
    return out


# ----------------------------------------------------------------------
# Random small instances for differential testing
# ----------------------------------------------------------------------
_FOOTPRINT_POOL: List[Footprint] = [
    Footprint.rectangle(1, 1),
    Footprint.rectangle(2, 1),
    Footprint.rectangle(1, 2),
    Footprint.rectangle(2, 2),
    Footprint([(0, 0, ResourceType.BRAM)]),
    Footprint([(0, 0, ResourceType.CLB), (1, 1, ResourceType.CLB)]),
    Footprint([(0, 0, ResourceType.CLB), (1, 0, ResourceType.BRAM)]),
    Footprint([(0, 0, ResourceType.CLB), (0, 1, ResourceType.CLB),
               (1, 1, ResourceType.CLB)]),
]


def random_small_instance(seed: int):
    """A random small heterogeneous instance: (region, modules).

    Small enough for exhaustive enumeration by all three implementations
    (a 4x3 fabric, 1–2 modules, each with 1–2 shape alternatives drawn
    from a fixed footprint pool), varied enough to exercise resource
    matching, static cells and polymorphism.
    """
    rng = random.Random(seed)
    region = PartialRegion.whole_device(
        irregular_device(
            4, 3, seed=rng.randrange(1 << 16), bram_stride=3, jitter=1,
            clk_rows=0, io_edges=False,
        )
    )
    modules = []
    for i in range(rng.randint(1, 2)):
        shapes = rng.sample(_FOOTPRINT_POOL, rng.randint(1, 2))
        modules.append(Module(f"m{i}", shapes))
    return region, modules


def random_dense_instance(seed: int):
    """A dense homogeneous instance: modules demand most of the fabric.

    Three rectangle modules totalling 8–11 cells on a 4x3 (12-cell) CLB
    grid, so almost every placement decision collides with compulsory
    parts of the others — the regime where non-overlap filtering (and the
    sweep it is built on) does all the work.
    """
    rng = random.Random(seed ^ 0x5EED)
    region = PartialRegion.whole_device(homogeneous_device(4, 3))
    sizes = [(2, 2), (2, 1), (1, 2), (3, 1), (1, 3)]
    modules = []
    for i in range(3):
        w, h = rng.choice(sizes)
        shapes = [Footprint.rectangle(w, h)]
        if w != h and rng.random() < 0.5:
            shapes.append(Footprint.rectangle(h, w))
        modules.append(Module(f"d{i}", shapes))
    return region, modules


def random_alt_heavy_instance(seed: int):
    """A shape-alternative-heavy instance: few modules, many alternatives.

    1–2 modules with 3–4 alternatives each on a 4x4 irregular fabric —
    the design-alternative regime of the paper, exercising shape-variable
    filtering (per-shape feasibility, shape removal ordering) much harder
    than the sparse generator.
    """
    rng = random.Random(seed ^ 0xA17)
    region = PartialRegion.whole_device(
        irregular_device(
            4, 4, seed=rng.randrange(1 << 16), bram_stride=3, jitter=1,
            clk_rows=0, io_edges=False,
        )
    )
    modules = []
    for i in range(rng.randint(1, 2)):
        shapes = rng.sample(_FOOTPRINT_POOL, rng.randint(3, 4))
        modules.append(Module(f"a{i}", shapes))
    return region, modules


def _walls_3d(w: int, h: int, d: int) -> List[ForbiddenRegion]:
    """All-blocking slabs enclosing the box ``[0,w) x [0,h) x [0,d)``."""
    m = 10  # margin: thicker than any shape, wider than any anchor range
    span = (w + 2 * m, h + 2 * m, d + 2 * m)
    out = []
    for axis, limit in enumerate((w, h, d)):
        lo = [-m, -m, -m]
        size_below = list(span)
        size_below[axis] = m
        out.append(ForbiddenRegion(Box(tuple(lo), tuple(size_below))))
        hi = [-m, -m, -m]
        hi[axis] = limit
        size_above = list(span)
        size_above[axis] = m
        out.append(ForbiddenRegion(Box(tuple(hi), tuple(size_above))))
    return out


def random_geost3d_instance(seed: int):
    """A random 3-D pure-geost instance: (dims, per-object shapes, regions).

    1–2 objects inside a 3x3x2 grid, each with 1–2 alternatives that are
    either solid boxes or two-box L-shapes (exercising multi-shifted-box
    shapes), plus enclosing walls and sometimes one blocked interior
    cell.  Returned as plain data so every oracle config builds its own
    model from it.
    """
    rng = random.Random(seed ^ 0x3D)
    dims = (3, 3, 2)
    objs: List[List[List[ShiftedBox]]] = []
    for _ in range(rng.randint(1, 2)):
        alts: List[List[ShiftedBox]] = []
        for _ in range(rng.randint(1, 2)):
            size = tuple(rng.randint(1, 2) for _ in range(3))
            boxes = [ShiftedBox((0, 0, 0), size)]
            if rng.random() < 0.3:
                # L-extension: one extra unit box stuck to the base box
                axis = rng.randrange(3)
                off = [0, 0, 0]
                off[axis] = size[axis]
                boxes.append(ShiftedBox(tuple(off), (1, 1, 1)))
            alts.append(boxes)
        objs.append(alts)
    regions = _walls_3d(*dims)
    if rng.random() < 0.5:
        cell = tuple(rng.randrange(limit) for limit in dims)
        regions.append(ForbiddenRegion(Box(cell, (1, 1, 1))))
    return dims, objs, regions


# ----------------------------------------------------------------------
# Cross-kernel differential oracle harness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OracleConfig:
    """One rung of the oracle ladder: kernel × incremental × bitboard."""

    #: "placement" (vectorized 2-D kernel) or "geost" (reference k-D kernel)
    kernel: str = "placement"
    incremental: bool = True
    bitboard: bool = True

    def label(self) -> str:
        return (
            f"{self.kernel}"
            f"[{'inc' if self.incremental else 'wholesale'},"
            f"{'bitboard' if self.bitboard else 'scalar'}]"
        )


#: canonical ladder rungs, weakest oracle first
SCALAR_ORACLE = OracleConfig(incremental=False, bitboard=False)
INCREMENTAL_SCALAR = OracleConfig(incremental=True, bitboard=False)
BITBOARD = OracleConfig(incremental=True, bitboard=True)

#: field order of :attr:`OracleRun.fingerprint`
FINGERPRINT_KEYS = (
    "nodes", "backtracks", "solutions", "max_depth",
    "failures", "propagations", "domain_updates",
)


@dataclass
class OracleRun:
    """One enumeration under one config: what bit-identity compares."""

    solutions: frozenset
    fingerprint: Tuple
    inc_stats: Optional[IncStats]


def _enumerate(m: Model, dv, decode) -> OracleRun:
    """DFS-enumerate a posted model; shared tail of every oracle run."""
    search = DepthFirstSearch(m.engine, dv)
    sols = frozenset(decode(sol) for sol in search.all_solutions())
    st = search.stats
    es = m.engine.stats
    return OracleRun(
        sols,
        (
            st.nodes, st.backtracks, st.solutions, st.max_depth,
            es.failures, es.propagations, es.domain_updates,
        ),
        None,
    )


_ROOT_INFEASIBLE = ("root-infeasible",)


def oracle_run(region, modules, config: OracleConfig) -> OracleRun:
    """Enumerate one 2-D instance under one oracle config."""
    if config.kernel == "placement":
        m = Model()
        try:
            kernel, xs, ys, ss = build_kernel(
                m, region, modules,
                incremental=config.incremental, bitboard=config.bitboard,
            )
        except Inconsistent:
            return OracleRun(frozenset(), _ROOT_INFEASIBLE, None)
        dv = []
        for x, y, s in zip(xs, ys, ss):
            dv.extend([x, y, s])

        def decode(sol, n=len(modules)):
            return tuple(
                (sol[f"s{i}"], sol[f"x{i}"], sol[f"y{i}"]) for i in range(n)
            )

        run = _enumerate(m, dv, decode)
        run.inc_stats = kernel.inc_stats
        return run
    if config.kernel != "geost":
        raise ValueError(f"unknown oracle kernel {config.kernel!r}")
    kinds = {
        k for mod in modules for fp in mod.shapes for _, _, k in fp.cells
    }
    regions = fabric_to_forbidden_regions(region, kinds)
    m = Model()
    table = ShapeTable()
    objects = []
    dv = []
    sid_offsets = []
    offset = 0
    for i, mod in enumerate(modules):
        sids = [table.add_footprint(fp) for fp in mod.shapes]
        x = m.int_var(0, region.width - 1, f"x{i}")
        y = m.int_var(0, region.height - 1, f"y{i}")
        s = m.int_var(min(sids), max(sids), f"s{i}")
        objects.append(GeostObject(i, [x, y], s, table))
        dv.extend([x, y, s])
        sid_offsets.append(offset)
        offset += mod.n_alternatives
    try:
        geost = Geost(
            objects, regions,
            incremental=config.incremental, bitboard=config.bitboard,
        )
        m.post(geost)
    except Inconsistent:
        return OracleRun(frozenset(), _ROOT_INFEASIBLE, None)

    def decode(sol, n=len(modules), offs=tuple(sid_offsets)):
        return tuple(
            (sol[f"s{i}"] - offs[i], sol[f"x{i}"], sol[f"y{i}"])
            for i in range(n)
        )

    run = _enumerate(m, dv, decode)
    run.inc_stats = geost.inc_stats
    return run


def oracle_run_3d(instance, config: OracleConfig) -> OracleRun:
    """Enumerate one 3-D pure-geost instance under one oracle config.

    Only the reference kernel speaks k-D, so ``config.kernel`` must be
    ``"geost"``; incremental/bitboard apply as usual.
    """
    if config.kernel != "geost":
        raise ValueError("3-D instances only run on the reference kernel")
    dims, objs, regions = instance
    m = Model()
    table = ShapeTable()
    objects = []
    dv = []
    for i, alts in enumerate(objs):
        sids = [table.add(GeostShape(boxes)) for boxes in alts]
        origin = [
            m.int_var(0, limit - 1, f"{axis}{i}")
            for axis, limit in zip("xyz", dims)
        ]
        s = m.int_var(min(sids), max(sids), f"s{i}")
        objects.append(GeostObject(i, origin, s, table))
        dv.extend(origin)
        dv.append(s)
    try:
        geost = Geost(
            objects, regions,
            incremental=config.incremental, bitboard=config.bitboard,
        )
        m.post(geost)
    except Inconsistent:
        return OracleRun(frozenset(), _ROOT_INFEASIBLE, None)

    def decode(sol, names=tuple(v.name for v in dv)):
        return tuple(sol[name] for name in names)

    run = _enumerate(m, dv, decode)
    run.inc_stats = geost.inc_stats
    return run


def check_profile_invariants(run: OracleRun, config: OracleConfig) -> None:
    """Per-config counter invariants — catches silently-degraded modes."""
    inc = run.inc_stats
    if inc is None:  # root-infeasible before post finished
        return
    for name, value in inc.as_dict().items():
        assert value >= 0, f"{config.label()}: counter {name} negative"
    if not config.bitboard:
        assert inc.rows_tested == 0, (
            f"{config.label()}: scalar mode reported vectorized row scans"
        )
        assert inc.fallbacks == 0, (
            f"{config.label()}: scalar mode reported bitboard fallbacks"
        )
    if not config.incremental:
        # the placement kernel shares its filter loop (dirty) and imprint
        # path (rasterized) across modes; only cache reuse is incremental-only
        assert inc.reused == 0, (
            f"{config.label()}: wholesale mode reported cache reuse"
        )
        if config.kernel == "geost":
            assert inc.dirty == 0 and inc.rasterized == 0, (
                f"{config.label()}: wholesale mode reported incremental work"
            )


def assert_bit_identical(
    region_or_instance,
    config_a: OracleConfig,
    config_b: OracleConfig,
    modules=None,
    context: str = "",
) -> Tuple[OracleRun, OracleRun]:
    """Run one instance under two configs and assert bit-identity.

    2-D instances pass ``(region, config_a, config_b, modules=modules)``;
    3-D pure-geost instances pass the instance tuple with
    ``modules=None``.  Returns both runs so callers can stack further
    assertions (e.g. ground-truth comparison, row-scan engagement).
    """
    if modules is not None:
        run_a = oracle_run(region_or_instance, modules, config_a)
        run_b = oracle_run(region_or_instance, modules, config_b)
    else:
        run_a = oracle_run_3d(region_or_instance, config_a)
        run_b = oracle_run_3d(region_or_instance, config_b)
    where = f" [{context}]" if context else ""
    assert run_a.solutions == run_b.solutions, (
        f"{config_a.label()} vs {config_b.label()}{where}: "
        f"solution sets differ "
        f"(only-a={sorted(run_a.solutions - run_b.solutions)[:3]}, "
        f"only-b={sorted(run_b.solutions - run_a.solutions)[:3]})"
    )
    assert run_a.fingerprint == run_b.fingerprint, (
        f"{config_a.label()} vs {config_b.label()}{where}: "
        f"search trees differ\n"
        f"  a: {dict(zip(FINGERPRINT_KEYS, run_a.fingerprint))}\n"
        f"  b: {dict(zip(FINGERPRINT_KEYS, run_b.fingerprint))}"
    )
    check_profile_invariants(run_a, config_a)
    check_profile_invariants(run_b, config_b)
    return run_a, run_b

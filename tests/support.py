"""Shared helpers for the test suite.

The geost cross-validation machinery lived as near-identical copies in
``tests/geost/test_cross_validation.py`` and
``tests/geost/test_placement_kernel.py``; it is consolidated here because
the differential harness (many random instances, three independent
implementations of the paper's constraint) is now used by several files.

Three ways to enumerate the solutions of one placement instance:

* :func:`brute_force_solutions` — literal M_a ∧ M_b ∧ M_c from the
  per-shape anchor masks, the ground truth;
* :func:`kernel_solutions` — search over the vectorized
  :class:`~repro.geost.placement.PlacementKernel`;
* :func:`geost_solutions` — search over the reference interval
  :class:`~repro.geost.kernel.Geost` with heterogeneity encoded as
  resource-typed forbidden regions.

All three return sets of per-module ``(shape, x, y)`` tuples, so equality
is a complete cross-check of the solution *sets*, not just counts.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.solver import Solver
from repro.fabric.devices import irregular_device
from repro.fabric.masks import brute_force_anchor_mask
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.geost.boxes import Box
from repro.geost.forbidden import ForbiddenRegion
from repro.geost.kernel import Geost
from repro.geost.objects import GeostObject
from repro.geost.placement import PlacementKernel
from repro.geost.shapes import ShapeTable
from repro.modules.footprint import Footprint
from repro.modules.module import Module

#: one placement: per-module (shape index, anchor x, anchor y)
SolutionSet = Set[Tuple[Tuple[int, int, int], ...]]


def build_kernel(
    m: Model,
    region: PartialRegion,
    modules: Sequence[Module],
    incremental: bool = True,
):
    """Post a PlacementKernel over fresh x/y/s variables; returns all four."""
    xs = [m.int_var(0, region.width - 1, f"x{i}") for i in range(len(modules))]
    ys = [m.int_var(0, region.height - 1, f"y{i}") for i in range(len(modules))]
    ss = [
        m.int_var(0, mod.n_alternatives - 1, f"s{i}")
        for i, mod in enumerate(modules)
    ]
    kernel = PlacementKernel(region, modules, xs, ys, ss,
                             incremental=incremental)
    m.post(kernel)
    return kernel, xs, ys, ss


def kernel_solutions(
    region: PartialRegion, modules: Sequence[Module]
) -> SolutionSet:
    """All solutions of the vectorized placement kernel."""
    m = Model()
    try:
        _, xs, ys, ss = build_kernel(m, region, modules)
    except Inconsistent:
        return set()
    dv = []
    for x, y, s in zip(xs, ys, ss):
        dv.extend([x, y, s])
    return {
        tuple(
            (sol[f"s{i}"], sol[f"x{i}"], sol[f"y{i}"])
            for i in range(len(modules))
        )
        for sol in Solver(m, dv).enumerate()
    }


def brute_force_solutions(
    region: PartialRegion, modules: Sequence[Module]
) -> SolutionSet:
    """All (s, x, y) per module satisfying M_a, M_b, M_c — ground truth."""
    per_module = []
    for mod in modules:
        options = []
        for si, fp in enumerate(mod.shapes):
            mask = brute_force_anchor_mask(region, sorted(fp.cells))
            ys_, xs_ = np.nonzero(mask)
            options.extend(
                (si, int(x), int(y)) for x, y in zip(xs_, ys_)
            )
        per_module.append(options)
    out: SolutionSet = set()
    for combo in itertools.product(*per_module):
        cells = set()
        ok = True
        for mod, (si, x, y) in zip(modules, combo):
            for dx, dy, _ in mod.shapes[si].cells:
                c = (x + dx, y + dy)
                if c in cells:
                    ok = False
                    break
                cells.add(c)
            if not ok:
                break
        if ok:
            out.add(combo)
    return out


def fabric_to_forbidden_regions(region: PartialRegion, kinds):
    """Encode heterogeneity as resource-typed forbidden 1x1 regions.

    For every resource kind used by the modules, each cell that is NOT of
    that kind (or is static) forbids boxes of that kind; cells outside the
    fabric are excluded by a surrounding wall for all kinds.
    """
    out = []
    allowed = region.allowed_mask()
    grid = region.grid.cells
    H, W = region.height, region.width
    for kind in kinds:
        for y in range(H):
            for x in range(W):
                if not allowed[y, x] or grid[y, x] != int(kind):
                    out.append(
                        ForbiddenRegion(Box((x, y), (1, 1)), kind)
                    )
    # walls (block everything)
    out.append(ForbiddenRegion(Box((-100, -100), (100, 200 + W))))        # left
    out.append(ForbiddenRegion(Box((W, -100), (100, 200 + W))))           # right
    out.append(ForbiddenRegion(Box((-100, -100), (200 + W, 100))))        # below
    out.append(ForbiddenRegion(Box((-100, H), (200 + W, 100))))           # above
    return out


def geost_solutions(
    region: PartialRegion, modules: Sequence[Module]
) -> SolutionSet:
    """All solutions of the reference interval geost kernel."""
    kinds = {
        k for mod in modules for fp in mod.shapes for _, _, k in fp.cells
    }
    regions = fabric_to_forbidden_regions(region, kinds)
    m = Model()
    table = ShapeTable()
    objects = []
    dv = []
    for i, mod in enumerate(modules):
        sids = [table.add_footprint(fp) for fp in mod.shapes]
        x = m.int_var(0, region.width - 1, f"x{i}")
        y = m.int_var(0, region.height - 1, f"y{i}")
        s = m.int_var(min(sids), max(sids), f"s{i}")
        objects.append(GeostObject(i, [x, y], s, table))
        dv.extend([x, y, s])
    try:
        m.post(Geost(objects, regions))
    except Inconsistent:
        return set()
    sols = Solver(m, dv).enumerate()
    out: SolutionSet = set()
    for sol in sols:
        key = []
        offset = 0
        for i, mod in enumerate(modules):
            key.append((sol[f"s{i}"] - offset, sol[f"x{i}"], sol[f"y{i}"]))
            offset += mod.n_alternatives
        out.add(tuple(key))
    return out


# ----------------------------------------------------------------------
# Random small instances for differential testing
# ----------------------------------------------------------------------
_FOOTPRINT_POOL: List[Footprint] = [
    Footprint.rectangle(1, 1),
    Footprint.rectangle(2, 1),
    Footprint.rectangle(1, 2),
    Footprint.rectangle(2, 2),
    Footprint([(0, 0, ResourceType.BRAM)]),
    Footprint([(0, 0, ResourceType.CLB), (1, 1, ResourceType.CLB)]),
    Footprint([(0, 0, ResourceType.CLB), (1, 0, ResourceType.BRAM)]),
    Footprint([(0, 0, ResourceType.CLB), (0, 1, ResourceType.CLB),
               (1, 1, ResourceType.CLB)]),
]


def random_small_instance(seed: int):
    """A random small heterogeneous instance: (region, modules).

    Small enough for exhaustive enumeration by all three implementations
    (a 4x3 fabric, 1–2 modules, each with 1–2 shape alternatives drawn
    from a fixed footprint pool), varied enough to exercise resource
    matching, static cells and polymorphism.
    """
    rng = random.Random(seed)
    region = PartialRegion.whole_device(
        irregular_device(
            4, 3, seed=rng.randrange(1 << 16), bram_stride=3, jitter=1,
            clk_rows=0, io_edges=False,
        )
    )
    modules = []
    for i in range(rng.randint(1, 2)):
        shapes = rng.sample(_FOOTPRINT_POOL, rng.randint(1, 2))
        modules.append(Module(f"m{i}", shapes))
    return region, modules

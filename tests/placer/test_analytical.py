"""Analytical placer: relaxation, legalization, events, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fabric.devices import columnar_device, irregular_device
from repro.fabric.masks import nearest_anchor
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module
from repro.obs import RecordingTracer, validate_event
from repro.obs.trace import ANALYTICAL_ITERATE
from repro.placer import AnalyticalConfig, AnalyticalPlacer


def instance(n=8, seed=2):
    region = PartialRegion.whole_device(irregular_device(64, 16, seed=7))
    modules = ModuleGenerator(seed=seed).generate_set(n)
    return region, modules


class TestNearestAnchor:
    def test_empty_mask_is_none(self):
        assert nearest_anchor(np.zeros((4, 4), dtype=bool), 1, 1) is None

    def test_exact_hit_wins(self):
        valid = np.zeros((5, 5), dtype=bool)
        valid[2, 3] = True
        valid[0, 0] = True
        assert nearest_anchor(valid, 3, 2) == (3, 2)

    def test_ties_break_bottom_left(self):
        # (1, 0) and (0, 1) are equidistant from (0, 0) shifted query;
        # the lexsort prefers the smaller x, then the smaller y
        valid = np.zeros((4, 4), dtype=bool)
        valid[0, 1] = True  # (x=1, y=0)
        valid[1, 0] = True  # (x=0, y=1)
        assert nearest_anchor(valid, 0, 0) == (0, 1)


class TestAnalyticalPlacer:
    def test_places_everything_and_verifies(self):
        region, modules = instance()
        res = AnalyticalPlacer().place(region, modules)
        res.verify()
        assert res.all_placed
        assert res.stats["method"] == "analytical"
        assert res.stats["iterations"] >= 1
        assert res.stats["snapped"] == len(modules)

    def test_deterministic_per_seed(self):
        region, modules = instance(seed=5)

        def run():
            res = AnalyticalPlacer(AnalyticalConfig(seed=3)).place(
                region, modules
            )
            return [
                (p.module.name, p.shape_index, p.x, p.y)
                for p in res.placements
            ]

        assert run() == run()

    def test_relaxation_converges(self):
        region, modules = instance()
        res = AnalyticalPlacer(
            AnalyticalConfig(iterations=2000, tolerance=0.05)
        ).place(region, modules)
        # convergence = the loop stopped well before the iteration cap
        assert res.stats["iterations"] < 2000
        res.verify()

    def test_iterate_events_emitted_and_valid(self):
        region, modules = instance()
        tracer = RecordingTracer()
        cfg = AnalyticalConfig(tracer=tracer, trace_every=5)
        AnalyticalPlacer(cfg).place(region, modules)
        events = tracer.by_kind(ANALYTICAL_ITERATE)
        assert events, "relaxation must emit progress samples"
        for ev in events:
            assert validate_event(ev.to_dict()) == []
        iterations = [ev.data["iteration"] for ev in events]
        assert iterations == sorted(iterations)

    def test_alternative_choice_prefers_least_movement(self):
        # a fabric of 4-wide CLB columns separated by BRAM columns: the
        # wide flat alternative fits a shelf, the tall one does not
        region = PartialRegion.whole_device(
            columnar_device(32, 8, bram_stride=0, dsp_stride=0)
        )
        modules = [
            Module(f"m{i}", [Footprint.rectangle(4, 2),
                             Footprint.rectangle(2, 4)])
            for i in range(4)
        ]
        res = AnalyticalPlacer().place(region, modules)
        res.verify()
        assert res.all_placed

    def test_budget_is_respected(self):
        region, modules = instance(n=12, seed=9)
        res = AnalyticalPlacer(
            AnalyticalConfig(time_limit=0.5, iterations=100000)
        ).place(region, modules)
        assert res.elapsed < 3.0

    def test_relaxation_settles(self):
        # the force field must reach an equilibrium: the mean per-module
        # move sampled by the progress events decays by an order of
        # magnitude between the first and last sample (overlap itself is
        # *not* monotone — the compaction pull keeps pressing modules
        # together until legalization resolves them)
        region, modules = instance(n=10, seed=4)
        tracer = RecordingTracer()
        AnalyticalPlacer(
            AnalyticalConfig(seed=1, tracer=tracer, trace_every=5)
        ).place(region, modules)
        moves = [
            ev.data["move"] for ev in tracer.by_kind(ANALYTICAL_ITERATE)
        ]
        assert len(moves) >= 2
        assert moves[-1] < moves[0] / 10

"""1D slot-style placement."""

from __future__ import annotations

import pytest

from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.generator import ModuleGenerator
from repro.modules.module import Module
from repro.placer import BottomLeftPlacer, SlotConfig, SlotPlacer, slot_utilization
from repro.metrics.utilization import extent_utilization


def rect_module(name, w, h):
    return Module(name, [Footprint.rectangle(w, h)])


class TestSlotMechanics:
    def test_slots_needed_rounds_up(self):
        p = SlotPlacer(SlotConfig(slot_width=4))
        assert p.slots_needed(1) == 1
        assert p.slots_needed(4) == 1
        assert p.slots_needed(5) == 2
        assert p.slots_needed(9) == 3

    def test_anchors_at_slot_boundaries_only(self):
        region = PartialRegion.whole_device(homogeneous_device(16, 4))
        mods = [rect_module(f"m{i}", 3, 2) for i in range(3)]
        res = SlotPlacer(SlotConfig(slot_width=4)).place(region, mods)
        assert res.all_placed
        assert all(p.x % 4 == 0 for p in res.placements)
        assert all(p.y == 0 for p in res.placements)
        res.verify()

    def test_full_slots_reserved(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 4))
        # two 3-wide modules: each takes one whole 4-wide slot
        mods = [rect_module("a", 3, 4), rect_module("b", 3, 4)]
        res = SlotPlacer(SlotConfig(slot_width=4)).place(region, mods)
        assert res.all_placed
        xs = sorted(p.x for p in res.placements)
        assert xs == [0, 4]
        # a third module cannot squeeze into the 1-wide leftovers
        mods3 = mods + [rect_module("c", 2, 4)]
        res3 = SlotPlacer(SlotConfig(slot_width=4)).place(region, mods3)
        assert len(res3.unplaced) == 1

    def test_narrow_alternative_saves_slots(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 6))
        wide = Footprint.rectangle(5, 2)   # needs 2 slots
        tall = Footprint.rectangle(4, 3)   # needs 1 slot
        a = Module("a", [wide, tall])
        b = Module("b", [Footprint.rectangle(4, 4)])
        res = SlotPlacer(SlotConfig(slot_width=4)).place(region, [a, b])
        assert res.all_placed
        pa = next(p for p in res.placements if p.module.name == "a")
        assert pa.footprint == tall  # the slot-saving alternative won

    def test_too_tall_module_rejected(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 3))
        res = SlotPlacer().place(region, [rect_module("t", 2, 5)])
        assert res.unplaced

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SlotPlacer(SlotConfig(slot_width=0))

    def test_resource_compatibility_respected(self):
        region = PartialRegion.whole_device(irregular_device(48, 10, seed=3))
        mods = ModuleGenerator(seed=5).generate_set(6)
        res = SlotPlacer(SlotConfig(slot_width=8)).place(region, mods)
        res.verify()  # M_b must hold even in slot mode


class TestSlotUtilization:
    def test_full_slot_is_one(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 4))
        res = SlotPlacer(SlotConfig(slot_width=4)).place(
            region, [rect_module("a", 4, 4)]
        )
        assert slot_utilization(res, 4) == pytest.approx(1.0)

    def test_half_height_module_wastes_half(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 4))
        res = SlotPlacer(SlotConfig(slot_width=4)).place(
            region, [rect_module("a", 4, 2)]
        )
        assert slot_utilization(res, 4) == pytest.approx(0.5)

    def test_empty(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 4))
        from repro.core.result import PlacementResult

        assert slot_utilization(PlacementResult(region, []), 4) == 0.0

    def test_2d_beats_1d_on_heterogeneous_workload(self):
        """The taxonomy's expected ordering (Section II, axis 5)."""
        region = PartialRegion.whole_device(irregular_device(96, 20, seed=13))
        mods = ModuleGenerator(seed=21).generate_set(12)
        one_d = SlotPlacer(SlotConfig(slot_width=8)).place(region, mods)
        two_d = BottomLeftPlacer().place(region, mods)
        assert len(two_d.placements) >= len(one_d.placements)
        if one_d.placements and two_d.all_placed:
            assert extent_utilization(two_d) > slot_utilization(one_d, 8)

"""Baseline placers: validity, determinism, quality ordering, KAMER."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.metrics.fragmentation import maximal_empty_rectangles
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module
from repro.placer import (
    AnnealingConfig,
    AnnealingPlacer,
    BestFitPlacer,
    BottomLeftPlacer,
    FirstFitPlacer,
    KamerPlacer,
)
from repro.placer.kamer import prune_non_maximal, split_rectangle

ALL_PLACERS = [
    BottomLeftPlacer,
    FirstFitPlacer,
    BestFitPlacer,
    KamerPlacer,
    # evaluation-budgeted so runs are deterministic regardless of load
    lambda: AnnealingPlacer(
        AnnealingConfig(time_limit=30.0, seed=0, max_evaluations=150)
    ),
]


def instance(n=6, seed=2):
    region = PartialRegion.whole_device(irregular_device(64, 16, seed=7))
    modules = ModuleGenerator(seed=seed).generate_set(n)
    return region, modules


class TestAllBaselines:
    @pytest.mark.parametrize("factory", ALL_PLACERS)
    def test_placements_are_valid(self, factory):
        region, modules = instance()
        res = factory().place(region, modules)
        res.verify()
        assert len(res.placements) + len(res.unplaced) == len(modules)

    @pytest.mark.parametrize("factory", ALL_PLACERS)
    def test_deterministic(self, factory):
        region, modules = instance()
        a = factory().place(region, modules)
        b = factory().place(region, modules)
        assert [(p.module.name, p.shape_index, p.x, p.y) for p in a.placements] == [
            (p.module.name, p.shape_index, p.x, p.y) for p in b.placements
        ]

    @pytest.mark.parametrize("factory", ALL_PLACERS)
    def test_all_fit_on_roomy_homogeneous_fabric(self, factory):
        region = PartialRegion.whole_device(homogeneous_device(40, 12))
        mods = [
            Module(f"m{i}", [Footprint.rectangle(3, 3)]) for i in range(8)
        ]
        res = factory().place(region, mods)
        assert res.all_placed

    @pytest.mark.parametrize("factory", ALL_PLACERS)
    def test_oversized_module_rejected_not_crashed(self, factory):
        region = PartialRegion.whole_device(homogeneous_device(4, 4))
        mods = [Module("big", [Footprint.rectangle(9, 9)])]
        res = factory().place(region, mods)
        assert res.unplaced == mods
        assert res.status == "partial"


class TestBottomLeft:
    def test_packs_to_origin(self):
        region = PartialRegion.whole_device(homogeneous_device(10, 4))
        mods = [Module("a", [Footprint.rectangle(2, 2)])]
        res = BottomLeftPlacer().place(region, mods)
        p = res.placements[0]
        assert (p.x, p.y) == (0, 0)

    def test_alternatives_considered(self):
        # corridor of height 1: only the flat alternative fits
        region = PartialRegion.whole_device(homogeneous_device(6, 1))
        mod = Module("p", [Footprint.rectangle(1, 3), Footprint.rectangle(3, 1)])
        res = BottomLeftPlacer().place(region, [mod])
        assert res.all_placed
        assert res.placements[0].shape_index == 1


class TestBestFit:
    def test_minimizes_extent_growth(self):
        region = PartialRegion.whole_device(homogeneous_device(10, 2))
        mods = [
            Module("a", [Footprint.rectangle(3, 2)]),
            Module("b", [Footprint.rectangle(2, 1)]),
        ]
        res = BestFitPlacer().place(region, mods)
        # the 2x1 should tuck left of/under the 3x2's extent, not extend it
        assert res.extent == 5


class TestKamerMechanics:
    def test_split_no_intersection(self):
        assert split_rectangle((0, 0, 4, 4), (10, 10, 2, 2)) == [(0, 0, 4, 4)]

    def test_split_center_produces_four(self):
        parts = split_rectangle((0, 0, 5, 5), (2, 2, 1, 1))
        assert len(parts) == 4
        assert (0, 0, 2, 5) in parts  # left slab
        assert (3, 0, 2, 5) in parts  # right slab
        assert (0, 0, 5, 2) in parts  # bottom slab
        assert (0, 3, 5, 2) in parts  # top slab

    def test_split_corner(self):
        parts = split_rectangle((0, 0, 4, 4), (0, 0, 2, 2))
        assert sorted(parts) == [(0, 2, 4, 2), (2, 0, 2, 4)]

    def test_prune_non_maximal(self):
        rects = [(0, 0, 4, 4), (1, 1, 2, 2), (0, 0, 4, 2)]
        assert prune_non_maximal(rects) == [(0, 0, 4, 4)]

    def test_prune_keeps_one_duplicate(self):
        rects = [(0, 0, 2, 2), (0, 0, 2, 2)]
        assert prune_non_maximal(rects) == [(0, 0, 2, 2)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5),
                      st.integers(1, 3), st.integers(1, 3)),
            min_size=1, max_size=4,
        )
    )
    @settings(max_examples=40)
    def test_split_covers_exactly_complement(self, boxes):
        """Splitting MERs around placed boxes covers free space exactly."""
        H = W = 8
        free = np.ones((H, W), dtype=bool)
        mers = [(0, 0, W, H)]
        for (x, y, w, h) in boxes:
            if x + w > W or y + h > H:
                continue
            free[y:y + h, x:x + w] = False
            new = []
            for mer in mers:
                new.extend(split_rectangle(mer, (x, y, w, h)))
            mers = prune_non_maximal(list(dict.fromkeys(new)))
        covered = np.zeros((H, W), dtype=bool)
        for (x, y, w, h) in mers:
            covered[y:y + h, x:x + w] = True
        assert np.array_equal(covered, free)

    def test_matches_fragmentation_mer_computation(self):
        """KAMER incremental MERs == batch maximal-empty-rectangle sweep."""
        free = np.ones((6, 6), dtype=bool)
        placed = [(0, 0, 2, 2), (3, 1, 2, 3)]
        mers = [(0, 0, 6, 6)]
        for box in placed:
            x, y, w, h = box
            free[y:y + h, x:x + w] = False
            new = []
            for mer in mers:
                new.extend(split_rectangle(mer, box))
            mers = prune_non_maximal(list(dict.fromkeys(new)))
        assert sorted(mers) == sorted(maximal_empty_rectangles(free))

    def test_invalid_fit_rule_rejected(self):
        with pytest.raises(ValueError):
            KamerPlacer(fit="nonsense")


class TestAnnealing:
    def test_improves_or_equals_bottom_left(self):
        region, modules = instance(n=8, seed=4)
        bl = BottomLeftPlacer().place(region, modules)
        sa = AnnealingPlacer(
            AnnealingConfig(time_limit=2.0, seed=3)
        ).place(region, modules)
        if bl.all_placed and sa.all_placed:
            assert sa.extent <= bl.extent + 2  # sanity: same ballpark or better

    def test_single_shape_modules_still_move(self):
        region = PartialRegion.whole_device(homogeneous_device(20, 4))
        mods = [Module(f"m{i}", [Footprint.rectangle(3, 2)]) for i in range(4)]
        res = AnnealingPlacer(AnnealingConfig(time_limit=0.5, seed=1)).place(
            region, mods
        )
        assert res.all_placed
        res.verify()

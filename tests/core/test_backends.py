"""The uniform placement-backend layer: protocol, registry, adapters.

Three layers of coverage:

* registry semantics (duplicate rejection, unknown-name errors, replace),
* adapter parity — the registered backends must behave exactly like the
  engines they wrap (greedy ≡ bottom-left, annealing seeding, runtime
  chain and portfolio member configuration reproduce the defaults), and
* the seeded cross-backend differential suite: every registered backend
  placed on the same ~20-instance set must return placements that pass
  ``PlacementResult.verify``, respect its wall-clock budget, and report
  honest ``solved`` / ``proved_optimal`` flags.
"""

from __future__ import annotations

import pytest

from repro.core.backend import (
    BackendCapabilities,
    PlacementBackend,
    PlacementRequest,
    available_backends,
    backend_capabilities,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.core.lns import LNSConfig
from repro.core.portfolio import PortfolioConfig, PortfolioPlacer
from repro.core.runtime import (
    RuntimeConfig,
    RuntimePlacementManager,
    RuntimeRequest,
    generate_workload,
)
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module
from repro.obs import RecordingTracer, profiling_session, validate_event
from repro.placer import AnnealingConfig, AnnealingPlacer, BottomLeftPlacer

EXPECTED_BACKENDS = {
    "cp", "lns", "portfolio", "greedy", "bottom-left", "first-fit",
    "best-fit", "kamer", "annealing", "analytical", "1d-slots",
    "temporal-cp",
}


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_default_fleet_registered(self):
        assert EXPECTED_BACKENDS <= set(available_backends())

    def test_duplicate_names_rejected_loudly(self):
        register_backend("dup-probe", lambda config=None: PlacementBackend())
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend(
                    "dup-probe", lambda config=None: PlacementBackend()
                )
        finally:
            unregister_backend("dup-probe")

    def test_replace_is_the_explicit_escape_hatch(self):
        class _A(PlacementBackend):
            name = "swap-probe"

        class _B(PlacementBackend):
            name = "swap-probe"

        register_backend("swap-probe", lambda config=None: _A())
        try:
            register_backend(
                "swap-probe", lambda config=None: _B(), replace=True
            )
            assert isinstance(create_backend("swap-probe"), _B)
        finally:
            unregister_backend("swap-probe")

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(KeyError, match="cp"):
            create_backend("definitely-not-a-backend")

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            register_backend("", lambda config=None: PlacementBackend())


class TestCapabilities:
    def test_objective_backends(self):
        for name in (
            "cp", "lns", "portfolio", "best-fit", "annealing", "analytical",
        ):
            assert backend_capabilities(name).supports_objective, name
        for name in (
            "greedy", "bottom-left", "first-fit", "kamer", "1d-slots",
            "temporal-cp",
        ):
            assert not backend_capabilities(name).supports_objective, name

    def test_runtime_chain_eligibility(self):
        for name in ("portfolio", "1d-slots"):
            assert not backend_capabilities(name).relocatable, name
        for name in (
            "cp", "lns", "greedy", "kamer", "annealing", "analytical",
            "temporal-cp",
        ):
            assert backend_capabilities(name).relocatable, name

    def test_temporal_cp_is_the_only_scheduling_backend(self):
        assert backend_capabilities("temporal-cp").schedules
        for name in sorted(EXPECTED_BACKENDS - {"temporal-cp"}):
            assert not backend_capabilities(name).schedules, name

    def test_all_backends_claim_alternatives(self):
        for name in available_backends():
            assert backend_capabilities(name).supports_alternatives, name


# ----------------------------------------------------------------------
# Adapter parity with the wrapped engines
# ----------------------------------------------------------------------
def small_instance(seed: int = 3, n: int = 4):
    region = PartialRegion.whole_device(irregular_device(32, 8, seed=seed))
    cfg = GeneratorConfig(
        clb_min=6, clb_max=14, bram_max=1, height_min=2, height_max=3
    )
    return region, ModuleGenerator(seed=seed, config=cfg).generate_set(n)


class TestAdapterParity:
    def test_greedy_alias_matches_bottom_left_placer(self):
        region, modules = small_instance()
        direct = BottomLeftPlacer().place(region, modules)
        for name in ("greedy", "bottom-left"):
            via = create_backend(name).place(PlacementRequest(region, modules))
            assert via.placements == direct.placements, name
            assert via.extent == direct.extent

    def test_annealing_request_seed_matches_native_config(self):
        region, modules = small_instance()
        cfg = AnnealingConfig(time_limit=30.0, seed=9, max_evaluations=80)
        direct = AnnealingPlacer(cfg).place(region, modules)
        via = create_backend("annealing", cfg).place(
            PlacementRequest(region, modules)
        )
        assert via.placements == direct.placements
        assert via.stats["evaluations"] == direct.stats["evaluations"]
        # a request seed overrides the config seed deterministically
        a = create_backend(
            "annealing", AnnealingConfig(time_limit=30.0, max_evaluations=80)
        ).place(PlacementRequest(region, modules, seed=9))
        assert a.placements == direct.placements

    def test_annealing_result_verifies_through_shared_scaffolding(self):
        region, modules = small_instance(seed=5, n=5)
        res = create_backend(
            "annealing", AnnealingConfig(time_limit=30.0, max_evaluations=60)
        ).place(PlacementRequest(region, modules))
        res.verify()
        assert res.stats["method"] == "annealing"
        assert res.stats["backend"] == "annealing"

    def test_annealing_budget_runs_are_bit_identical(self):
        # with max_evaluations=None the raw placer raced the wall clock,
        # so the same seed gave machine-load-dependent answers; the
        # adapter derives a deterministic evaluation cap from the budget
        region, modules = small_instance(seed=11, n=5)

        def run():
            res = create_backend(
                "annealing", AnnealingConfig(max_evaluations=None)
            ).place(PlacementRequest(region, modules, seed=4, time_limit=0.5))
            return (
                [(p.module.name, p.shape_index, p.x, p.y)
                 for p in res.placements],
                res.extent,
                res.stats["evaluations"],
            )

        first, second = run(), run()
        assert first == second
        # the cap is actually in force (not falling back to the clock)
        evals = first[2]
        backend = create_backend("annealing")
        expected = max(
            1,
            int(0.5 * backend.EVALS_PER_MODULE_SECOND / len(modules)),
        )
        assert evals <= expected

    def test_baseline_cache_reuse_is_visible(self):
        region, modules = small_instance()
        cache = AnchorMaskCache()
        backend = create_backend("bottom-left")
        backend.place(PlacementRequest(region, modules, cache=cache))
        misses_after_first = cache.misses
        assert misses_after_first > 0 and cache.hits == 0
        backend.place(PlacementRequest(region, modules, cache=cache))
        assert cache.misses == misses_after_first  # pure hits now
        assert cache.hits >= misses_after_first


class TestBackendObservability:
    def test_start_result_event_pair(self):
        region, modules = small_instance()
        tracer = RecordingTracer()
        create_backend("greedy").place(
            PlacementRequest(region, modules, tracer=tracer)
        )
        (start,) = tracer.by_kind("backend.start")
        (result,) = tracer.by_kind("backend.result")
        assert start.data["backend"] == "greedy"
        assert start.data["modules"] == len(modules)
        assert result.data["status"] in ("feasible", "partial")
        assert result.data["placed"] == len(modules)
        for ev in tracer.events:
            assert validate_event(ev.to_dict()) == []

    def test_error_emits_result_event_and_reraises(self):
        class _Boom(PlacementBackend):
            name = "boom"

            def _solve(self, request, tracer, profiling):
                raise RuntimeError("engine down")

        region, modules = small_instance()
        tracer = RecordingTracer()
        with pytest.raises(RuntimeError, match="engine down"):
            _Boom().place(PlacementRequest(region, modules, tracer=tracer))
        (result,) = tracer.by_kind("backend.result")
        assert result.data["status"] == "error"
        assert "engine down" in result.data["error"]
        assert validate_event(result.to_dict()) == []

    def test_profile_section_lands_in_session(self):
        region, modules = small_instance()
        with profiling_session("backends") as session:
            res = create_backend("kamer").place(
                PlacementRequest(region, modules)
            )
        profile = res.stats["profile"]
        assert profile.meta["backend"] == "kamer"
        assert session.merged().meta.get("backend") == "kamer"


# ----------------------------------------------------------------------
# Declarative orchestration wiring
# ----------------------------------------------------------------------
class TestRuntimeChainConfig:
    def _workload(self):
        return generate_workload(
            16, seed=3, mean_lifetime=8,
            generator_config=GeneratorConfig(
                clb_min=4, clb_max=10, bram_max=0, height_min=2, height_max=2
            ),
        )

    def test_default_chain_reproduces_probe_greedy(self):
        region = PartialRegion.whole_device(homogeneous_device(10, 2))
        by_probe = RuntimePlacementManager(
            region, RuntimeConfig(probe="greedy")
        ).run(self._workload())
        by_chain = RuntimePlacementManager(
            region, RuntimeConfig(chain=("greedy",))
        ).run(self._workload())
        assert [
            (o.status, o.method, o.placement) for o in by_probe.outcomes
        ] == [(o.status, o.method, o.placement) for o in by_chain.outcomes]

    def test_custom_chain_method_labels_are_backend_names(self):
        region = PartialRegion.whole_device(homogeneous_device(10, 2))
        mgr = RuntimePlacementManager(
            region, RuntimeConfig(chain=("first-fit",))
        )
        out = mgr.submit(
            RuntimeRequest(
                Module("m", [Footprint.rectangle(2, 2)]), arrival=1, lifetime=5
            )
        )
        assert out.admitted and out.method == "first-fit"

    def test_chain_validation(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RuntimeConfig(chain=("not-a-backend",)).validate()
        with pytest.raises(ValueError, match="not relocatable"):
            RuntimeConfig(chain=("1d-slots",)).validate()
        with pytest.raises(ValueError, match="at least one"):
            RuntimeConfig(chain=()).validate()


class TestPortfolioMembersConfig:
    def test_members_validated_against_registry(self):
        with pytest.raises(ValueError, match="unknown backend"):
            PortfolioPlacer(PortfolioConfig(members=("nope",)))
        with pytest.raises(ValueError, match="at least one"):
            PortfolioPlacer(PortfolioConfig(members=()))

    def test_heterogeneous_members_report_their_backends(self):
        region, modules = small_instance()
        res = PortfolioPlacer(
            PortfolioConfig(
                n_workers=1, time_limit=1.0, members=("bottom-left",)
            )
        ).place(region, modules)
        assert res.stats["member_backends"] == ["bottom-left"]
        assert res.all_placed
        res.verify()


# ----------------------------------------------------------------------
# The seeded cross-backend differential suite
# ----------------------------------------------------------------------
BUDGET_S = 0.4
#: wall-clock slack over the budget: process startup, one in-flight CP
#: subsolve, CI jitter
SLACK_S = 2.0


def _differential_instances():
    """~20 seeded instances: irregular and homogeneous fabrics."""
    out = []
    small = GeneratorConfig(
        clb_min=4, clb_max=10, bram_max=1, height_min=2, height_max=3
    )
    clb_only = GeneratorConfig(
        clb_min=4, clb_max=12, bram_max=0, height_min=2, height_max=3
    )
    for i in range(10):
        region = PartialRegion.whole_device(irregular_device(24, 8, seed=i))
        modules = ModuleGenerator(seed=100 + i, config=small).generate_set(3)
        out.append(pytest.param(region, modules, id=f"irr{i}"))
    for i in range(10):
        region = PartialRegion.whole_device(homogeneous_device(16, 6))
        modules = ModuleGenerator(seed=200 + i, config=clb_only).generate_set(3)
        out.append(pytest.param(region, modules, id=f"hom{i}"))
    return out


#: structural config overrides keeping heavy backends test-sized
_DIFF_CONFIGS = {
    "lns": LNSConfig(time_limit=BUDGET_S, sub_time_limit=0.2, stall_limit=2),
    "portfolio": PortfolioConfig(n_workers=1, time_limit=BUDGET_S),
}

_INSTANCES = _differential_instances()


@pytest.mark.parametrize("backend_name", sorted(EXPECTED_BACKENDS))
class TestCrossBackendDifferential:
    @pytest.mark.parametrize("region,modules", _INSTANCES)
    def test_verified_honest_and_budgeted(self, backend_name, region, modules):
        backend = create_backend(backend_name, _DIFF_CONFIGS.get(backend_name))
        res = backend.place(
            PlacementRequest(
                region, modules, seed=7, time_limit=BUDGET_S,
                cache=AnchorMaskCache(),
            )
        )
        # every placement a backend returns must satisfy M_a / M_b / M_c
        res.verify()
        assert res.status in (
            "optimal", "feasible", "infeasible", "unknown", "partial"
        )
        # honest flags: solved means the whole instance is placed
        assert len(res.placements) + len(res.unplaced) == len(modules)
        if res.solved:
            assert res.all_placed
            assert len(res.placements) == len(modules)
            assert res.extent is not None and res.extent > 0
        if res.proved_optimal:
            assert res.solved
        # deadlines are respected (greedy baselines finish instantly;
        # anytime engines must stop near the budget)
        assert res.elapsed <= BUDGET_S + SLACK_S
        assert res.stats.get("backend") == backend_name


# ----------------------------------------------------------------------
# The scheduling backend (temporal-cp)
# ----------------------------------------------------------------------
def _tight_region(w=4, h=2):
    return PartialRegion.whole_device(homogeneous_device(w, h))


class TestTemporalBackend:
    def test_spatial_request_degrades_to_one_tick(self):
        region, modules = small_instance()
        res = create_backend("temporal-cp").place(
            PlacementRequest(region, modules, cache=AnchorMaskCache())
        )
        # degenerate mode is plain spatial packing: results verify
        res.verify()
        assert res.solved
        assert res.stats["horizon"] == 1
        assert res.stats["makespan"] == 1
        for _, _, _, _, start, duration in res.stats["schedule"]:
            assert start == 0 and duration == 1

    def test_scheduling_request_returns_schedule_rows(self):
        region = _tight_region(4, 2)
        modules = [
            Module(f"m{i}", [Footprint.rectangle(2, 2)]) for i in range(3)
        ]
        res = create_backend("temporal-cp").place(
            PlacementRequest(
                region,
                modules,
                horizon=6,
                durations=[2, 2, 2],
                precedences=[(0, 2)],
            )
        )
        assert res.solved
        sched = res.stats["schedule"]
        assert len(sched) == 3
        rows = {name: (x, y, start, d) for name, _, x, y, start, d in sched}
        # precedence: m0 finishes before m2 starts
        assert rows["m0"][2] + rows["m0"][3] <= rows["m2"][2]
        # spatio-temporal disjointness: concurrent tasks never share cells
        placements = {p.module.name: p for p in res.placements}
        names = list(rows)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                (_, _, sa, da), (_, _, sb, db) = rows[a], rows[b]
                if sa < sb + db and sb < sa + da:  # overlap in time
                    ca = {(x, y) for x, y, _ in placements[a].absolute_cells()}
                    cb = {(x, y) for x, y, _ in placements[b].absolute_cells()}
                    assert not (ca & cb), (a, b)
        # two 2x2 tasks fit side by side; the third (serialized after m0)
        # pushes the makespan to 4
        assert res.stats["makespan"] == 4

    def test_status_never_claims_extent_optimality(self):
        region = _tight_region(4, 2)
        modules = [Module("solo", [Footprint.rectangle(2, 2)])]
        res = create_backend("temporal-cp").place(
            PlacementRequest(region, modules, horizon=4, durations=[3])
        )
        # the BnB proves *makespan* optimality; the spatial extent the
        # registry optimizes is untouched, so status stays "feasible"
        assert res.status == "feasible"
        assert res.stats["makespan_optimal"] is True
        assert not res.proved_optimal

    def test_production_path_matches_reference_oracle(self):
        from repro.core.temporal import TemporalPlacer, TemporalTask

        region = _tight_region(4, 4)
        specs = [("a", 2, 2, 2), ("b", 2, 2, 3), ("c", 2, 4, 2)]
        modules = [
            Module(n, [Footprint.rectangle(w, h)]) for n, w, h, _ in specs
        ]
        durations = [d for _, _, _, d in specs]
        res = create_backend("temporal-cp").place(
            PlacementRequest(
                region, modules, horizon=8, durations=durations,
                precedences=[(0, 1)],
            )
        )
        oracle = TemporalPlacer(horizon=8).place(
            region,
            [TemporalTask(m, d) for m, d in zip(modules, durations)],
            precedences=[(0, 1)],
        )
        assert oracle.status == "optimal"
        assert res.stats["makespan_optimal"]
        assert res.stats["makespan"] == oracle.makespan

    def test_infeasible_horizon_is_reported_honestly(self):
        region = _tight_region(2, 2)
        modules = [
            Module(f"m{i}", [Footprint.rectangle(2, 2)]) for i in range(3)
        ]
        res = create_backend("temporal-cp").place(
            PlacementRequest(region, modules, horizon=2, durations=[1, 1, 1])
        )
        assert res.status == "infeasible"
        assert not res.placements
        assert len(res.unplaced) == 3

    def test_misaligned_durations_rejected(self):
        region = _tight_region()
        modules = [Module("m", [Footprint.rectangle(1, 1)])]
        with pytest.raises(ValueError, match="align"):
            create_backend("temporal-cp").place(
                PlacementRequest(region, modules, horizon=3, durations=[1, 2])
            )

"""Communication-aware placement and distance constraints."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.comm import CommAwarePlacer, CommConfig
from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.solver import Solver
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.module import Module


class TestAbsDifference:
    @given(st.integers(0, 5), st.integers(0, 5))
    def test_solution_set(self, xa, ya):
        m = Model()
        x = m.int_var(0, xa, "x")
        y = m.int_var(0, ya, "y")
        z = m.abs_diff_of(x, y, "z")
        got = {
            (s["x"], s["y"], s["z"])
            for s in Solver(m, [x, y, z]).enumerate()
        }
        want = {
            (a, b, abs(a - b))
            for a in range(xa + 1)
            for b in range(ya + 1)
        }
        assert got == want

    def test_forward_bounds(self):
        m = Model()
        x = m.int_var(0, 3, "x")
        y = m.int_var(7, 9, "y")
        z = m.abs_diff_of(x, y, "z")
        assert z.min() == 4 and z.max() == 9

    def test_backward_bounds(self):
        m = Model()
        x = m.int_var(0, 100, "x")
        y = m.int_var(50, 50, "y")
        z = m.abs_diff_of(x, y, "z")
        z.remove_above(3)
        m.engine.fixpoint()
        assert x.min() == 47 and x.max() == 53


class TestMinDistance:
    @given(st.integers(0, 4))
    def test_solution_set(self, d):
        m = Model()
        x = m.int_var(0, 5, "x")
        y = m.int_var(0, 5, "y")
        m.add_min_distance(x, y, d)
        got = {(s["x"], s["y"]) for s in Solver(m, [x, y]).enumerate()}
        want = {
            (a, b)
            for a in range(6)
            for b in range(6)
            if abs(a - b) >= d
        }
        assert got == want

    def test_negative_rejected(self):
        m = Model()
        with pytest.raises(ValueError):
            m.add_min_distance(m.int_var(0, 1), m.int_var(0, 1), -1)


class TestCommAwarePlacement:
    def _modules(self, n=3):
        return [
            Module(f"m{i}", [Footprint.rectangle(2, 2)]) for i in range(n)
        ]

    def test_communicating_pair_placed_adjacent(self):
        region = PartialRegion.whole_device(homogeneous_device(12, 2))
        modules = self._modules(3)
        # m0 and m2 talk a lot; m1 is silent
        result = CommAwarePlacer(CommConfig(time_limit=None)).place(
            region, modules, [(0, 2, 10)]
        )
        assert result.placement.status == "optimal"
        result.placement.verify()
        ps = {p.module.name: p for p in result.placement.placements}
        assert abs(ps["m0"].x - ps["m2"].x) <= 2
        assert result.wirelength == 0 or result.wirelength is not None

    def test_extent_cap_respected(self):
        region = PartialRegion.whole_device(homogeneous_device(20, 2))
        modules = self._modules(3)
        result = CommAwarePlacer(
            CommConfig(time_limit=None, max_extent=6)
        ).place(region, modules, [(0, 1, 1)])
        assert result.placement.status == "optimal"
        assert max(p.right for p in result.placement.placements) <= 6

    def test_wirelength_matches_edges(self):
        region = PartialRegion.whole_device(homogeneous_device(12, 4))
        modules = self._modules(3)
        edges = [(0, 1, 2), (1, 2, 3)]
        result = CommAwarePlacer(CommConfig(time_limit=None)).place(
            region, modules, edges
        )
        assert result.wirelength == sum(result.edge_lengths())

    def test_validation(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 2))
        modules = self._modules(2)
        placer = CommAwarePlacer()
        with pytest.raises(ValueError):
            placer.place(region, modules, [(0, 0, 1)])
        with pytest.raises(ValueError):
            placer.place(region, modules, [(0, 5, 1)])
        with pytest.raises(ValueError):
            placer.place(region, modules, [(0, 1, 0)])

    def test_infeasible_cap(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 2))
        modules = self._modules(3)
        result = CommAwarePlacer(
            CommConfig(time_limit=None, max_extent=3)
        ).place(region, modules, [(0, 1, 1)])
        assert result.placement.status == "infeasible"

    def test_heterogeneous_comm_placement(self):
        from repro.modules.generator import GeneratorConfig, ModuleGenerator

        region = PartialRegion.whole_device(irregular_device(48, 12, seed=5))
        cfg = GeneratorConfig(clb_min=8, clb_max=16, bram_max=1,
                              height_min=2, height_max=4)
        modules = ModuleGenerator(seed=3, config=cfg).generate_set(4)
        result = CommAwarePlacer(CommConfig(time_limit=4.0)).place(
            region, modules, [(0, 1, 3), (2, 3, 1)]
        )
        assert result.placement.placements
        result.placement.verify()

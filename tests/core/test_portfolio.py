"""Parallel portfolio placer."""

from __future__ import annotations

import multiprocessing

import pytest

import repro.core.portfolio as portfolio_mod
from repro.core.portfolio import PortfolioConfig, PortfolioPlacer, _worker
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.io import region_to_dict
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module
from repro.modules.spec import module_to_dict


def small_instance():
    region = PartialRegion.whole_device(irregular_device(64, 16, seed=7))
    cfg = GeneratorConfig(clb_min=10, clb_max=24, bram_max=1,
                          height_min=3, height_max=5)
    modules = ModuleGenerator(seed=2, config=cfg).generate_set(6)
    return region, modules


class TestWorkerPayloads:
    def test_worker_round_trip(self):
        """The worker operates entirely on serialized payloads."""
        region, modules = small_instance()
        seed, extent, tuples, profile = _worker(
            region_to_dict(region),
            [module_to_dict(m) for m in modules],
            time_limit=2.0,
            seed=5,
        )
        assert seed == 5
        assert extent is not None
        assert len(tuples) == len(modules)
        names = {t[0] for t in tuples}
        assert names == {m.name for m in modules}
        assert profile is None  # not requested

    def test_worker_reports_failure(self):
        region = PartialRegion.whole_device(homogeneous_device(2, 2))
        module = Module("big", [Footprint.rectangle(3, 3)])
        seed, extent, tuples, profile = _worker(
            region_to_dict(region), [module_to_dict(module)], 0.5, 0
        )
        assert extent is None and tuples == []

    def test_worker_profile_is_plain_dict(self):
        """Profiles cross the process boundary as JSON-serializable dicts."""
        import json

        from repro.obs import SolveProfile, validate_profile

        region, modules = small_instance()
        _, extent, _, profile = _worker(
            region_to_dict(region),
            [module_to_dict(m) for m in modules],
            time_limit=2.0,
            seed=5,
            profile=True,
        )
        assert extent is not None
        assert isinstance(profile, dict)
        json.dumps(profile)  # must survive pickling AND json
        assert validate_profile(profile) == []
        restored = SolveProfile.from_dict(profile)
        assert restored.nodes > 0 and restored.propagations > 0


class TestPortfolio:
    def test_single_worker_inline(self):
        region, modules = small_instance()
        res = PortfolioPlacer(
            PortfolioConfig(n_workers=1, time_limit=2.0)
        ).place(region, modules)
        assert res.all_placed
        res.verify()
        assert res.stats["members"] == 1

    def test_parallel_members_and_best_selection(self):
        region, modules = small_instance()
        res = PortfolioPlacer(
            PortfolioConfig(n_workers=2, time_limit=2.0, base_seed=3)
        ).place(region, modules)
        assert res.all_placed
        res.verify()
        extents = res.stats["member_extents"]
        assert res.extent == min(extents)
        assert len(extents) == res.stats["solved_members"] <= 2

    def test_infeasible_instance(self):
        region = PartialRegion.whole_device(homogeneous_device(2, 2))
        modules = [Module("big", [Footprint.rectangle(3, 3)])]
        res = PortfolioPlacer(
            PortfolioConfig(n_workers=1, time_limit=0.5)
        ).place(region, modules)
        assert not res.placements
        assert res.status == "unknown"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PortfolioPlacer(PortfolioConfig(n_workers=0))

    def test_wall_clock_is_parallel(self):
        """2 workers x T budget must finish well under 2T."""
        region, modules = small_instance()
        res = PortfolioPlacer(
            PortfolioConfig(n_workers=2, time_limit=3.0)
        ).place(region, modules)
        assert res.elapsed < 5.5  # budget + process startup slack

    def test_single_worker_stats_have_no_crashes(self):
        region, modules = small_instance()
        res = PortfolioPlacer(
            PortfolioConfig(n_workers=1, time_limit=1.0)
        ).place(region, modules)
        assert res.stats["crashed_members"] == {}

    def test_profile_merged_across_members(self):
        from repro.obs import RecordingTracer, SolveProfile
        from repro.obs.trace import PORTFOLIO_RESULT

        region, modules = small_instance()
        tracer = RecordingTracer()
        res = PortfolioPlacer(
            PortfolioConfig(
                n_workers=2, time_limit=2.0, profile=True, tracer=tracer
            )
        ).place(region, modules)
        assert res.all_placed
        assert tracer.count(PORTFOLIO_RESULT) == 2
        merged = res.stats["profile"]
        assert isinstance(merged, SolveProfile)
        members = res.stats["member_profiles"]
        assert len(members) == 2
        # the merge is the exact sum of the members' counters
        total = SolveProfile(meta={"placer": "portfolio"})
        for doc in members.values():
            total = total + SolveProfile.from_dict(doc)
        assert merged.counts() == total.counts()
        assert merged.nodes > 0


# ----------------------------------------------------------------------
# Crash handling: a dying member must be reported under its real seed and
# must never sink the surviving members.
#
# The raising replacements live at module scope so ProcessPoolExecutor can
# pickle them by reference; with the "fork" start method the children
# inherit the monkeypatched ``portfolio._worker`` binding.
# ----------------------------------------------------------------------

def _crashing_worker(region_payload, module_payloads, time_limit, seed,
                     profile=False, backend="lns", incremental=True,
                     bitboard=True):
    raise RuntimeError(f"boom-{seed}")


def _odd_seed_crashing_worker(region_payload, module_payloads, time_limit,
                              seed, profile=False, backend="lns",
                              incremental=True, bitboard=True):
    if seed % 2 == 1:
        raise RuntimeError(f"boom-{seed}")
    return _worker(region_payload, module_payloads, time_limit, seed, profile,
                   backend, incremental, bitboard)


needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="monkeypatched workers only propagate to forked children",
)


class TestCrashHandling:
    def test_inline_crash_recorded_under_real_seed(self, monkeypatch):
        from repro.obs import RecordingTracer
        from repro.obs.trace import PORTFOLIO_RESULT

        region, modules = small_instance()
        monkeypatch.setattr(portfolio_mod, "_worker", _crashing_worker)
        tracer = RecordingTracer()
        res = PortfolioPlacer(
            PortfolioConfig(
                n_workers=1, time_limit=0.5, base_seed=17, tracer=tracer
            )
        ).place(region, modules)

        assert not res.placements and res.status == "unknown"
        assert res.stats["members"] == 1
        assert res.stats["crashed_members"] == {17: "RuntimeError: boom-17"}
        (event,) = tracer.by_kind(PORTFOLIO_RESULT)
        assert event.data["seed"] == 17  # the member's real seed, not -1
        assert event.data["solved"] is False
        assert event.data["error"] == "RuntimeError: boom-17"

    @needs_fork
    def test_parallel_crash_keeps_survivors(self, monkeypatch):
        from repro.obs import RecordingTracer
        from repro.obs.trace import PORTFOLIO_RESULT

        region, modules = small_instance()
        monkeypatch.setattr(
            portfolio_mod, "_worker", _odd_seed_crashing_worker
        )
        tracer = RecordingTracer()
        res = PortfolioPlacer(
            PortfolioConfig(
                n_workers=2, time_limit=2.0, base_seed=10, tracer=tracer
            )
        ).place(region, modules)

        # seed 11 crashed; seed 10 solved and must win unaffected
        assert res.all_placed
        res.verify()
        assert res.stats["crashed_members"] == {11: "RuntimeError: boom-11"}
        assert res.stats["members"] == 2
        assert res.stats["solved_members"] == 1
        assert res.stats["winning_seed"] == 10
        by_seed = {
            e.data["seed"]: e.data for e in tracer.by_kind(PORTFOLIO_RESULT)
        }
        assert set(by_seed) == {10, 11}
        assert by_seed[10]["solved"] is True and "error" not in by_seed[10]
        assert by_seed[11]["solved"] is False
        assert by_seed[11]["error"] == "RuntimeError: boom-11"

    @needs_fork
    def test_all_members_crashing_is_unsolved_not_fatal(self, monkeypatch):
        region, modules = small_instance()
        monkeypatch.setattr(portfolio_mod, "_worker", _crashing_worker)
        res = PortfolioPlacer(
            PortfolioConfig(n_workers=2, time_limit=0.5, base_seed=4)
        ).place(region, modules)
        assert not res.placements and res.status == "unknown"
        assert set(res.stats["crashed_members"]) == {4, 5}
        assert all(
            msg.startswith("RuntimeError: boom-")
            for msg in res.stats["crashed_members"].values()
        )

"""LNS construction fallback chain and neighborhood selection.

The LNS driver needs *some* incumbent before it can improve anything, so
``place`` runs a chain: CP dive → bottom-left greedy → randomized Luby
restarts.  These tests force each link to fail deterministically (a
zero-node budget kills the dive; an over-tight region wedges the greedy
bottom-left rule) and assert the next link rescues the run.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.lns import LNSConfig, LNSPlacer
from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.result import Placement
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.generator import ModuleGenerator
from repro.modules.module import Module
from repro.placer.greedy import BottomLeftPlacer


def failing_dive() -> PlacerConfig:
    """An initial CP config whose dive can never find a solution."""
    return PlacerConfig(node_limit=0, first_solution_only=True)


def tight_instance():
    """Over-tight region that wedges the greedy bottom-left rule.

    One static cell at (x=0, y=1) forces the 2x2 module out of x=0; the
    only packing that leaves a 3-run for the 3x1 module puts the square at
    x=3, but bottom-left greedily commits it to x=1 and dead-ends.  CP
    search (including randomized restarts) finds the x=3 packing.
    """
    grid = homogeneous_device(5, 2)
    mask = np.ones((2, 5), dtype=bool)
    mask[1, 0] = False
    region = PartialRegion(grid, mask, "tight")
    modules = [
        Module("A", [Footprint.rectangle(2, 2)]),
        Module("B", [Footprint.rectangle(3, 1)]),
    ]
    return region, modules


class _Spy:
    """Wraps a placer method, recording each call's config/result."""

    def __init__(self, monkeypatch, cls, attr="place"):
        self.calls = []
        real = getattr(cls, attr)
        spy = self

        def wrapper(placer_self, *args, **kwargs):
            result = real(placer_self, *args, **kwargs)
            spy.calls.append((getattr(placer_self, "config", None), result))
            return result

        monkeypatch.setattr(cls, attr, wrapper)


class TestConstructionFallbacks:
    def test_dead_dive_falls_back_to_greedy(self, monkeypatch):
        region = PartialRegion.whole_device(irregular_device(48, 12, seed=1))
        modules = ModuleGenerator(seed=2).generate_set(4)
        # precondition: the heuristic alone can solve this instance
        assert BottomLeftPlacer().place(region, modules).all_placed

        greedy = _Spy(monkeypatch, BottomLeftPlacer)
        cp = _Spy(monkeypatch, CPPlacer)
        cfg = LNSConfig(
            time_limit=3.0, stall_limit=1, seed=1, initial=failing_dive()
        )
        res = LNSPlacer(cfg).place(region, modules)

        assert res.all_placed
        res.verify()
        assert len(greedy.calls) == 1  # dive failed, greedy consulted
        assert greedy.calls[0][1].all_placed
        # greedy rescued the run: no Luby-restart construction happened
        assert not any(c.construction == "restart" for c, _ in cp.calls)

    def test_dead_dive_and_greedy_fall_back_to_restarts(self, monkeypatch):
        region, modules = tight_instance()
        # preconditions: greedy genuinely wedges, yet the instance is
        # feasible (full CP proves extent 5)
        assert not BottomLeftPlacer().place(region, modules).all_placed
        reference = CPPlacer(PlacerConfig(time_limit=5.0)).place(
            region, modules
        )
        assert reference.status == "optimal" and reference.extent == 5

        greedy = _Spy(monkeypatch, BottomLeftPlacer)
        cp = _Spy(monkeypatch, CPPlacer)
        cfg = LNSConfig(
            time_limit=5.0, stall_limit=1, seed=1, initial=failing_dive()
        )
        res = LNSPlacer(cfg).place(region, modules)

        assert res.all_placed
        res.verify()
        assert res.extent == 5
        assert len(greedy.calls) == 1
        assert not greedy.calls[0][1].all_placed  # greedy did fail
        restart_calls = [
            (c, r) for c, r in cp.calls if c.construction == "restart"
        ]
        assert len(restart_calls) == 1  # Luby restarts were the rescuer
        assert restart_calls[0][1].all_placed

    def test_whole_chain_failing_reports_no_placement(self):
        region = PartialRegion.whole_device(homogeneous_device(2, 2))
        modules = [Module("big", [Footprint.rectangle(3, 3)])]
        cfg = LNSConfig(time_limit=1.0, initial=failing_dive())
        res = LNSPlacer(cfg).place(region, modules)
        assert not res.placements
        assert res.status in ("infeasible", "unknown")


class TestNeighborhood:
    """Pins `_neighborhood` composition (regression for the O(n^2)
    list-membership scan and the dead ``chosen[:...]`` slice)."""

    def _placements(self, n=10):
        mods = [Module(f"m{i}", [Footprint.rectangle(1, 1)]) for i in range(n)]
        # module i anchored at x=i: rights are 1..n, extent n
        return [Placement(mods[i], 0, i, 0) for i in range(n)]

    def test_seeded_composition_is_pinned(self):
        placements = self._placements(10)
        placer = LNSPlacer(LNSConfig(neighborhood=5, frontier_margin=2))
        out = placer._neighborhood(placements, 10, random.Random(42))
        # frontier = rights >= 10 - 2 -> indices 7, 8, 9 (in index order),
        # then 2 filler indices drawn by the seeded shuffle
        assert out == [7, 8, 9, 1, 3]

    def test_frontier_always_included_and_no_duplicates(self):
        placements = self._placements(20)
        placer = LNSPlacer(LNSConfig(neighborhood=6, frontier_margin=3))
        for seed in range(10):
            out = placer._neighborhood(placements, 20, random.Random(seed))
            assert out[:4] == [16, 17, 18, 19]  # rights 17..20 >= 17
            assert len(out) == 6  # frontier + filler up to `neighborhood`
            assert len(set(out)) == len(out)

    def test_oversized_frontier_returned_whole(self):
        placements = self._placements(8)
        # margin 10 puts every module on the frontier; neighborhood 3 must
        # not truncate it (the frontier is why the iteration can improve)
        placer = LNSPlacer(LNSConfig(neighborhood=3, frontier_margin=10))
        out = placer._neighborhood(placements, 8, random.Random(0))
        assert out == list(range(8))

    def test_same_seed_same_neighborhood(self):
        placements = self._placements(30)
        placer = LNSPlacer(LNSConfig(neighborhood=8, frontier_margin=2))
        a = placer._neighborhood(placements, 30, random.Random(7))
        b = placer._neighborhood(placements, 30, random.Random(7))
        assert a == b

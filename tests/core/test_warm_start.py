"""Warm-started solves: the analytical seeder feeding CP and LNS.

The warm placement is an *incumbent*, never a constraint relaxation: CP
clamps its objective strictly below the seed (so every node works toward
beating it), LNS adopts it instead of the construction ladder.  Both must
fall back to their cold paths when the seeder's answer is unusable.
"""

from __future__ import annotations

import pytest

from repro.core.backend import (
    PlacementBackend,
    PlacementRequest,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.core.lns import LNSConfig, LNSPlacer
from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.result import Placement, PlacementResult
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module


def instance(n=8, seed=2, w=48, h=12):
    region = PartialRegion.whole_device(irregular_device(w, h, seed=7))
    cfg = GeneratorConfig(
        clb_min=6, clb_max=16, bram_max=1, height_min=2, height_max=4
    )
    return region, ModuleGenerator(seed=seed, config=cfg).generate_set(n)


class TestWarmStartedCP:
    def test_first_incumbent_is_free(self):
        region, modules = instance()
        cold = CPPlacer(PlacerConfig(time_limit=3.0)).place(region, modules)
        warm = CPPlacer(
            PlacerConfig(time_limit=3.0, warm_start="analytical")
        ).place(region, modules)
        warm.verify()
        assert warm.solved
        assert warm.stats["first_incumbent_nodes"] == 0
        assert cold.stats["first_incumbent_nodes"] > 0
        assert warm.stats["warm_start"]["backend"] == "analytical"

    def test_search_only_improves_on_the_seed(self):
        region, modules = instance(seed=5)
        warm = CPPlacer(
            PlacerConfig(time_limit=3.0, warm_start="analytical")
        ).place(region, modules)
        assert warm.solved
        seed_objective = warm.stats["warm_start"]["objective"]
        assert warm.extent is None or warm.extent <= seed_objective

    def test_first_solution_only_returns_the_seed_immediately(self):
        region, modules = instance()
        res = CPPlacer(
            PlacerConfig(
                time_limit=3.0,
                warm_start="analytical",
                first_solution_only=True,
            )
        ).place(region, modules)
        res.verify()
        assert res.status == "feasible"
        assert res.stats["first_incumbent_nodes"] == 0
        # no search stats at all: the CP model was never built
        assert "search" not in res.stats

    def test_unbeatable_seed_is_proven_optimal(self):
        # a single 2x2 module on a tiny fabric: the seed is trivially
        # optimal, so clamping strictly below it is Inconsistent at the
        # root and the warm placement comes back as status "optimal"
        region = PartialRegion.whole_device(homogeneous_device(2, 2))
        modules = [Module("solo", [Footprint.rectangle(2, 2)])]
        res = CPPlacer(
            PlacerConfig(time_limit=3.0, warm_start="analytical")
        ).place(region, modules)
        res.verify()
        assert res.status == "optimal"
        assert res.stats["first_incumbent_nodes"] == 0

    def test_unusable_seed_falls_back_to_cold_search(self):
        class _Partial(PlacementBackend):
            name = "partial-seeder"

            def _solve(self, request, tracer, profiling):
                return PlacementResult(
                    request.region,
                    [],
                    list(request.modules),
                    status="partial",
                )

        register_backend("partial-seeder", lambda config=None: _Partial())
        try:
            region, modules = instance(n=4)
            res = CPPlacer(
                PlacerConfig(time_limit=3.0, warm_start="partial-seeder")
            ).place(region, modules)
            res.verify()
            assert res.solved
            # cold-path bookkeeping: the incumbent cost real nodes
            assert "warm_start" not in res.stats
            assert res.stats["first_incumbent_nodes"] > 0
        finally:
            unregister_backend("partial-seeder")

    def test_request_threads_warm_start_through_backend(self):
        region, modules = instance(n=5)
        res = create_backend("cp").place(
            PlacementRequest(
                region, modules, time_limit=3.0, warm_start="analytical"
            )
        )
        res.verify()
        assert res.stats["first_incumbent_nodes"] == 0


class TestWarmStartedLNS:
    def test_seed_replaces_the_construction_ladder(self):
        region, modules = instance()
        res = LNSPlacer(
            LNSConfig(time_limit=2.0, warm_start="analytical", seed=3)
        ).place(region, modules)
        res.verify()
        assert res.all_placed
        warm = res.stats["warm_start"]
        assert warm["backend"] == "analytical"
        # the trajectory starts at the seed's objective and never worsens
        assert res.stats["initial_extent"] == warm["objective"]
        assert res.extent <= warm["objective"]

    def test_unusable_seed_falls_back_to_the_ladder(self):
        class _Broken(PlacementBackend):
            name = "broken-seeder"

            def _solve(self, request, tracer, profiling):
                return PlacementResult(
                    request.region,
                    [],
                    list(request.modules),
                    status="partial",
                )

        register_backend("broken-seeder", lambda config=None: _Broken())
        try:
            region, modules = instance(n=4)
            res = LNSPlacer(
                LNSConfig(time_limit=2.0, warm_start="broken-seeder", seed=3)
            ).place(region, modules)
            res.verify()
            assert res.all_placed
            assert "warm_start" not in res.stats
        finally:
            unregister_backend("broken-seeder")

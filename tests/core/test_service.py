"""The sharded placement service: routing, spill, determinism, modes.

The load-bearing guarantees:

* **Single-shard bit-identity** — a 1-shard service must behave exactly
  like a bare :class:`RuntimePlacementManager` on the same trace
  (submit delegates directly, so there is nothing to drift).
* **Shard determinism** — the same seeded Table-I trace through N shards
  under affinity routing yields the same merged outcome multiset run to
  run (stable content-hash routing, greedy chain: no wall-clock budgets
  anywhere on the path).
* **Modes agree** — the process-pool mode must admit/reject exactly like
  inline mode on the same trace (the worker runs the same chain on the
  same residual payloads).

Scenario tests run greedy-only so every admission decision is forced.
"""

from __future__ import annotations

import pytest

from repro.core.runtime import (
    RuntimeConfig,
    RuntimePlacementManager,
    RuntimeRequest,
    generate_workload,
)
from repro.core.service import (
    AffinityRouter,
    LeastFragmentedRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    ServiceConfig,
    ShardedPlacementService,
    available_routers,
    create_router,
    register_router,
)
from repro.experiments.config import default_fabric
from repro.fabric.devices import homogeneous_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.module import Module
from repro.obs import RecordingTracer, validate_event


def region_w(width: int, height: int = 2, name: str = "pr") -> PartialRegion:
    return PartialRegion.whole_device(homogeneous_device(width, height), name)


def rect(name: str, w: int, h: int = 2) -> Module:
    return Module(name, [Footprint.rectangle(w, h)])


def req(module: Module, arrival: int, lifetime: int = 100, deadline=None):
    return RuntimeRequest(module, arrival, lifetime, deadline)


def greedy_service_cfg(**kw) -> ServiceConfig:
    runtime_kw = kw.pop("runtime_kw", {})
    runtime_kw.setdefault("probe", "greedy")
    runtime_kw.setdefault("frag_threshold", 1.0)
    runtime_kw.setdefault("sample_timeline", False)
    return ServiceConfig(runtime=RuntimeConfig(**runtime_kw), **kw)


def outcome_key(o):
    """Order-independent fingerprint of one outcome."""
    placed = (
        (o.placement.module.name, o.placement.shape_index,
         o.placement.x, o.placement.y)
        if o.placement is not None
        else None
    )
    return (
        o.request.module.name, o.status, o.method,
        str(o.reason) if o.reason else None, o.admitted_at, placed,
    )


def outcome_multiset(outcomes):
    return sorted(outcome_key(o) for o in outcomes)


# ----------------------------------------------------------------------
# Router registry + policies
# ----------------------------------------------------------------------
class TestRouterRegistry:
    def test_default_policies_registered(self):
        assert {"round-robin", "least-loaded", "least-fragmented",
                "affinity"} <= set(available_routers())

    def test_create_unknown_router_is_loud(self):
        with pytest.raises(ValueError, match="unknown router"):
            create_router("definitely-not-registered")

    def test_duplicate_registration_is_loud_unless_replaced(self):
        register_router("test-dup", RoundRobinRouter, replace=True)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_router("test-dup", RoundRobinRouter)
            register_router("test-dup", AffinityRouter, replace=True)
            assert isinstance(create_router("test-dup"), AffinityRouter)
        finally:
            from repro.core import service

            service._ROUTERS.pop("test-dup", None)

    def test_config_validates_router_name(self):
        with pytest.raises(ValueError, match="unknown router"):
            ShardedPlacementService(
                [region_w(4)], ServiceConfig(router="nope")
            )


class TestRouterPolicies:
    def _shards(self, n=3, width=8):
        return [
            RuntimePlacementManager(
                region_w(width, name=f"s{k}"),
                RuntimeConfig(probe="greedy", frag_threshold=1.0),
            )
            for k in range(n)
        ]

    def test_round_robin_cycles_and_spills_in_rotation(self):
        router = RoundRobinRouter()
        shards = self._shards(3)
        r = req(rect("m", 2), 1)
        assert router.order(r, shards) == [0, 1, 2]
        assert router.order(r, shards) == [1, 2, 0]
        assert router.order(r, shards) == [2, 0, 1]
        assert router.order(r, shards) == [0, 1, 2]

    def test_least_loaded_prefers_emptier_shard(self):
        shards = self._shards(3)
        shards[0].submit(req(rect("a", 6), 1))
        shards[2].submit(req(rect("b", 2), 1))
        order = LeastLoadedRouter().order(req(rect("m", 2), 2), shards)
        assert order == [1, 2, 0]  # empty < lightly loaded < heavy

    def test_least_fragmented_prefers_compact_shard(self):
        shards = self._shards(2, width=8)
        # shard 0: two modules with a gap between them (fragmented free
        # space); shard 1: one compact block at the left edge
        shards[0].submit(req(rect("a", 2), 1))
        shards[0].submit(req(rect("gap", 2), 1))
        shards[0].submit(req(rect("c", 2), 1))
        shards[0].depart("gap")
        shards[1].submit(req(rect("d", 2), 1))
        frag0 = shards[0].fragmentation()
        frag1 = shards[1].fragmentation()
        assert frag0 > frag1
        order = LeastFragmentedRouter().order(req(rect("m", 2), 2), shards)
        assert order == [1, 0]

    def test_affinity_is_stable_and_name_driven(self):
        shards = self._shards(4)
        router = AffinityRouter()
        orders = {
            name: router.order(req(rect(name, 2), 1), shards)
            for name in ("mod-a", "mod-b", "mod-c", "mod-d", "mod-e")
        }
        # same name -> same order, every time (stable content hash)
        again = AffinityRouter()
        for name, order in orders.items():
            assert again.order(req(rect(name, 2), 1), shards) == order
            # spill continues round the ring from the primary
            first = order[0]
            assert order == [(first + k) % 4 for k in range(4)]
        # distinct names actually spread (not all pinned to one shard)
        assert len({o[0] for o in orders.values()}) > 1


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
class TestConstruction:
    def test_replicated_shards_are_independent(self):
        svc = ShardedPlacementService.replicated(
            region_w(6, name="dev"), 3, greedy_service_cfg()
        )
        assert svc.n_shards == 3
        names = [s.region.name for s in svc.shards]
        assert names == ["dev-s0", "dev-s1", "dev-s2"]
        svc.shards[0].submit(req(rect("a", 2), 1))
        assert svc.shards[1].placements == []

    def test_split_partitions_columns_exactly(self):
        fabric = default_fabric(40, 8)
        shards = ShardedPlacementService.split(fabric, 4)
        assert [s.width for s in shards] == [10, 10, 10, 10]
        assert all(s.height == fabric.height for s in shards)
        # cells are partitioned, never duplicated or dropped
        total = sum(s.available_area() for s in shards)
        assert total == fabric.available_area()

    def test_split_rejects_impossible_counts(self):
        with pytest.raises(ValueError):
            ShardedPlacementService.split(region_w(4), 0)
        with pytest.raises(ValueError):
            ShardedPlacementService.split(region_w(4), 5)

    def test_empty_region_list_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedPlacementService([], greedy_service_cfg())


# ----------------------------------------------------------------------
# Spill semantics
# ----------------------------------------------------------------------
class TestSpill:
    def test_request_spills_to_next_best_shard(self):
        tracer = RecordingTracer()
        svc = ShardedPlacementService(
            [region_w(2, name="s0"), region_w(4, name="s1")],
            greedy_service_cfg(router="round-robin", tracer=tracer),
        )
        # round-robin: fill -> s0 (now full), b -> s1; the third request
        # rotates back to s0 first, which must spill to s1, not queue
        assert svc.submit(req(rect("fill", 2), 1)).admitted
        assert svc.submit(req(rect("b", 2), 1)).admitted
        out = svc.submit(req(rect("spilled", 2), 2))
        assert out.admitted
        assert svc.shard_of("spilled") == "s1"
        spills = [e.data for e in tracer.by_kind("service.spill")]
        assert {"module": "spilled", "from_shard": "s0",
                "to_shard": "s1"} in spills
        # the route event names the shard that actually admitted
        routes = [e.data for e in tracer.by_kind("service.route")]
        assert {"module": "spilled", "shard": "s1",
                "policy": "round-robin", "rank": 1} in routes

    def test_spill_failure_parks_on_primary_only(self):
        tracer = RecordingTracer()
        svc = ShardedPlacementService(
            [region_w(2, name="s0"), region_w(2, name="s1")],
            greedy_service_cfg(
                router="round-robin", tracer=tracer,
                runtime_kw={"probe": "greedy", "frag_threshold": 1.0,
                            "queue_capacity": 4},
            ),
        )
        assert svc.submit(req(rect("a", 2), 1)).admitted
        assert svc.submit(req(rect("b", 2), 1)).admitted
        out = svc.submit(req(rect("c", 2), 2))
        assert out.status == "queued"
        # exactly one shard recorded the arrival (the primary); the
        # declined offer on the other shard left no trace in its stats
        arrivals = [s.stats.arrivals for s in svc.shards]
        assert sorted(arrivals) == [1, 2]
        assert svc.stats.arrivals == 3

    def test_spill_disabled_never_crosses_shards(self):
        svc = ShardedPlacementService(
            [region_w(2, name="s0"), region_w(4, name="s1")],
            greedy_service_cfg(
                router="round-robin", spill=False,
                runtime_kw={"probe": "greedy", "frag_threshold": 1.0,
                            "queue_capacity": 4},
            ),
        )
        # rotation: fill -> s0 (full), b -> s1; "stuck" routes to s0
        assert svc.submit(req(rect("fill", 2), 1)).admitted
        assert svc.submit(req(rect("b", 2), 1)).admitted
        out = svc.submit(req(rect("stuck", 2), 2))
        assert out.status == "queued"  # parked on full s0...
        assert svc.shards[1].stats.arrivals == 1  # ...s1 saw only b
        assert len(svc.shards[1].placements) == 1  # though it had room

    def test_depart_finds_module_across_shards(self):
        svc = ShardedPlacementService(
            [region_w(2, name="s0"), region_w(2, name="s1")],
            greedy_service_cfg(router="round-robin"),
        )
        svc.submit(req(rect("a", 2), 1))
        svc.submit(req(rect("b", 2), 1))  # round-robin -> s1
        assert svc.shard_of("b") == "s1"
        assert svc.depart("b") is not None
        assert svc.shard_of("b") is None
        assert svc.depart("b") is None


# ----------------------------------------------------------------------
# Determinism (the satellite pins)
# ----------------------------------------------------------------------
class TestDeterminism:
    def _table1_trace(self, n=80, seed=11):
        return generate_workload(n, seed=seed)

    def test_single_shard_is_bit_identical_to_bare_manager(self):
        trace = self._table1_trace()
        bare = RuntimePlacementManager(
            default_fabric(60, 12),
            RuntimeConfig(probe="greedy", frag_threshold=1.0,
                          sample_timeline=False),
        )
        bare_log = bare.run(trace)
        svc = ShardedPlacementService(
            [default_fabric(60, 12)], greedy_service_cfg(router="affinity")
        )
        svc_log = svc.run(trace)
        # same outcomes in the same order, placement for placement
        assert [outcome_key(o) for o in svc_log.outcomes] == [
            outcome_key(o) for o in bare_log.outcomes
        ]
        # every logical counter matches (wall-clock latency sums differ
        # between two runs by nature)
        for fieldname in (
            "arrivals", "admitted", "rejected", "departures", "defrags",
            "defrag_moves", "probe_errors", "queued_admits",
            "rejected_by_reason", "admits_by_method",
            "peak_occupied_cells",
        ):
            assert getattr(svc_log.stats, fieldname) == getattr(
                bare.stats, fieldname
            ), fieldname

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_affinity_replay_is_reproducible_run_to_run(self, n_shards):
        trace = self._table1_trace()

        def replay():
            svc = ShardedPlacementService(
                ShardedPlacementService.split(
                    default_fabric(80, 12), n_shards
                ),
                greedy_service_cfg(router="affinity"),
            )
            log = svc.run(trace)
            return outcome_multiset(log.outcomes), {
                name: (s.admitted, s.rejected)
                for name, s in log.per_shard.items()
            }

        first_outcomes, first_shards = replay()
        second_outcomes, second_shards = replay()
        assert first_outcomes == second_outcomes
        assert first_shards == second_shards
        # and the merged multiset covers every submitted request
        assert len(first_outcomes) == len(trace)

    def test_one_vs_many_shards_serve_the_same_stream(self):
        """1 shard and N shards replay the same trace: arrivals conserved
        and every admitted module lands somewhere exactly once."""
        trace = self._table1_trace(60)
        one = ShardedPlacementService(
            [default_fabric(80, 12)], greedy_service_cfg(router="affinity")
        ).run(trace)
        four = ShardedPlacementService(
            ShardedPlacementService.split(default_fabric(80, 12), 4),
            greedy_service_cfg(router="affinity"),
        ).run(trace)
        assert one.stats.arrivals == four.stats.arrivals == len(trace)
        assert one.admitted + one.rejected == len(trace)
        assert four.admitted + four.rejected == len(trace)
        admitted_names = [
            o.request.module.name for o in four.outcomes if o.admitted
        ]
        assert len(admitted_names) == len(set(admitted_names))


# ----------------------------------------------------------------------
# Execution modes
# ----------------------------------------------------------------------
class TestProcessMode:
    def test_process_mode_matches_inline_admissions(self):
        trace = generate_workload(16, seed=7)
        inline_svc = ShardedPlacementService(
            ShardedPlacementService.split(default_fabric(40, 12), 2),
            greedy_service_cfg(router="round-robin"),
        )
        inline_log = inline_svc.run(trace)
        with ShardedPlacementService(
            ShardedPlacementService.split(default_fabric(40, 12), 2),
            greedy_service_cfg(router="round-robin", mode="process",
                               workers=2),
        ) as proc_svc:
            proc_svc.warm([r.module for r in trace])
            proc_log = proc_svc.run(trace)
        # placements bit-identical; only the method label differs
        # ("greedy" vs "worker:greedy")
        def placements(log):
            return sorted(
                (o.placement.module.name, o.placement.shape_index,
                 o.placement.x, o.placement.y)
                for o in log.outcomes
                if o.admitted
            )

        assert placements(proc_log) == placements(inline_log)
        assert proc_log.stats.admitted == inline_log.stats.admitted
        assert proc_log.stats.rejected == inline_log.stats.rejected
        assert all(
            m.startswith("worker:")
            for m in proc_svc.stats.admits_by_method
        )

    def test_close_is_idempotent_and_inline_close_is_noop(self):
        svc = ShardedPlacementService([region_w(4)], greedy_service_cfg())
        svc.close()
        svc.close()

    def test_validate_rejects_bad_mode_and_workers(self):
        with pytest.raises(ValueError, match="unknown service mode"):
            ShardedPlacementService(
                [region_w(4)], greedy_service_cfg(mode="threads")
            )
        with pytest.raises(ValueError, match="workers"):
            ShardedPlacementService(
                [region_w(4)], greedy_service_cfg(workers=0)
            )


# ----------------------------------------------------------------------
# Process-resident workers (core.backend.worker)
# ----------------------------------------------------------------------
class TestWorkerHelpers:
    @pytest.fixture(autouse=True)
    def _fresh_caches(self):
        from repro.core.backend import reset_process_caches

        reset_process_caches()
        yield
        reset_process_caches()

    def test_process_cache_is_named_and_persistent(self):
        from repro.core.backend import process_cache

        a = process_cache("shard-a")
        assert process_cache("shard-a") is a  # same process, same cache
        assert process_cache("shard-b") is not a

    def test_solve_in_worker_round_trips_a_placement(self):
        from repro.core.backend import process_cache, solve_in_worker
        from repro.fabric.io import region_to_dict
        from repro.modules.spec import module_to_dict

        region = region_w(6, name="w")
        module = rect("m", 2)
        solved = solve_in_worker(
            region_to_dict(region), module_to_dict(module),
            chain=("greedy",), time_limit=0.1, cache_key="w",
        )
        assert solved is not None
        sid, x, y, backend = solved
        assert backend == "greedy" and sid == 0
        # the lookup went through the named process cache
        assert process_cache("w").misses > 0
        # definitive no-fit returns None, not an exception
        assert solve_in_worker(
            region_to_dict(region), module_to_dict(rect("big", 8)),
            chain=("greedy",), time_limit=0.1, cache_key="w",
        ) is None

    def test_warm_save_load_round_trip(self, tmp_path):
        from repro.core.backend import process_cache, warm_process_cache
        from repro.fabric.io import region_to_dict
        from repro.modules.spec import module_to_dict

        region = region_w(8, name="w2")
        modules = [rect("a", 2), rect("b", 3)]
        path = str(tmp_path / "warm.pkl")
        n = warm_process_cache(
            "w2", region_to_dict(region),
            [module_to_dict(m) for m in modules], save_path=path,
        )
        assert n == 2
        fresh = process_cache("other", load_path=path)
        fresh.warm(region, modules)  # all hits: entries came from disk
        assert fresh.misses == 0 and fresh.hits == 2

    def test_portfolio_inline_reuses_the_process_cache(self):
        """The portfolio's n_workers==1 path runs in-process: a second
        ``place`` over the same region must be served from the resident
        cache, not recompute every mask (the worker-reuse refactor)."""
        from repro.core.backend import process_cache
        from repro.core.portfolio import PortfolioConfig, PortfolioPlacer
        from repro.modules.generator import ModuleGenerator

        region = default_fabric(40, 8)
        modules = ModuleGenerator(seed=5).generate_set(3)
        placer = PortfolioPlacer(
            PortfolioConfig(n_workers=1, time_limit=2.0, members=["greedy"])
        )
        placer.place(region, modules)
        cache = process_cache("portfolio")
        misses_after_first = cache.misses
        assert misses_after_first > 0
        placer.place(region, modules)
        assert cache.misses == misses_after_first  # second run: all hits
        assert cache.hits > 0


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_service_events_validate_against_schema(self):
        tracer = RecordingTracer()
        svc = ShardedPlacementService(
            [region_w(2, name="s0"), region_w(4, name="s1")],
            greedy_service_cfg(router="round-robin", tracer=tracer),
        )
        svc.submit(req(rect("fill", 2), 1))
        svc.submit(req(rect("b", 2), 1))
        svc.submit(req(rect("spilled", 2), 2))  # s0 full -> spills to s1
        svc.drain()
        kinds = tracer.kinds()
        assert kinds.get("service.route", 0) >= 3
        assert kinds.get("service.spill", 0) >= 1
        assert kinds.get("service.drain") == 1
        for event in tracer.events:
            assert validate_event(event.to_dict()) == []

    def test_merged_profile_sums_shards_and_keeps_labels(self):
        svc = ShardedPlacementService(
            ShardedPlacementService.split(default_fabric(40, 8), 2),
            greedy_service_cfg(router="round-robin"),
        )
        svc.run(generate_workload(12, seed=2))
        per_shard = svc.profiles()
        assert [p.meta["shard"] for p in per_shard] == [
            s.region.name for s in svc.shards
        ]
        merged = svc.profile()
        assert merged.meta["shards"] == 2
        assert merged.meta["runtime.arrivals"] == sum(
            p.meta["runtime.arrivals"] for p in per_shard
        ) == 12
        # with share_cache every shard reports the *same* cache; the
        # merged record counts it once, not once per shard
        assert per_shard[0].cache_hits == per_shard[1].cache_hits
        assert merged.cache_hits == per_shard[0].cache_hits

    def test_shard_stats_merge_matches_service_stats(self):
        svc = ShardedPlacementService(
            ShardedPlacementService.split(default_fabric(40, 8), 2),
            greedy_service_cfg(router="least-loaded"),
        )
        log = svc.run(generate_workload(15, seed=4))
        merged = svc.stats
        assert merged.arrivals == sum(
            s.arrivals for s in log.per_shard.values()
        )
        assert merged.admitted == log.admitted
        assert merged.rejected == log.rejected

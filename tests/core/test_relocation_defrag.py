"""Relocation analysis and runtime defragmentation."""

from __future__ import annotations

import pytest

from repro.core.defrag import defragment
from repro.core.relocation import (
    format_relocatability,
    relocatability_report,
    relocation_distance,
    relocation_sites,
    RelocationSite,
)
from repro.core.result import Placement, PlacementResult
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.grid import FabricGrid
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.module import Module


def rect_module(name, w, h, alts=()):
    return Module(name, [Footprint.rectangle(w, h), *alts])


class TestRelocationSites:
    def test_own_position_is_a_site(self):
        region = PartialRegion.whole_device(homogeneous_device(6, 3))
        p = Placement(rect_module("a", 2, 2), 0, 1, 0)
        result = PlacementResult(region, [p])
        sites = relocation_sites(result, p, consider_alternatives=False)
        assert RelocationSite(0, 1, 0) in sites

    def test_occupied_cells_block_sites(self):
        region = PartialRegion.whole_device(homogeneous_device(6, 2))
        a = Placement(rect_module("a", 2, 2), 0, 0, 0)
        b = Placement(rect_module("b", 2, 2), 0, 4, 0)
        result = PlacementResult(region, [a, b])
        sites = relocation_sites(result, b, consider_alternatives=False)
        xs = {s.x for s in sites}
        assert xs == {2, 3, 4}  # x=0,1 blocked by a; 2..4 free/own

    def test_alternatives_add_sites(self):
        # 2x1 corridor region: the tall alternative never fits, the flat does
        region = PartialRegion.whole_device(homogeneous_device(6, 1))
        module = Module(
            "p", [Footprint.rectangle(2, 1), Footprint.rectangle(1, 2)]
        )
        p = Placement(module, 0, 0, 0)
        result = PlacementResult(region, [p])
        with_alts = relocation_sites(result, p, consider_alternatives=True)
        without = relocation_sites(result, p, consider_alternatives=False)
        assert len(with_alts) == len(without)  # alt shape adds nothing here

        region2 = PartialRegion.whole_device(homogeneous_device(6, 2))
        result2 = PlacementResult(region2, [Placement(module, 0, 0, 0)])
        with2 = relocation_sites(result2, result2.placements[0], True)
        without2 = relocation_sites(result2, result2.placements[0], False)
        assert len(with2) > len(without2)

    def test_resource_pattern_must_match(self):
        g = FabricGrid.from_rows(["..B..B.."])
        region = PartialRegion.whole_device(g)
        fp = Footprint([(0, 0, ResourceType.CLB), (1, 0, ResourceType.BRAM)])
        p = Placement(Module("m", [fp]), 0, 1, 0)
        result = PlacementResult(region, [p])
        sites = relocation_sites(result, p, consider_alternatives=False)
        assert {s.x for s in sites} == {1, 4}  # anchors left of each BRAM col

    def test_report_and_format(self):
        region = PartialRegion.whole_device(irregular_device(32, 10, seed=3))
        from repro.modules.generator import ModuleGenerator

        mod = ModuleGenerator(seed=4).generate()
        from repro.core.placer import place

        res = place(region, [mod], time_limit=2.0, first_solution_only=True)
        rows = relocatability_report(res)
        assert len(rows) == 1
        assert rows[0].sites_with_alternatives >= rows[0].sites_same_shape
        assert rows[0].gain >= 1.0
        assert mod.name in format_relocatability(rows)

    def test_relocation_distance(self):
        p = Placement(rect_module("a", 2, 2), 0, 0, 0)
        # move to x=4: old columns {0,1}, new {4,5} -> 4 frames
        assert relocation_distance(p, RelocationSite(0, 4, 0)) == 4
        # overlapping move to x=1: columns {0,1,2} -> 3 frames
        assert relocation_distance(p, RelocationSite(0, 1, 0)) == 3


class TestDefrag:
    def test_compacts_gap(self):
        region = PartialRegion.whole_device(homogeneous_device(10, 2))
        a = Placement(rect_module("a", 2, 2), 0, 0, 0)
        b = Placement(rect_module("b", 2, 2), 0, 6, 0)  # gap at x=2..5
        result = PlacementResult(region, [a, b])
        out = defragment(result)
        assert out.final_extent == 4
        assert out.improvement == 4
        assert len(out.moves) == 1
        assert out.moves[0].module == "b"
        out.result.verify()

    def test_already_compact_is_noop(self):
        region = PartialRegion.whole_device(homogeneous_device(6, 2))
        a = Placement(rect_module("a", 2, 2), 0, 0, 0)
        b = Placement(rect_module("b", 2, 2), 0, 2, 0)
        out = defragment(PlacementResult(region, [a, b]))
        assert out.moves == []
        assert out.improvement == 0

    def test_shape_change_policy(self):
        # an L-gap only the rotated alternative fits into
        region = PartialRegion.whole_device(homogeneous_device(5, 2))
        blocker = Placement(rect_module("blk", 2, 2), 0, 0, 0)
        tall = Footprint.rectangle(1, 2)
        wide = Footprint.rectangle(2, 1)
        poly = Module("p", [wide, tall])
        moved = Placement(poly, 0, 3, 0)  # wide at x=3 -> extent 5
        result = PlacementResult(region, [blocker, moved])
        frozen = defragment(result, allow_shape_change=False)
        free = defragment(result, allow_shape_change=True)
        # with shape change, 'p' can stand upright at x=2 -> extent 3
        assert free.final_extent <= frozen.final_extent
        assert free.final_extent == 3
        assert any(m.changed_shape for m in free.moves)
        free.result.verify()

    def test_respects_move_budget(self):
        region = PartialRegion.whole_device(homogeneous_device(20, 2))
        ps = [
            Placement(rect_module(f"m{i}", 2, 2), 0, 4 * i + 2, 0)
            for i in range(4)
        ]
        out = defragment(PlacementResult(region, ps), max_moves=1)
        assert len(out.moves) <= 1

    def test_total_frames_accumulates(self):
        region = PartialRegion.whole_device(homogeneous_device(10, 2))
        a = Placement(rect_module("a", 2, 2), 0, 4, 0)
        out = defragment(PlacementResult(region, [a]))
        assert out.total_frames == sum(m.frames for m in out.moves)
        assert out.final_extent == 2

    def test_heterogeneous_defrag_valid(self):
        from repro.core.placer import place
        from repro.modules.generator import ModuleGenerator

        region = PartialRegion.whole_device(irregular_device(64, 14, seed=6))
        mods = ModuleGenerator(seed=8).generate_set(5)
        res = place(region, mods, time_limit=3.0, first_solution_only=True)
        assert res.all_placed
        out = defragment(res, allow_shape_change=True)
        out.result.verify()
        assert out.final_extent <= out.initial_extent


class TestRelocationSitesCache:
    """S3: relocation_sites routed through the shared AnchorMaskCache
    must be bit-identical to the uncached path."""

    def _states(self):
        from repro.core.placer import place
        from repro.modules.generator import GeneratorConfig, ModuleGenerator

        cfg = GeneratorConfig(
            clb_min=4, clb_max=12, bram_max=1,
            height_min=2, height_max=3, max_width=4,
        )
        for seed in (3, 6, 11):
            region = PartialRegion.whole_device(
                irregular_device(40, 10, seed=seed, bram_stride=6, jitter=1)
            )
            mods = ModuleGenerator(seed=seed, config=cfg).generate_set(5)
            res = place(region, mods, time_limit=3.0, first_solution_only=True)
            if res.placements:
                yield res

    def test_cached_sites_bit_identical(self):
        from repro.fabric.cache import AnchorMaskCache

        cache = AnchorMaskCache()
        checked = 0
        for result in self._states():
            for p in result.placements:
                for alts in (True, False):
                    plain = relocation_sites(
                        result, p, consider_alternatives=alts
                    )
                    cached = relocation_sites(
                        result, p, consider_alternatives=alts, cache=cache
                    )
                    assert plain == cached
                    checked += 1
        assert checked > 0
        # the whole point: repeated probes of the same residual
        # floorplan are served from cache
        assert cache.hits > 0

    def test_defragment_cached_oracle_identical(self):
        """The instant pass with a cache must replay the uncached pass
        move for move (the cache changes cost, never answers)."""
        from repro.fabric.cache import AnchorMaskCache

        for result in self._states():
            for allow in (False, True):
                plain = defragment(result, allow_shape_change=allow)
                cached = defragment(
                    result,
                    allow_shape_change=allow,
                    cache=AnchorMaskCache(),
                )
                assert plain.moves == cached.moves
                assert plain.final_extent == cached.final_extent
                assert [
                    (p.module.name, p.shape_index, p.x, p.y)
                    for p in plain.result.placements
                ] == [
                    (p.module.name, p.shape_index, p.x, p.y)
                    for p in cached.result.placements
                ]

"""PlacementResult, verification, reports and rendering."""

from __future__ import annotations

import pytest

from repro.core.report import placement_report, render_placement, side_by_side
from repro.core.result import Placement, PlacementResult
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.grid import FabricGrid
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.module import Module


def region_4x2():
    return PartialRegion.whole_device(homogeneous_device(4, 2))


def mod(name="m", w=2, h=1):
    return Module(name, [Footprint.rectangle(w, h)])


class TestPlacement:
    def test_geometry(self):
        p = Placement(mod(w=2, h=2), 0, 1, 0)
        assert p.right == 3 and p.top == 2
        assert (1, 0, ResourceType.CLB) in p.absolute_cells()

    def test_overlap_detection(self):
        a = Placement(mod("a"), 0, 0, 0)
        b = Placement(mod("b"), 0, 1, 0)
        c = Placement(mod("c"), 0, 2, 0)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestVerification:
    def test_valid_placement_passes(self):
        r = PlacementResult(region_4x2(), [Placement(mod(), 0, 0, 0)])
        r.verify()

    def test_out_of_bounds_rejected(self):
        r = PlacementResult(region_4x2(), [Placement(mod(w=3), 0, 2, 0)])
        with pytest.raises(ValueError, match="M_a"):
            r.verify()

    def test_static_region_rejected(self):
        g = homogeneous_device(4, 2)
        region = PartialRegion.with_static_box(g, 0, 0, 2, 2)
        r = PlacementResult(region, [Placement(mod(), 0, 0, 0)])
        with pytest.raises(ValueError, match="M_a"):
            r.verify()

    def test_resource_mismatch_rejected(self):
        g = FabricGrid.from_rows(["B..."])
        region = PartialRegion.whole_device(g)
        r = PlacementResult(region, [Placement(mod(w=2, h=1), 0, 0, 0)])
        with pytest.raises(ValueError, match="M_b"):
            r.verify()

    def test_overlap_rejected(self):
        r = PlacementResult(
            region_4x2(),
            [Placement(mod("a"), 0, 0, 0), Placement(mod("b"), 0, 1, 0)],
        )
        with pytest.raises(ValueError, match="M_c"):
            r.verify()

    def test_extent_computed(self):
        r = PlacementResult(
            region_4x2(), [Placement(mod(), 0, 0, 0), Placement(mod(), 0, 2, 0)]
        )
        assert r.extent == 4
        assert r.used_cells() == 4

    def test_occupancy_mask(self):
        r = PlacementResult(region_4x2(), [Placement(mod(), 0, 1, 1)])
        mask = r.occupancy_mask()
        assert mask[1, 1] and mask[1, 2]
        assert mask.sum() == 2


class TestReporting:
    def _result(self):
        region = PartialRegion.whole_device(irregular_device(16, 6, seed=4))
        fp = Footprint.rectangle(2, 2)
        return PlacementResult(
            region,
            [Placement(Module("demo", [fp]), 0, 1, 1)],
            [Module("lost", [fp])],
        )

    def test_report_mentions_modules(self):
        rep = placement_report(self._result())
        assert "demo" in rep
        assert "UNPLACED" in rep
        assert "utilization" in rep

    def test_render_uses_module_chars(self):
        out = render_placement(self._result())
        assert "0" in out  # first module drawn as '0'
        lines = out.splitlines()
        assert len(lines) == 6
        assert all(len(l) == 16 for l in lines)

    def test_render_marks_static(self):
        g = homogeneous_device(4, 2)
        region = PartialRegion.with_static_box(g, 0, 0, 2, 2)
        r = PlacementResult(region, [])
        assert "#" in render_placement(r)

    def test_side_by_side(self):
        out = side_by_side("ab\ncd", "xyz\nuvw\nrst", labels=("L", "R"))
        lines = out.splitlines()
        assert lines[0].startswith("L")
        assert "R" in lines[0]
        assert len(lines) == 4

    def test_summary_fields(self):
        s = self._result().summary()
        assert "placed=1" in s and "unplaced=1" in s

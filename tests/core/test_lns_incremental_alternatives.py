"""LNS placer, incremental placement, alternative expansion."""

from __future__ import annotations

import pytest

from repro.core.alternatives import (
    expand_alternatives,
    legal_rigid_transforms,
    with_alternatives,
)
from repro.core.incremental import IncrementalPlacer
from repro.core.lns import LNSConfig, LNSPlacer
from repro.core.placer import PlacerConfig
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module
from repro.modules.transform import build_body, rotate90


class TestLNS:
    def _instance(self, n=6):
        region = PartialRegion.whole_device(irregular_device(64, 16, seed=7))
        modules = ModuleGenerator(seed=2).generate_set(n)
        return region, modules

    def test_produces_valid_improving_placement(self):
        region, modules = self._instance()
        res = LNSPlacer(LNSConfig(time_limit=4.0, seed=1)).place(region, modules)
        assert res.all_placed
        res.verify()
        traj = res.stats["trajectory"]
        values = [v for _, v in traj]
        assert values == sorted(values, reverse=True)
        assert res.extent == values[-1]

    def test_respects_time_budget(self):
        region, modules = self._instance()
        res = LNSPlacer(LNSConfig(time_limit=2.0, seed=1)).place(region, modules)
        assert res.elapsed < 6.0  # budget + slack for the last subsolve

    def test_stall_limit_terminates_early(self):
        region, modules = self._instance(3)
        cfg = LNSConfig(time_limit=60.0, stall_limit=2, sub_time_limit=0.3, seed=1)
        res = LNSPlacer(cfg).place(region, modules)
        assert res.elapsed < 30.0
        assert res.all_placed

    def test_infeasible_instance_reported(self):
        region = PartialRegion.whole_device(homogeneous_device(2, 2))
        modules = [Module("big", [Footprint.rectangle(3, 3)])]
        res = LNSPlacer(LNSConfig(time_limit=1.0)).place(region, modules)
        assert not res.placements
        assert res.status in ("infeasible", "unknown")

    def test_never_worse_than_initial(self):
        region, modules = self._instance()
        cfg = LNSConfig(time_limit=3.0, seed=5)
        res = LNSPlacer(cfg).place(region, modules)
        assert res.extent <= res.stats["initial_extent"]


class TestIncremental:
    def _placer(self):
        region = PartialRegion.whole_device(homogeneous_device(12, 4))
        return IncrementalPlacer(region, PlacerConfig(time_limit=1.0,
                                                      first_solution_only=True))

    def test_add_and_remove(self):
        inc = self._placer()
        m = Module("a", [Footprint.rectangle(3, 2)])
        p = inc.add(m)
        assert p is not None
        assert inc.occupancy().sum() == 6
        inc.remove("a")
        assert inc.occupancy().sum() == 0

    def test_duplicate_add_rejected(self):
        inc = self._placer()
        m = Module("a", [Footprint.rectangle(2, 2)])
        inc.add(m)
        with pytest.raises(ValueError):
            inc.add(m)

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            self._placer().remove("ghost")

    def test_modules_do_not_overlap(self):
        inc = self._placer()
        for i in range(4):
            assert inc.add(Module(f"m{i}", [Footprint.rectangle(3, 2)])) is not None
        result = inc.result()
        result.verify()
        assert len(result.placements) == 4

    def test_rejection_when_full(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 2))
        inc = IncrementalPlacer(region, PlacerConfig(time_limit=1.0,
                                                     first_solution_only=True))
        assert inc.add(Module("a", [Footprint.rectangle(4, 2)])) is not None
        assert inc.add(Module("b", [Footprint.rectangle(1, 1)])) is None

    def test_add_all_reports_rejects(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 2))
        inc = IncrementalPlacer(region, PlacerConfig(time_limit=1.0,
                                                     first_solution_only=True))
        mods = [
            Module("a", [Footprint.rectangle(4, 2)]),
            Module("b", [Footprint.rectangle(2, 2)]),
        ]
        rejected = inc.add_all(mods)
        assert [m.name for m in rejected] == ["b"]

    def test_removal_frees_space_for_new_module(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 2))
        inc = IncrementalPlacer(region, PlacerConfig(time_limit=1.0,
                                                     first_solution_only=True))
        inc.add(Module("a", [Footprint.rectangle(4, 2)]))
        assert inc.add(Module("b", [Footprint.rectangle(2, 1)])) is None
        inc.remove("a")
        assert inc.add(Module("b2", [Footprint.rectangle(2, 1)])) is not None


class TestAlternatives:
    def test_bram_modules_never_rotated_90(self):
        base = build_body(12, 4, bram_cells=2, bram_column=1)
        transforms = legal_rigid_transforms(base)
        rotated = rotate90(base)
        for t in transforms:
            assert t(base) != rotated

    def test_clb_modules_may_rotate_90(self):
        base = Footprint.rectangle(3, 2)
        outputs = {t(base) for t in legal_rigid_transforms(base)}
        assert rotate90(base) in outputs

    def test_expand_produces_distinct_shapes(self):
        base = build_body(18, 5, bram_cells=2, bram_column=1)
        alts = expand_alternatives(base, max_alternatives=4)
        assert 1 <= len(alts) <= 4
        assert len(set(alts)) == len(alts)
        assert alts[0] == base

    def test_expand_respects_cap(self):
        base = build_body(18, 5)
        assert len(expand_alternatives(base, max_alternatives=2)) <= 2
        with pytest.raises(ValueError):
            expand_alternatives(base, max_alternatives=0)

    def test_with_alternatives_builds_module(self):
        m = with_alternatives("fir", build_body(12, 4), max_alternatives=3)
        assert m.name == "fir"
        assert 1 <= m.n_alternatives <= 3

    def test_alternatives_preserve_resources(self):
        base = build_body(20, 5, bram_cells=3, bram_column=2)
        for alt in expand_alternatives(base, max_alternatives=4):
            assert alt.resource_counts() == base.resource_counts()

"""The defragmenter registry and no-break execution on the runtime clock.

Covers the engine surface the property suite doesn't: the registry
contract (mirroring backends/routers), config validation, the S2
latency-accounting split, and deterministic no-break scenarios where
move windows interact with admissions, departures and the drain.
"""

from __future__ import annotations

import time

import pytest

from repro.core.defrag import (
    DefragPlan,
    Defragmenter,
    GreedyCompactionDefragmenter,
    NoBreakDefragmenter,
    available_defragmenters,
    create_defragmenter,
    register_defragmenter,
    unregister_defragmenter,
)
from repro.core.runtime import (
    RuntimeConfig,
    RuntimePlacementManager,
    RuntimeRequest,
)
from repro.fabric.devices import homogeneous_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.module import Module
from repro.obs.schema import validate_event
from repro.obs.trace import RecordingTracer


def rect(name, w, h=1):
    return Module(name, [Footprint.rectangle(w, h)])


def req(module, arrival, lifetime=100):
    return RuntimeRequest(module=module, arrival=arrival, lifetime=lifetime)


def corridor(width=8):
    return PartialRegion.whole_device(homogeneous_device(width, 1))


def no_break_cfg(**kw):
    kw.setdefault("probe", "greedy")
    kw.setdefault("defragmenter", "no-break")
    kw.setdefault("frag_threshold", 1.0)  # reject-triggered passes only
    kw.setdefault("verify_moves", True)
    kw.setdefault("sample_timeline", False)
    return RuntimeConfig(**kw)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestDefragmenterRegistry:
    def test_builtins_registered(self):
        names = available_defragmenters()
        assert "greedy-compaction" in names
        assert "no-break" in names

    def test_create_returns_fresh_instances(self):
        a = create_defragmenter("no-break")
        b = create_defragmenter("no-break")
        assert isinstance(a, NoBreakDefragmenter)
        assert a is not b

    def test_unknown_name_is_loud_and_lists_known(self):
        with pytest.raises(ValueError, match="no-break"):
            create_defragmenter("definitely-not-registered")

    def test_duplicate_registration_is_loud(self):
        with pytest.raises(ValueError, match="already registered"):
            register_defragmenter("no-break", NoBreakDefragmenter)

    def test_replace_and_unregister(self):
        try:
            register_defragmenter("tmp-defrag", GreedyCompactionDefragmenter)
            register_defragmenter(
                "tmp-defrag", NoBreakDefragmenter, replace=True
            )
            assert isinstance(
                create_defragmenter("tmp-defrag"), NoBreakDefragmenter
            )
        finally:
            unregister_defragmenter("tmp-defrag")
        assert "tmp-defrag" not in available_defragmenters()

    def test_config_validates_defragmenter_name(self):
        with pytest.raises(ValueError, match="unknown defragmenter"):
            RuntimeConfig(defragmenter="nope").validate()
        with pytest.raises(ValueError, match="defrag_frames_per_tick"):
            RuntimeConfig(defrag_frames_per_tick=0).validate()


# ----------------------------------------------------------------------
# S2: defrag wall time is not the triggering request's latency
# ----------------------------------------------------------------------
class _SlowNoopDefragmenter(Defragmenter):
    """Sleeps, then plans nothing — pure measurable defrag overhead."""

    name = "slow-noop-test"
    instant = True

    def plan(self, result, allow_shape_change=False, max_moves=None,
             cache=None):
        time.sleep(0.08)
        extent = result.extent or 0
        return DefragPlan(
            result=result, moves=[],
            initial_extent=extent, final_extent=extent, instant=True,
        )


class TestDefragLatencyAccounting:
    def test_reject_triggered_pass_charged_to_defrag_time(self):
        """Regression: ``_try_admit`` charged the whole reject-triggered
        defrag pass to the triggering request's ``latency_s``, skewing
        the p99 admission-latency gate.  The pass belongs in
        ``RuntimeStats.defrag_time_s``; the request's latency stays its
        own placement-probe time."""
        try:
            register_defragmenter("slow-noop-test", _SlowNoopDefragmenter)
            mgr = RuntimePlacementManager(
                corridor(8),
                RuntimeConfig(
                    probe="greedy",
                    defragmenter="slow-noop-test",
                    frag_threshold=1.0,
                    queue_capacity=0,
                    sample_timeline=False,
                ),
            )
            assert mgr.submit(req(rect("a", 2), 0)).admitted
            # 9 wide never fits the 8-wide corridor -> reject path,
            # which triggers the (slow) defrag pass
            outcome = mgr.submit(req(rect("big", 9), 1))
            assert outcome.status == "rejected"
            assert mgr.stats.defrag_time_s >= 0.08
            assert outcome.latency_s < mgr.stats.defrag_time_s
            # the split is exclusive: the request's own latency did not
            # absorb the sleep
            assert outcome.latency_s < 0.04
        finally:
            unregister_defragmenter("slow-noop-test")


# ----------------------------------------------------------------------
# No-break execution on the logical clock
# ----------------------------------------------------------------------
class TestNoBreakExecution:
    def _fragmented_corridor(self, tracer=None, **cfg_kw):
        """a(2)|b(2)|c(2) in an 8-corridor; b departs at t=5, leaving
        the gap a..[gap]..c that blocks a 4-wide arrival."""
        mgr = RuntimePlacementManager(
            corridor(8), no_break_cfg(tracer=tracer, **cfg_kw)
        )
        assert mgr.submit(req(rect("a", 2), 0)).admitted
        assert mgr.submit(req(rect("b", 2), 0, lifetime=5)).admitted
        assert mgr.submit(req(rect("c", 2), 0)).admitted
        assert [p.x for p in mgr.placements] == [0, 2, 4]
        return mgr

    def test_move_window_holds_both_source_and_target(self):
        tracer = RecordingTracer()
        mgr = self._fragmented_corridor(tracer=tracer)
        # t=6: b is gone; d(4) does not fit (free: x=2..3, 6..7) -> the
        # reject triggers a no-break plan: slide c from x=4 to x=2
        outcome = mgr.submit(req(rect("d", 4), 6))
        assert outcome.status == "queued"
        assert mgr.moves_in_flight == 1
        # during the window the slide holds x=2..5: source, target and
        # every glided-over cell are all occupied
        occ = mgr.occupancy_mask()
        assert occ[0, 2] and occ[0, 3] and occ[0, 4] and occ[0, 5]
        started = [
            e for e in tracer.events
            if e.kind == "runtime.defrag.step"
            and e.data["status"] == "started"
        ]
        assert len(started) == 1
        assert started[0].data["move_kind"] == "slide"

    def test_completion_frees_space_and_admits_pending(self):
        mgr = self._fragmented_corridor()
        outcome = mgr.submit(req(rect("d", 4), 6))
        assert outcome.status == "queued"
        mgr.advance_to(7)  # the 4-frame slide lasts 1 tick at 8 f/tick
        assert mgr.moves_in_flight == 0
        assert outcome.status == "admitted"
        assert outcome.admitted_at == 7
        placed = {p.module.name: p.x for p in mgr.placements}
        assert placed["c"] == 2  # slid left into b's gap
        assert placed["d"] == 4  # admitted into the freed right half
        assert mgr.stats.defrag_executed_moves == 1
        assert mgr.stats.defrag_aborted_moves == 0
        mgr.check_invariants()

    def test_mover_departure_mid_window_aborts(self):
        tracer = RecordingTracer()
        mgr = RuntimePlacementManager(
            corridor(8),
            no_break_cfg(tracer=tracer, defrag_frames_per_tick=1),
        )
        assert mgr.submit(req(rect("a", 2), 0)).admitted
        assert mgr.submit(req(rect("b", 2), 0, lifetime=5)).admitted
        # c's lifetime ends at t=8, inside the 4-tick window starting t=6
        assert mgr.submit(req(rect("c", 2), 0, lifetime=8)).admitted
        mgr.submit(req(rect("d", 4), 6))  # queues; plan starts at t=6
        assert mgr.moves_in_flight == 1
        mgr.advance_to(20)
        assert mgr.stats.defrag_executed_moves == 0
        assert mgr.stats.defrag_aborted_moves == 1
        aborted = [
            e for e in tracer.events
            if e.kind == "runtime.defrag.step"
            and e.data["status"] == "aborted"
        ]
        assert [e.data["module"] for e in aborted] == ["c"]
        # the window was released with the mover: d fit once c left
        assert {p.module.name for p in mgr.placements} >= {"a", "d"}
        mgr.check_invariants()

    def test_drain_finishes_in_flight_moves(self):
        mgr = self._fragmented_corridor()
        outcome = mgr.submit(req(rect("d", 4), 6))
        assert mgr.moves_in_flight == 1
        mgr.drain()
        assert mgr.moves_in_flight == 0
        assert outcome.status == "admitted"
        mgr.check_invariants()

    def test_step_events_validate_against_schema(self):
        tracer = RecordingTracer()
        mgr = self._fragmented_corridor(tracer=tracer)
        mgr.submit(req(rect("d", 4), 6))
        mgr.drain()
        steps = [
            e for e in tracer.events if e.kind == "runtime.defrag.step"
        ]
        assert steps
        for event in steps:
            assert validate_event(event.to_dict()) == []

    def test_profile_carries_move_counters(self):
        mgr = self._fragmented_corridor()
        mgr.submit(req(rect("d", 4), 6))
        mgr.drain()
        meta = mgr.profile().meta
        assert meta["runtime.defrag_planned"] == 1
        assert meta["runtime.defrag_executed"] == 1
        assert meta["runtime.defrag_aborted"] == 0
        assert meta["runtime.defrag_time_s"] >= 0.0

    def test_window_cells_rejected_for_admission(self):
        """An arrival during the move window may not claim window cells:
        d(2) arriving mid-window must go to x=6, not into the still-held
        slide corridor."""
        mgr = self._fragmented_corridor()
        mgr.submit(req(rect("big", 4), 6))  # queues, starts the slide
        small = mgr.submit(req(rect("s", 2), 6))
        assert small.admitted
        assert small.placement.x == 6
        mgr.check_invariants()

"""Reservation-based admission: booking, commit, expiry — and the
bit-identity of the ``reservation_horizon == 0`` replay with the
pre-reservation manager, pinned by golden fingerprints captured on the
commit that introduced the feature."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.runtime import (
    RejectReason,
    Reservation,
    RuntimeConfig,
    RuntimePlacementManager,
    RuntimeRequest,
    generate_workload,
)
from repro.core.service import ServiceConfig, ShardedPlacementService
from repro.experiments.runtime_exp import (
    default_runtime_region,
    default_runtime_trace,
)
from repro.fabric.devices import homogeneous_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig
from repro.modules.module import Module
from repro.obs import RecordingTracer, validate_event


# ----------------------------------------------------------------------
# Golden fingerprints: the horizon=0 replay must stay bit-identical to
# the pre-reservation manager (captured on the parent commit)
# ----------------------------------------------------------------------
MANAGER_FP = "84d041048a545d6ea95f0cb80a5fd883"
SERVICE_FP = {
    "least-loaded": "be9a376af213cc38139631892db41329",
    "least-fragmented": "3c03d3ceec9f796558efb2da519fb145",
}
WORKLOAD_FP = {
    "w12_s0": "651a92103930bf9b3e71c056629ee7de",
    "w60_s7": "7b6b7fb46f6e3a1395653b9d74950504",
    "w30_s5_slack": "25f767b530eb2e439b683b9c4a9b260a",
}


def _outcome_row(o):
    p = o.placement
    return (
        o.request.module.name,
        o.status,
        o.method,
        str(o.reason) if o.reason is not None else None,
        (p.module.name, p.shape_index, p.x, p.y) if p is not None else None,
        o.admitted_at,
    )


def _profile_row(profile):
    # wall-clock fields can never be deterministic; reservation counters
    # post-date the golden capture (asserted zero separately below)
    meta = {
        k: v
        for k, v in sorted(profile.meta.items())
        if not k.endswith("_s")
        and not k.endswith("latency_s")
        and "reservation" not in k
    }
    return {
        "cache_hits": profile.cache_hits,
        "cache_misses": profile.cache_misses,
        "cache_narrowed": profile.cache_narrowed,
        "cache_evictions": profile.cache_evictions,
        "meta": meta,
    }


def _fingerprint(payload) -> str:
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


class TestHorizonZeroBitIdentity:
    def test_manager_replay_matches_golden(self):
        mgr = RuntimePlacementManager(
            default_runtime_region(), RuntimeConfig(probe="greedy")
        )
        log = mgr.run(default_runtime_trace(60, seed=7))
        payload = {
            "outcomes": [_outcome_row(o) for o in log.outcomes],
            "profile": _profile_row(mgr.profile()),
        }
        assert _fingerprint(payload) == MANAGER_FP
        # at horizon 0 the reservation machinery must be fully dormant
        s = mgr.stats
        assert s.reservations_booked == 0
        assert s.reservation_admits == 0
        assert s.reservations_expired == 0
        assert not mgr.reservations

    @pytest.mark.parametrize("router", sorted(SERVICE_FP))
    def test_service_replay_matches_golden(self, router):
        shards = ShardedPlacementService.split(default_runtime_region(), 4)
        svc = ShardedPlacementService(
            shards,
            ServiceConfig(
                router=router,
                runtime=RuntimeConfig(probe="greedy", sample_timeline=False),
            ),
        )
        slog = svc.run(default_runtime_trace(60, seed=7))
        payload = {
            "outcomes": [_outcome_row(o) for o in slog.outcomes],
            "shard_of": dict(sorted(slog.shard_of.items())),
            "profile": _profile_row(svc.profile()),
        }
        assert _fingerprint(payload) == SERVICE_FP[router]
        assert slog.stats.reservations_booked == 0

    def test_workload_traces_byte_identical(self):
        def blob(reqs):
            rows = [
                (
                    r.module.name,
                    sorted(
                        tuple(c) for fp in r.module.shapes for c in fp.cells
                    ),
                    r.arrival,
                    r.lifetime,
                    r.deadline,
                )
                for r in reqs
            ]
            return _fingerprint(rows)

        assert blob(generate_workload(12, seed=0)) == WORKLOAD_FP["w12_s0"]
        assert (
            blob(
                generate_workload(
                    60,
                    seed=7,
                    mean_interarrival=2,
                    mean_lifetime=24,
                    generator_config=GeneratorConfig(
                        clb_min=12,
                        clb_max=48,
                        bram_max=2,
                        height_min=3,
                        height_max=6,
                    ),
                )
            )
            == WORKLOAD_FP["w60_s7"]
        )
        assert (
            blob(generate_workload(30, seed=5, deadline_slack=40))
            == WORKLOAD_FP["w30_s5_slack"]
        )

    def test_scheduling_fields_do_not_perturb_primary_draws(self):
        base = generate_workload(20, seed=3)
        ext = generate_workload(
            20, seed=3, duration_range=(1, 4), precedence_p=0.5
        )
        assert [(r.module.name, r.arrival, r.lifetime) for r in base] == [
            (r.module.name, r.arrival, r.lifetime) for r in ext
        ]
        assert all(
            r.duration is not None and 1 <= r.duration <= 4 for r in ext
        )
        names = {r.module.name for r in ext}
        assert any(r.after is not None for r in ext)
        assert all(r.after in names for r in ext if r.after is not None)


# ----------------------------------------------------------------------
# Reservation mechanics on a hand-built fabric
# ----------------------------------------------------------------------
def tiny_region(w=4, h=2):
    return PartialRegion.whole_device(homogeneous_device(w, h))


def block(name, w=2, h=2):
    return Module(name, [Footprint.rectangle(w, h)])


def req(name, arrival, lifetime, deadline=None, w=2, h=2):
    return RuntimeRequest(
        block(name, w, h), arrival=arrival, lifetime=lifetime,
        deadline=deadline,
    )


def resv_config(**kw):
    kw.setdefault("probe", "greedy")
    kw.setdefault("queue_capacity", 0)
    kw.setdefault("reservation_horizon", 10)
    kw.setdefault("frag_threshold", 1.0)
    kw.setdefault("defrag_on_reject", False)
    return RuntimeConfig(**kw)


class TestBooking:
    def test_full_fabric_books_at_next_departure(self):
        mgr = RuntimePlacementManager(tiny_region(), resv_config())
        a = mgr.submit(req("a", 1, 5))
        b = mgr.submit(req("b", 1, 5))
        assert a.admitted and b.admitted
        c = mgr.submit(req("c", 2, 4, deadline=20))
        assert c.status == "reserved"
        [r] = mgr.reservations
        assert r.start == 6  # a/b depart at 1 + 5
        assert r.deadline == 20
        assert r.booked_at == 2
        assert isinstance(r, Reservation)
        assert mgr.stats.reservations_booked == 1

    def test_reservation_commits_on_departure(self):
        mgr = RuntimePlacementManager(tiny_region(), resv_config())
        mgr.submit(req("a", 1, 5))
        mgr.submit(req("b", 1, 5))
        c = mgr.submit(req("c", 2, 4, deadline=20))
        mgr.advance_to(6)
        assert c.admitted
        assert c.method == "reservation"
        assert c.admitted_at == 6
        assert not mgr.reservations
        assert mgr.stats.reservation_admits == 1
        mgr.check_invariants()

    def test_horizon_zero_never_reserves(self):
        mgr = RuntimePlacementManager(
            tiny_region(), resv_config(reservation_horizon=0)
        )
        mgr.submit(req("a", 1, 5))
        mgr.submit(req("b", 1, 5))
        c = mgr.submit(req("c", 2, 4))
        assert c.status == "rejected"
        assert c.reason is RejectReason.NO_FIT

    def test_departure_beyond_horizon_not_bookable(self):
        mgr = RuntimePlacementManager(
            tiny_region(), resv_config(reservation_horizon=3)
        )
        mgr.submit(req("a", 1, 50))
        mgr.submit(req("b", 1, 50))
        c = mgr.submit(req("c", 2, 4))
        assert c.status == "rejected" and c.reason is RejectReason.NO_FIT

    def test_deadline_before_departure_not_bookable(self):
        mgr = RuntimePlacementManager(tiny_region(), resv_config())
        mgr.submit(req("a", 1, 5))
        mgr.submit(req("b", 1, 5))
        c = mgr.submit(req("c", 2, 4, deadline=4))  # departures at 6
        assert c.status == "rejected" and c.reason is RejectReason.NO_FIT

    def test_capacity_bounds_outstanding_reservations(self):
        mgr = RuntimePlacementManager(
            tiny_region(8, 2), resv_config(reservation_capacity=1)
        )
        for name in ("a", "b", "c", "d"):
            assert mgr.submit(req(name, 1, 5)).admitted
        e = mgr.submit(req("e", 2, 3, deadline=20))
        assert e.status == "reserved"
        f = mgr.submit(req("f", 2, 3, deadline=20))
        assert f.status == "rejected"  # capacity 1 already taken

    def test_duplicate_names_cover_reservations(self):
        mgr = RuntimePlacementManager(tiny_region(), resv_config())
        mgr.submit(req("a", 1, 5))
        mgr.submit(req("b", 1, 5))
        c1 = mgr.submit(req("c", 2, 4, deadline=20))
        assert c1.status == "reserved"
        c2 = mgr.submit(req("c", 3, 4, deadline=20))
        assert c2.status == "rejected"
        assert c2.reason is RejectReason.DUPLICATE

    def test_booked_cells_are_promised_in_residual(self):
        mgr = RuntimePlacementManager(tiny_region(), resv_config())
        mgr.submit(req("a", 1, 5))
        mgr.submit(req("b", 1, 5))
        c = mgr.submit(req("c", 2, 4, deadline=20, w=4, h=2))
        assert c.status == "reserved"
        # the whole fabric is promised to c once a/b depart: the
        # residual region offers no free cell
        assert not mgr.residual_region().reconfigurable.any()

    def test_next_departure_sees_reservation_starts(self):
        mgr = RuntimePlacementManager(tiny_region(), resv_config())
        mgr.submit(req("a", 1, 5))
        mgr.submit(req("b", 1, 7))
        c = mgr.submit(req("c", 2, 4, deadline=20))
        assert c.status == "reserved"
        assert mgr.next_departure() == 6  # min(departure 6, start 6)


class TestCommitAndExpiry:
    def test_expiry_labels_honestly(self):
        mgr = RuntimePlacementManager(tiny_region(), resv_config())
        mgr.submit(req("a", 1, 5))
        mgr.submit(req("b", 1, 5))
        c = mgr.submit(req("c", 2, 40, deadline=8))
        assert c.status == "reserved"
        # at start=6 the fabric frees and d (below) has already squatted
        # nothing — force a conflict instead: fill the fabric again via
        # a fresh arrival landing exactly at the departure tick
        mgr.submit(req("d", 6, 40, w=4, h=2))
        # d arrived at the departure tick: the due reservation holds
        # seniority, so it committed first and d could not fit
        assert c.admitted
        mgr2 = RuntimePlacementManager(tiny_region(), resv_config())
        mgr2.submit(req("a", 1, 50))
        mgr2.submit(req("b", 1, 5))
        c2 = mgr2.submit(req("c", 2, 4, deadline=8, w=4, h=2))
        # c2 needs the whole fabric; only b's half frees inside the
        # horizon... no tick fits, honest immediate reject
        assert c2.status == "rejected"

    def test_expired_reservation_rejects_with_reason(self):
        region = tiny_region()
        cfg = resv_config(defrag_on_reject=False)
        mgr = RuntimePlacementManager(region, cfg)
        mgr.submit(req("a", 1, 5))
        mgr.submit(req("b", 1, 5))
        c = mgr.submit(req("c", 2, 10, deadline=9))
        assert c.status == "reserved"
        # steal the freed space at the same tick via a *later-seniority*
        # path is impossible (reservations commit first), so emulate a
        # blocked commit: occupy the planned cells through a move-free
        # arrival race by advancing in two steps and squatting
        mgr.advance_to(5)
        # nothing freed yet; now at tick 6 the commit fires and succeeds
        mgr.advance_to(12)
        assert c.admitted

    def test_drain_settles_future_reservations(self):
        mgr = RuntimePlacementManager(tiny_region(), resv_config())
        mgr.submit(req("a", 1, 5))
        mgr.submit(req("b", 1, 5))
        c = mgr.submit(req("c", 2, 4, deadline=20))
        assert c.status == "reserved"
        mgr.drain()
        assert not mgr.reservations
        assert c.admitted
        assert c.method == "reservation"

    def test_events_validate_against_schema(self):
        tracer = RecordingTracer()
        mgr = RuntimePlacementManager(
            tiny_region(), resv_config(tracer=tracer)
        )
        mgr.submit(req("a", 1, 5))
        mgr.submit(req("b", 1, 5))
        mgr.submit(req("c", 2, 4, deadline=20))
        mgr.drain()
        kinds = [e.kind for e in tracer.events]
        assert "runtime.reserve" in kinds
        assert "runtime.reservation.commit" in kinds
        for event in tracer.events:
            assert validate_event(event.to_dict()) == [], event

    def test_sibling_overlap_is_never_double_booked(self):
        # two requests competing for the same departure tick: the probe
        # books the first and honestly declines the second (its run
        # window overlaps the sibling's promised cells)
        mgr = RuntimePlacementManager(tiny_region(), resv_config())
        mgr.submit(req("a", 1, 5, w=4, h=2))
        c = mgr.submit(req("c", 2, 30, deadline=20, w=4, h=2))
        d = mgr.submit(req("d", 3, 30, deadline=9, w=4, h=2))
        assert c.status == "reserved"
        assert d.status == "rejected" and d.reason is RejectReason.NO_FIT
        mgr.drain()
        assert c.admitted
        assert mgr.stats.reservation_admits == 1

    def test_expire_event_and_stats(self):
        import heapq

        tracer = RecordingTracer()
        mgr = RuntimePlacementManager(
            tiny_region(), resv_config(tracer=tracer)
        )
        mgr.submit(req("a", 1, 50))         # resident throughout
        mgr.submit(req("b", 1, 5))          # departs at 6 — the booked tick
        c = mgr.submit(req("c", 2, 30, deadline=9))
        assert c.status == "reserved"
        # the race the probe is optimistic about: the departing module
        # overstays its declared lifetime, so the booked cells never
        # free before the deadline (white-box: postpone b's departure)
        mgr._departures = [
            (100 if name == "b" else t, name) for t, name in mgr._departures
        ]
        heapq.heapify(mgr._departures)
        mgr.advance_to(12)  # past start (6) and deadline (9)
        assert c.status == "rejected"
        assert c.reason is RejectReason.RESERVATION_EXPIRED
        assert mgr.stats.reservations_expired == 1
        assert not mgr.reservations
        assert "runtime.reservation.expire" in [
            e.kind for e in tracer.events
        ]


class TestServiceIntegration:
    def test_reservations_count_toward_shard_load(self):
        region = tiny_region(8, 2)
        shards = ShardedPlacementService.split(region, 2)
        svc = ShardedPlacementService(
            shards,
            ServiceConfig(
                router="least-loaded",
                spill=False,
                runtime=resv_config(sample_timeline=False),
            ),
        )
        # fill shard 0 (cols 0-4) and book a reservation on it; the
        # router must then prefer shard 1 even though shard 0's *placed*
        # load will drop at the departure
        from repro.core.service import LeastLoadedRouter

        s0 = svc.shards[0]
        s0.submit(req("a", 1, 5, w=4, h=2))
        s0.submit(req("r", 2, 4, deadline=20, w=4, h=2))
        assert len(s0.reservations) == 1
        load0 = LeastLoadedRouter._load(svc.shards[0])
        load1 = LeastLoadedRouter._load(svc.shards[1])
        assert load0 > load1
        # and planning fragmentation treats booked cells as occupied
        assert (
            svc.shards[0].planning_fragmentation()
            >= svc.shards[0].fragmentation()
            or not svc.shards[0].reservations
        )

    def test_service_drain_resolves_every_reservation(self):
        shards = ShardedPlacementService.split(default_runtime_region(), 4)
        svc = ShardedPlacementService(
            shards,
            ServiceConfig(
                router="least-fragmented",
                runtime=resv_config(
                    reservation_horizon=10,
                    queue_capacity=2,
                    sample_timeline=False,
                ),
            ),
        )
        slog = svc.run(default_runtime_trace(120, seed=11))
        s = slog.stats
        assert s.reservations_booked > 0  # the trace exercises the path
        assert (
            s.reservations_booked
            == s.reservation_admits + s.reservations_expired
        )
        for shard in svc.shards:
            assert not shard.reservations
            shard.check_invariants()
        assert all(
            o.status in ("admitted", "rejected") for o in slog.outcomes
        )

    def test_stats_merge_sums_reservation_counters(self):
        from repro.core.runtime import RuntimeStats

        a = RuntimeStats(
            reservations_booked=2, reservation_admits=1,
            reservations_expired=1,
        )
        b = RuntimeStats(reservations_booked=3, reservation_admits=3)
        merged = a + b
        assert merged.reservations_booked == 5
        assert merged.reservation_admits == 4
        assert merged.reservations_expired == 1


class TestConfigValidation:
    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError, match="reservation_horizon"):
            RuntimeConfig(reservation_horizon=-1).validate()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="reservation_capacity"):
            RuntimeConfig(reservation_capacity=-1).validate()

    def test_request_duration_validation(self):
        with pytest.raises(ValueError, match="duration"):
            RuntimeRequest(block("m"), arrival=0, lifetime=1, duration=0)

    def test_workload_kwargs_validation(self):
        with pytest.raises(ValueError, match="profile"):
            generate_workload(4, profile="nope")
        with pytest.raises(ValueError, match="precedence_p"):
            generate_workload(4, precedence_p=1.5)
        with pytest.raises(ValueError, match="duration_range"):
            generate_workload(4, duration_range=(0, 3))

    def test_slack_heavy_profile_shape(self):
        trace = generate_workload(
            16, seed=5, mean_interarrival=2, mean_lifetime=12,
            profile="slack-heavy",
        )
        arrivals = [r.arrival for r in trace]
        # bursts of four share one tick, separated by long gaps
        assert arrivals[0] == arrivals[3]
        assert arrivals[4] - arrivals[3] >= 4
        assert all(r.deadline == r.arrival + 24 for r in trace)
        assert all(r.lifetime <= 12 for r in trace)

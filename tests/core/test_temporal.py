"""Temporal (3-D) placement: exact schedules over the geost kernel."""

from __future__ import annotations

import itertools

import pytest

from repro.core.temporal import (
    ScheduledTask,
    TemporalPlacer,
    TemporalResult,
    TemporalTask,
    render_timeline,
)
from repro.fabric.grid import FabricGrid
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.module import Module


def clb_region(rows):
    return PartialRegion.whole_device(FabricGrid.from_rows(rows))


def sq_task(name, w, h, d, alts=()):
    return TemporalTask(Module(name, [Footprint.rectangle(w, h), *alts]), d)


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            TemporalTask(Module("m", [Footprint.rectangle(1, 1)]), 0)
        with pytest.raises(ValueError):
            TemporalPlacer(horizon=0)
        region = clb_region(["..", ".."])
        with pytest.raises(ValueError):
            TemporalPlacer(horizon=4).place(region, [])
        with pytest.raises(ValueError):
            TemporalPlacer(horizon=4).place(
                region, [sq_task("a", 1, 1, 1)], precedences=[(0, 0)]
            )

    def test_single_task(self):
        region = clb_region(["....", "...."])
        res = TemporalPlacer(horizon=5).place(region, [sq_task("a", 2, 2, 3)])
        assert res.status == "optimal"
        assert res.makespan == 3
        assert res.schedule[0].start == 0
        res.verify()

    def test_parallel_when_space_allows(self):
        region = clb_region(["....", "...."])
        tasks = [sq_task("a", 2, 2, 2), sq_task("b", 2, 2, 2)]
        res = TemporalPlacer(horizon=8).place(region, tasks)
        assert res.status == "optimal"
        assert res.makespan == 2  # side by side, simultaneously
        res.verify()

    def test_serialization_when_space_is_tight(self):
        region = clb_region(["..", ".."])
        tasks = [sq_task("a", 2, 2, 2), sq_task("b", 2, 2, 3)]
        res = TemporalPlacer(horizon=10).place(region, tasks)
        assert res.status == "optimal"
        assert res.makespan == 5  # must run one after the other
        res.verify()

    def test_infeasible_horizon(self):
        region = clb_region(["..", ".."])
        tasks = [sq_task("a", 2, 2, 3), sq_task("b", 2, 2, 3)]
        res = TemporalPlacer(horizon=4).place(region, tasks)
        assert res.status == "infeasible"

    def test_makespan_matches_brute_force(self):
        """Exhaustive check on a tiny instance."""
        region = clb_region(["...", "..."])
        sizes = [(2, 2, 2), (2, 1, 2), (1, 2, 1)]
        tasks = [
            sq_task(f"m{i}", w, h, d) for i, (w, h, d) in enumerate(sizes)
        ]
        horizon = 6
        res = TemporalPlacer(horizon=horizon).place(region, tasks)
        assert res.status == "optimal"

        def feasible(combo):
            sched = [
                ScheduledTask(t, 0, x, y, s)
                for t, (x, y, s) in zip(tasks, combo)
            ]
            for time_step in range(horizon):
                cells = []
                for s_ in sched:
                    cells.extend(s_.cells_at(time_step))
                if len(cells) != len(set(cells)):
                    return None
            return max(s_.end for s_ in sched)

        best = None
        options = []
        for (w, h, d) in sizes:
            options.append([
                (x, y, s)
                for x in range(3 - w + 1)
                for y in range(2 - h + 1)
                for s in range(horizon - d + 1)
            ])
        for combo in itertools.product(*options):
            mk = feasible(combo)
            if mk is not None and (best is None or mk < best):
                best = mk
        assert res.makespan == best


class TestPrecedence:
    def test_chain_forces_sequence(self):
        region = clb_region(["....", "...."])
        tasks = [sq_task("a", 2, 2, 2), sq_task("b", 2, 2, 2)]
        res = TemporalPlacer(horizon=10).place(
            region, tasks, precedences=[(0, 1)]
        )
        assert res.status == "optimal"
        assert res.makespan == 4
        res.verify(precedences=[(0, 1)])
        assert res.schedule[1].start >= res.schedule[0].end


class TestHeterogeneityAndAlternatives:
    def test_bram_task_waits_for_the_bram_column(self):
        region = clb_region(["B..", "B.."])
        bram_fp = Footprint(
            [(0, 0, ResourceType.BRAM), (1, 0, ResourceType.CLB)]
        )
        tasks = [
            TemporalTask(Module("mem1", [bram_fp]), 2),
            TemporalTask(Module("mem2", [bram_fp]), 2),
        ]
        res = TemporalPlacer(horizon=8).place(region, tasks)
        assert res.status == "optimal"
        res.verify()
        # both need column 0 at y in {0,1}: two fit in parallel stacked,
        # each anchored at the BRAM column
        assert all(s.x == 0 for s in res.schedule)
        assert res.makespan == 2

    def test_alternatives_shrink_makespan(self):
        """A 1x2/2x1 polymorphic task fits beside a blocker only rotated."""
        region = clb_region(["...", "..."])
        blocker = sq_task("blk", 2, 2, 2)
        wide = Footprint.rectangle(2, 1)
        tall = Footprint.rectangle(1, 2)
        mono = TemporalTask(Module("p", [wide]), 2)
        poly = TemporalTask(Module("p", [wide, tall]), 2)
        res_mono = TemporalPlacer(horizon=10).place(region, [blocker, mono])
        res_poly = TemporalPlacer(horizon=10).place(region, [blocker, poly])
        assert res_mono.status == res_poly.status == "optimal"
        assert res_poly.makespan == 2   # tall alternative runs in parallel
        assert res_mono.makespan == 4   # wide-only must wait
        res_poly.verify()


class TestSharedModuleDecode:
    """Two tasks of the *same* module share deduplicated shape ids in the
    table; decoding a shape choice must go through each task's own id
    list, never through offset arithmetic (regression: the old
    ``sol[s_i] - sid_base`` decode produced out-of-range alternative
    indices as soon as ids were shared)."""

    def test_two_tasks_same_module_decode_in_range(self):
        region = clb_region(["....", "...."])
        mod = Module(
            "dup", [Footprint.rectangle(2, 2), Footprint.rectangle(1, 2)]
        )
        tasks = [TemporalTask(mod, 2), TemporalTask(mod, 2)]
        res = TemporalPlacer(horizon=8).place(region, tasks)
        assert res.status == "optimal"
        for s in res.schedule:
            assert 0 <= s.shape_index < mod.n_alternatives
        res.verify()
        assert res.makespan == 2  # both fit side by side

    def test_same_module_different_duration_not_conflated(self):
        # different extrusions must stay distinct shapes
        region = clb_region(["...", "..."])
        mod = Module("dup", [Footprint.rectangle(2, 2)])
        tasks = [TemporalTask(mod, 1), TemporalTask(mod, 3)]
        res = TemporalPlacer(horizon=8).place(region, tasks)
        assert res.status == "optimal"
        res.verify()
        by_duration = sorted(res.schedule, key=lambda s: s.task.duration)
        assert by_duration[0].end - by_duration[0].start == 1
        assert by_duration[1].end - by_duration[1].start == 3

    def test_three_clones_with_precedence_chain(self):
        region = clb_region(["..", ".."])
        mod = Module("m", [Footprint.rectangle(2, 2)])
        tasks = [TemporalTask(mod, 2) for _ in range(3)]
        res = TemporalPlacer(horizon=10).place(
            region, tasks, precedences=[(0, 1), (1, 2)]
        )
        assert res.status == "optimal"
        assert res.makespan == 6
        res.verify(precedences=[(0, 1), (1, 2)])
        for s in res.schedule:
            assert s.shape_index == 0


class TestRendering:
    def test_timeline_shows_every_step(self):
        region = clb_region(["..", ".."])
        res = TemporalPlacer(horizon=4).place(region, [sq_task("a", 2, 2, 2)])
        art = render_timeline(res)
        assert "t=0" in art and "t=1" in art
        assert "0" in art

    def test_empty(self):
        region = clb_region([".."])
        from repro.core.temporal import TemporalResult

        assert "empty" in render_timeline(TemporalResult(region))


# ----------------------------------------------------------------------
# Golden rendering and verify() property coverage
# ----------------------------------------------------------------------
class TestRenderTimelineGolden:
    def test_exact_art_for_a_fixed_schedule(self):
        region = clb_region(["....", "...."])
        a = sq_task("a", 2, 2, 2)
        b = sq_task("b", 2, 1, 1)
        result = TemporalResult(
            region,
            schedule=[
                ScheduledTask(task=a, shape_index=0, x=0, y=0, start=0),
                ScheduledTask(task=b, shape_index=0, x=2, y=0, start=1),
            ],
            makespan=2,
            status="optimal",
        )
        assert render_timeline(result) == (
            "t=0\n"
            "00..\n"
            "00..\n"
            "\n"
            "t=1\n"
            "00..\n"
            "0011"
        )


class TestVerifyProperties:
    def _scheduled(self, name, w, h, d, x, y, start):
        return ScheduledTask(
            task=sq_task(name, w, h, d), shape_index=0, x=x, y=y, start=start
        )

    def test_overlap_in_space_and_time_rejected(self):
        region = clb_region(["....", "...."])
        result = TemporalResult(
            region,
            schedule=[
                self._scheduled("a", 2, 2, 3, 0, 0, 0),
                self._scheduled("b", 2, 2, 3, 1, 0, 2),  # shares (1..2, *) at t=2
            ],
        )
        with pytest.raises(ValueError, match="overlaps"):
            result.verify()

    def test_same_cells_at_disjoint_times_accepted(self):
        region = clb_region(["..", ".."])
        result = TemporalResult(
            region,
            schedule=[
                self._scheduled("a", 2, 2, 2, 0, 0, 0),
                self._scheduled("b", 2, 2, 2, 0, 0, 2),  # back to back
            ],
        )
        result.verify()  # no exception: never concurrent

    def test_precedence_violation_rejected(self):
        region = clb_region(["....", "...."])
        result = TemporalResult(
            region,
            schedule=[
                self._scheduled("a", 2, 2, 3, 0, 0, 0),
                self._scheduled("b", 2, 2, 2, 2, 0, 1),  # starts before a ends
            ],
        )
        result.verify()  # fine without the edge
        with pytest.raises(ValueError, match="precedence"):
            result.verify(precedences=[(0, 1)])

    def test_out_of_region_rejected(self):
        region = clb_region(["..", ".."])
        result = TemporalResult(
            region, schedule=[self._scheduled("a", 2, 2, 1, 1, 0, 0)]
        )
        with pytest.raises(ValueError, match="invalid"):
            result.verify()

    def test_resource_mismatch_rejected(self):
        # column 2 is BRAM ("B"); a pure-CLB footprint may not sit on it
        region = clb_region(["..B.", "..B."])
        result = TemporalResult(
            region, schedule=[self._scheduled("a", 2, 2, 1, 1, 0, 0)]
        )
        with pytest.raises(ValueError, match="resource mismatch"):
            result.verify()


# ----------------------------------------------------------------------
# Production placer (TemporalCPPlacer) vs the reference oracle
# ----------------------------------------------------------------------
from repro.core.temporal import TemporalCPPlacer  # noqa: E402
from repro.fabric.cache import AnchorMaskCache  # noqa: E402

_ORACLE_CASES = [
    pytest.param(
        ["....", "...."], [("a", 2, 2, 3)], [], 5, id="single"
    ),
    pytest.param(
        ["....", "...."],
        [("a", 2, 2, 2), ("b", 2, 2, 2)],
        [],
        8,
        id="parallel",
    ),
    pytest.param(
        ["..", ".."],
        [("a", 2, 2, 2), ("b", 2, 2, 2)],
        [],
        8,
        id="serialized",
    ),
    pytest.param(
        ["....", "...."],
        [("a", 2, 2, 2), ("b", 2, 2, 3), ("c", 2, 2, 2)],
        [(0, 2)],
        8,
        id="precedence",
    ),
    pytest.param(
        ["..B.", "..B."],
        [("a", 2, 2, 2), ("b", 2, 2, 2)],
        [],
        6,
        id="heterogeneous",
    ),
]


class TestProductionMatchesOracle:
    @pytest.mark.parametrize(
        "rows,specs,precedences,horizon", _ORACLE_CASES
    )
    def test_equal_optimal_makespans(self, rows, specs, precedences, horizon):
        region = clb_region(rows)
        tasks = [sq_task(n, w, h, d) for n, w, h, d in specs]
        ref = TemporalPlacer(horizon=horizon).place(
            region, tasks, precedences=precedences
        )
        prod = TemporalCPPlacer(horizon=horizon).place(
            region, tasks, precedences=precedences
        )
        assert ref.status == "optimal"
        assert prod.status == "optimal"
        assert prod.makespan == ref.makespan
        ref.verify(precedences)
        prod.verify(precedences)

    def test_infeasible_agreement(self):
        region = clb_region(["..", ".."])
        tasks = [sq_task(n, 2, 2, 2) for n in ("a", "b", "c")]
        ref = TemporalPlacer(horizon=3).place(region, tasks)
        prod = TemporalCPPlacer(horizon=3).place(region, tasks)
        assert ref.status == "infeasible"
        assert prod.status == "infeasible"


class TestSharedCacheMemoization:
    def test_reference_placer_memoizes_extrusions_and_fabric(self):
        region = clb_region(["..B.", "..B."])
        tasks = [sq_task("a", 2, 2, 2), sq_task("b", 2, 1, 1)]
        cache = AnchorMaskCache()
        placer = TemporalPlacer(horizon=6, cache=cache)
        placer.place(region, tasks)
        misses_first = cache.misses
        assert misses_first > 0 and cache.hits == 0
        placer.place(region, tasks)
        # second identical solve is served purely from the memo store
        assert cache.misses == misses_first
        assert cache.hits >= misses_first

    def test_cached_and_uncached_schedules_identical(self):
        region = clb_region(["....", "...."])
        tasks = [sq_task("a", 2, 2, 2), sq_task("b", 2, 2, 3)]
        plain = TemporalPlacer(horizon=8).place(region, tasks)
        cached = TemporalPlacer(horizon=8, cache=AnchorMaskCache()).place(
            region, tasks
        )
        assert [
            (s.task.name, s.shape_index, s.x, s.y, s.start)
            for s in plain.schedule
        ] == [
            (s.task.name, s.shape_index, s.x, s.y, s.start)
            for s in cached.schedule
        ]
        assert plain.makespan == cached.makespan

    def test_production_placer_reuses_spatial_masks(self):
        region = clb_region(["....", "...."])
        tasks = [sq_task("a", 2, 2, 2), sq_task("b", 2, 2, 2)]
        cache = AnchorMaskCache()
        placer = TemporalCPPlacer(horizon=6, cache=cache)
        first = placer.place(region, tasks)
        hits_after_first = cache.hits
        second = placer.place(region, tasks)
        assert cache.hits > hits_after_first
        assert [
            (s.task.name, s.x, s.y, s.start) for s in first.schedule
        ] == [(s.task.name, s.x, s.y, s.start) for s in second.schedule]

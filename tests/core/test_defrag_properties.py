"""Property-based invariants of defragmentation and relocation.

Random fragmented states are generated end-to-end (random fabric, random
modules, placed and randomly evicted); the defragmenter must always
return a *valid* placement whose extent never grew, whatever it does.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.defrag import (
    NoBreakDefragmenter,
    defragment,
    plan_states,
)
from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.relocation import relocation_sites
from repro.core.result import Placement, PlacementResult
from repro.fabric.devices import irregular_device
from repro.fabric.grid import FabricGrid
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module


def fragmented_state(seed: int, evict_mask: int):
    region = PartialRegion.whole_device(
        irregular_device(40, 10, seed=seed, bram_stride=6, jitter=1)
    )
    cfg = GeneratorConfig(clb_min=4, clb_max=12, bram_max=1,
                          height_min=2, height_max=3, max_width=4)
    modules = ModuleGenerator(seed=seed, config=cfg).generate_set(5)
    res = CPPlacer(
        PlacerConfig(time_limit=2.0, first_solution_only=True)
    ).place(region, modules)
    if not res.all_placed:
        return None
    survivors = [
        p for i, p in enumerate(res.placements) if (evict_mask >> i) & 1
    ]
    if not survivors:
        return None
    return PlacementResult(region, survivors)


class TestDefragProperties:
    @given(st.integers(0, 25), st.integers(1, 31), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_defrag_always_valid_and_never_worse(
        self, seed, evict_mask, allow_shape_change
    ):
        state = fragmented_state(seed, evict_mask)
        if state is None:
            return
        out = defragment(state, allow_shape_change=allow_shape_change)
        out.result.verify()
        assert out.final_extent <= out.initial_extent
        assert len(out.result.placements) == len(state.placements)
        # the same modules are still present
        assert {p.module.name for p in out.result.placements} == {
            p.module.name for p in state.placements
        }

    @given(
        st.integers(0, 25), st.integers(1, 31),
        st.integers(0, 3), st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_max_moves_is_a_hard_cap(
        self, seed, evict_mask, max_moves, allow_shape_change
    ):
        """Regression: ``max_moves`` once only bounded the squeeze phase
        (dead guard), so compaction could exceed it."""
        state = fragmented_state(seed, evict_mask)
        if state is None:
            return
        out = defragment(
            state,
            allow_shape_change=allow_shape_change,
            max_moves=max_moves,
        )
        assert len(out.moves) <= max_moves
        out.result.verify()
        assert out.final_extent <= out.initial_extent

    @given(st.integers(0, 25), st.integers(1, 31))
    @settings(max_examples=10, deadline=None)
    def test_default_budget_terminates_with_shape_change(
        self, seed, evict_mask
    ):
        """With shape changes allowed the move loop could revisit states;
        the internal budget must still force termination."""
        state = fragmented_state(seed, evict_mask)
        if state is None:
            return
        out = defragment(state, allow_shape_change=True)
        assert len(out.moves) <= 4 * max(1, len(state.placements))
        out.result.verify()

    def test_squeeze_shape_change_cannot_grow_extent(self):
        """Regression: the squeeze phase picked lexicographically-smaller
        anchors ignoring the new shape's width, so with
        ``allow_shape_change=True`` a wider design alternative at a
        smaller x could *grow* the extent — and the frontier/squeeze
        oscillation then burned the whole move budget in the worse
        state.  Pre-fix this floorplan finished at extent 7 from an
        initial 4."""
        CLB, BRAM = ResourceType.CLB, ResourceType.BRAM
        grid = FabricGrid.from_rows(["...B........", "............"])
        region = PartialRegion(grid, np.ones((2, 12), dtype=bool))
        # primary shape is anchored by the single BRAM at (3,1); the
        # 5x1 all-CLB alternative fits lex-smaller anchors but is wider
        m = Module(
            "m",
            [
                Footprint([(0, 0, CLB), (0, 1, BRAM)]),
                Footprint.rectangle(5, 1),
            ],
        )
        blockers = [
            Module(f"b{i}", [Footprint.rectangle(1, 1)]) for i in range(3)
        ]
        placements = [Placement(m, 0, 3, 0)] + [
            Placement(blockers[i], 0, i, 1) for i in range(3)
        ]
        state = PlacementResult(region, placements)
        state.verify()
        out = defragment(state, allow_shape_change=True)
        out.result.verify()
        assert out.final_extent <= out.initial_extent == 4

    @given(st.integers(0, 25), st.integers(1, 31), st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_no_break_plan_never_overlaps_at_any_step(
        self, seed, evict_mask, allow_shape_change
    ):
        """Every intermediate state of a no-break plan — each slide
        anchor, each copy's double-occupancy window — must verify: the
        whole point of the engine is that running modules are never
        broken."""
        state = fragmented_state(seed, evict_mask)
        if state is None:
            return
        plan = NoBreakDefragmenter().plan(
            state, allow_shape_change=allow_shape_change
        )
        for intermediate in plan_states(state, plan):
            intermediate.verify()
        plan.result.verify()
        assert plan.final_extent <= plan.initial_extent
        assert len(plan.moves) <= 4 * max(1, len(state.placements))

    @given(st.integers(0, 25), st.integers(1, 31), st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_no_break_max_moves_edge_cases(
        self, seed, evict_mask, allow_shape_change
    ):
        state = fragmented_state(seed, evict_mask)
        if state is None:
            return
        zero = NoBreakDefragmenter().plan(
            state, allow_shape_change=allow_shape_change, max_moves=0
        )
        assert zero.moves == []
        assert zero.final_extent == zero.initial_extent
        unbounded = NoBreakDefragmenter().plan(
            state, allow_shape_change=allow_shape_change, max_moves=None
        )
        assert len(unbounded.moves) <= 4 * max(1, len(state.placements))

    @given(st.integers(0, 25), st.integers(1, 31))
    @settings(max_examples=15, deadline=None)
    def test_relocation_sites_are_actually_feasible(self, seed, evict_mask):
        state = fragmented_state(seed, evict_mask)
        if state is None:
            return
        p = state.placements[0]
        for site in relocation_sites(state, p)[:10]:
            from repro.core.result import Placement

            moved = Placement(p.module, site.shape_index, site.x, site.y)
            others = [q for q in state.placements if q is not p]
            PlacementResult(state.region, others + [moved]).verify()

"""Design-time region allocation."""

from __future__ import annotations

import pytest

from repro.core.region_alloc import (
    AllocationResult,
    allocate_regions,
    minimal_region_width,
)
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module


def rect_module(name, w, h):
    return Module(name, [Footprint.rectangle(w, h)])


class TestMinimalWidth:
    def test_exact_fit(self):
        region = PartialRegion.whole_device(homogeneous_device(20, 4))
        mods = [rect_module("a", 3, 4), rect_module("b", 3, 4)]
        width, placement = minimal_region_width(region, mods)
        assert width == 6
        assert placement is not None
        assert max(p.right for p in placement.placements) <= 6

    def test_height_bound_forces_width(self):
        region = PartialRegion.whole_device(homogeneous_device(20, 2))
        # 2x2 modules on a height-2 fabric must go side by side
        mods = [rect_module(f"m{i}", 2, 2) for i in range(3)]
        width, _ = minimal_region_width(region, mods)
        assert width == 6

    def test_alternatives_shrink_the_region(self):
        region = PartialRegion.whole_device(homogeneous_device(20, 2))
        tall = Footprint.rectangle(1, 2)
        wide = Footprint.rectangle(2, 1)
        fixed = Module("fixed", [Footprint.rectangle(2, 2)])
        w_without, _ = minimal_region_width(
            region, [fixed, Module("p", [wide])]
        )
        w_with, _ = minimal_region_width(
            region, [fixed, Module("p", [wide, tall])]
        )
        assert w_with <= w_without

    def test_infeasible_returns_none(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 2))
        width, placement = minimal_region_width(
            region, [rect_module("big", 5, 2)]
        )
        assert width is None and placement is None

    def test_offset_start(self):
        region = PartialRegion.whole_device(homogeneous_device(10, 2))
        width, placement = minimal_region_width(
            region, [rect_module("a", 2, 2)], x0=4
        )
        assert width == 2
        assert all(p.x >= 4 for p in placement.placements)

    def test_empty_group_rejected(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 2))
        with pytest.raises(ValueError):
            minimal_region_width(region, [])

    def test_heterogeneous_respects_resources(self):
        region = PartialRegion.whole_device(irregular_device(48, 10, seed=3))
        cfg = GeneratorConfig(clb_min=8, clb_max=14, bram_min=1, bram_max=1,
                              height_min=2, height_max=4)
        mods = ModuleGenerator(seed=4, config=cfg).generate_set(2)
        width, placement = minimal_region_width(region, mods)
        assert width is not None
        placement.verify()
        # a BRAM-using group can never fit left of the first BRAM column
        bram_cols = [
            x for x in range(region.width)
            if region.grid.kind_at(x, 1).name == "BRAM"
        ]
        assert width > min(bram_cols)


class TestAllocateRegions:
    def test_disjoint_left_to_right(self):
        region = PartialRegion.whole_device(homogeneous_device(24, 4))
        groups = [
            ("video", [rect_module("v1", 3, 4), rect_module("v2", 3, 4)]),
            ("crypto", [rect_module("c1", 4, 2)]),
        ]
        result = allocate_regions(region, groups)
        assert result.ok
        video, crypto = result.regions
        assert video.x0 == 0 and video.width == 6
        assert crypto.x0 == video.x1
        for r in result.regions:
            for p in r.placement.placements:
                assert r.x0 <= p.x and p.right <= r.x1

    def test_failure_recorded_and_rest_continue(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 2))
        groups = [
            ("ok", [rect_module("a", 2, 2)]),
            ("too-big", [rect_module("b", 12, 2)]),
            ("ok2", [rect_module("c", 2, 2)]),
        ]
        result = allocate_regions(region, groups)
        assert result.failed == ["too-big"]
        assert [r.name for r in result.regions] == ["ok", "ok2"]

    def test_summary(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 2))
        result = allocate_regions(
            region, [("g", [rect_module("a", 2, 2)])]
        )
        assert "g:[0,2)" in result.summary()
        assert result.total_width() == 2

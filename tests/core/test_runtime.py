"""The online runtime placement manager: admission, backpressure, defrag.

Scenario tests run on tiny scripted fabrics so every admission decision
is forced; the end-to-end comparison rides the seeded Table-I-style
workload of the experiment layer.
"""

from __future__ import annotations

import pytest

from repro.core.runtime import (
    RejectReason,
    RuntimeConfig,
    RuntimePlacementManager,
    RuntimeRequest,
    generate_workload,
)
from repro.modules.generator import GeneratorConfig
from repro.fabric.devices import homogeneous_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.module import Module
from repro.obs import RecordingTracer, profiling_session, validate_event


def region_w(width: int, height: int = 2) -> PartialRegion:
    return PartialRegion.whole_device(homogeneous_device(width, height))


def rect(name: str, w: int, h: int = 2) -> Module:
    return Module(name, [Footprint.rectangle(w, h)])


def req(module: Module, arrival: int, lifetime: int = 100, deadline=None):
    return RuntimeRequest(module, arrival, lifetime, deadline)


def greedy_cfg(**kw) -> RuntimeConfig:
    return RuntimeConfig(probe="greedy", **kw)


class TestAdmissionBasics:
    def test_admit_and_depart(self):
        mgr = RuntimePlacementManager(region_w(6), greedy_cfg())
        out = mgr.submit(req(rect("a", 2), arrival=1, lifetime=3))
        assert out.admitted and out.method == "greedy"
        assert out.placement is not None and out.admitted_at == 1
        mgr.result().verify()
        mgr.advance_to(10)  # departure at t=4
        assert mgr.placements == []
        assert mgr.stats.departures == 1

    def test_reject_no_fit_is_graceful(self):
        mgr = RuntimePlacementManager(
            region_w(4), greedy_cfg(queue_capacity=0)
        )
        out = mgr.submit(req(rect("big", 6), arrival=1))
        assert out.status == "rejected"
        assert out.reason == RejectReason.NO_FIT
        assert mgr.stats.rejected_by_reason == {"no_fit": 1}

    def test_duplicate_names_rejected(self):
        mgr = RuntimePlacementManager(region_w(8), greedy_cfg())
        assert mgr.submit(req(rect("m", 2), 1)).admitted
        dup = mgr.submit(req(rect("m", 2), 2))
        assert dup.reason == RejectReason.DUPLICATE

    def test_alternatives_restricted_when_disabled(self):
        # 1x2 fits only via the second alternative: off → reject, on → fit
        tall = Module(
            "t", [Footprint.rectangle(4, 1), Footprint.rectangle(1, 2)]
        )
        blocker = Module("b", [Footprint.rectangle(3, 2)])
        for with_alts, expect in ((False, "rejected"), (True, "admitted")):
            mgr = RuntimePlacementManager(
                region_w(4),
                greedy_cfg(
                    with_alternatives=with_alts, queue_capacity=0,
                    defrag_on_reject=False,
                ),
            )
            assert mgr.submit(req(blocker, 1)).admitted
            assert mgr.submit(req(tall, 2)).status == expect

    def test_clock_never_goes_backwards(self):
        mgr = RuntimePlacementManager(region_w(6), greedy_cfg())
        mgr.submit(req(rect("a", 2), arrival=5))
        with pytest.raises(ValueError):
            mgr.advance_to(3)


class TestDefragAdmission:
    """A rejected arrival is admitted after a defrag pass (the tentpole
    scenario), pinned for both shape-change policies."""

    @pytest.mark.parametrize("allow_shape_change", [False, True])
    def test_defrag_unlocks_admission(self, allow_shape_change):
        # 6x2 fabric: a(2)|b(1)|c(2) leaves one free column at x=5;
        # b departs -> two 1-wide holes; d(2x2) needs defrag to fit
        tracer = RecordingTracer()
        mgr = RuntimePlacementManager(
            region_w(6),
            greedy_cfg(
                allow_shape_change=allow_shape_change, tracer=tracer,
            ),
        )
        assert mgr.submit(req(rect("a", 2), 1, lifetime=100)).admitted
        assert mgr.submit(req(rect("b", 1), 1, lifetime=3)).admitted
        assert mgr.submit(req(rect("c", 2), 2, lifetime=100)).admitted
        # b departs at t=4; free space is now cols {2, 5} (shattered)
        out = mgr.submit(req(rect("d", 2), 5, lifetime=100))
        assert out.admitted
        assert out.method == "greedy+defrag"
        assert mgr.stats.defrags >= 1
        mgr.result().verify()
        assert tracer.count("runtime.defrag") >= 1

    def test_without_defrag_the_same_trace_rejects(self):
        mgr = RuntimePlacementManager(
            region_w(6),
            greedy_cfg(
                defrag_on_reject=False, frag_threshold=1.0, queue_capacity=0,
            ),
        )
        assert mgr.submit(req(rect("a", 2), 1, lifetime=100)).admitted
        assert mgr.submit(req(rect("b", 1), 1, lifetime=3)).admitted
        assert mgr.submit(req(rect("c", 2), 2, lifetime=100)).admitted
        out = mgr.submit(req(rect("d", 2), 5, lifetime=100))
        assert out.status == "rejected"
        assert out.reason == RejectReason.NO_FIT


class TestBackpressure:
    def test_queue_full_rejects_immediately(self):
        mgr = RuntimePlacementManager(
            region_w(2), greedy_cfg(queue_capacity=1)
        )
        assert mgr.submit(req(rect("a", 2), 1, lifetime=50)).admitted
        assert mgr.submit(req(rect("b", 2), 2)).status == "queued"
        out = mgr.submit(req(rect("c", 2), 3))
        assert out.reason == RejectReason.QUEUE_FULL
        assert mgr.pending_count == 1

    def test_queued_request_admitted_after_departure(self):
        mgr = RuntimePlacementManager(
            region_w(2), greedy_cfg(queue_capacity=2, max_queue_wait=20)
        )
        assert mgr.submit(req(rect("a", 2), 1, lifetime=4)).admitted
        queued = mgr.submit(req(rect("b", 2), 2, lifetime=5))
        assert queued.status == "queued"
        mgr.advance_to(10)  # a departs at t=5, b is retried
        assert queued.admitted
        assert queued.admitted_at == 5 and queued.request.arrival == 2
        assert mgr.stats.queued_admits == 1

    def test_deadline_expires_in_queue(self):
        tracer = RecordingTracer()
        mgr = RuntimePlacementManager(
            region_w(2), greedy_cfg(queue_capacity=2, tracer=tracer)
        )
        assert mgr.submit(req(rect("a", 2), 1, lifetime=50)).admitted
        queued = mgr.submit(req(rect("b", 2), 2, deadline=5))
        assert queued.status == "queued"
        mgr.advance_to(6)
        assert queued.status == "rejected"
        assert queued.reason == RejectReason.DEADLINE
        kinds = tracer.kinds()
        assert kinds.get("runtime.reject") == 1

    def test_drain_settles_everything(self):
        mgr = RuntimePlacementManager(
            region_w(2), greedy_cfg(queue_capacity=4, max_queue_wait=100)
        )
        mgr.submit(req(rect("a", 2), 1, lifetime=3))
        mgr.submit(req(rect("b", 2), 2, lifetime=3))  # queued
        mgr.submit(req(rect("c", 2), 2, lifetime=3))  # queued behind b
        mgr.drain()
        assert mgr.pending_count == 0
        statuses = [o.status for o in mgr.outcomes]
        assert statuses[0] == "admitted" and "queued" not in statuses


class TestQueueRegressions:
    """Pinned queue bugs: both tests fail on the pre-fix manager."""

    def test_reject_triggered_defrag_retries_the_pending_queue(self):
        """Starvation regression: defrag frees space, queue must be retried.

        8x2 fabric. a(3)|b(2)|c(2) leave col 7 free; q(3) queues. b
        departs -> free cols {3,4,7}, still no 3-wide window, q stays
        queued.  e(4) arrives, cannot fit, and its reject-triggered
        defrag compacts a+c -> cols 5-7 free and contiguous.  q now
        fits — but pre-fix only departures retried the queue, so q sat
        starving until drain despite fitting the compacted floorplan.
        """
        mgr = RuntimePlacementManager(
            region_w(8),
            greedy_cfg(
                queue_capacity=4,
                max_queue_wait=100,
                frag_threshold=1.0,  # never fragmentation-triggered
                defrag_on_reject=True,
                defrag_cooldown=0,
            ),
        )
        assert mgr.submit(req(rect("a", 3), 1, lifetime=100)).admitted
        assert mgr.submit(req(rect("b", 2), 1, lifetime=4)).admitted
        assert mgr.submit(req(rect("c", 2), 2, lifetime=100)).admitted
        q = mgr.submit(req(rect("q", 3), 3, lifetime=100))
        assert q.status == "queued"
        mgr.advance_to(6)  # b departed at t=5; {3,4,7} free, q still queued
        assert q.status == "queued"
        e = mgr.submit(req(rect("e", 4), 6, lifetime=100))
        assert mgr.stats.defrags >= 1  # e's rejection triggered a pass
        assert not e.admitted
        # the defrag pass freed a 3-wide window: q must be admitted NOW,
        # not at the next departure (pre-fix: still "queued" here)
        assert q.admitted
        assert q.admitted_at == 6
        assert mgr.stats.queued_admits == 1
        mgr.result().verify()

    def test_drain_labels_unexpired_pending_as_drained(self):
        """Drain regression: an unexpired queued request is not a
        deadline miss — pre-fix it was reported as DEADLINE even though
        its deadline lay far in the future."""
        mgr = RuntimePlacementManager(
            region_w(2), greedy_cfg(queue_capacity=4)
        )
        # 3-wide on a 2-wide fabric: can never fit, queues forever
        never = mgr.submit(req(rect("never", 3), 1, deadline=1000))
        assert never.status == "queued"
        mgr.drain()
        assert never.status == "rejected"
        assert never.reason == RejectReason.DRAINED  # pre-fix: DEADLINE
        assert mgr.clock < 1000  # its deadline genuinely had not passed

    def test_drain_still_reports_real_deadline_misses(self):
        """The honest counterpart: a queued request whose deadline passes
        while drain plays out departures is still a DEADLINE reject."""
        mgr = RuntimePlacementManager(
            region_w(2), greedy_cfg(queue_capacity=4)
        )
        assert mgr.submit(req(rect("a", 2), 1, lifetime=10)).admitted
        expired = mgr.submit(req(rect("late", 3), 2, deadline=6))
        assert expired.status == "queued"
        mgr.drain()  # advances to a's departure at t=11, past deadline 6
        assert expired.reason == RejectReason.DEADLINE


class TestCrashInjection:
    """No exception escapes the manager's serving path."""

    def test_cp_probe_crash_falls_back_to_greedy(self, monkeypatch):
        import repro.core.backend.adapters as adapters

        class Boom:
            def __init__(self, *a, **kw):
                pass

            def place(self, *a, **kw):
                raise RuntimeError("injected solver crash")

        monkeypatch.setattr(adapters, "CPPlacer", Boom)
        mgr = RuntimePlacementManager(region_w(6), RuntimeConfig(probe="cp"))
        out = mgr.submit(req(rect("a", 2), 1))
        assert out.admitted and out.method == "greedy"
        assert out.errors and "injected" in out.errors[0]
        assert mgr.stats.probe_errors == 1

    def test_total_probe_failure_rejects_gracefully(self, monkeypatch):
        import repro.core.backend.adapters as adapters

        class Boom:
            def __init__(self, *a, **kw):
                pass

            def place(self, *a, **kw):
                raise RuntimeError("cp down")

        def greedy_boom(self, request, tracer, profiling):
            raise RuntimeError("mask kernel down")

        monkeypatch.setattr(adapters, "CPPlacer", Boom)
        monkeypatch.setattr(
            adapters.BaselineBackend, "_solve", greedy_boom
        )
        mgr = RuntimePlacementManager(
            region_w(6), RuntimeConfig(probe="cp", queue_capacity=0)
        )
        out = mgr.submit(req(rect("a", 2), 1))
        assert out.status == "rejected"
        assert out.reason == RejectReason.NO_FIT
        assert len(out.errors) >= 2
        assert mgr.stats.probe_errors >= 2


class TestObservability:
    # modules small enough for the 8x2 scenario fabric
    SMALL = GeneratorConfig(
        clb_min=4, clb_max=8, bram_max=0, height_min=2, height_max=2
    )

    def test_events_conform_to_schema(self):
        tracer = RecordingTracer()
        region = region_w(8)
        mgr = RuntimePlacementManager(region, greedy_cfg(tracer=tracer))
        mgr.run(
            generate_workload(
                12, seed=2, mean_lifetime=6, generator_config=self.SMALL
            )
        )
        kinds = tracer.kinds()
        assert kinds.get("runtime.arrival") == 12
        assert kinds.get("runtime.depart", 0) >= 1
        for event in tracer.events:
            assert validate_event(event.to_dict()) == []

    def test_profile_lands_in_session(self):
        region = region_w(8)
        with profiling_session("runtime") as session:
            mgr = RuntimePlacementManager(region, greedy_cfg())
            mgr.run(
                generate_workload(
                    8, seed=2, mean_lifetime=6, generator_config=self.SMALL
                )
            )
        merged = session.merged()
        assert merged.meta["runtime.arrivals"] == 8
        assert (
            merged.meta["runtime.admitted"]
            + merged.meta["runtime.rejected"]
            == 8
        )

    def test_timeline_and_mean_utilization(self):
        mgr = RuntimePlacementManager(region_w(8), greedy_cfg())
        log = mgr.run(
            [req(rect("a", 4), 1, lifetime=4), req(rect("b", 4), 3, lifetime=4)]
        )
        assert len(log.timeline) == 3
        assert 0.0 < log.mean_utilization() <= 1.0
        # everything departed by drain time
        assert log.timeline[-1][1] == 0


class TestWorkloadGenerator:
    def test_seeded_and_ordered(self):
        a = generate_workload(15, seed=4)
        b = generate_workload(15, seed=4)
        c = generate_workload(15, seed=5)
        assert [r.arrival for r in a] == sorted(r.arrival for r in a)
        assert [(r.module.name, r.arrival, r.lifetime) for r in a] == [
            (r.module.name, r.arrival, r.lifetime) for r in b
        ]
        assert [(r.arrival, r.lifetime) for r in a] != [
            (r.arrival, r.lifetime) for r in c
        ]

    def test_table1_distribution_by_default(self):
        trace = generate_workload(10, seed=1)
        for r in trace:
            assert r.lifetime > 0
            assert 1 <= r.module.n_alternatives <= 4

    def test_deadline_slack(self):
        trace = generate_workload(5, seed=1, deadline_slack=7)
        assert all(r.deadline == r.arrival + 7 for r in trace)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_workload(-1)
        with pytest.raises(ValueError):
            RuntimeRequest(rect("x", 1), arrival=0, lifetime=0)
        with pytest.raises(ValueError):
            RuntimeConfig(probe="quantum").validate()


class TestAlternativesServeMore:
    """The acceptance demo: on the seeded 60-event trace, alternatives
    strictly reduce the rejection count (and never on any tested seed
    increase it)."""

    def test_60_event_demo_trace(self):
        from repro.experiments.runtime_exp import runtime_comparison

        rows = {r.label: r for r in runtime_comparison(60, seed=7)}
        mono = rows["runtime (1 shape)"]
        poly = rows["runtime (alternatives)"]
        assert mono.total == poly.total == 60
        assert poly.rejected < mono.rejected
        assert poly.mean_utilization > mono.mean_utilization

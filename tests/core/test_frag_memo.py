"""Regression: fragmentation probes are memoized on the occupancy stamp.

The least-fragmented router ranks every shard by
``planning_fragmentation()`` on every arrival, and the metric behind it
runs the pure-Python KAMER staircase over the whole floorplan.  Before
the memo, every routed submit recomputed the staircase for every shard —
the dominant cost of the serving hot path.  The manager now keys the
cached value on a monotone occupancy revision (bumped by imprints,
un-imprints, occupancy rebuilds, move windows and reservation churn), so
an unchanged shard answers from cache.
"""

from __future__ import annotations

import pytest

import repro.metrics.fragmentation as frag_mod
from repro.core.runtime import (
    RuntimeConfig,
    RuntimePlacementManager,
    RuntimeRequest,
    generate_workload,
)
from repro.core.service import ServiceConfig, ShardedPlacementService
from repro.fabric.devices import homogeneous_device
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig
from repro.modules.module import Module

N_SHARDS = 4
N_REQUESTS = 100


@pytest.fixture
def staircase_counter(monkeypatch):
    """Count invocations of the KAMER staircase behind the metric."""
    calls = {"n": 0}
    real = frag_mod.maximal_empty_rectangles

    def counting(free):
        calls["n"] += 1
        return real(free)

    monkeypatch.setattr(frag_mod, "maximal_empty_rectangles", counting)
    return calls


def _trace():
    return generate_workload(
        N_REQUESTS,
        seed=5,
        mean_lifetime=12,
        generator_config=GeneratorConfig(
            clb_min=4, clb_max=10, bram_max=0, height_min=2, height_max=2
        ),
    )


def _service():
    region = PartialRegion.whole_device(homogeneous_device(24, 2))
    cfg = ServiceConfig(
        router="least-fragmented",
        runtime=RuntimeConfig(
            probe="greedy", frag_threshold=1.0, sample_timeline=False
        ),
    )
    return ShardedPlacementService.replicated(region, N_SHARDS, cfg)


class TestFragmentationMemo:
    def test_routed_trace_stays_far_below_per_probe_recompute(
        self, staircase_counter
    ):
        _service().run(_trace())
        # pre-memo, every arrival recomputed the staircase once per shard
        # (the router ranks all of them): >= N_REQUESTS * N_SHARDS runs.
        # Memoized, only shards whose occupancy changed since their last
        # probe recompute — at most a couple per processed event (the
        # admitting shard's imprint plus its departures), so the trace
        # stays well under half the naive count.
        naive_floor = N_REQUESTS * N_SHARDS
        assert staircase_counter["n"] < naive_floor // 2

    def test_unchanged_manager_answers_from_cache(self, staircase_counter):
        region = PartialRegion.whole_device(homogeneous_device(12, 2))
        mgr = RuntimePlacementManager(
            region,
            RuntimeConfig(
                probe="greedy", frag_threshold=1.0, sample_timeline=False
            ),
        )
        mgr.submit(
            RuntimeRequest(
                Module("m0", [Footprint.rectangle(2, 2)]),
                arrival=1,
                lifetime=50,
            )
        )
        baseline = staircase_counter["n"]
        first = mgr.fragmentation()
        after_first = staircase_counter["n"]
        assert after_first > baseline  # the miss computed something
        for _ in range(5):
            assert mgr.fragmentation() == first
        assert staircase_counter["n"] == after_first  # pure hits

    def test_mutation_invalidates_the_memo(self, staircase_counter):
        region = PartialRegion.whole_device(homogeneous_device(12, 2))
        mgr = RuntimePlacementManager(
            region,
            RuntimeConfig(
                probe="greedy", frag_threshold=1.0, sample_timeline=False
            ),
        )
        mgr.submit(
            RuntimeRequest(
                Module("a", [Footprint.rectangle(2, 2)]),
                arrival=1,
                lifetime=50,
            )
        )
        before = mgr.fragmentation()
        hits = staircase_counter["n"]
        mgr.submit(
            RuntimeRequest(
                Module("b", [Footprint.rectangle(4, 2)]),
                arrival=2,
                lifetime=50,
            )
        )
        after = mgr.fragmentation()
        assert staircase_counter["n"] > hits  # recomputed, not stale
        # sanity on the values themselves: placing a second module on a
        # 12-wide strip changes the free-space picture
        assert isinstance(before, float) and isinstance(after, float)

"""The CP placer: optimality on small instances, statuses, strategies."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.objective import ObjectiveKind
from repro.core.placer import CPPlacer, PlacerConfig, place
from repro.core.placement_model import PlacementModel
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.grid import FabricGrid
from repro.fabric.masks import brute_force_anchor_mask
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module


def brute_force_min_extent(region, modules):
    """Exhaustive minimal extent over all valid placements."""
    per_module = []
    for mod in modules:
        options = []
        for si, fp in enumerate(mod.shapes):
            mask = brute_force_anchor_mask(region, sorted(fp.cells))
            ys, xs = np.nonzero(mask)
            options.extend(
                (si, int(x), int(y)) for x, y in zip(xs, ys)
            )
        per_module.append(options)
    best = None
    for combo in itertools.product(*per_module):
        cells = set()
        ok = True
        extent = 0
        for mod, (si, x, y) in zip(modules, combo):
            extent = max(extent, x + mod.shapes[si].width)
            for dx, dy, _ in mod.shapes[si].cells:
                c = (x + dx, y + dy)
                if c in cells:
                    ok = False
                    break
                cells.add(c)
            if not ok:
                break
        if ok and (best is None or extent < best):
            best = extent
    return best


class TestOptimality:
    def test_two_rectangles_homogeneous(self):
        region = PartialRegion.whole_device(homogeneous_device(6, 2))
        mods = [
            Module("a", [Footprint.rectangle(2, 2)]),
            Module("b", [Footprint.rectangle(2, 2)]),
        ]
        res = place(region, mods, time_limit=None)
        assert res.status == "optimal"
        assert res.extent == 4
        res.verify()

    def test_alternatives_reduce_extent(self):
        """A 1x4 module next to a 4x1 module in a 4x2 box: without the
        rotated alternative the extent is 5; with it, 4."""
        region = PartialRegion.whole_device(homogeneous_device(8, 2))
        tall = Footprint.rectangle(1, 2)
        wide = Footprint.rectangle(2, 1)
        fixed = Module("fixed", [Footprint.rectangle(2, 2)])
        poly_restricted = Module("p", [wide])
        poly_full = Module("p", [wide, tall])
        r1 = place(region, [fixed, poly_restricted], time_limit=None)
        r2 = place(region, [fixed, poly_full], time_limit=None)
        assert r1.status == "optimal" and r2.status == "optimal"
        assert r2.extent <= r1.extent

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force_heterogeneous(self, seed):
        region = PartialRegion.whole_device(
            irregular_device(6, 3, seed=seed, bram_stride=3, jitter=1, clk_rows=0)
        )
        fps = [
            Footprint.rectangle(2, 2),
            Footprint([(0, 0, ResourceType.CLB), (0, 1, ResourceType.CLB)]),
        ]
        mods = [Module(f"m{i}", [fp]) for i, fp in enumerate(fps)]
        want = brute_force_min_extent(region, mods)
        res = place(region, mods, time_limit=None)
        if want is None:
            assert res.status == "infeasible"
        else:
            assert res.status == "optimal"
            assert res.extent == want
            res.verify()

    def test_bram_module_lands_on_bram_column(self):
        g = FabricGrid.from_rows(["..B.", "..B."])
        region = PartialRegion.whole_device(g)
        fp = Footprint(
            [(0, 0, ResourceType.CLB), (1, 0, ResourceType.BRAM)]
        )
        res = place(region, [Module("m", [fp])], time_limit=None)
        assert res.status == "optimal"
        p = res.placements[0]
        assert p.x == 1  # BRAM cell at x+1 == 2
        res.verify()


class TestStatuses:
    def test_infeasible(self):
        region = PartialRegion.whole_device(homogeneous_device(2, 2))
        mods = [Module("big", [Footprint.rectangle(3, 3)])]
        res = place(region, mods, time_limit=None)
        assert res.status == "infeasible"
        assert res.unplaced == mods

    def test_first_solution_only(self):
        region = PartialRegion.whole_device(homogeneous_device(10, 4))
        mods = ModuleGenerator(
            seed=1, config=GeneratorConfig(clb_min=4, clb_max=8,
                                           bram_max=0, height_min=2,
                                           height_max=3)
        ).generate_set(3)
        res = CPPlacer(
            PlacerConfig(time_limit=None, first_solution_only=True)
        ).place(region, mods)
        assert res.status == "feasible"
        assert res.all_placed
        res.verify()

    def test_zero_budget_unknown(self):
        region = PartialRegion.whole_device(homogeneous_device(10, 4))
        mods = [Module("a", [Footprint.rectangle(2, 2)])]
        res = CPPlacer(PlacerConfig(time_limit=0.0)).place(region, mods)
        assert res.status == "unknown"

    def test_stats_populated(self):
        region = PartialRegion.whole_device(homogeneous_device(6, 2))
        mods = [Module("a", [Footprint.rectangle(2, 2)])]
        res = place(region, mods, time_limit=None)
        assert "search" in res.stats
        assert res.stats["shapes_considered"] == 1


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["fail-first", "static"])
    def test_both_strategies_find_optimum(self, strategy):
        region = PartialRegion.whole_device(homogeneous_device(6, 2))
        mods = [
            Module("a", [Footprint.rectangle(2, 2)]),
            Module("b", [Footprint.rectangle(2, 2)]),
            Module("c", [Footprint.rectangle(2, 2)]),
        ]
        res = CPPlacer(
            PlacerConfig(time_limit=None, strategy=strategy)
        ).place(region, mods)
        assert res.status == "optimal"
        assert res.extent == 6

    def test_symmetry_breaking_shrinks_search(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 2))
        mods = [
            Module(f"m{i}", [Footprint.rectangle(2, 2)]) for i in range(3)
        ]
        with_sb = CPPlacer(
            PlacerConfig(time_limit=None, symmetry_breaking=True)
        ).place(region, mods)
        without_sb = CPPlacer(
            PlacerConfig(time_limit=None, symmetry_breaking=False)
        ).place(region, mods)
        assert with_sb.extent == without_sb.extent == 6
        assert (
            with_sb.stats["search"].nodes <= without_sb.stats["search"].nodes
        )


class TestPlacementModel:
    def test_objective_kinds(self):
        region = PartialRegion.whole_device(homogeneous_device(6, 4))
        mods = [Module("a", [Footprint.rectangle(2, 2)])]
        for kind in ObjectiveKind:
            pm = PlacementModel(region, mods, objective=kind)
            assert pm.objective_var is not None

    def test_empty_module_list_rejected(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 4))
        with pytest.raises(ValueError):
            PlacementModel(region, [])

    def test_area_order_sorts_descending(self):
        region = PartialRegion.whole_device(homogeneous_device(10, 6))
        mods = [
            Module("small", [Footprint.rectangle(1, 1)]),
            Module("big", [Footprint.rectangle(3, 3)]),
        ]
        pm = PlacementModel(region, mods)
        assert pm.area_order() == [1, 0]

    def test_min_extent_y_objective(self):
        region = PartialRegion.whole_device(homogeneous_device(2, 6))
        mods = [
            Module("a", [Footprint.rectangle(2, 2)]),
            Module("b", [Footprint.rectangle(2, 2)]),
        ]
        cfg = PlacerConfig(time_limit=None, objective=ObjectiveKind.MIN_EXTENT_Y)
        res = CPPlacer(cfg).place(region, mods)
        assert res.status == "optimal"
        assert max(p.top for p in res.placements) == 4

"""Design flow, bus macros, bitstream assembly, visualization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import Placement, PlacementResult
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.io import save_region
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.flow.bitstream import (
    assemble_bitstream,
    module_frame_cost,
    partial_diff,
)
from repro.flow.busmacro import add_bus_row, attach_bus_macro, bus_aligned_modules
from repro.flow.design_flow import DesignFlow
from repro.flow.visualize import alternatives_gallery, comparison_figure
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.library import ModuleLibrary
from repro.modules.module import Module
from repro.modules.spec import save_modules


class TestBusMacro:
    def test_add_bus_row(self):
        g = homogeneous_device(12, 4)
        bussed = add_bus_row(g, y=0, stride=4, phase=1)
        macros = np.nonzero(bussed.resource_mask(ResourceType.BUSMACRO))
        assert set(macros[0].tolist()) == {0}
        assert set(macros[1].tolist()) == {1, 5, 9}

    def test_add_bus_row_skips_dedicated_columns(self):
        g = irregular_device(16, 4, seed=1)
        bussed = add_bus_row(g, y=0, stride=1)
        # no BRAM/DSP column was converted
        for kind in (ResourceType.BRAM, ResourceType.DSP):
            assert bussed.count(kind) == g.count(kind)

    def test_add_bus_row_validation(self):
        g = homogeneous_device(4, 4)
        with pytest.raises(ValueError):
            add_bus_row(g, y=9)
        with pytest.raises(ValueError):
            add_bus_row(g, y=0, stride=0)

    def test_attach_bus_macro(self):
        fp = Footprint.rectangle(3, 2)
        attached = attach_bus_macro(fp)
        counts = attached.resource_counts()
        assert counts[ResourceType.BUSMACRO] == 1
        assert counts[ResourceType.CLB] == 5
        assert attached.cells_of(ResourceType.BUSMACRO) == {(0, 0)}

    def test_attach_requires_clb_at_row(self):
        fp = Footprint([(0, 0, ResourceType.BRAM)])
        with pytest.raises(ValueError):
            attach_bus_macro(fp)

    def test_bus_aligned_modules(self):
        mods = ModuleGenerator(seed=1).generate_set(4)
        bussed = bus_aligned_modules(mods)
        for m in bussed:
            for fp in m.shapes:
                assert fp.resource_counts().get(ResourceType.BUSMACRO) == 1

    def test_bus_aligned_placement_lands_on_macro(self):
        """End-to-end: a bussed module must anchor its macro on a bus tile."""
        from repro.core.placer import place

        g = add_bus_row(homogeneous_device(12, 3), y=0, stride=3, phase=0)
        region = PartialRegion.whole_device(g)
        module = Module(
            "m", [attach_bus_macro(Footprint.rectangle(2, 2))]
        )
        res = place(region, [module], time_limit=None)
        assert res.status == "optimal"
        p = res.placements[0]
        macro_cells = [
            (x, y) for x, y, k in p.absolute_cells()
            if k is ResourceType.BUSMACRO
        ]
        assert all(
            g.kind_at(x, y) is ResourceType.BUSMACRO for x, y in macro_cells
        )
        res.verify()


class TestBitstream:
    def _result(self, at=0):
        region = PartialRegion.whole_device(homogeneous_device(6, 3))
        m = Module("a", [Footprint.rectangle(2, 2)])
        return PlacementResult(region, [Placement(m, 0, at, 0)])

    def test_frames_and_crc(self):
        bs = assemble_bitstream(self._result())
        assert bs.n_frames == 6
        assert bs.size_words() == 18
        assert bs.crc == assemble_bitstream(self._result()).crc

    def test_diff_counts_touched_columns(self):
        old = assemble_bitstream(self._result(at=0))
        new = assemble_bitstream(self._result(at=2))
        # module moved from columns {0,1} to {2,3}: all four frames differ
        assert partial_diff(old, new) == [0, 1, 2, 3]

    def test_diff_identical_is_empty(self):
        a = assemble_bitstream(self._result())
        b = assemble_bitstream(self._result())
        assert partial_diff(a, b) == []

    def test_diff_device_mismatch(self):
        a = assemble_bitstream(self._result())
        region = PartialRegion.whole_device(homogeneous_device(3, 3))
        b = assemble_bitstream(PlacementResult(region, []))
        with pytest.raises(ValueError):
            partial_diff(a, b)

    def test_module_frame_cost(self):
        cost = module_frame_cost(self._result())
        assert cost == {"a": 2}


class TestDesignFlow:
    def _library(self):
        cfg = GeneratorConfig(clb_min=8, clb_max=16, bram_max=1,
                              height_min=2, height_max=4)
        return ModuleLibrary(ModuleGenerator(seed=3, config=cfg).generate_set(4))

    def test_end_to_end_in_memory(self):
        region = PartialRegion.whole_device(irregular_device(48, 12, seed=5))
        flow = DesignFlow(region, self._library(), time_limit=3.0)
        out = flow.run()
        assert out.ok
        assert "utilization" in out.report
        assert out.bitstream.n_frames == 48
        out.placement.verify()

    def test_end_to_end_from_files(self, tmp_path):
        region = PartialRegion.whole_device(irregular_device(48, 12, seed=5))
        rpath = tmp_path / "region.json"
        mpath = tmp_path / "modules.json"
        save_region(region, rpath)
        save_modules(self._library(), mpath)
        flow = DesignFlow(rpath, mpath, time_limit=3.0, use_lns=False)
        out = flow.run()
        assert out.ok
        assert len(out.rendering.splitlines()) == 12


class TestVisualize:
    def test_gallery_shows_all_alternatives(self):
        m = ModuleGenerator(seed=2).generate()
        out = alternatives_gallery(m)
        assert f"{m.n_alternatives} design alternatives" in out
        for i in range(m.n_alternatives):
            assert f"alt {i}" in out

    def test_comparison_figure_labels(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 3))
        m = Module("a", [Footprint.rectangle(2, 2)])
        r = PlacementResult(region, [Placement(m, 0, 0, 0)])
        fig = comparison_figure(r, r)
        assert "without alternatives" in fig
        assert "with alternatives" in fig

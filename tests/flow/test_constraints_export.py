"""Vendor-style constraint export / reconstruction round trips."""

from __future__ import annotations

import pytest

from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.result import Placement, PlacementResult
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.flow.constraints_export import (
    export_constraints,
    parse_constraints,
    reconstruct_placements,
    save_constraints,
)
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module


def simple_result():
    region = PartialRegion.whole_device(homogeneous_device(8, 4))
    lshape = Footprint(
        [(0, 0, ResourceType.CLB), (1, 0, ResourceType.CLB),
         (0, 1, ResourceType.CLB)]
    )
    m = Module("fir", [Footprint.rectangle(2, 2), lshape])
    return PlacementResult(region, [Placement(m, 1, 3, 1)]), m


class TestExport:
    def test_contains_range_shape_prohibit(self):
        result, _ = simple_result()
        text = export_constraints(result)
        assert 'AREA_GROUP "fir" RANGE=TILE_X3Y1:TILE_X4Y2 ;' in text
        assert 'AREA_GROUP "fir" SHAPE=1 ;' in text
        assert 'PROHIBIT "fir" TILE_X4Y2 ;' in text  # the L's missing corner

    def test_parse_round_trip(self):
        result, _ = simple_result()
        records = parse_constraints(export_constraints(result))
        sid, rng, prohibited = records["fir"]
        assert sid == 1
        assert rng == (3, 1, 4, 2)
        assert prohibited == [(4, 2)]

    def test_reconstruct_placements(self):
        result, module = simple_result()
        text = export_constraints(result)
        back = reconstruct_placements(text, {"fir": module})
        assert len(back) == 1
        p = back[0]
        assert (p.shape_index, p.x, p.y) == (1, 3, 1)

    def test_reconstruct_detects_wrong_module(self):
        result, module = simple_result()
        text = export_constraints(result)
        other = Module("fir", [Footprint.rectangle(3, 3)])
        with pytest.raises(ValueError):
            reconstruct_placements(text, {"fir": other})
        with pytest.raises(KeyError):
            reconstruct_placements(text, {})

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_constraints("NOT A CONSTRAINT ;")

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\n" + export_constraints(simple_result()[0])
        assert "fir" in parse_constraints(text)

    def test_file_round_trip(self, tmp_path):
        result, module = simple_result()
        path = tmp_path / "floorplan.ucf"
        save_constraints(result, path)
        back = reconstruct_placements(path.read_text(), {"fir": module})
        assert back[0].x == 3

    def test_full_pipeline_round_trip(self):
        """Place real generated modules, export, reconstruct, verify."""
        region = PartialRegion.whole_device(irregular_device(48, 12, seed=5))
        cfg = GeneratorConfig(clb_min=8, clb_max=16, bram_max=1,
                              height_min=2, height_max=4)
        modules = ModuleGenerator(seed=3, config=cfg).generate_set(4)
        res = CPPlacer(
            PlacerConfig(time_limit=3.0, first_solution_only=True)
        ).place(region, modules)
        assert res.all_placed
        text = export_constraints(res)
        back = reconstruct_placements(text, {m.name: m for m in modules})
        rebuilt = PlacementResult(region, back)
        rebuilt.verify()
        assert {(p.module.name, p.shape_index, p.x, p.y) for p in back} == {
            (p.module.name, p.shape_index, p.x, p.y) for p in res.placements
        }

"""Phase-based reconfiguration scheduling."""

from __future__ import annotations

import pytest

from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.flow.scheduler import (
    Phase,
    ReconfigurationScheduler,
    compare_policies,
)
from repro.modules.footprint import Footprint
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module


def rect_module(name, w, h):
    return Module(name, [Footprint.rectangle(w, h)])


@pytest.fixture(scope="module")
def workload():
    region = PartialRegion.whole_device(irregular_device(48, 12, seed=5))
    cfg = GeneratorConfig(clb_min=8, clb_max=16, bram_max=1,
                          height_min=2, height_max=4)
    mods = ModuleGenerator(seed=9, config=cfg).generate_set(6)
    phases = [
        Phase("boot", mods[:3]),
        Phase("steady", mods[1:5]),        # keeps mods 1-2, adds 3-4
        Phase("burst", mods[1:6]),         # adds 5
        Phase("idle", mods[1:2]),          # drops almost everything
    ]
    return region, mods, phases


class TestPhase:
    def test_duplicate_modules_rejected(self):
        m = rect_module("a", 2, 2)
        with pytest.raises(ValueError):
            Phase("p", [m, m])

    def test_module_names(self):
        p = Phase("p", [rect_module("a", 1, 1), rect_module("b", 1, 1)])
        assert p.module_names() == ["a", "b"]


class TestScheduling:
    def test_all_phases_placed_and_valid(self, workload):
        region, _, phases = workload
        result = ReconfigurationScheduler(region).schedule(phases)
        assert result.ok, result.failures
        assert len(result.phases) == 4
        for phase, placed in zip(phases, result.phases):
            assert {p.module.name for p in placed.placements} == set(
                phase.module_names()
            )

    def test_sticky_keeps_survivors_in_place(self, workload):
        region, _, phases = workload
        result = ReconfigurationScheduler(region, sticky=True).schedule(phases)
        boot, steady = result.phases[0], result.phases[1]
        boot_pos = {
            p.module.name: (p.shape_index, p.x, p.y) for p in boot.placements
        }
        for p in steady.placements:
            if p.module.name in boot_pos:
                assert (p.shape_index, p.x, p.y) == boot_pos[p.module.name]

    def test_transitions_account_membership(self, workload):
        region, _, phases = workload
        result = ReconfigurationScheduler(region).schedule(phases)
        t = result.transitions[1]  # boot -> steady
        assert t.from_phase == "boot" and t.to_phase == "steady"
        boot_names = set(phases[0].module_names())
        steady_names = set(phases[1].module_names())
        assert set(t.kept) == boot_names & steady_names
        assert set(t.arrived) == steady_names - boot_names
        assert set(t.departed) == boot_names - steady_names

    def test_sticky_never_costs_more_frames(self, workload):
        region, _, phases = workload
        sticky, naive = compare_policies(region, phases,
                                         fresh_time_limit=2.0)
        assert sticky.ok
        assert sticky.total_frames <= naive.total_frames

    def test_identical_consecutive_phases_free(self):
        region = PartialRegion.whole_device(homogeneous_device(12, 4))
        mods = [rect_module("a", 3, 2), rect_module("b", 2, 2)]
        phases = [Phase("p1", mods), Phase("p2", mods)]
        result = ReconfigurationScheduler(region).schedule(phases)
        assert result.transitions[1].frames == 0
        assert result.transitions[1].kept == ["a", "b"]

    def test_failure_reported_not_raised(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 2))
        phases = [
            Phase("p1", [rect_module("a", 4, 2)]),
            Phase("p2", [rect_module("a", 4, 2), rect_module("b", 2, 2)]),
        ]
        result = ReconfigurationScheduler(region).schedule(phases)
        assert not result.ok
        assert result.failures == {"p2": ["b"]}

    def test_summary(self, workload):
        region, _, phases = workload
        result = ReconfigurationScheduler(region).schedule(phases[:2])
        assert "total_frames=" in result.summary()

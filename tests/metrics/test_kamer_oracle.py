"""Differential oracle for the KAMER staircase sweep.

``maximal_empty_rectangles`` is load-bearing three times over: the
Bazargan-style online baseline places into its rectangles, the external
fragmentation metric ranks shards by its largest member, and (since the
memoization) the serving hot path trusts whatever value it computed last.
This suite pins it against a brute-force oracle that enumerates *every*
all-free rectangle and keeps the ones not extendable in any of the four
directions — O(W^2 H^2 WH), fine at <= 8x8 — across ~200 seeded random
masks plus the structured edge cases.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest

from repro.metrics.fragmentation import maximal_empty_rectangles


def brute_force_maximal(free: np.ndarray) -> List[Tuple[int, int, int, int]]:
    """All maximal empty rectangles by exhaustive enumeration."""
    free = np.asarray(free, dtype=bool)
    H, W = free.shape
    out = []
    for y in range(H):
        for x in range(W):
            for h in range(1, H - y + 1):
                for w in range(1, W - x + 1):
                    if not free[y : y + h, x : x + w].all():
                        continue
                    left = x > 0 and free[y : y + h, x - 1].all()
                    right = x + w < W and free[y : y + h, x + w].all()
                    up = y > 0 and free[y - 1, x : x + w].all()
                    down = y + h < H and free[y + h, x : x + w].all()
                    if not (left or right or up or down):
                        out.append((x, y, w, h))
    return sorted(out)


def random_masks(n: int = 200):
    rng = np.random.default_rng(1234)
    params = []
    for i in range(n):
        h = int(rng.integers(1, 9))
        w = int(rng.integers(1, 9))
        density = float(rng.uniform(0.1, 0.95))
        params.append(pytest.param(h, w, density, i, id=f"mask{i}"))
    return params


class TestStaircaseAgainstBruteForce:
    @pytest.mark.parametrize("h,w,density,i", random_masks())
    def test_random_masks(self, h, w, density, i):
        rng = np.random.default_rng(10_000 + i)
        free = rng.random((h, w)) < density
        assert maximal_empty_rectangles(free) == brute_force_maximal(free)

    def test_empty_mask_has_no_rectangles(self):
        assert maximal_empty_rectangles(np.zeros((5, 7), dtype=bool)) == []

    def test_full_mask_is_one_rectangle(self):
        assert maximal_empty_rectangles(np.ones((5, 7), dtype=bool)) == [
            (0, 0, 7, 5)
        ]

    def test_single_cell_grid(self):
        assert maximal_empty_rectangles(np.ones((1, 1), dtype=bool)) == [
            (0, 0, 1, 1)
        ]
        assert maximal_empty_rectangles(np.zeros((1, 1), dtype=bool)) == []

    def test_plus_shape(self):
        # the classic overlap case: two maximal rectangles crossing
        free = np.zeros((3, 3), dtype=bool)
        free[1, :] = True
        free[:, 1] = True
        assert maximal_empty_rectangles(free) == [(0, 1, 3, 1), (1, 0, 1, 3)]

    def test_no_duplicates_and_all_maximal(self):
        rng = np.random.default_rng(99)
        for _ in range(20):
            free = rng.random((8, 8)) < 0.6
            rects = maximal_empty_rectangles(free)
            assert len(rects) == len(set(rects))
            oracle = set(brute_force_maximal(free))
            for r in rects:
                assert r in oracle, f"{r} not maximal (or not empty)"

"""Utilization, fragmentation and run aggregation."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import Placement, PlacementResult
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.metrics.fragmentation import (
    external_fragmentation,
    free_mask,
    internal_fragmentation,
    largest_free_rectangle,
    maximal_empty_rectangles,
)
from repro.metrics.stats import RunAggregate, aggregate_runs
from repro.metrics.utilization import (
    extent_utilization,
    region_utilization,
    resource_utilization,
)
from repro.modules.footprint import Footprint
from repro.modules.module import Module


def result_with(region, placements):
    return PlacementResult(region, placements)


def rect_module(name, w, h):
    return Module(name, [Footprint.rectangle(w, h)])


class TestUtilization:
    def test_full_window(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 2))
        r = result_with(region, [Placement(rect_module("a", 2, 2), 0, 0, 0)])
        assert extent_utilization(r) == pytest.approx(1.0)
        assert region_utilization(r) == pytest.approx(0.5)

    def test_fragmented_window(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 2))
        # module at far right: window [0, 6) has 12 cells, 4 used
        r = result_with(region, [Placement(rect_module("a", 2, 2), 0, 4, 0)])
        assert extent_utilization(r) == pytest.approx(4 / 12)

    def test_empty_result(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 2))
        r = result_with(region, [])
        assert extent_utilization(r) == 0.0
        assert region_utilization(r) == 0.0
        assert resource_utilization(r) == {}

    def test_static_cells_not_in_denominator(self):
        g = homogeneous_device(4, 2)
        region = PartialRegion.with_static_box(g, 0, 0, 2, 2)
        r = result_with(region, [Placement(rect_module("a", 2, 2), 0, 2, 0)])
        assert region_utilization(r) == pytest.approx(1.0)

    def test_resource_utilization_per_kind(self):
        from repro.fabric.grid import FabricGrid

        g = FabricGrid.from_rows(["B...", "B..."])
        region = PartialRegion.whole_device(g)
        fp = Footprint([(0, 0, ResourceType.BRAM), (1, 0, ResourceType.CLB)])
        r = result_with(region, [Placement(Module("m", [fp]), 0, 0, 0)])
        util = resource_utilization(r)
        assert util[ResourceType.BRAM] == pytest.approx(0.5)
        assert util[ResourceType.CLB] == pytest.approx(1 / 2)  # window x<2: 2 CLB cells

    def test_smaller_extent_means_higher_utilization(self):
        region = PartialRegion.whole_device(homogeneous_device(12, 2))
        tight = result_with(
            region,
            [
                Placement(rect_module("a", 2, 2), 0, 0, 0),
                Placement(rect_module("b", 2, 2), 0, 2, 0),
            ],
        )
        loose = result_with(
            region,
            [
                Placement(rect_module("a", 2, 2), 0, 0, 0),
                Placement(rect_module("b", 2, 2), 0, 6, 0),
            ],
        )
        assert extent_utilization(tight) > extent_utilization(loose)


def brute_force_mers(free):
    """All maximal empty rectangles by exhaustive enumeration."""
    H, W = free.shape
    rects = set()
    for x in range(W):
        for y in range(H):
            for w in range(1, W - x + 1):
                for h in range(1, H - y + 1):
                    if free[y:y + h, x:x + w].all():
                        rects.add((x, y, w, h))
    maximal = set()
    for r in rects:
        x, y, w, h = r
        grown = [
            (x - 1, y, w + 1, h), (x, y - 1, w, h + 1),
            (x, y, w + 1, h), (x, y, w, h + 1),
        ]
        if not any(g in rects for g in grown):
            maximal.add(r)
    return maximal


class TestFragmentation:
    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12)
    )
    @settings(max_examples=40)
    def test_mers_match_brute_force(self, blocked):
        free = np.ones((6, 6), dtype=bool)
        for x, y in blocked:
            free[y, x] = False
        assert set(maximal_empty_rectangles(free)) == brute_force_mers(free)

    def test_empty_mask_has_no_rectangles(self):
        assert maximal_empty_rectangles(np.zeros((3, 3), dtype=bool)) == []

    def test_full_mask_single_rectangle(self):
        assert maximal_empty_rectangles(np.ones((3, 4), dtype=bool)) == [
            (0, 0, 4, 3)
        ]

    def test_external_fragmentation_zero_for_one_block(self):
        region = PartialRegion.whole_device(homogeneous_device(8, 2))
        r = result_with(region, [Placement(rect_module("a", 4, 2), 0, 0, 0)])
        assert external_fragmentation(r) == pytest.approx(0.0)

    def test_external_fragmentation_positive_when_split(self):
        region = PartialRegion.whole_device(homogeneous_device(9, 1))
        # wall in the middle splits free space 4 | 4
        r = result_with(region, [Placement(rect_module("w", 1, 1), 0, 4, 0)])
        assert external_fragmentation(r) == pytest.approx(0.5)

    def test_full_region_fragmentation_zero(self):
        region = PartialRegion.whole_device(homogeneous_device(2, 2))
        r = result_with(region, [Placement(rect_module("a", 2, 2), 0, 0, 0)])
        assert external_fragmentation(r) == 0.0

    def test_internal_fragmentation(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 4))
        lshape = Footprint(
            [(0, 0, ResourceType.CLB), (1, 0, ResourceType.CLB),
             (0, 1, ResourceType.CLB)]
        )
        r = result_with(region, [Placement(Module("l", [lshape]), 0, 0, 0)])
        assert internal_fragmentation(r) == pytest.approx(0.25)

    def test_internal_fragmentation_rect_is_zero(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 4))
        r = result_with(region, [Placement(rect_module("a", 2, 2), 0, 0, 0)])
        assert internal_fragmentation(r) == 0.0

    def test_largest_free_rectangle(self):
        region = PartialRegion.whole_device(homogeneous_device(6, 2))
        r = result_with(region, [Placement(rect_module("a", 2, 2), 0, 0, 0)])
        assert largest_free_rectangle(r) == (2, 0, 4, 2)

    def test_free_mask_excludes_static_and_occupied(self):
        g = homogeneous_device(4, 2)
        region = PartialRegion.with_static_box(g, 0, 0, 1, 2)
        r = result_with(region, [Placement(rect_module("a", 1, 2), 0, 1, 0)])
        fm = free_mask(r)
        assert fm.sum() == 4


class TestStats:
    def test_aggregate_basics(self):
        agg = RunAggregate("x", [1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.min == 1.0 and agg.max == 3.0
        assert agg.stdev == pytest.approx(1.0)
        assert agg.n == 3

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            RunAggregate("x").mean

    def test_single_sample_stdev_zero(self):
        assert RunAggregate("x", [5.0]).stdev == 0.0

    def test_aggregate_runs(self):
        runs = [{"u": 0.5, "t": 1.0}, {"u": 0.7, "t": 3.0}]
        agg = aggregate_runs(runs)
        assert agg["u"].mean == pytest.approx(0.6)
        assert agg["t"].n == 2

    def test_summary_formats(self):
        agg = RunAggregate("util", [0.5, 0.6])
        assert "%" in agg.summary(as_percent=True)
        assert "mean" in agg.summary()
        assert "no samples" in RunAggregate("x").summary()


class TestWindowAlignment:
    """Regression: all extent metrics must slice the same denominator
    columns (``_extent_window``) for both ``from_zero`` modes.  The
    weighted variant used to anchor at column 0 unconditionally and the
    per-resource variant hardcoded ``lo = 0``."""

    def _two_blocks(self):
        region = PartialRegion.whole_device(homogeneous_device(10, 2))
        return result_with(
            region,
            [
                Placement(rect_module("a", 2, 2), 0, 3, 0),
                Placement(rect_module("b", 2, 2), 0, 7, 0),
            ],
        )

    def test_weighted_equals_unweighted_on_clb_only_both_modes(self):
        from repro.metrics.utilization import weighted_extent_utilization

        r = self._two_blocks()
        for from_zero in (True, False):
            assert weighted_extent_utilization(
                r, from_zero=from_zero
            ) == pytest.approx(extent_utilization(r, from_zero=from_zero))

    def test_from_zero_false_starts_at_leftmost_module(self):
        r = self._two_blocks()
        # leftmost-module window [3, 9): 12 cells, 8 used
        assert extent_utilization(r, from_zero=False) == pytest.approx(8 / 12)
        assert extent_utilization(r, from_zero=True) == pytest.approx(8 / 18)

    def test_resource_utilization_shares_the_window(self):
        r = self._two_blocks()
        # CLB-only fabric: the per-kind ratio must equal the scalar metric
        for from_zero in (True, False):
            util = resource_utilization(r, window=True, from_zero=from_zero)
            assert util[ResourceType.CLB] == pytest.approx(
                extent_utilization(r, from_zero=from_zero)
            )

    def test_window_skips_static_prefix_columns(self):
        g = homogeneous_device(8, 2)
        region = PartialRegion.with_static_box(g, 0, 0, 2, 2)
        r = result_with(region, [Placement(rect_module("a", 2, 2), 0, 4, 0)])
        # from_zero anchors at the first *allowed* column (x=2): window
        # [2, 6) has 8 available cells, 4 used — for every variant
        from repro.metrics.utilization import weighted_extent_utilization

        assert extent_utilization(r) == pytest.approx(4 / 8)
        assert weighted_extent_utilization(r) == pytest.approx(4 / 8)
        util = resource_utilization(r, window=True, from_zero=True)
        assert util[ResourceType.CLB] == pytest.approx(4 / 8)


class TestWeightedUtilization:
    def test_matches_unweighted_on_clb_only(self):
        from repro.metrics.utilization import weighted_extent_utilization

        region = PartialRegion.whole_device(homogeneous_device(8, 2))
        r = result_with(region, [Placement(rect_module("a", 2, 2), 0, 0, 0)])
        assert weighted_extent_utilization(r) == pytest.approx(
            extent_utilization(r)
        )

    def test_idle_bram_weighs_more(self):
        from repro.fabric.grid import FabricGrid
        from repro.metrics.utilization import weighted_extent_utilization

        g = FabricGrid.from_rows(["B.", "B."])
        region = PartialRegion.whole_device(g)
        # a CLB-only module: the idle BRAM column drags the weighted
        # number below the unweighted one
        m = Module("c", [Footprint.rectangle(1, 2)])
        r = result_with(region, [Placement(m, 0, 1, 0)])
        assert weighted_extent_utilization(r) < extent_utilization(r)

    def test_using_bram_recovers_weight(self):
        from repro.fabric.grid import FabricGrid
        from repro.fabric.resource import ResourceType
        from repro.metrics.utilization import weighted_extent_utilization

        g = FabricGrid.from_rows(["B.", "B."])
        region = PartialRegion.whole_device(g)
        full = Footprint(
            [(0, 0, ResourceType.BRAM), (0, 1, ResourceType.BRAM),
             (1, 0, ResourceType.CLB), (1, 1, ResourceType.CLB)]
        )
        r = result_with(region, [Placement(Module("m", [full]), 0, 0, 0)])
        assert weighted_extent_utilization(r) == pytest.approx(1.0)

    def test_empty(self):
        from repro.metrics.utilization import weighted_extent_utilization

        region = PartialRegion.whole_device(homogeneous_device(4, 2))
        assert weighted_extent_utilization(result_with(region, [])) == 0.0

"""Property suites for the bitboard raster layer (ISSUE 6 satellites).

Two independent pins under the vectorized sweep:

* **Plane maintenance** — :class:`OccupancyBitboard` planes mutated by
  random interleavings of ``imprint`` and trail-level pops must always
  equal a board rasterized from scratch out of the currently-live
  material.  The trail undo restores the *exact* previous cells, so this
  holds even for overlapping imprints — the historical failure mode of
  occupancy grids maintained by "clear my cells" undos.
* **Batched counting** — :func:`count_anchors_batch`,
  :func:`integral_occupancy` and :func:`sliding_box_counts` must equal
  their scalar / brute-force counterparts on randomized inputs including
  the empty-mask and full-mask edge cases, and
  :meth:`OccupancyBitboard.forbidden_anchor_lattice` must equal the
  per-point :meth:`blocking_cell` probe over the whole lattice.
"""

import itertools
import random

import numpy as np
import pytest

from repro.cp.trail import Trail
from repro.fabric.masks import (
    count_anchors,
    count_anchors_batch,
    integral_occupancy,
    sliding_box_counts,
)
from repro.fabric.resource import ResourceType
from repro.geost.bitboard import OccupancyBitboard
from repro.geost.boxes import Box, ShiftedBox
from repro.geost.forbidden import ForbiddenRegion


def _random_box(rng: random.Random, window: Box) -> Box:
    """A random box overlapping (or sticking out of) the window."""
    origin = []
    size = []
    for o, s in zip(window.origin, window.size):
        lo = rng.randint(o - 2, o + s - 1)
        origin.append(lo)
        size.append(rng.randint(1, min(4, o + s + 2 - lo)))
    return Box(tuple(origin), tuple(size))


def _board_from_scratch(window: Box, live_boxes, regions) -> OccupancyBitboard:
    fresh = OccupancyBitboard(window)
    for region in regions:
        fresh.add_region(region)
    fresh.imprint(list(live_boxes))
    return fresh


def _planes_equal(a: OccupancyBitboard, b: OccupancyBitboard) -> bool:
    keys = set(a._planes) | set(b._planes)
    zero = np.zeros(a._shape, dtype=bool)
    return all(
        np.array_equal(a._planes.get(k, zero), b._planes.get(k, zero))
        for k in keys
    )


class TestPlaneMaintenance:
    """Satellite 1: trailed imprints == from-scratch rasterization."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_imprint_pop_interleavings(self, seed):
        rng = random.Random(seed)
        window = Box((rng.randint(-2, 1), rng.randint(-2, 1)), (9, 7))
        regions = [
            ForbiddenRegion(_random_box(rng, window),
                            rng.choice([None, ResourceType.BRAM]))
            for _ in range(rng.randint(0, 3))
        ]
        board = OccupancyBitboard(window)
        for region in regions:
            board.add_region(region)
        trail = Trail()
        #: stack of per-level live-imprint snapshots, mirroring the trail
        live: list = []
        levels: list = []
        ops = 0
        for _ in range(1500):
            roll = rng.random()
            if roll < 0.45 or not levels:
                trail.push_level()
                levels.append(list(live))
            elif roll < 0.80:
                # imprint 1–2 random (possibly overlapping) boxes
                boxes = [
                    _random_box(rng, window)
                    for _ in range(rng.randint(1, 2))
                ]
                board.imprint(boxes, trail)
                live.extend(boxes)
            else:
                trail.pop_level()
                live = levels.pop()
            ops += 1
            if ops % 100 == 0:
                fresh = _board_from_scratch(window, live, regions)
                assert _planes_equal(board, fresh), (
                    f"seed {seed}: planes diverged after {ops} ops"
                )
        # drain every remaining level: the board must return to its
        # post-time (regions-only) state exactly
        while levels:
            trail.pop_level()
            live = levels.pop()
        fresh = _board_from_scratch(window, live, regions)
        assert _planes_equal(board, fresh)
        assert board.occupied_count() == fresh.occupied_count()

    def test_overlapping_imprints_restore_exact_cells(self):
        """Popping one of two overlapping imprints must not clear the
        overlap cells still owned by the surviving imprint."""
        board = OccupancyBitboard(Box((0, 0), (4, 4)))
        trail = Trail()
        trail.push_level()
        board.imprint([Box((0, 0), (2, 2))], trail)
        trail.push_level()
        board.imprint([Box((1, 1), (2, 2))], trail)
        assert board.occupied_count() == 7
        trail.pop_level()
        assert board.occupied_count() == 4  # the first 2x2 is intact
        trail.pop_level()
        assert board.occupied_count() == 0

    def test_material_outside_window_is_clipped(self):
        board = OccupancyBitboard(Box((0, 0), (3, 3)))
        trail = Trail()
        trail.push_level()
        board.imprint([Box((-5, -5), (2, 2)), Box((2, 2), (8, 8))], trail)
        assert board.occupied_count() == 1  # only cell (2, 2) is inside
        trail.pop_level()
        assert board.occupied_count() == 0


def _scalar_counts(stack, col, row):
    return np.array(
        [count_anchors(v, col, row) for v in stack], dtype=np.int64
    )


class TestCountAnchorsBatch:
    """Satellite 2: batched == scalar per-anchor counting."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_stacks(self, seed):
        rng = np.random.default_rng(seed)
        n, H, W = int(rng.integers(1, 6)), int(rng.integers(1, 9)), int(
            rng.integers(1, 9)
        )
        stack = rng.random((n, H, W)) < rng.random()
        col = rng.random(W) < rng.random()
        row = rng.random(H) < rng.random()
        assert np.array_equal(
            count_anchors_batch(stack, col, row),
            _scalar_counts(stack, col, row),
        )

    def test_empty_and_full_masks(self):
        stack = np.ones((3, 4, 5), dtype=bool)
        none_col = np.zeros(5, dtype=bool)
        none_row = np.zeros(4, dtype=bool)
        all_col = np.ones(5, dtype=bool)
        all_row = np.ones(4, dtype=bool)
        assert count_anchors_batch(stack, none_col, all_row).tolist() == [0, 0, 0]
        assert count_anchors_batch(stack, all_col, none_row).tolist() == [0, 0, 0]
        assert count_anchors_batch(stack, all_col, all_row).tolist() == [20, 20, 20]
        empty_valid = np.zeros((3, 4, 5), dtype=bool)
        assert count_anchors_batch(empty_valid, all_col, all_row).tolist() == [0, 0, 0]

    def test_zero_shapes(self):
        stack = np.zeros((0, 4, 5), dtype=bool)
        col = np.ones(5, dtype=bool)
        row = np.ones(4, dtype=bool)
        assert count_anchors_batch(stack, col, row).shape == (0,)


class TestIntegralMachinery:
    """integral_occupancy / sliding_box_counts vs brute force, in 2-D and 3-D."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("ndim", [2, 3])
    def test_sliding_counts_match_brute_force(self, seed, ndim):
        rng = np.random.default_rng(seed * 10 + ndim)
        shape = tuple(int(rng.integers(1, 7)) for _ in range(ndim))
        occ = rng.random(shape) < 0.4
        table = integral_occupancy(occ)
        starts = tuple(int(rng.integers(-3, 4)) for _ in range(ndim))
        lengths = tuple(int(rng.integers(1, 4)) for _ in range(ndim))
        counts = tuple(int(rng.integers(1, 5)) for _ in range(ndim))
        got = sliding_box_counts(table, starts, lengths, counts)
        assert got.shape == counts
        for offset in itertools.product(*(range(c) for c in counts)):
            expect = 0
            box_ranges = []
            for d in range(ndim):
                lo = starts[d] + offset[d]
                box_ranges.append(
                    range(max(0, lo), min(shape[d], lo + lengths[d]))
                )
            for cell in itertools.product(*box_ranges):
                expect += bool(occ[cell])
            assert got[offset] == expect, (seed, ndim, offset)

    def test_integral_borders_are_zero(self):
        occ = np.ones((2, 3), dtype=bool)
        table = integral_occupancy(occ)
        assert table.shape == (3, 4)
        assert table[0].tolist() == [0, 0, 0, 0]
        assert table[:, 0].tolist() == [0, 0, 0]
        assert table[-1, -1] == 6


class TestForbiddenAnchorLattice:
    """The whole-lattice evaluation equals the per-point probe."""

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_blocking_cell(self, seed):
        rng = random.Random(100 + seed)
        window = Box((rng.randint(-1, 1), rng.randint(-1, 1)), (8, 6))
        board = OccupancyBitboard(window)
        for _ in range(rng.randint(0, 4)):
            board.add_region(
                ForbiddenRegion(
                    _random_box(rng, window),
                    rng.choice([None, ResourceType.BRAM, ResourceType.CLB]),
                )
            )
        board.imprint([_random_box(rng, window) for _ in range(2)])
        sboxes = []
        for _ in range(rng.randint(1, 3)):
            sboxes.append(
                ShiftedBox(
                    (rng.randint(0, 2), rng.randint(0, 2)),
                    (rng.randint(1, 3), rng.randint(1, 3)),
                    rng.choice([None, ResourceType.BRAM]),
                )
            )
        ox, oy = window.origin
        bounds = [
            (ox + rng.randint(0, 2), ox + rng.randint(3, 6)),
            (oy + rng.randint(0, 2), oy + rng.randint(3, 5)),
        ]
        lattice = board.forbidden_anchor_lattice(
            sboxes, bounds, integral_occupancy(board.combined_occupancy(()))
        )
        for ax in range(bounds[0][0], bounds[0][1] + 1):
            for ay in range(bounds[1][0], bounds[1][1] + 1):
                expect = any(
                    board.blocking_cell(sb, (ax, ay)) is not None
                    for sb in sboxes
                )
                got = bool(lattice[ax - bounds[0][0], ay - bounds[1][0]])
                assert got == expect, (seed, (ax, ay))

    def test_no_shapes_is_all_free(self):
        board = OccupancyBitboard(Box((0, 0), (4, 4)))
        board.imprint([Box((0, 0), (4, 4))])
        lattice = board.forbidden_anchor_lattice(
            (), [(0, 3), (0, 3)],
            integral_occupancy(board.combined_occupancy(())),
        )
        assert lattice.shape == (4, 4)
        assert not lattice.any()

    def test_combined_occupancy_stamps_extras(self):
        board = OccupancyBitboard(Box((0, 0), (3, 3)))
        occ = board.combined_occupancy([Box((1, 1), (1, 1)), Box((-5, 0), (1, 1))])
        assert occ.sum() == 1 and occ[1, 1]
        # the throwaway copy must not leak back into the board
        assert board.occupied_count() == 0

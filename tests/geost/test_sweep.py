"""Sweep-point algorithm vs exhaustive scanning."""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geost.boxes import Box
from repro.geost.sweep import point_feasible, sweep_max, sweep_min

boxes2d = st.lists(
    st.tuples(
        st.tuples(st.integers(-2, 8), st.integers(-2, 8)),
        st.tuples(st.integers(1, 4), st.integers(1, 4)),
    ).map(lambda t: Box(*t)),
    max_size=6,
)
bounds2d = st.tuples(
    st.tuples(st.integers(0, 4), st.integers(4, 9)),
    st.tuples(st.integers(0, 4), st.integers(4, 9)),
)


def brute_min(bounds, per_shape, dim):
    feasible = [
        p
        for p in itertools.product(
            *[range(lo, hi + 1) for lo, hi in bounds]
        )
        if point_feasible(p, per_shape)
    ]
    if not feasible:
        return None
    return min(p[dim] for p in feasible)


def brute_max(bounds, per_shape, dim):
    feasible = [
        p
        for p in itertools.product(
            *[range(lo, hi + 1) for lo, hi in bounds]
        )
        if point_feasible(p, per_shape)
    ]
    if not feasible:
        return None
    return max(p[dim] for p in feasible)


class TestSweepVsBruteForce:
    @given(bounds2d, st.lists(boxes2d, min_size=1, max_size=3), st.integers(0, 1))
    @settings(max_examples=80)
    def test_sweep_min_matches(self, bounds, per_shape, dim):
        got = sweep_min(bounds, per_shape, dim)
        want = brute_min(bounds, per_shape, dim)
        if want is None:
            assert got is None
        else:
            assert got is not None
            assert got[dim] == want
            assert point_feasible(got, per_shape)

    @given(bounds2d, st.lists(boxes2d, min_size=1, max_size=3), st.integers(0, 1))
    @settings(max_examples=80)
    def test_sweep_max_matches(self, bounds, per_shape, dim):
        got = sweep_max(bounds, per_shape, dim)
        want = brute_max(bounds, per_shape, dim)
        if want is None:
            assert got is None
        else:
            assert got is not None
            assert got[dim] == want
            assert point_feasible(got, per_shape)


class TestSweepEdgeCases:
    def test_no_forbidden_boxes(self):
        bounds = [(2, 5), (1, 4)]
        assert sweep_min(bounds, [[]], 0) == (2, 1)
        assert sweep_max(bounds, [[]], 1) == (5, 4)

    def test_fully_covered(self):
        bounds = [(0, 2), (0, 2)]
        wall = [Box((-1, -1), (5, 5))]
        assert sweep_min(bounds, [wall], 0) is None
        assert sweep_max(bounds, [wall], 0) is None

    def test_one_shape_free_suffices(self):
        bounds = [(0, 2), (0, 2)]
        wall = [Box((-1, -1), (5, 5))]
        assert sweep_min(bounds, [wall, []], 0) == (0, 0)

    def test_empty_bounds(self):
        assert sweep_min([(3, 2), (0, 1)], [[]], 0) is None

    def test_requires_shapes(self):
        import pytest

        with pytest.raises(ValueError):
            sweep_min([(0, 1)], [], 0)

    def test_jump_skips_hole(self):
        # forbidden stripe in the middle of the x range
        bounds = [(0, 10), (0, 0)]
        stripe = [Box((3, 0), (4, 1))]
        assert sweep_min(bounds, [stripe], 0) == (0, 0)
        # force start inside the stripe
        bounds = [(4, 10), (0, 0)]
        assert sweep_min(bounds, [stripe], 0) == (7, 0)

    def test_three_dimensional(self):
        bounds = [(0, 2), (0, 2), (0, 2)]
        blocker = [Box((0, 0, 0), (3, 3, 1))]  # first z-slab forbidden
        got = sweep_min(bounds, [blocker], 2)
        assert got is not None and got[2] == 1

"""Differential suite: incremental geost vs the wholesale oracle.

The incremental mode (dirty-object maintenance, trail-aware caches,
bitboard fast path) must be *observationally identical* to wholesale
re-filtering: per-object filtering is monotone, so chaotic iteration
reaches the same least fixpoint under any fair processing order, and both
modes therefore produce bit-identical search trees — not just the same
solutions.

100 seeded random instances (``tests.support.random_small_instance``) are
enumerated with both modes of the vectorized
:class:`~repro.geost.placement.PlacementKernel`, comparing complete
solution sets plus the search-tree counters (nodes, backtracks,
solutions, max depth) and the engine failure count.  A subset repeats the
check with the reference interval :class:`~repro.geost.kernel.Geost`
(slower: heterogeneity as 1x1 typed regions), and the backend layer is
exercised end-to-end through ``cp``, ``lns`` and ``portfolio`` (one
in-process worker) with the ``incremental`` knob threaded through
:class:`~repro.core.backend.protocol.PlacementRequest`.
"""

from __future__ import annotations

import pytest

from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.search import DepthFirstSearch
from repro.geost.kernel import Geost
from repro.geost.objects import GeostObject
from repro.geost.shapes import ShapeTable

from tests.support import (
    build_kernel,
    fabric_to_forbidden_regions,
    random_small_instance,
)

#: the order-independent fingerprint of one enumeration run
_STAT_KEYS = ("nodes", "backtracks", "solutions", "max_depth", "failures")


def _kernel_run(region, modules, incremental):
    """(solution set, stats fingerprint, inc stats) for one kernel mode."""
    m = Model()
    try:
        kernel, xs, ys, ss = build_kernel(
            m, region, modules, incremental=incremental
        )
    except Inconsistent:
        return set(), ("root-infeasible",), None
    dv = []
    for x, y, s in zip(xs, ys, ss):
        dv.extend([x, y, s])
    search = DepthFirstSearch(m.engine, dv)
    sols = {
        tuple(
            (sol[f"s{i}"], sol[f"x{i}"], sol[f"y{i}"])
            for i in range(len(modules))
        )
        for sol in search.all_solutions()
    }
    st = search.stats
    fingerprint = (
        st.nodes, st.backtracks, st.solutions, st.max_depth,
        m.engine.stats.failures,
    )
    return sols, fingerprint, kernel.inc_stats


def _geost_run(region, modules, incremental):
    """Same fingerprint for the reference interval kernel."""
    kinds = {
        k for mod in modules for fp in mod.shapes for _, _, k in fp.cells
    }
    regions = fabric_to_forbidden_regions(region, kinds)
    m = Model()
    table = ShapeTable()
    objects = []
    dv = []
    for i, mod in enumerate(modules):
        sids = [table.add_footprint(fp) for fp in mod.shapes]
        x = m.int_var(0, region.width - 1, f"x{i}")
        y = m.int_var(0, region.height - 1, f"y{i}")
        s = m.int_var(min(sids), max(sids), f"s{i}")
        objects.append(GeostObject(i, [x, y], s, table))
        dv.extend([x, y, s])
    try:
        m.post(Geost(objects, regions, incremental=incremental))
    except Inconsistent:
        return set(), ("root-infeasible",)
    search = DepthFirstSearch(m.engine, dv)
    sols = {tuple(sol[v.name] for v in dv) for sol in search.all_solutions()}
    st = search.stats
    return sols, (
        st.nodes, st.backtracks, st.solutions, st.max_depth,
        m.engine.stats.failures,
    )


@pytest.mark.parametrize("seed", range(100))
def test_placement_kernel_bit_identical(seed):
    region, modules = random_small_instance(seed)
    inc_sols, inc_stats, _ = _kernel_run(region, modules, incremental=True)
    ora_sols, ora_stats, _ = _kernel_run(region, modules, incremental=False)
    assert inc_sols == ora_sols, f"seed={seed}: solution sets differ"
    assert inc_stats == ora_stats, (
        f"seed={seed}: search trees differ "
        f"({dict(zip(_STAT_KEYS, inc_stats))} vs "
        f"{dict(zip(_STAT_KEYS, ora_stats))})"
    )


def test_incremental_mode_actually_reuses_work():
    """The equality above is not vacuous: the fast path really engages.

    Dirty-object filtering shows up in plain enumeration; anchor-count
    reuse needs the fail-first selector, so that leg runs through
    :class:`~repro.core.placer.CPPlacer` with profiling on — which also
    checks the ``geost_*`` profile counters land in the artifact.
    """
    from repro.core.placer import CPPlacer, PlacerConfig

    dirty = 0
    for seed in range(20):
        region, modules = random_small_instance(seed)
        _, _, inc = _kernel_run(region, modules, incremental=True)
        if inc is not None:
            dirty += inc.dirty
    assert dirty > 0

    # the 4x3 instances imprint at almost every node (each imprint bumps
    # the cache revision), so anchor-count reuse needs a deeper search: a
    # corridor with three polymorphic modules leaves several unplaced
    # modules per node whose domains are untouched between selections
    from repro.fabric.devices import homogeneous_device
    from repro.fabric.region import PartialRegion
    from repro.modules.footprint import Footprint
    from repro.modules.module import Module

    region = PartialRegion.whole_device(homogeneous_device(10, 4))
    modules = [
        Module("a", [Footprint.rectangle(3, 2), Footprint.rectangle(2, 3)]),
        Module("b", [Footprint.rectangle(2, 2)]),
        Module("c", [Footprint.rectangle(4, 1), Footprint.rectangle(1, 4),
                     Footprint.rectangle(2, 2)]),
    ]
    result = CPPlacer(
        PlacerConfig(time_limit=None, profile=True)
    ).place(region, modules)
    profile = result.stats["profile"]
    assert profile.geost_dirty > 0
    assert profile.geost_reused > 0
    assert profile.geost_rasterized > 0


@pytest.mark.parametrize("seed", range(0, 100, 4))
def test_reference_geost_bit_identical(seed):
    region, modules = random_small_instance(seed)
    inc_sols, inc_stats = _geost_run(region, modules, incremental=True)
    ora_sols, ora_stats = _geost_run(region, modules, incremental=False)
    assert inc_sols == ora_sols, f"seed={seed}: solution sets differ"
    assert inc_stats == ora_stats, f"seed={seed}: search trees differ"


# ----------------------------------------------------------------------
# Backend layer: the ``incremental`` request knob end-to-end
# ----------------------------------------------------------------------
def _backend_placements(name, region, modules, seed, **req_kwargs):
    from repro.core.backend import PlacementRequest, create_backend

    result = create_backend(name).place(
        PlacementRequest(region, modules, seed=seed, **req_kwargs)
    )
    return (
        result.status,
        tuple(
            (p.module.name, p.shape_index, p.x, p.y)
            for p in result.placements
        ),
    )


@pytest.mark.parametrize("seed", range(8))
def test_cp_backend_differential(seed):
    region, modules = random_small_instance(seed)
    runs = {
        incremental: _backend_placements(
            "cp", region, modules, seed, time_limit=None,
            incremental=incremental,
        )
        for incremental in (True, False)
    }
    assert runs[True] == runs[False], f"seed={seed}"


@pytest.mark.parametrize("seed", range(10))
def test_lns_backend_differential(seed):
    # generous wall clock + small stall limit: termination is decided by
    # the deterministic stall counter, never the clock, on these tiny
    # instances — so both modes replay the same iteration sequence
    from repro.core.lns import LNSConfig, LNSPlacer

    region, modules = random_small_instance(seed)
    runs = {}
    for incremental in (True, False):
        cfg = LNSConfig(
            time_limit=60.0, stall_limit=3, seed=seed,
            incremental=incremental,
        )
        result = LNSPlacer(cfg).place(region, modules)
        runs[incremental] = (
            result.status,
            tuple(
                (p.module.name, p.shape_index, p.x, p.y)
                for p in result.placements
            ),
        )
    assert runs[True] == runs[False], f"seed={seed}"


@pytest.mark.parametrize("seed", range(5))
def test_portfolio_backend_differential(seed):
    # n_workers=1 keeps the member in-process and deterministic
    from repro.core.portfolio import PortfolioConfig, PortfolioPlacer

    region, modules = random_small_instance(seed)
    runs = {}
    for incremental in (True, False):
        cfg = PortfolioConfig(
            n_workers=1, time_limit=60.0, base_seed=seed,
            incremental=incremental,
        )
        result = PortfolioPlacer(cfg).place(region, modules)
        runs[incremental] = (
            result.status,
            tuple(
                (p.module.name, p.shape_index, p.x, p.y)
                for p in result.placements
            ),
        )
    assert runs[True] == runs[False], f"seed={seed}"

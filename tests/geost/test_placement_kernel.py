"""The vectorized placement kernel.

The key cross-check: on small heterogeneous instances, the solution set of
the NumPy placement kernel must equal brute-force enumeration of the
paper's constraint definition (M_a ∧ M_b ∧ M_c).  Further tests cover
imprint/undo trailing, per-axis filtering strength, and the reporting
queries used by branching.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.fabric.devices import homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.geost.placement import PlacementKernel
from repro.modules.footprint import Footprint
from repro.modules.module import Module

from tests.support import build_kernel, brute_force_solutions, kernel_solutions


small_fp = st.sampled_from(
    [
        Footprint.rectangle(1, 1),
        Footprint.rectangle(2, 1),
        Footprint.rectangle(1, 2),
        Footprint.rectangle(2, 2),
        Footprint([(0, 0, ResourceType.CLB), (1, 1, ResourceType.CLB)]),
        Footprint([(0, 0, ResourceType.BRAM)]),
        Footprint([(0, 0, ResourceType.CLB), (1, 0, ResourceType.BRAM)]),
    ]
)


class TestSolutionSets:
    @given(st.lists(small_fp, min_size=1, max_size=2), st.integers(0, 20))
    @settings(max_examples=25)
    def test_matches_brute_force_heterogeneous(self, fps, seed):
        region = PartialRegion.whole_device(
            irregular_device(5, 4, seed=seed, bram_stride=3, jitter=1, clk_rows=0)
        )
        modules = [Module(f"m{i}", [fp]) for i, fp in enumerate(fps)]
        assert kernel_solutions(region, modules) == brute_force_solutions(
            region, modules
        )

    @given(st.lists(small_fp, min_size=2, max_size=2))
    @settings(max_examples=15)
    def test_matches_brute_force_with_alternatives(self, fps):
        region = PartialRegion.whole_device(homogeneous_device(4, 3))
        # one module with both footprints as alternatives + one fixed shape
        modules = [Module("poly", fps), Module("mono", [fps[0]])]
        assert kernel_solutions(region, modules) == brute_force_solutions(
            region, modules
        )

    def test_static_region_respected(self):
        g = homogeneous_device(4, 2)
        region = PartialRegion.with_static_box(g, 0, 0, 2, 2)
        modules = [Module("m", [Footprint.rectangle(2, 2)])]
        sols = kernel_solutions(region, modules)
        assert sols == {((0, 2, 0),)}


class TestFiltering:
    def test_initial_domains_pruned_to_static_anchors(self):
        region = PartialRegion.whole_device(homogeneous_device(6, 4))
        modules = [Module("m", [Footprint.rectangle(3, 2)])]
        m = Model()
        kernel, xs, ys, ss = build_kernel(m, region, modules)
        assert xs[0].max() == 3  # 6 - 3
        assert ys[0].max() == 2  # 4 - 2

    def test_resource_matching_restricts_anchors(self):
        rows = ["..B.", "..B."]
        g = __import__("repro.fabric.grid", fromlist=["FabricGrid"]).FabricGrid.from_rows(rows)
        region = PartialRegion.whole_device(g)
        fp = Footprint([(0, 0, ResourceType.BRAM)])
        m = Model()
        kernel, xs, ys, ss = build_kernel(m, region, [Module("b", [fp])])
        assert list(xs[0].domain) == [2]
        assert set(ys[0].domain) == {0, 1}

    def test_imprint_prunes_other_modules(self):
        region = PartialRegion.whole_device(homogeneous_device(4, 1))
        mods = [
            Module("a", [Footprint.rectangle(2, 1)]),
            Module("b", [Footprint.rectangle(2, 1)]),
        ]
        m = Model()
        kernel, xs, ys, ss = build_kernel(m, region, mods)
        xs[0].fix(0)
        ys[0].fix(0)
        ss[0].fix(0)
        m.engine.fixpoint()
        assert xs[1].min() == 2

    def test_overlap_failure_detected(self):
        region = PartialRegion.whole_device(homogeneous_device(3, 1))
        mods = [
            Module("a", [Footprint.rectangle(2, 1)]),
            Module("b", [Footprint.rectangle(2, 1)]),
        ]
        m = Model()
        with pytest.raises(Inconsistent):
            build_kernel(m, region, mods)  # 4 cells needed, 3 available

    def test_backtracking_restores_state(self):
        region = PartialRegion.whole_device(homogeneous_device(5, 2))
        mods = [
            Module("a", [Footprint.rectangle(2, 2)]),
            Module("b", [Footprint.rectangle(2, 2)]),
        ]
        m = Model()
        kernel, xs, ys, ss = build_kernel(m, region, mods)
        x1_before = list(xs[1].domain)
        occ_before = kernel.occupancy.copy()
        m.engine.push_level()
        xs[0].fix(0)
        ys[0].fix(0)
        ss[0].fix(0)
        m.engine.fixpoint()
        assert kernel.occupancy.any()
        assert list(xs[1].domain) != x1_before
        m.engine.pop_level()
        assert np.array_equal(kernel.occupancy, occ_before)
        assert list(xs[1].domain) == x1_before
        assert not kernel.items[0].placed

    def test_shape_alternative_collapses_under_pressure(self):
        # 2x1 corridor: a 1x2/2x1 polymorphic module must lie flat
        region = PartialRegion.whole_device(homogeneous_device(2, 1))
        mod = Module(
            "poly", [Footprint.rectangle(1, 2), Footprint.rectangle(2, 1)]
        )
        m = Model()
        kernel, xs, ys, ss = build_kernel(m, region, [mod])
        assert ss[0].value() == 1


class TestQueries:
    def _setup(self):
        region = PartialRegion.whole_device(homogeneous_device(3, 2))
        mods = [Module("a", [Footprint.rectangle(2, 1), Footprint.rectangle(1, 2)])]
        m = Model()
        kernel, xs, ys, ss = build_kernel(m, region, mods)
        return m, kernel, xs, ys, ss

    def test_anchors_for_bottom_left_order(self):
        m, kernel, xs, ys, ss = self._setup()
        anchors = kernel.anchors_for(0)
        assert anchors[0][1:] == (0, 0)  # first anchor at x=0,y=0
        xs_sorted = [a[1] for a in anchors]
        assert xs_sorted == sorted(xs_sorted)

    def test_anchor_count_matches_list(self):
        m, kernel, xs, ys, ss = self._setup()
        assert kernel.anchor_count(0) == len(kernel.anchors_for(0))

    def test_placements_empty_until_fixed(self):
        m, kernel, xs, ys, ss = self._setup()
        assert kernel.placements() == []
        xs[0].fix(0)
        ys[0].fix(0)
        ss[0].fix(0)
        m.engine.fixpoint()
        ps = kernel.placements()
        assert len(ps) == 1 and ps[0].x == 0

    def test_occupied_mask_shape(self):
        m, kernel, xs, ys, ss = self._setup()
        assert kernel.occupied_mask().shape == (2, 3)

    def test_validation(self):
        region = PartialRegion.whole_device(homogeneous_device(3, 2))
        m = Model()
        with pytest.raises(ValueError):
            PlacementKernel(region, [], [], [], [])
        mod = Module("a", [Footprint.rectangle(1, 1)])
        x = m.int_var(0, 2, "x")
        with pytest.raises(ValueError):
            PlacementKernel(region, [mod], [x], [], [])

"""Regression pin: the bitboard sweep does strictly less pointwise work.

The vectorized sweep replaces per-point ``ShapeView`` probes with
whole-lattice frontier scans, so on a Table-I-style workload (generated
modules with design alternatives on an irregular fabric) the bitboard
kernel must

* engage the fast path (``rows > 0``, ``fallbacks == 0``) and
* inspect strictly fewer scalar sweep points than the scalar kernel
  (``iterations`` strictly below PR 5's max-end sweep), with far fewer
  vectorized scans than the scalar run has point inspections.

If the fast path silently degrades to the scalar sweep (board missing,
``bitboard`` flag lost in config threading, fallback on every filter)
these assertions fail loudly instead of the suite merely getting slower.
"""

import pytest

from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.fabric.devices import irregular_device
from repro.fabric.region import PartialRegion
from repro.geost.kernel import Geost
from repro.geost.objects import GeostObject
from repro.geost.shapes import ShapeTable
from repro.modules.generator import GeneratorConfig, ModuleGenerator

from tests.support import fabric_to_forbidden_regions


def _table1_style_instance():
    """A scaled-down Table-I analog the reference kernel can chew on.

    Same ingredients as the benchmark workload — an irregular fabric and
    generator-drawn modules with several design alternatives each — at a
    size where the *scalar* reference sweep still runs in well under a
    second, so the pin stays in tier-1.
    """
    region = PartialRegion.whole_device(irregular_device(12, 8, seed=3))
    cfg = GeneratorConfig(clb_min=4, clb_max=10, bram_max=1,
                          height_min=2, height_max=4)
    modules = ModuleGenerator(seed=11, config=cfg).generate_set(4)
    return region, modules


def _geost_model(region, modules, bitboard: bool):
    kinds = {
        k for mod in modules for fp in mod.shapes for _, _, k in fp.cells
    }
    regions = fabric_to_forbidden_regions(region, kinds)
    m = Model()
    table = ShapeTable()
    objects = []
    for i, mod in enumerate(modules):
        sids = [table.add_footprint(fp) for fp in mod.shapes]
        x = m.int_var(0, region.width - 1, f"x{i}")
        y = m.int_var(0, region.height - 1, f"y{i}")
        s = m.int_var(min(sids), max(sids), f"s{i}")
        objects.append(GeostObject(i, [x, y], s, table))
    geost = Geost(objects, regions, incremental=True, bitboard=bitboard)
    m.post(geost)
    return m, geost, objects


def _repropagation_cycles(m, objects, n_fixes: int = 12) -> None:
    """Search-shaped load: fix one anchor under a level, fixpoint, pop."""
    engine = m.engine
    for i in range(n_fixes):
        x = objects[i % len(objects)].origin[0]
        engine.push_level()
        try:
            x.fix(x.min())
            engine.fixpoint()
        except Inconsistent:
            pass
        engine.pop_level()


@pytest.fixture(scope="module")
def sweep_stats_pair():
    region, modules = _table1_style_instance()
    out = {}
    for bitboard in (True, False):
        m, geost, objects = _geost_model(region, modules, bitboard)
        _repropagation_cycles(m, objects)
        out[bitboard] = (geost.sweep_stats, geost.inc_stats)
    return out


class TestSweepMonotonicity:
    def test_fast_path_engaged(self, sweep_stats_pair):
        sweep, inc = sweep_stats_pair[True]
        assert inc.fallbacks == 0, (
            "bitboard kernel fell back to the scalar sweep "
            f"({inc.fallbacks} times) — board missing on a Table-I window?"
        )
        assert sweep.rows > 0 and inc.rows_tested == sweep.rows

    def test_scalar_mode_reports_no_rows(self, sweep_stats_pair):
        sweep, inc = sweep_stats_pair[False]
        assert sweep.rows == 0 and inc.rows_tested == 0
        assert sweep.iterations > 0

    def test_bitboard_inspects_strictly_fewer_points(self, sweep_stats_pair):
        bb_sweep, _ = sweep_stats_pair[True]
        sc_sweep, _ = sweep_stats_pair[False]
        assert bb_sweep.iterations < sc_sweep.iterations, (
            f"vectorized sweep inspected {bb_sweep.iterations} points, "
            f"scalar max-end sweep {sc_sweep.iterations} — the fast path "
            "silently degraded to per-point probing"
        )
        # whole-lattice scans are orders of magnitude rarer than per-point
        # inspections; a factor-2 bar is loose enough to never flake while
        # still catching a sweep that scans per point instead of per lattice
        assert bb_sweep.rows * 2 < sc_sweep.iterations, (
            f"{bb_sweep.rows} frontier scans vs {sc_sweep.iterations} "
            "scalar points — vectorization is not actually batching"
        )

"""Property tests for the geost sweep algorithm.

Random boxes over a small 2-D anchor space, checked against brute-force
enumeration of :func:`repro.geost.sweep.point_feasible`.  The central
invariants (per instance):

* ``sweep_min``/``sweep_max`` return ``None`` iff no feasible anchor
  exists;
* the returned points are themselves feasible;
* their ``dim`` coordinates *bracket* every feasible anchor:
  ``sweep_min(...)[dim] <= p[dim] <= sweep_max(...)[dim]`` for all
  feasible ``p`` — and the bounds are tight (attained by some anchor).

Instances are generated with seeded ``random`` parametrization (one
subtest per seed) so a failure names its seed and reproduces exactly.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.geost.boxes import Box
from repro.geost.sweep import point_feasible, sweep_max, sweep_min


def random_sweep_instance(seed: int):
    """(bounds, per_shape_boxes) over a small 2-D space."""
    rng = random.Random(seed)
    W, H = rng.randint(2, 6), rng.randint(2, 6)
    bounds = [(0, W - 1), (0, H - 1)]
    n_shapes = rng.randint(1, 3)
    per_shape = []
    for _ in range(n_shapes):
        boxes = []
        for _ in range(rng.randint(0, 5)):
            x = rng.randint(-1, W - 1)
            y = rng.randint(-1, H - 1)
            boxes.append(
                Box((x, y), (rng.randint(1, 3), rng.randint(1, 3)))
            )
        per_shape.append(boxes)
    return bounds, per_shape


def feasible_points(bounds, per_shape):
    return [
        p
        for p in itertools.product(
            *(range(lo, hi + 1) for lo, hi in bounds)
        )
        if point_feasible(p, per_shape)
    ]


@pytest.mark.parametrize("seed", range(120))
@pytest.mark.parametrize("dim", [0, 1])
def test_sweep_brackets_all_feasible_anchors(seed, dim):
    bounds, per_shape = random_sweep_instance(seed)
    feasible = feasible_points(bounds, per_shape)
    lo = sweep_min(bounds, per_shape, dim)
    hi = sweep_max(bounds, per_shape, dim)

    if not feasible:
        assert lo is None and hi is None
        return

    assert lo is not None and hi is not None
    assert point_feasible(lo, per_shape)
    assert point_feasible(hi, per_shape)

    coords = [p[dim] for p in feasible]
    assert lo[dim] == min(coords), f"seed={seed} dim={dim}: min not tight"
    assert hi[dim] == max(coords), f"seed={seed} dim={dim}: max not tight"
    for p in feasible:
        assert lo[dim] <= p[dim] <= hi[dim]


@pytest.mark.parametrize("seed", range(40))
def test_sweep_min_is_lexicographic_smallest(seed):
    """The returned point is lex-minimal with dim most significant."""
    bounds, per_shape = random_sweep_instance(seed)
    feasible = feasible_points(bounds, per_shape)
    for dim in (0, 1):
        got = sweep_min(bounds, per_shape, dim)
        if not feasible:
            assert got is None
            continue
        order = [dim] + [d for d in range(len(bounds)) if d != dim]
        expect = min(feasible, key=lambda p: tuple(p[d] for d in order))
        assert got == expect, f"seed={seed} dim={dim}"


def test_empty_bounds_infeasible():
    assert sweep_min([(3, 2), (0, 1)], [[]], 0) is None


def test_requires_a_candidate_shape():
    with pytest.raises(ValueError):
        sweep_min([(0, 1), (0, 1)], [], 0)


def test_no_boxes_returns_corner():
    assert sweep_min([(0, 3), (0, 2)], [[]], 0) == (0, 0)
    assert sweep_max([(0, 3), (0, 2)], [[]], 0) == (3, 2)

"""The cross-kernel differential oracle suite (ISSUE 6 headline).

Every test runs seeded instances through pairs of
:class:`tests.support.OracleConfig` rungs and asserts *bit-identical*
behavior via :func:`tests.support.assert_bit_identical`: equal solution
sets, equal search-tree fingerprints (nodes, backtracks, solutions,
depth, failures, propagations, domain updates) and per-config profile
invariants.  The ladder, weakest oracle first:

1. wholesale scalar (``incremental=False, bitboard=False``) — the
   textbook re-filter-everything loop;
2. incremental scalar (``incremental=True, bitboard=False``) — PR 5's
   dirty-set propagation, already pinned against rung 1;
3. bitboard (``incremental=True, bitboard=True``) — this PR's
   vectorized sweep.

Across the whole module the generators cover sparse, dense and
shape-alternative-heavy 2-D regimes plus 3-D pure geost, at well over
150 instances total (see the seed ranges below: 60 sparse + 45 dense +
45 alt-heavy + 18 geost-2D + 30 geost-3D = 198 generator draws, most
exercised under several config pairs).
"""

import pytest

from tests.support import (
    BITBOARD,
    INCREMENTAL_SCALAR,
    SCALAR_ORACLE,
    OracleConfig,
    assert_bit_identical,
    brute_force_solutions,
    oracle_run,
    random_alt_heavy_instance,
    random_dense_instance,
    random_geost3d_instance,
    random_small_instance,
)

GEOST_BITBOARD_CFG = OracleConfig("geost", incremental=True, bitboard=True)
GEOST_SCALAR_CFG = OracleConfig("geost", incremental=True, bitboard=False)
GEOST_WHOLESALE_CFG = OracleConfig("geost", incremental=False, bitboard=False)


# ----------------------------------------------------------------------
# Placement kernel: 2-D regimes
# ----------------------------------------------------------------------
class TestPlacementKernelPairs:
    """Bitboard vs scalar on the production kernel, per regime."""

    @pytest.mark.parametrize("seed", range(60))
    def test_sparse(self, seed):
        region, modules = random_small_instance(seed)
        assert_bit_identical(
            region, BITBOARD, INCREMENTAL_SCALAR, modules=modules,
            context=f"sparse/{seed}",
        )

    @pytest.mark.parametrize("seed", range(45))
    def test_dense(self, seed):
        region, modules = random_dense_instance(seed)
        assert_bit_identical(
            region, BITBOARD, INCREMENTAL_SCALAR, modules=modules,
            context=f"dense/{seed}",
        )

    @pytest.mark.parametrize("seed", range(45))
    def test_alt_heavy(self, seed):
        region, modules = random_alt_heavy_instance(seed)
        assert_bit_identical(
            region, BITBOARD, INCREMENTAL_SCALAR, modules=modules,
            context=f"alt-heavy/{seed}",
        )


class TestPlacementKernelLadder:
    """The full three-rung ladder agrees pairwise (transitively pinning
    the bitboard sweep all the way down to the wholesale oracle)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_ladder_sparse(self, seed):
        region, modules = random_small_instance(1000 + seed)
        assert_bit_identical(
            region, BITBOARD, INCREMENTAL_SCALAR, modules=modules,
            context=f"ladder/{seed}",
        )
        assert_bit_identical(
            region, INCREMENTAL_SCALAR, SCALAR_ORACLE, modules=modules,
            context=f"ladder/{seed}",
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_ladder_dense(self, seed):
        region, modules = random_dense_instance(1000 + seed)
        assert_bit_identical(
            region, BITBOARD, SCALAR_ORACLE, modules=modules,
            context=f"ladder-dense/{seed}",
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_bitboard_without_incremental(self, seed):
        """The pure-vectorization rung (bitboard without the dirty-set
        machinery) is a valid configuration of the production kernel and
        must also match the wholesale scalar oracle."""
        region, modules = random_dense_instance(2000 + seed)
        assert_bit_identical(
            region,
            OracleConfig(incremental=False, bitboard=True),
            SCALAR_ORACLE,
            modules=modules,
            context=f"pure-vec/{seed}",
        )


class TestGroundTruth:
    """The top rung agrees with literal M_a ∧ M_b ∧ M_c enumeration."""

    @pytest.mark.parametrize("seed", range(15))
    def test_bitboard_vs_brute_force(self, seed):
        region, modules = random_small_instance(seed)
        run = oracle_run(region, modules, BITBOARD)
        assert run.solutions == frozenset(
            brute_force_solutions(region, modules)
        )


# ----------------------------------------------------------------------
# Reference kernel: 2-D (typed forbidden regions) and 3-D
# ----------------------------------------------------------------------
class TestReferenceKernel2D:
    @pytest.mark.parametrize("seed", range(12))
    def test_bitboard_vs_scalar(self, seed):
        region, modules = random_small_instance(seed)
        assert_bit_identical(
            region, GEOST_BITBOARD_CFG, GEOST_SCALAR_CFG, modules=modules,
            context=f"geost2d/{seed}",
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_bitboard_vs_wholesale(self, seed):
        region, modules = random_small_instance(500 + seed)
        assert_bit_identical(
            region, GEOST_BITBOARD_CFG, GEOST_WHOLESALE_CFG, modules=modules,
            context=f"geost2d-wholesale/{seed}",
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_cross_kernel_solution_sets(self, seed):
        """Production and reference kernels enumerate the same set.

        Search trees legitimately differ across *kernels* (different
        propagation strength orderings), so only the solution sets are
        compared here — the fingerprints are pinned within each kernel by
        the pair tests above.
        """
        region, modules = random_small_instance(seed)
        placement = oracle_run(region, modules, BITBOARD)
        geost = oracle_run(
            region, modules, GEOST_BITBOARD_CFG
        )
        assert placement.solutions == geost.solutions


class TestReferenceKernel3D:
    @pytest.mark.parametrize("seed", range(30))
    def test_bitboard_vs_scalar(self, seed):
        inst = random_geost3d_instance(seed)
        assert_bit_identical(
            inst, GEOST_BITBOARD_CFG, GEOST_SCALAR_CFG,
            context=f"geost3d/{seed}",
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_bitboard_vs_wholesale(self, seed):
        inst = random_geost3d_instance(seed)
        assert_bit_identical(
            inst, GEOST_BITBOARD_CFG, GEOST_WHOLESALE_CFG,
            context=f"geost3d-wholesale/{seed}",
        )


# ----------------------------------------------------------------------
# Engagement: the suite is not vacuous
# ----------------------------------------------------------------------
class TestSuiteEngagement:
    """Aggregate sanity: the generators produce solvable work and the
    bitboard path actually runs (a suite where every instance were
    root-infeasible, solution-free, or silently scalar would pass the
    pair tests while checking nothing)."""

    def test_2d_corpus_is_meaningful(self):
        solved = 0
        rows = 0
        for gen, n in (
            (random_small_instance, 20),
            (random_dense_instance, 20),
            (random_alt_heavy_instance, 20),
        ):
            for seed in range(n):
                region, modules = gen(seed)
                run = oracle_run(region, modules, BITBOARD)
                solved += bool(run.solutions)
                if run.inc_stats is not None:
                    rows += run.inc_stats.rows_tested
        assert solved >= 30, f"only {solved}/60 2-D instances solvable"
        assert rows > 0, "bitboard sweep never engaged on the 2-D corpus"

    def test_3d_corpus_is_meaningful(self):
        from tests.support import oracle_run_3d

        solved = 0
        rows = 0
        for seed in range(30):
            run = oracle_run_3d(
                random_geost3d_instance(seed), GEOST_BITBOARD_CFG
            )
            solved += bool(run.solutions)
            if run.inc_stats is not None:
                rows += run.inc_stats.rows_tested
        assert solved >= 10, f"only {solved}/30 3-D instances solvable"
        assert rows > 0, "bitboard sweep never engaged on the 3-D corpus"

"""The generic geost propagator: soundness, completeness, polymorphism.

Cross-checks: solution sets on small instances against (a) brute-force
enumeration of the non-overlap definition and (b) the DiffN constraint for
single-shape rectangular objects.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cp.constraints import Rect
from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.solver import Solver
from repro.fabric.resource import ResourceType
from repro.geost.boxes import Box, ShiftedBox
from repro.geost.forbidden import ForbiddenRegion
from repro.geost.kernel import Geost
from repro.geost.objects import GeostObject
from repro.geost.shapes import GeostShape, ShapeTable


def build_rect_instance(m, sizes, W, H):
    """One rectangular single-shape object per size."""
    table = ShapeTable()
    objects = []
    xs = []
    for i, (w, h) in enumerate(sizes):
        sid = table.add(GeostShape([ShiftedBox((0, 0), (w, h))]))
        x = m.int_var(0, W - w, f"x{i}")
        y = m.int_var(0, H - h, f"y{i}")
        s = m.int_var(sid, sid, f"s{i}")
        objects.append(GeostObject(i, [x, y], s, table))
        xs.extend([x, y])
    return objects, xs


def rects_disjoint(placements, sizes):
    boxes = [
        (x, y, x + w, y + h) for (x, y), (w, h) in zip(placements, sizes)
    ]
    for i in range(len(boxes)):
        for j in range(i + 1, len(boxes)):
            a, b = boxes[i], boxes[j]
            if a[0] < b[2] and b[0] < a[2] and a[1] < b[3] and b[1] < a[3]:
                return False
    return True


class TestGeostRectangles:
    @given(
        st.lists(
            st.tuples(st.integers(1, 2), st.integers(1, 2)),
            min_size=2,
            max_size=3,
        )
    )
    @settings(max_examples=25)
    def test_matches_brute_force(self, sizes):
        W = H = 4
        m = Model()
        objects, xs = build_rect_instance(m, sizes, W, H)
        try:
            m.post(Geost(objects))
        except Inconsistent:
            got = set()
        else:
            got = {
                tuple((s[f"x{i}"], s[f"y{i}"]) for i in range(len(sizes)))
                for s in Solver(m, xs).enumerate()
            }
        domains = [
            [(x, y) for x in range(W - w + 1) for y in range(H - h + 1)]
            for w, h in sizes
        ]
        want = {
            combo
            for combo in itertools.product(*domains)
            if rects_disjoint(combo, sizes)
        }
        assert got == want

    @given(
        st.lists(
            st.tuples(st.integers(1, 2), st.integers(1, 2)),
            min_size=2,
            max_size=3,
        )
    )
    @settings(max_examples=15)
    def test_matches_diffn(self, sizes):
        W = H = 4

        def solve_geost():
            m = Model()
            objects, xs = build_rect_instance(m, sizes, W, H)
            try:
                m.post(Geost(objects))
            except Inconsistent:
                return set()
            return {
                tuple((s[f"x{i}"], s[f"y{i}"]) for i in range(len(sizes)))
                for s in Solver(m, xs).enumerate()
            }

        def solve_diffn():
            m = Model()
            rects, xs = [], []
            for i, (w, h) in enumerate(sizes):
                x = m.int_var(0, W - w, f"x{i}")
                y = m.int_var(0, H - h, f"y{i}")
                rects.append(Rect(x, y, w, h))
                xs.extend([x, y])
            try:
                m.add_diffn(rects)
            except Inconsistent:
                return set()
            return {
                tuple((s[f"x{i}"], s[f"y{i}"]) for i in range(len(sizes)))
                for s in Solver(m, xs).enumerate()
            }

        assert solve_geost() == solve_diffn()


class TestGeostPolymorphism:
    def test_shape_variable_enumerates_alternatives(self):
        """A 1x2/2x1 polymorphic object in a 2x2 corner next to a wall."""
        m = Model()
        table = ShapeTable()
        s_tall = table.add(GeostShape([ShiftedBox((0, 0), (1, 2))]))
        s_wide = table.add(GeostShape([ShiftedBox((0, 0), (2, 1))]))
        x = m.int_var(0, 1, "x")
        y = m.int_var(0, 1, "y")
        s = m.int_var(s_tall, s_wide, "s")
        obj = GeostObject(0, [x, y], s, table)
        walls = [
            ForbiddenRegion(Box((2, 0), (10, 10))),
            ForbiddenRegion(Box((0, 2), (10, 10))),
        ]
        m.post(Geost([obj], walls))
        sols = Solver(m, [x, y, s]).enumerate()
        # tall fits at (0..1, 0); wide at (0, 0..1)
        assert len(sols) == 4

    def test_infeasible_shape_removed(self):
        m = Model()
        table = ShapeTable()
        s_small = table.add(GeostShape([ShiftedBox((0, 0), (1, 1))]))
        s_huge = table.add(GeostShape([ShiftedBox((0, 0), (9, 9))]))
        x = m.int_var(0, 2, "x")
        y = m.int_var(0, 2, "y")
        s = m.int_var(s_small, s_huge, "s")
        # region [0,3)x[0,3): the huge shape pokes out everywhere
        region = ForbiddenRegion(Box((3, 0), (100, 100)))
        region2 = ForbiddenRegion(Box((0, 3), (100, 100)))
        m.post(Geost([GeostObject(0, [x, y], s, table)], [region, region2]))
        assert s.value() == s_small

    def test_alternatives_rescue_feasibility(self):
        """Two 1x2 objects in a 2x2 area need one to pick the rotated shape."""
        m = Model()
        table = ShapeTable()
        tall = table.add(GeostShape([ShiftedBox((0, 0), (1, 2))]))
        wide = table.add(GeostShape([ShiftedBox((0, 0), (2, 1))]))
        xs = []
        objects = []
        for i in range(2):
            x = m.int_var(0, 1, f"x{i}")
            y = m.int_var(0, 1, f"y{i}")
            s = m.int_var(tall, wide, f"s{i}")
            objects.append(GeostObject(i, [x, y], s, table))
            xs.extend([x, y, s])
        walls = [
            ForbiddenRegion(Box((2, 0), (10, 10))),
            ForbiddenRegion(Box((0, 2), (10, 10))),
        ]
        m.post(Geost(objects, walls))
        sols = Solver(m, xs).enumerate()
        assert sols  # e.g. both tall side by side, or both wide stacked
        for sol in sols:
            # never one tall and one wide (they'd collide in 2x2)
            assert sol["s0"] == sol["s1"]


class TestGeostResourceRegions:
    def test_resource_region_only_blocks_matching_boxes(self):
        m = Model()
        table = ShapeTable()
        clb = table.add(
            GeostShape([ShiftedBox((0, 0), (1, 1), ResourceType.CLB)])
        )
        bram = table.add(
            GeostShape([ShiftedBox((0, 0), (1, 1), ResourceType.BRAM)])
        )
        # column x=0 forbidden for BRAM boxes
        region = ForbiddenRegion(Box((0, 0), (1, 4)), ResourceType.BRAM)

        x1 = m.int_var(0, 0, "x1")
        y1 = m.int_var(0, 3, "y1")
        s1 = m.int_var(bram, bram, "s1")
        with pytest.raises(Inconsistent):
            m.post(Geost([GeostObject(0, [x1, y1], s1, table)], [region]))

        m2 = Model()
        x2 = m2.int_var(0, 0, "x2")
        y2 = m2.int_var(0, 3, "y2")
        s2 = m2.int_var(clb, clb, "s2")
        m2.post(Geost([GeostObject(0, [x2, y2], s2, table)], [region]))
        assert y2.size() == 4  # CLB box untouched

    def test_check_fixed(self):
        m = Model()
        table = ShapeTable()
        sid = table.add(GeostShape([ShiftedBox((0, 0), (2, 2))]))
        objs = []
        for i, (px, py) in enumerate([(0, 0), (2, 0)]):
            x = m.int_var(px, px, f"x{i}")
            y = m.int_var(py, py, f"y{i}")
            s = m.int_var(sid, sid, f"s{i}")
            objs.append(GeostObject(i, [x, y], s, table))
        g = Geost(objs)
        assert g.check_fixed()

    def test_validation(self):
        m = Model()
        with pytest.raises(ValueError):
            Geost([])
        table = ShapeTable()
        sid = table.add(GeostShape([ShiftedBox((0, 0), (1, 1))]))
        x = m.int_var(0, 1, "x")
        s = m.int_var(sid, sid, "s")
        with pytest.raises(ValueError):
            GeostObject(0, [], s, table)
        with pytest.raises(ValueError):
            GeostObject(0, [x], s, table)  # 1 origin var vs 2-d shape

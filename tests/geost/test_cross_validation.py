"""Cross-validation: the two geost implementations enforce one relation.

The reference interval kernel (:class:`repro.geost.kernel.Geost`, fabric
heterogeneity encoded as resource-typed forbidden regions) and the
vectorized placement kernel (:class:`repro.geost.placement.PlacementKernel`,
fabric encoded as anchor bitmaps) are independent implementations of the
paper's constraint; on small instances their solution sets must coincide.

The enumeration helpers live in :mod:`tests.support` and are shared with
the brute-force checks in ``test_placement_kernel.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.devices import irregular_device
from repro.fabric.grid import FabricGrid
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.module import Module

from tests.support import (
    geost_solutions,
    kernel_solutions,
    random_small_instance,
)

footprints = st.sampled_from(
    [
        Footprint.rectangle(1, 1),
        Footprint.rectangle(2, 1),
        Footprint.rectangle(2, 2),
        Footprint([(0, 0, ResourceType.BRAM)]),
        Footprint([(0, 0, ResourceType.CLB), (1, 0, ResourceType.BRAM)]),
        Footprint([(0, 0, ResourceType.CLB), (0, 1, ResourceType.CLB),
                   (1, 1, ResourceType.CLB)]),
    ]
)


class TestCrossValidation:
    @given(st.lists(footprints, min_size=1, max_size=2), st.integers(0, 12))
    @settings(max_examples=12, deadline=None)
    def test_solution_sets_coincide(self, fps, seed):
        region = PartialRegion.whole_device(
            irregular_device(4, 3, seed=seed, bram_stride=3, jitter=1,
                             clk_rows=0, io_edges=False)
        )
        modules = [Module(f"m{i}", [fp]) for i, fp in enumerate(fps)]
        assert geost_solutions(region, modules) == kernel_solutions(
            region, modules
        )

    def test_polymorphic_object_coincides(self):
        region = PartialRegion.whole_device(
            FabricGrid.from_rows(["...", "B.."])
        )
        module = Module(
            "poly",
            [
                Footprint([(0, 0, ResourceType.CLB), (1, 0, ResourceType.CLB)]),
                Footprint([(0, 0, ResourceType.CLB), (0, 1, ResourceType.CLB)]),
            ],
        )
        assert geost_solutions(region, [module]) == kernel_solutions(
            region, [module]
        )

    def test_two_modules_with_bram(self):
        region = PartialRegion.whole_device(
            FabricGrid.from_rows(["B..B", "B..B"])
        )
        modules = [
            Module("a", [Footprint([(0, 0, ResourceType.BRAM),
                                    (1, 0, ResourceType.CLB)])]),
            Module("b", [Footprint([(0, 0, ResourceType.CLB)])]),
        ]
        geost = geost_solutions(region, modules)
        kernel = kernel_solutions(region, modules)
        assert geost == kernel
        assert geost  # instance is feasible


class TestDifferentialHarness:
    """Seeded differential sweep: 50 random instances, identical sets.

    Unlike the hypothesis tests above, the instances here are fixed by
    seed (reproducible by number, no shrinking involved) and include
    polymorphic modules.  The first batch runs in tier-1; the bulk of
    the sweep is marked slow.
    """

    @pytest.mark.parametrize("seed", range(10))
    def test_differential_fast(self, seed):
        region, modules = random_small_instance(seed)
        assert geost_solutions(region, modules) == kernel_solutions(
            region, modules
        ), f"implementations disagree on instance seed={seed}"

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(10, 50))
    def test_differential_sweep(self, seed):
        region, modules = random_small_instance(seed)
        assert geost_solutions(region, modules) == kernel_solutions(
            region, modules
        ), f"implementations disagree on instance seed={seed}"

    def test_harness_not_vacuous(self):
        """At least some sampled instances must actually have solutions."""
        nonempty = 0
        for seed in range(10):
            region, modules = random_small_instance(seed)
            if kernel_solutions(region, modules):
                nonempty += 1
        assert nonempty >= 3

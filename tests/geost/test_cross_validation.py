"""Cross-validation: the two geost implementations enforce one relation.

The reference interval kernel (:class:`repro.geost.kernel.Geost`, fabric
heterogeneity encoded as resource-typed forbidden regions) and the
vectorized placement kernel (:class:`repro.geost.placement.PlacementKernel`,
fabric encoded as anchor bitmaps) are independent implementations of the
paper's constraint; on small instances their solution sets must coincide.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.cp.solver import Solver
from repro.fabric.devices import irregular_device
from repro.fabric.grid import FabricGrid
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType
from repro.geost.boxes import Box
from repro.geost.forbidden import ForbiddenRegion
from repro.geost.kernel import Geost
from repro.geost.objects import GeostObject
from repro.geost.placement import PlacementKernel
from repro.geost.shapes import ShapeTable
from repro.modules.footprint import Footprint
from repro.modules.module import Module


def fabric_to_forbidden_regions(region: PartialRegion, kinds):
    """Encode heterogeneity as resource-typed forbidden 1x1 regions.

    For every resource kind used by the modules, each cell that is NOT of
    that kind (or is static) forbids boxes of that kind; cells outside the
    fabric are excluded by a surrounding wall for all kinds.
    """
    out = []
    allowed = region.allowed_mask()
    grid = region.grid.cells
    H, W = region.height, region.width
    for kind in kinds:
        for y in range(H):
            for x in range(W):
                if not allowed[y, x] or grid[y, x] != int(kind):
                    out.append(
                        ForbiddenRegion(Box((x, y), (1, 1)), kind)
                    )
    # walls (block everything)
    out.append(ForbiddenRegion(Box((-100, -100), (100, 200 + W))))        # left
    out.append(ForbiddenRegion(Box((W, -100), (100, 200 + W))))           # right
    out.append(ForbiddenRegion(Box((-100, -100), (200 + W, 100))))        # below
    out.append(ForbiddenRegion(Box((-100, H), (200 + W, 100))))           # above
    return out


def geost_solutions(region: PartialRegion, modules):
    kinds = {
        k for mod in modules for fp in mod.shapes for _, _, k in fp.cells
    }
    regions = fabric_to_forbidden_regions(region, kinds)
    m = Model()
    table = ShapeTable()
    objects = []
    dv = []
    for i, mod in enumerate(modules):
        sids = [table.add_footprint(fp) for fp in mod.shapes]
        x = m.int_var(0, region.width - 1, f"x{i}")
        y = m.int_var(0, region.height - 1, f"y{i}")
        s = m.int_var(min(sids), max(sids), f"s{i}")
        objects.append(GeostObject(i, [x, y], s, table))
        dv.extend([x, y, s])
    try:
        m.post(Geost(objects, regions))
    except Inconsistent:
        return set()
    sols = Solver(m, dv).enumerate()
    out = set()
    for sol in sols:
        key = []
        offset = 0
        for i, mod in enumerate(modules):
            key.append((sol[f"s{i}"] - offset, sol[f"x{i}"], sol[f"y{i}"]))
            offset += mod.n_alternatives
        out.add(tuple(key))
    return out


def kernel_solutions(region: PartialRegion, modules):
    m = Model()
    xs = [m.int_var(0, region.width - 1, f"x{i}") for i in range(len(modules))]
    ys = [m.int_var(0, region.height - 1, f"y{i}") for i in range(len(modules))]
    ss = [
        m.int_var(0, mod.n_alternatives - 1, f"s{i}")
        for i, mod in enumerate(modules)
    ]
    try:
        m.post(PlacementKernel(region, modules, xs, ys, ss))
    except Inconsistent:
        return set()
    dv = []
    for x, y, s in zip(xs, ys, ss):
        dv.extend([x, y, s])
    return {
        tuple(
            (sol[f"s{i}"], sol[f"x{i}"], sol[f"y{i}"])
            for i in range(len(modules))
        )
        for sol in Solver(m, dv).enumerate()
    }


footprints = st.sampled_from(
    [
        Footprint.rectangle(1, 1),
        Footprint.rectangle(2, 1),
        Footprint.rectangle(2, 2),
        Footprint([(0, 0, ResourceType.BRAM)]),
        Footprint([(0, 0, ResourceType.CLB), (1, 0, ResourceType.BRAM)]),
        Footprint([(0, 0, ResourceType.CLB), (0, 1, ResourceType.CLB),
                   (1, 1, ResourceType.CLB)]),
    ]
)


class TestCrossValidation:
    @given(st.lists(footprints, min_size=1, max_size=2), st.integers(0, 12))
    @settings(max_examples=12, deadline=None)
    def test_solution_sets_coincide(self, fps, seed):
        region = PartialRegion.whole_device(
            irregular_device(4, 3, seed=seed, bram_stride=3, jitter=1,
                             clk_rows=0, io_edges=False)
        )
        modules = [Module(f"m{i}", [fp]) for i, fp in enumerate(fps)]
        assert geost_solutions(region, modules) == kernel_solutions(
            region, modules
        )

    def test_polymorphic_object_coincides(self):
        region = PartialRegion.whole_device(
            FabricGrid.from_rows(["...", "B.."])
        )
        module = Module(
            "poly",
            [
                Footprint([(0, 0, ResourceType.CLB), (1, 0, ResourceType.CLB)]),
                Footprint([(0, 0, ResourceType.CLB), (0, 1, ResourceType.CLB)]),
            ],
        )
        assert geost_solutions(region, [module]) == kernel_solutions(
            region, [module]
        )

    def test_two_modules_with_bram(self):
        region = PartialRegion.whole_device(
            FabricGrid.from_rows(["B..B", "B..B"])
        )
        modules = [
            Module("a", [Footprint([(0, 0, ResourceType.BRAM),
                                    (1, 0, ResourceType.CLB)])]),
            Module("b", [Footprint([(0, 0, ResourceType.CLB)])]),
        ]
        geost = geost_solutions(region, modules)
        kernel = kernel_solutions(region, modules)
        assert geost == kernel
        assert geost  # instance is feasible

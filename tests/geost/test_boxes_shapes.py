"""geost primitives: boxes, shifted boxes, shapes, forbidden regions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fabric.resource import ResourceType
from repro.geost.boxes import Box, ShiftedBox
from repro.geost.forbidden import (
    ForbiddenRegion,
    anchor_forbidden_box,
    compulsory_boxes,
    forbidden_anchor_boxes,
)
from repro.geost.shapes import GeostShape, ShapeTable
from repro.modules.footprint import Footprint

box2d = st.tuples(
    st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
    st.tuples(st.integers(1, 4), st.integers(1, 4)),
).map(lambda t: Box(*t))


class TestBox:
    def test_validation(self):
        with pytest.raises(ValueError):
            Box((0, 0), (0, 1))
        with pytest.raises(ValueError):
            Box((0,), (1, 1))
        with pytest.raises(ValueError):
            Box((), ())

    def test_end_and_volume(self):
        b = Box((1, 2), (3, 4))
        assert b.end == (4, 6)
        assert b.volume() == 12

    def test_contains_point(self):
        b = Box((0, 0), (2, 2))
        assert b.contains_point((0, 0))
        assert b.contains_point((1, 1))
        assert not b.contains_point((2, 0))

    @given(box2d, box2d)
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(box2d, box2d)
    def test_intersection_consistent(self, a, b):
        inter = a.intersection(b)
        if inter is None:
            assert not a.intersects(b)
        else:
            assert a.intersects(b)
            for p in inter.points():
                assert a.contains_point(p) and b.contains_point(p)

    @given(box2d)
    def test_points_count_equals_volume(self, b):
        assert len(list(b.points())) == b.volume()

    def test_translated(self):
        b = Box((1, 1), (2, 2)).translated((3, -1))
        assert b.origin == (4, 0)


class TestShiftedBox:
    def test_at_anchor(self):
        sb = ShiftedBox((1, 2), (2, 1), ResourceType.CLB)
        assert sb.at((10, 10)) == Box((11, 12), (2, 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            ShiftedBox((0, 0), (0, 1))


class TestGeostShape:
    def test_from_footprint_covers_cells(self):
        fp = Footprint.from_rows(["B..", "B.."])
        shape = GeostShape.from_footprint(fp)
        covered = set()
        for sb in shape.boxes:
            for p in sb.at((0, 0)).points():
                covered.add(p)
        assert covered == {(x, y) for x, y, _ in fp.cells}
        assert shape.volume() == fp.area

    def test_from_footprint_merges_runs(self):
        fp = Footprint.rectangle(1, 5)
        shape = GeostShape.from_footprint(fp)
        assert len(shape.boxes) == 1  # one vertical run
        assert shape.boxes[0].size == (1, 5)

    def test_resource_property_attached(self):
        fp = Footprint([(0, 0, ResourceType.BRAM)])
        shape = GeostShape.from_footprint(fp)
        assert shape.boxes[0].resource is ResourceType.BRAM

    def test_bounding_box(self):
        fp = Footprint([(0, 0, ResourceType.CLB), (2, 1, ResourceType.CLB)])
        bb = GeostShape.from_footprint(fp).bounding_box()
        assert bb.origin == (0, 0) and bb.size == (3, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GeostShape([])

    def test_table(self):
        t = ShapeTable()
        sid = t.add_footprint(Footprint.rectangle(2, 2))
        assert len(t) == 1
        assert t[sid].volume() == 4
        assert list(t.ids()) == [0]


class TestForbidden:
    @given(box2d, st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
           st.tuples(st.integers(1, 3), st.integers(1, 3)))
    def test_anchor_forbidden_box_exact(self, obstacle, offset, size):
        """p in forbidden box <=> sbox placed at p intersects obstacle."""
        sb = ShiftedBox(offset, size)
        fb = anchor_forbidden_box(sb, obstacle)
        for px in range(fb.origin[0] - 1, fb.end[0] + 1):
            for py in range(fb.origin[1] - 1, fb.end[1] + 1):
                inside = fb.contains_point((px, py))
                overlaps = sb.at((px, py)).intersects(obstacle)
                assert inside == overlaps

    def test_region_resource_filtering(self):
        region = ForbiddenRegion(Box((0, 0), (2, 2)), ResourceType.BRAM)
        bram_box = ShiftedBox((0, 0), (1, 1), ResourceType.BRAM)
        clb_box = ShiftedBox((0, 0), (1, 1), ResourceType.CLB)
        assert region.blocks(bram_box)
        assert not region.blocks(clb_box)
        wild = ForbiddenRegion(Box((0, 0), (2, 2)), None)
        assert wild.blocks(bram_box) and wild.blocks(clb_box)

    def test_forbidden_anchor_boxes_counts(self):
        shape = [ShiftedBox((0, 0), (1, 1), ResourceType.CLB)]
        obstacles = [Box((0, 0), (1, 1)), Box((5, 5), (1, 1))]
        regions = [ForbiddenRegion(Box((2, 2), (1, 1)), ResourceType.BRAM)]
        boxes = forbidden_anchor_boxes(shape, obstacles, regions)
        assert len(boxes) == 2  # region doesn't block a CLB box

"""Stateful invariants of the placement kernel under random search walks.

Drives the kernel through random push/fix/pop sequences (the access
pattern of any search) and after every step re-derives its internal state
from first principles:

* the occupancy grid equals the union of placed modules' cells,
* every (module, shape) anchor mask equals the static mask minus anchors
  colliding with placed material,
* domains remain consistent with the masks (no phantom values).
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.fabric.devices import irregular_device
from repro.fabric.masks import valid_anchor_mask
from repro.fabric.region import PartialRegion
from repro.geost.placement import PlacementKernel
from repro.modules.generator import GeneratorConfig, ModuleGenerator


def build(seed: int):
    region = PartialRegion.whole_device(
        irregular_device(24, 8, seed=seed, bram_stride=6, jitter=1)
    )
    cfg = GeneratorConfig(clb_min=4, clb_max=10, bram_max=1,
                          height_min=2, height_max=3, max_width=4)
    modules = ModuleGenerator(seed=seed, config=cfg).generate_set(4)
    m = Model()
    xs = [m.int_var(0, region.width - 1, f"x{i}") for i in range(4)]
    ys = [m.int_var(0, region.height - 1, f"y{i}") for i in range(4)]
    ss = [
        m.int_var(0, mod.n_alternatives - 1, f"s{i}")
        for i, mod in enumerate(modules)
    ]
    kernel = PlacementKernel(region, modules, xs, ys, ss)
    m.post(kernel)
    return region, modules, m, kernel


def occupancy_from_scratch(kernel) -> np.ndarray:
    occ = np.zeros(kernel.H * kernel.W, dtype=bool)
    for item in kernel.items:
        if item.placed:
            sid = item.s.value()
            x0, y0 = item.x.value(), item.y.value()
            cells = item.cells[sid]
            occ[(y0 + cells[:, 0]) * kernel.W + (x0 + cells[:, 1])] = True
    return occ


def mask_from_scratch(kernel, region, item, sid) -> np.ndarray:
    """Static anchors minus collisions with currently placed material."""
    fp = item.module.shapes[sid]
    static = valid_anchor_mask(region, sorted(fp.cells)).reshape(-1)
    occ = occupancy_from_scratch(kernel).reshape(kernel.H, kernel.W)
    out = static.copy()
    ys, xs = np.nonzero(static.reshape(kernel.H, kernel.W))
    off = item.cells[sid]
    for y, x in zip(ys.tolist(), xs.tolist()):
        if occ[y + off[:, 0], x + off[:, 1]].any():
            out[y * kernel.W + x] = False
    return out


class TestKernelInvariants:
    @given(st.integers(0, 40), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_walk_preserves_invariants(self, seed, walk_seed):
        region, modules, m, kernel = build(seed)
        rng = random.Random(walk_seed)
        depth = 0
        for _ in range(25):
            op = rng.random()
            if op < 0.55:  # descend: fix a random unfixed variable
                unfixed = [
                    v
                    for it in kernel.items
                    for v in (it.x, it.y, it.s)
                    if not v.is_fixed()
                ]
                if not unfixed:
                    continue
                var = rng.choice(unfixed)
                value = rng.choice(list(var.domain))
                m.engine.push_level()
                depth += 1
                try:
                    var.fix(value)
                    m.engine.fixpoint()
                except Inconsistent:
                    m.engine.pop_level()
                    depth -= 1
            elif depth > 0:  # backtrack
                m.engine.pop_level()
                depth -= 1

            # --- invariants ---
            assert np.array_equal(
                kernel.occupancy, occupancy_from_scratch(kernel)
            )
            for item in kernel.items:
                if item.placed:
                    continue
                for sid in item.s.domain:
                    expected = mask_from_scratch(kernel, region, item, sid)
                    got = kernel.valid[item.index][sid]
                    assert np.array_equal(got, expected), (
                        f"mask drift for module {item.index} shape {sid}"
                    )

    def test_placed_flag_matches_fixedness_after_fixpoint(self):
        region, modules, m, kernel = build(3)
        for item in kernel.items:
            assert not item.placed
        # place the first module fully
        it = kernel.items[0]
        sid = it.s.min()
        anchors = kernel.anchors_for(0)
        sid, x, y = anchors[0]
        it.s.fix(sid)
        it.x.fix(x)
        it.y.fix(y)
        m.engine.fixpoint()
        assert it.placed

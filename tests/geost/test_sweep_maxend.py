"""Max-end covering-box selection: same results, strictly fewer points.

Among the forbidden boxes covering a sweep point, :class:`ShapeView`
reports the one with maximal ``end`` along the jump axis; the historical
behavior was to take the *first* containing box.  Both are sound (any
covering box yields a valid odometer jump) and both return the exact
lexicographic extremum, so the results must be identical — the max-end
choice only widens jumps.  This suite re-implements the first-hit rule
locally, runs both over seeded random 2-D and 3-D instances, and asserts

* identical ``sweep_min``/``sweep_max`` answers point-for-point, and
* strictly fewer total inspected points for the max-end rule across the
  suite (and never more on any single instance).
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

import pytest

from repro.geost.boxes import Box
from repro.geost.sweep import ShapeView, SweepStats, sweep_max, sweep_min


class FirstHitView(ShapeView):
    """The legacy covering-box rule: first containing box wins."""

    def covering_box(self, p: Tuple[int, ...], jump_dim: int) -> Optional[Box]:
        for b in self.boxes:
            if b.contains_point(p):
                return b
        return None

    def reflected(self) -> "FirstHitView":
        return FirstHitView([b.reflected() for b in self.boxes])


def random_instance(seed: int, k: int):
    """(bounds, per-shape box lists) over a small k-D anchor space."""
    rng = random.Random(seed * 31 + k)
    dims = [rng.randint(2, 5 if k == 3 else 7) for _ in range(k)]
    bounds = [(0, d - 1) for d in dims]
    per_shape = []
    for _ in range(rng.randint(1, 3)):
        boxes = []
        for _ in range(rng.randint(1, 7)):
            origin = tuple(rng.randint(-1, d - 1) for d in dims)
            size = tuple(rng.randint(1, 3) for _ in range(k))
            boxes.append(Box(origin, size))
        per_shape.append(boxes)
    return bounds, per_shape


def _run_both(bounds, per_shape, dim):
    """((min, max) with max-end views, same with first-hit views, stats)."""
    maxend = [ShapeView(boxes) for boxes in per_shape]
    legacy = [FirstHitView(boxes) for boxes in per_shape]
    s_new, s_old = SweepStats(), SweepStats()
    new = (
        sweep_min(bounds, maxend, dim, s_new),
        sweep_max(bounds, maxend, dim, s_new),
    )
    old = (
        sweep_min(bounds, legacy, dim, s_old),
        sweep_max(bounds, legacy, dim, s_old),
    )
    return new, old, s_new, s_old


@pytest.mark.parametrize("k", [2, 3])
def test_maxend_identical_results_fewer_iterations(k):
    total_new = total_old = 0
    for seed in range(150):
        bounds, per_shape = random_instance(seed, k)
        for dim in range(k):
            new, old, s_new, s_old = _run_both(bounds, per_shape, dim)
            assert new == old, f"seed={seed} k={k} dim={dim}"
            assert s_new.iterations <= s_old.iterations, (
                f"seed={seed} k={k} dim={dim}: max-end inspected more points"
            )
            total_new += s_new.iterations
            total_old += s_old.iterations
    # the whole point of the refinement: strictly fewer points overall
    assert total_new < total_old, (
        f"k={k}: expected strictly fewer iterations "
        f"(max-end {total_new} vs first-hit {total_old})"
    )


def test_maxend_picks_widest_jump_directly():
    # two boxes cover (0, 0); the wider one (end x = 4) must be chosen for
    # jump_dim 0, letting the sweep skip columns 1-3 in one step
    narrow = Box((0, 0), (1, 5))
    wide = Box((0, 0), (4, 1))
    view = ShapeView([narrow, wide])
    assert view.covering_box((0, 0), 0) is wide
    assert view.covering_box((0, 0), 1) is narrow

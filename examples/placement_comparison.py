#!/usr/bin/env python3
"""Placement with vs without design alternatives (Figures 3 and 5).

Places the same generated module set twice on the same fabric — once
restricted to each module's primary shape, once with the full alternative
sets — and renders both floorplans side by side, with the utilization
numbers of the paper's Table I story.

Run:  python examples/placement_comparison.py
"""

from repro.core.lns import LNSConfig, LNSPlacer
from repro.fabric import PartialRegion, irregular_device
from repro.flow import comparison_figure
from repro.metrics import extent_utilization, external_fragmentation
from repro.modules import ModuleGenerator


def main() -> None:
    region = PartialRegion.whole_device(irregular_device(64, 16, seed=7))
    modules = ModuleGenerator(seed=3).generate_set(8)

    print(f"placing {len(modules)} modules "
          f"({sum(m.n_alternatives for m in modules)} shapes with "
          f"alternatives, {len(modules)} without)...\n")

    without = LNSPlacer(LNSConfig(time_limit=6.0, seed=3)).place(
        region, [m.restricted(1) for m in modules]
    )
    with_alts = LNSPlacer(LNSConfig(time_limit=6.0, seed=3)).place(
        region, modules
    )
    without.verify()
    with_alts.verify()

    print(comparison_figure(without, with_alts))
    print()
    rows = [
        ("", "without", "with alternatives"),
        ("extent", str(without.extent), str(with_alts.extent)),
        ("utilization",
         f"{extent_utilization(without):.1%}",
         f"{extent_utilization(with_alts):.1%}"),
        ("ext. fragmentation",
         f"{external_fragmentation(without):.1%}",
         f"{external_fragmentation(with_alts):.1%}"),
        ("solve time", f"{without.elapsed:.1f}s", f"{with_alts.elapsed:.1f}s"),
    ]
    for label, a, b in rows:
        print(f"{label:<20} {a:>10} {b:>20}")
    print("\n(paper, Table I at 30-module scale: 53% -> 65% utilization)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Phase-based reconfiguration scheduling.

An application cycles through phases (boot → steady → burst → idle), each
needing a different module mix.  The scheduler compares two policies:

* *naive* — re-place every phase from scratch (best per-phase packing,
  but transitions rewrite everything that moved);
* *sticky* — modules surviving a transition keep their placement, only
  arrivals are placed and written.

Reconfiguration cost is counted in configuration frames written, the
overhead the paper's introduction wants kept low.

Run:  python examples/phase_scheduling.py
"""

from repro.fabric import PartialRegion, irregular_device
from repro.flow import Phase, compare_policies
from repro.modules import GeneratorConfig, ModuleGenerator


def main() -> None:
    region = PartialRegion.whole_device(irregular_device(56, 12, seed=5))
    gen = ModuleGenerator(
        seed=9,
        config=GeneratorConfig(clb_min=8, clb_max=18, bram_max=1,
                               height_min=2, height_max=4),
    )
    mods = gen.generate_set(7)
    phases = [
        Phase("boot", mods[:3]),
        Phase("steady", mods[1:5]),
        Phase("burst", mods[1:7]),
        Phase("idle", mods[1:3]),
        Phase("steady2", mods[1:5]),
    ]
    print("phase sequence:")
    for p in phases:
        print(f"  {p.name:<8} {', '.join(p.module_names())}")
    print()

    sticky, naive = compare_policies(region, phases, fresh_time_limit=3.0)
    for label, sched in (("sticky", sticky), ("naive", naive)):
        print(f"{label} policy — {sched.summary()}")
        for t in sched.transitions:
            print(
                f"  {t.from_phase:>8} -> {t.to_phase:<8} "
                f"{t.frames:>3} frames written "
                f"(kept {len(t.kept)}, arrived {len(t.arrived)}, "
                f"departed {len(t.departed)})"
            )
        print()
    saved = naive.total_frames - sticky.total_frames
    print(
        f"keeping surviving modules in place saves {saved} configuration "
        f"frames over this sequence "
        f"({sticky.total_frames} vs {naive.total_frames})."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: place a handful of modules on a heterogeneous FPGA.

This is the minimal end-to-end use of the public API — the design flow of
the paper's Figure 2 in five steps:

1. build (or load) a heterogeneous fabric,
2. define the partial region (here: right half reconfigurable),
3. obtain modules with design alternatives,
4. run the CP placer (minimizing the occupied x extent, Eq. 6),
5. inspect the report and rendering.

Run:  python examples/quickstart.py
"""

from repro.core import place, placement_report, render_placement
from repro.fabric import PartialRegion, irregular_device
from repro.metrics import extent_utilization
from repro.modules import GeneratorConfig, ModuleGenerator


def main() -> None:
    # 1. a modern-style fabric: CLB columns with irregular BRAM columns,
    #    interrupted by clock tiles (see Section I of the paper)
    fabric = irregular_device(width=48, height=12, seed=7)

    # 2. the left third hosts the static system; the rest is reconfigurable
    region = PartialRegion.with_static_box(fabric, 0, 0, 16, 12, name="demo")
    print("partial region:")
    print(region.render())
    print()

    # 3. six synthetic IP cores, each with up to four design alternatives
    generator = ModuleGenerator(
        seed=1,
        config=GeneratorConfig(clb_min=10, clb_max=24, bram_max=2,
                               height_min=3, height_max=6),
    )
    modules = generator.generate_set(6)
    for m in modules:
        print(f"  {m.name}: {m.n_alternatives} alternatives, "
              f"{m.primary().area} tiles")
    print()

    # 4. optimal (anytime) placement
    result = place(region, modules, time_limit=5.0)
    result.verify()  # M_a, M_b, M_c hold by construction; double-check

    # 5. report
    print(placement_report(result))
    print()
    print(render_placement(result))
    print(f"\nextent-window utilization: {extent_utilization(result):.1%}")


if __name__ == "__main__":
    main()

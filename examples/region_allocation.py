#!/usr/bin/env python3
"""Design-time allocation of reconfigurable regions (refs [1], [14]).

A multi-region system hosts several module groups, each cycling within
its own reconfigurable region.  The allocator sizes each region minimally
for its group (binary search over window widths, CP feasibility probes)
and packs the regions left to right — and shows that design alternatives
shrink the silicon each region needs.

Run:  python examples/region_allocation.py
"""

from repro.core import allocate_regions
from repro.core.report import render_placement
from repro.core.result import PlacementResult
from repro.fabric import PartialRegion, irregular_device
from repro.modules import GeneratorConfig, ModuleGenerator


def main() -> None:
    region = PartialRegion.whole_device(irregular_device(72, 12, seed=11))
    gen = ModuleGenerator(
        seed=14,
        config=GeneratorConfig(clb_min=8, clb_max=18, bram_max=1,
                               height_min=2, height_max=4),
    )
    mods = gen.generate_set(7)
    groups = [
        ("video", mods[0:3]),
        ("crypto", mods[3:5]),
        ("dsp", mods[5:7]),
    ]

    for label, restrict in (("with alternatives", False),
                            ("single shape only", True)):
        gs = [
            (name, [m.restricted(1) for m in ms] if restrict else ms)
            for name, ms in groups
        ]
        result = allocate_regions(region, gs, probe_budget=2.0)
        print(f"{label}: {result.summary()}")
        print(f"  total region width: {result.total_width()} columns")
    print()

    result = allocate_regions(region, groups, probe_budget=2.0)
    merged = PlacementResult(
        region,
        [p for r in result.regions for p in r.placement.placements],
    )
    merged.verify()
    print("combined floorplan (regions left to right):")
    print(render_placement(merged))


if __name__ == "__main__":
    main()

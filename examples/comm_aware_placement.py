#!/usr/bin/env python3
"""Communication-aware placement over a bus (extension).

Two placements of the same system are compared: the paper's min-extent
objective (compact, communication-blind) and the wirelength objective of
:class:`repro.core.comm.CommAwarePlacer`, which pulls heavily
communicating modules together while an extent cap keeps the floorplan
reasonable.  The exported vendor-style constraints show the flow artefact
a downstream place-and-route step would consume.

Run:  python examples/comm_aware_placement.py
"""

from repro.core import place, render_placement
from repro.core.comm import CommAwarePlacer, CommConfig
from repro.fabric import PartialRegion, irregular_device
from repro.flow import export_constraints
from repro.modules import GeneratorConfig, ModuleGenerator


def main() -> None:
    region = PartialRegion.whole_device(irregular_device(40, 10, seed=4))
    gen = ModuleGenerator(
        seed=12,
        config=GeneratorConfig(clb_min=8, clb_max=16, bram_max=1,
                               height_min=3, height_max=4),
    )
    modules = gen.generate_set(5)
    # a pipeline: m0 -> m1 -> m2 heavy traffic, m3/m4 occasional control
    edges = [(0, 1, 8), (1, 2, 8), (0, 3, 1), (2, 4, 1)]

    extent_first = place(region, modules, time_limit=4.0)
    extent_first.verify()
    comm = CommAwarePlacer(
        CommConfig(time_limit=6.0, max_extent=region.width)
    ).place(region, modules, edges)
    comm.placement.verify()

    def wirelength(result):
        ps = {p.module.name: p for p in result.placements}
        return sum(
            w * abs(ps[modules[a].name].x - ps[modules[b].name].x)
            for a, b, w in edges
        )

    print("min-extent placement (the paper's objective):")
    print(render_placement(extent_first))
    print(f"extent={extent_first.extent}  "
          f"weighted wirelength={wirelength(extent_first)}\n")

    print("communication-aware placement:")
    print(render_placement(comm.placement))
    print(f"extent={max(p.right for p in comm.placement.placements)}  "
          f"weighted wirelength={comm.wirelength}\n")

    print("exported floorplan constraints (first lines):")
    print("\n".join(export_constraints(comm.placement).splitlines()[:8]))


if __name__ == "__main__":
    main()

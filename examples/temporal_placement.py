#!/usr/bin/env python3
"""Spatio-temporal placement: modules scheduled in (x, y, t).

Following Fekete/Köhler/Teich (the paper's ref [6]), each module
execution is a 3-D box — footprint × duration — and the geost kernel's
k-dimensional sweep packs them exactly, with precedence constraints as
plain arithmetic and the makespan minimized by branch-and-bound.  Design
alternatives pay off in the time dimension too: a rotated layout can run
*beside* another module instead of *after* it.

Run:  python examples/temporal_placement.py
"""

from repro.core.temporal import TemporalPlacer, TemporalTask, render_timeline
from repro.fabric.grid import FabricGrid
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.module import Module
from repro.modules.transform import rotate90


def main() -> None:
    region = PartialRegion.whole_device(
        FabricGrid.from_rows(["....", "....", "...."])
    )
    wide = Footprint.rectangle(3, 1)
    tasks = [
        TemporalTask(Module("filter", [Footprint.rectangle(2, 3)]), 3),
        TemporalTask(Module("fft", [wide, rotate90(wide)]), 2),
        TemporalTask(Module("crc", [Footprint.rectangle(2, 1)]), 2),
    ]
    precedences = [(1, 2)]  # crc consumes the fft's output

    placer = TemporalPlacer(horizon=10, time_limit=30.0)
    result = placer.place(region, tasks, precedences)
    result.verify(precedences)
    print(f"status={result.status} makespan={result.makespan} "
          f"({result.elapsed:.2f}s)\n")
    for s in result.schedule:
        print(f"  {s.task.name:<8} alt {s.shape_index} at ({s.x},{s.y}), "
              f"runs t=[{s.start},{s.end})")
    print("\ntimeline (one fabric snapshot per step):\n")
    print(render_timeline(result))

    # the same system with single-layout modules: the fft cannot stand
    # upright beside the filter, so it waits — a longer schedule
    mono = [
        TemporalTask(t.module.restricted(1), t.duration) for t in tasks
    ]
    result_mono = placer.place(region, mono, precedences)
    print(
        f"\nwithout design alternatives the optimal makespan grows from "
        f"{result.makespan} to {result_mono.makespan} steps."
    )


if __name__ == "__main__":
    main()

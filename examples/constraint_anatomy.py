#!/usr/bin/env python3
"""How each constraint family restricts placement (the paper's Figure 4).

Counts a module's valid anchor positions as constraints are layered on:

  (a) inside the device bounding box          (M_a, outer bound)
  (b) + resource-type matching                (M_b, heterogeneity)
  (c) + restricted to the reconfigurable region (M_a, static mask)
  (d) + non-overlap with a placed module      (M_c)

Run:  python examples/constraint_anatomy.py
"""

from repro.experiments import figure4_constraint_anatomy


def main() -> None:
    anatomy = figure4_constraint_anatomy()
    steps = [
        ("(a) bounding box only", anatomy.in_bounds),
        ("(b) + resource matching (M_b)", anatomy.resource_matched),
        ("(c) + reconfigurable region (M_a)", anatomy.in_region),
        ("(d) + non-overlap with placed module (M_c)", anatomy.non_overlapping),
    ]
    width = max(len(s) for s, _ in steps)
    base = anatomy.in_bounds
    for label, count in steps:
        bar = "#" * max(1, round(40 * count / base)) if count else ""
        print(f"{label:<{width}}  {count:>6}  {bar}")
    print(
        "\nEach constraint family strictly shrinks the valid placement set "
        f"(monotone: {anatomy.monotone()}); design alternatives counteract "
        "the shrinkage by adding placement possibilities per module."
    )


if __name__ == "__main__":
    main()

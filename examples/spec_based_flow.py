#!/usr/bin/env python3
"""File-driven design flow (the Figure 2 pipeline from disk artefacts).

ReCoBus-Builder hands the placer a *partial region description* and
*module specifications*; this example consumes both from JSON files
(``examples/data/``), runs the flow, validates the modules against the
design rules, and writes the floorplan back out as vendor-style area
constraints — the full artefact chain a real tool integration needs.

Run:  python examples/spec_based_flow.py
"""

import tempfile
from pathlib import Path

from repro.fabric.analysis import format_summary
from repro.fabric.io import load_region
from repro.flow import DesignFlow, save_constraints
from repro.modules import validate_module
from repro.modules.spec import load_modules

DATA = Path(__file__).resolve().parent / "data"


def main() -> None:
    region_path = DATA / "demo_region.json"
    modules_path = DATA / "demo_modules.json"

    region = load_region(region_path)
    library = load_modules(modules_path)
    print(format_summary(region.grid, region.name))
    print(f"\nloaded {len(library)} modules "
          f"({library.total_shapes()} shapes) from {modules_path.name}")

    # lint the incoming specs against the design rules (Section III-A)
    for module in library:
        report = validate_module(module, max_aspect_ratio=30.0)
        status = "ok" if report.ok else str(report)
        print(f"  {module.name}: {module.n_alternatives} shapes, {status}")

    flow = DesignFlow(region, library, time_limit=5.0, seed=1)
    out = flow.run()
    print()
    print(out.report)
    print()
    print(out.rendering)

    with tempfile.NamedTemporaryFile(
        "w", suffix=".ucf", delete=False
    ) as handle:
        constraints_path = Path(handle.name)
    save_constraints(out.placement, constraints_path)
    print(f"\nfloorplan constraints written to {constraints_path}")
    print("\n".join(constraints_path.read_text().splitlines()[:6]))


if __name__ == "__main__":
    main()

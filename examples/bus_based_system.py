#!/usr/bin/env python3
"""A ReCoBus-style bus-based reconfigurable system.

The paper's placer is designed to slot into the ReCoBus-Builder flow, where
modules attach to a horizontal communication bus through bus macros.  Here
the bus attachment points are fabric tiles of the BUSMACRO resource type
(Section III-A: "internal resource types can further be used to represent
communication macros for bus attachment"), every module's shapes carry one
BUSMACRO cell, and constraint M_b alone guarantees each placed module sits
on an attachment point — no special-case code in the placer.

Run:  python examples/bus_based_system.py
"""

from repro.core import place, render_placement
from repro.fabric import PartialRegion, irregular_device
from repro.fabric.resource import ResourceType
from repro.flow import add_bus_row, bus_aligned_modules
from repro.modules import GeneratorConfig, ModuleGenerator


def main() -> None:
    fabric = irregular_device(40, 10, seed=4)
    fabric = add_bus_row(fabric, y=0, stride=3, phase=1)
    region = PartialRegion.whole_device(fabric)
    print("fabric with bus-macro attachment row (M = attachment point):")
    print(region.render())
    print()

    generator = ModuleGenerator(
        seed=8,
        config=GeneratorConfig(clb_min=8, clb_max=20, bram_max=1,
                               height_min=3, height_max=5),
    )
    modules = bus_aligned_modules(generator.generate_set(5), row=0)

    result = place(region, modules, time_limit=5.0)
    result.verify()
    print(render_placement(result))
    print()
    for p in result.placements:
        macro = next(
            (x, y)
            for x, y, k in p.absolute_cells()
            if k is ResourceType.BUSMACRO
        )
        print(f"{p.module.name}: bus attachment at column {macro[0]}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Online placement service level (the related-work setting, Section II).

Modules arrive, run, and depart; the space manager accepts or rejects each
request.  We compare first-fit and incremental-CP managers, each with and
without design alternatives — transplanting the paper's thesis to the
online setting: more layouts per module, fewer rejections.

Run:  python examples/online_service_level.py
"""

from repro.experiments import format_online, generate_trace, online_comparison


def main() -> None:
    trace = generate_trace(40, seed=3)
    peak = max(
        sum(
            r.module.primary().area
            for r in trace
            if r.arrival <= t < r.arrival + r.lifetime
        )
        for t in range(trace[-1].arrival + 1)
    )
    print(
        f"trace: {len(trace)} requests, peak concurrent demand "
        f"{peak} tiles\n"
    )
    stats = online_comparison(n_requests=40, seed=3)
    print(format_online(stats))
    by = {s.label: s for s in stats}
    gain = (
        by["first-fit (alternatives)"].accepted
        - by["first-fit (1 shape)"].accepted
    )
    print(
        f"\ndesign alternatives serve {gain} additional requests on this "
        "trace — fragmentation reduction at runtime."
    )


if __name__ == "__main__":
    main()

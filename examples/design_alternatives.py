#!/usr/bin/env python3
"""Design alternatives of a single module (the paper's Figure 1).

Builds one module and derives its functionally equivalent layouts:
the 180-degree rotation, internal relayouts (same bounding box, BRAM strip
elsewhere) and external relayouts (different bounding box).  Then shows how
the number of alternatives affects where the module can go on a real
heterogeneous fabric — the mechanism behind the paper's utilization gain.

Run:  python examples/design_alternatives.py
"""

import numpy as np

from repro.core.alternatives import expand_alternatives
from repro.fabric import PartialRegion, irregular_device, valid_anchor_mask
from repro.flow import alternatives_gallery
from repro.modules import Module
from repro.modules.transform import build_body


def main() -> None:
    # a 24-CLB module with a 2-tile BRAM strip (like Figure 1's example)
    base = build_body(24, 6, bram_cells=2, bram_column=2)
    module = Module("fir", expand_alternatives(base, max_alternatives=5, seed=3))

    print(alternatives_gallery(module))
    print()

    # where can each alternative go on a heterogeneous fabric?
    region = PartialRegion.whole_device(irregular_device(48, 12, seed=11))
    total = np.zeros((region.height, region.width), dtype=bool)
    print(f"{'alternative':<14} {'bbox':>7} {'valid anchors':>14}")
    for i, fp in enumerate(module.shapes):
        mask = valid_anchor_mask(region, sorted(fp.cells))
        total |= mask
        print(f"alt {i:<10} {f'{fp.width}x{fp.height}':>7} {int(mask.sum()):>14}")

    only_first = valid_anchor_mask(region, sorted(module.shapes[0].cells))
    print(f"\nanchors with only the base layout: {int(only_first.sum())}")
    print(f"anchors with all alternatives:     {int(total.sum())}")
    gain = int(total.sum()) / max(1, int(only_first.sum()))
    print(f"placement possibilities grew {gain:.1f}x — this is why design "
          f"alternatives reduce fragmentation.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Interactive floorplanning with reconfiguration-cost accounting.

The paper motivates short solve times so the placer can sit inside an
interactive tool.  This example drives the :class:`IncrementalPlacer` like
such a tool would: modules arrive and leave at runtime, each change is
placed on the residual region in well under a second, and the mock
bitstream assembler reports how many configuration frames each
reconfiguration rewrites (the reconfiguration-time proxy).

Run:  python examples/interactive_floorplanning.py
"""

from repro.core import IncrementalPlacer, PlacerConfig, render_placement
from repro.fabric import PartialRegion, irregular_device
from repro.flow import assemble_bitstream, partial_diff
from repro.modules import GeneratorConfig, ModuleGenerator


def main() -> None:
    region = PartialRegion.whole_device(irregular_device(40, 12, seed=9))
    placer = IncrementalPlacer(
        region, PlacerConfig(time_limit=1.0, first_solution_only=True)
    )
    generator = ModuleGenerator(
        seed=5,
        config=GeneratorConfig(clb_min=10, clb_max=30, bram_max=2,
                               height_min=3, height_max=6),
    )
    modules = generator.generate_set(6)

    bitstream = assemble_bitstream(placer.result())
    script = (
        [("add", m) for m in modules[:4]]
        + [("remove", modules[1])]
        + [("add", m) for m in modules[4:]]
    )
    for action, module in script:
        if action == "add":
            placement = placer.add(module)
            what = (
                f"add    {module.name} -> "
                + (f"alt {placement.shape_index} at ({placement.x},{placement.y})"
                   if placement else "REJECTED (no space)")
            )
        else:
            placer.remove(module.name)
            what = f"remove {module.name}"
        new_bitstream = assemble_bitstream(placer.result())
        frames = partial_diff(bitstream, new_bitstream)
        bitstream = new_bitstream
        print(f"{what:<44} reconfigures {len(frames):>2} frames")

    result = placer.result()
    result.verify()
    print()
    print(render_placement(result))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Reproduce Table I of the paper.

Runs the full experiment: N independent runs of placing 30 automatically
generated modules (20-100 CLBs, 0-4 BRAMs, 4 design alternatives) on a
heterogeneous fabric, with and without alternatives, and prints the
reproduced table next to the paper's numbers.

By default a scaled-down configuration runs in a few minutes; set
``REPRO_FULL=1`` for the paper-faithful 50-run version.

Run:  python examples/table1_experiment.py [n_runs]
"""

import sys

from repro.experiments import Table1Config, format_table1, run_table1


def main() -> None:
    cfg = Table1Config()
    if len(sys.argv) > 1:
        cfg.n_runs = int(sys.argv[1])
    print(
        f"Table I reproduction: {cfg.n_runs} runs x {cfg.n_modules} modules, "
        f"{cfg.time_limit:.0f}s budget per placement\n"
    )
    rows = run_table1(cfg)
    print(format_table1(rows))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Runtime defragmentation with and without design alternatives.

A runtime reconfigurable system places and removes modules until the free
space is shattered.  This example builds such a fragmented state, then
compacts it by module relocation under the two policies the paper's
state-restoration remark motivates:

* *frozen shapes* — modules carry state, so a relocation must reuse the
  exact layout (the paper's stance: "we do not consider changing design
  alternatives at run-time");
* *free shapes* — stateless/restartable modules may change layout when
  moved.

Each relocation is costed in configuration frames (columns rewritten).

Run:  python examples/runtime_defrag.py
"""

from repro.core import defragment, render_placement
from repro.core.relocation import format_relocatability, relocatability_report
from repro.core.result import Placement, PlacementResult
from repro.fabric import PartialRegion, irregular_device
from repro.metrics import extent_utilization
from repro.modules import GeneratorConfig, ModuleGenerator


def fragmented_state():
    """Placements with deliberate gaps (as if neighbours departed)."""
    region = PartialRegion.whole_device(irregular_device(72, 12, seed=9))
    gen = ModuleGenerator(
        seed=6,
        config=GeneratorConfig(clb_min=10, clb_max=24, bram_max=1,
                               height_min=3, height_max=5),
    )
    from repro.core import CPPlacer, PlacerConfig

    modules = gen.generate_set(8)
    res = CPPlacer(
        PlacerConfig(time_limit=4.0, first_solution_only=True)
    ).place(region, modules)
    # evict every other module to shatter the free space
    survivors = res.placements[::2] + [
        Placement(p.module, p.shape_index, p.x, p.y)
        for p in res.placements[1::2][:0]
    ]
    return PlacementResult(region, survivors)


def main() -> None:
    state = fragmented_state()
    state.verify()
    print("fragmented system (extent "
          f"{state.extent}, utilization {extent_utilization(state):.1%}):")
    print(render_placement(state))
    print()
    print("relocatability of each placed module:")
    print(format_relocatability(relocatability_report(state)))
    print()

    for label, allow in (("frozen shapes", False), ("free shapes", True)):
        out = defragment(state, allow_shape_change=allow)
        out.result.verify()
        print(
            f"defrag [{label:<13}] extent {out.initial_extent} -> "
            f"{out.final_extent} in {len(out.moves)} moves "
            f"({out.total_frames} frames rewritten)"
        )
        for mv in out.moves:
            shape = " (new layout)" if mv.changed_shape else ""
            print(
                f"    {mv.module}: {mv.from_pos} -> {mv.to_pos}, "
                f"{mv.frames} frames{shape}"
            )
    print()
    out = defragment(state, allow_shape_change=True)
    print("after defragmentation (free shapes):")
    print(render_placement(out.result))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Runtime smoke check: a ~2-second seeded serving run, validated end to end.

Streams a seeded Table-I-style workload through the
:class:`~repro.core.runtime.RuntimePlacementManager` (full fallback
chain: budgeted CP probe, greedy rung, defrag on rejection), then checks
the invariants a serving loop must uphold:

* every request resolves to admitted or rejected (nothing left queued),
* the final floorplan verifies,
* every emitted ``runtime.*`` trace event matches the published schema,
* the manager's :class:`~repro.obs.SolveProfile` validates and its
  counters are consistent with the outcomes.

Exits non-zero on any problem, so it can gate CI (``make runtime-smoke``).
"""

from __future__ import annotations

import sys
import time


def main() -> int:
    from repro.core.runtime import (
        RuntimeConfig,
        RuntimePlacementManager,
        generate_workload,
    )
    from repro.fabric.devices import irregular_device
    from repro.fabric.region import PartialRegion
    from repro.modules.generator import GeneratorConfig
    from repro.obs import RecordingTracer, validate_event, validate_profile

    problems: list[str] = []

    region = PartialRegion.whole_device(irregular_device(48, 12, seed=9))
    trace = generate_workload(
        80,
        seed=11,
        mean_lifetime=20,
        generator_config=GeneratorConfig(
            clb_min=12, clb_max=48, bram_max=2, height_min=3, height_max=6
        ),
    )
    tracer = RecordingTracer()
    manager = RuntimePlacementManager(
        region,
        RuntimeConfig(probe="cp", probe_time_limit=0.02, tracer=tracer),
    )
    t0 = time.monotonic()
    log = manager.run(trace)
    elapsed = time.monotonic() - t0

    if log.admitted + log.rejected != len(trace):
        problems.append(
            f"{len(trace)} requests but only "
            f"{log.admitted + log.rejected} resolved"
        )
    if manager.pending_count:
        problems.append(f"{manager.pending_count} requests left queued")
    for outcome in log.outcomes:
        if outcome.status == "rejected" and outcome.reason is None:
            problems.append(
                f"{outcome.request.module.name}: rejection without a reason"
            )
    try:
        manager.result().verify()
    except ValueError as exc:
        problems.append(f"final floorplan invalid: {exc}")

    if tracer.count("runtime.arrival") != len(trace):
        problems.append("arrival events do not match the trace length")
    for ev in tracer.events:
        for p in validate_event(ev.to_dict()):
            problems.append(f"event {ev.kind}: {p}")

    profile = manager.profile()
    problems += [f"profile: {p}" for p in validate_profile(profile.to_dict())]
    if profile.meta.get("runtime.admitted") != log.admitted:
        problems.append("profile counters drifted from the log")

    print(
        f"served {len(trace)} requests in {elapsed:.2f}s "
        f"({len(trace) / elapsed:.0f} req/s): "
        f"admitted {log.admitted}, rejected {log.rejected}, "
        f"defrags {log.stats.defrags}, "
        f"mean util {log.mean_utilization():.1%}"
    )
    print(f"trace: {len(tracer)} events over {len(tracer.kinds())} kinds")
    if problems:
        print("\nFAIL:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("runtime smoke check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Profile smoke check: one instrumented solve, validated end to end.

Runs a small placement with tracing + per-propagator profiling on, exports
the :class:`~repro.obs.SolveProfile` to JSON, re-loads it, and validates
both the profile document and every recorded trace event against the
schemas in :mod:`repro.obs.schema`.  Exits non-zero on any problem, so it
can gate CI (``make profile-smoke``).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path


def main() -> int:
    from repro.core.placer import CPPlacer, PlacerConfig
    from repro.fabric.devices import irregular_device
    from repro.fabric.region import PartialRegion
    from repro.modules.generator import GeneratorConfig, ModuleGenerator
    from repro.obs import (
        RecordingTracer,
        SolveProfile,
        profile_report,
        validate_event,
        validate_profile,
    )

    problems: list[str] = []

    region = PartialRegion.whole_device(irregular_device(16, 8, seed=5))
    cfg = GeneratorConfig(clb_min=4, clb_max=8, bram_max=1,
                          height_min=2, height_max=3)
    modules = ModuleGenerator(seed=7, config=cfg).generate_set(4)

    tracer = RecordingTracer()
    result = CPPlacer(
        PlacerConfig(time_limit=None, profile=True, tracer=tracer)
    ).place(region, modules)
    if result.status != "optimal":
        problems.append(f"expected an optimal solve, got {result.status!r}")

    profile = result.stats.get("profile")
    if profile is None:
        problems.append("no profile captured despite profile=True")
        profile = SolveProfile()

    if profile.nodes == 0 or profile.propagations == 0:
        problems.append(f"profile looks empty: {profile.counts()}")

    # export -> reload -> identical counts
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smoke.profile.json"
        profile.save(path)
        restored = SolveProfile.load(path)
        problems += [f"profile: {p}" for p in validate_profile(restored.to_dict())]
        if restored.counts() != profile.counts():
            problems.append(
                f"JSON round trip drifted: {profile.counts()} -> "
                f"{restored.counts()}"
            )

    if len(tracer) == 0:
        problems.append("tracer recorded no events")
    for ev in tracer.events:
        for p in validate_event(ev.to_dict()):
            problems.append(f"event {ev.kind}: {p}")

    print(profile_report(profile))
    print(f"trace: {len(tracer)} events over {len(tracer.kinds())} kinds")
    if problems:
        print("\nFAIL:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("profile smoke check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Backend-registry smoke check: every registered backend, end to end.

Drives each name in :func:`repro.core.backend.available_backends` through
the uniform :class:`~repro.core.backend.PlacementRequest` surface on one
small seeded instance (shared anchor-mask cache, short budget, recording
tracer) and checks the contract the registry promises:

* ``place()`` returns without raising and the placements verify,
* every backend emits a matching ``backend.start`` / ``backend.result``
  event pair and all events satisfy the published schema,
* ``solved`` / ``proved_optimal`` flags are honest (solved means every
  module placed), and ``stats["backend"]`` names the backend,
* capability flags are well-formed and the runtime's default chain
  only names relocatable backends.

Exits non-zero on any problem, so it can gate CI (``make backends-smoke``).
"""

from __future__ import annotations

import sys
import time

BUDGET_S = 0.5


def main() -> int:
    from repro.core.backend import (
        PlacementRequest,
        available_backends,
        backend_capabilities,
        create_backend,
    )
    from repro.core.portfolio import PortfolioConfig
    from repro.core.runtime import RuntimeConfig
    from repro.fabric.cache import AnchorMaskCache
    from repro.fabric.devices import irregular_device
    from repro.fabric.region import PartialRegion
    from repro.modules.generator import GeneratorConfig, ModuleGenerator
    from repro.obs import RecordingTracer, validate_event

    problems: list[str] = []

    region = PartialRegion.whole_device(irregular_device(32, 8, seed=7))
    modules = ModuleGenerator(
        seed=13,
        config=GeneratorConfig(
            clb_min=6, clb_max=16, bram_max=1, height_min=2, height_max=3
        ),
    ).generate_set(4)
    cache = AnchorMaskCache()
    cache.warm(region, modules)
    # structural knobs the request cannot carry
    configs = {"portfolio": PortfolioConfig(n_workers=1, time_limit=BUDGET_S)}

    names = available_backends()
    if not names:
        print("FAIL: no backends registered", file=sys.stderr)
        return 1

    t0 = time.monotonic()
    for name in names:
        caps = backend_capabilities(name)
        tracer = RecordingTracer()
        try:
            backend = create_backend(name, configs.get(name))
            res = backend.place(
                PlacementRequest(
                    region, modules, seed=3, time_limit=BUDGET_S,
                    cache=cache, tracer=tracer,
                )
            )
        except Exception as exc:  # a registered backend must not crash
            problems.append(f"{name}: place() raised {type(exc).__name__}: {exc}")
            continue
        try:
            res.verify()
        except ValueError as exc:
            problems.append(f"{name}: invalid placement: {exc}")
        if res.solved and len(res.placements) != len(modules):
            problems.append(f"{name}: solved flag but not all modules placed")
        if res.proved_optimal and not res.solved:
            problems.append(f"{name}: proved_optimal without solved")
        if res.stats.get("backend") != name:
            problems.append(f"{name}: stats lack the backend name")
        starts = tracer.by_kind("backend.start")
        results = tracer.by_kind("backend.result")
        if len(starts) != 1 or len(results) != 1:
            problems.append(
                f"{name}: expected one start/result event pair, got "
                f"{len(starts)}/{len(results)}"
            )
        for ev in tracer.events:
            for p in validate_event(ev.to_dict()):
                problems.append(f"{name}: event {ev.kind}: {p}")
        print(
            f"  {name:<12} {res.status:<10} "
            f"placed {len(res.placements)}/{len(modules)} "
            f"extent {res.extent if res.extent is not None else '-':>4} "
            f"{res.elapsed:6.2f}s"
        )

    chain = RuntimeConfig().effective_chain()
    for name in chain:
        if not backend_capabilities(name).relocatable:
            problems.append(f"default chain names non-relocatable {name!r}")

    print(
        f"exercised {len(names)} backends in "
        f"{time.monotonic() - t0:.2f}s; default chain: {', '.join(chain)}"
    )
    if problems:
        print("\nFAIL:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("backends smoke check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

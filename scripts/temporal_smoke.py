#!/usr/bin/env python
"""Temporal-placement smoke check: scheduler, registry and reservations.

Drives the whole production temporal surface end to end:

* the production :class:`~repro.core.temporal.TemporalCPPlacer` against
  the reference :class:`~repro.core.temporal.TemporalPlacer` on one
  seeded spatio-temporal instance — both must prove the same optimal
  makespan and both schedules must ``verify`` (including precedences),
* the registry path: ``create_backend("temporal-cp")`` served a
  scheduling :class:`~repro.core.backend.PlacementRequest` (horizon,
  durations, precedences) must report ``schedules=True`` capabilities,
  place every module, and carry the schedule in ``stats``,
* a reservation-mode serving replay: a slack-heavy trace through
  :class:`~repro.core.runtime.RuntimePlacementManager` with a book-ahead
  horizon must resolve every request, balance its booking accounting
  (booked = commits + expired), and emit only schema-valid
  ``runtime.reserve`` / ``runtime.reservation.*`` events.

Exits non-zero on any problem, so it can gate CI (``make temporal-smoke``).
"""

from __future__ import annotations

import sys
import time


def check_scheduler(problems: list) -> str:
    """Reference vs production placers on one seeded instance."""
    from repro.core.temporal import (
        TemporalCPPlacer,
        TemporalPlacer,
        TemporalTask,
        render_timeline,
    )
    from repro.fabric.devices import homogeneous_device
    from repro.fabric.region import PartialRegion
    from repro.modules.footprint import Footprint
    from repro.modules.module import Module

    region = PartialRegion.whole_device(homogeneous_device(6, 3))
    tasks = [
        TemporalTask(Module("a", [Footprint.rectangle(3, 2)]), 2),
        TemporalTask(Module("b", [Footprint.rectangle(3, 2)]), 2),
        TemporalTask(Module("c", [Footprint.rectangle(4, 2)]), 2),
        TemporalTask(Module("d", [Footprint.rectangle(2, 3)]), 1),
    ]
    precedences = [(0, 2)]  # c starts only after a finishes

    t0 = time.monotonic()
    ref = TemporalPlacer(horizon=8).place(region, tasks, precedences)
    prod = TemporalCPPlacer(horizon=8).place(region, tasks, precedences)
    elapsed = time.monotonic() - t0

    for label, res in (("reference", ref), ("production", prod)):
        if res.status != "optimal":
            problems.append(f"scheduler: {label} status {res.status!r}")
        try:
            res.verify(precedences)
        except ValueError as exc:
            problems.append(f"scheduler: {label} schedule invalid: {exc}")
    if ref.makespan != prod.makespan:
        problems.append(
            f"scheduler: makespan drift — reference {ref.makespan}, "
            f"production {prod.makespan}"
        )
    art = render_timeline(prod)
    if not art or "t=0" not in art:
        problems.append("scheduler: render_timeline produced no timeline")
    return (
        f"         scheduler: {len(tasks)} tasks, makespan "
        f"{prod.makespan} (both optimal), {elapsed:.2f}s\n"
        + "\n".join("  " + line for line in art.splitlines())
    )


def check_registry(problems: list) -> str:
    """The temporal-cp backend through the uniform registry surface."""
    from repro.core.backend import (
        PlacementRequest,
        backend_capabilities,
        create_backend,
    )
    from repro.fabric.devices import homogeneous_device
    from repro.fabric.region import PartialRegion
    from repro.modules.footprint import Footprint
    from repro.modules.module import Module
    from repro.obs import RecordingTracer, validate_event

    caps = backend_capabilities("temporal-cp")
    if not caps.schedules:
        problems.append("registry: temporal-cp does not declare schedules")

    region = PartialRegion.whole_device(homogeneous_device(4, 2))
    modules = [
        Module("a", [Footprint.rectangle(2, 2)]),
        Module("b", [Footprint.rectangle(2, 2)]),
        Module("c", [Footprint.rectangle(2, 2)]),
    ]
    tracer = RecordingTracer()
    res = create_backend("temporal-cp").place(
        PlacementRequest(
            region,
            modules,
            horizon=6,
            durations=[2, 2, 2],
            precedences=[(0, 2)],
            tracer=tracer,
        )
    )
    if res.unplaced or not res.solved:
        problems.append(f"registry: unplaced modules {res.unplaced}")
    schedule = res.stats.get("schedule", [])
    if len(schedule) != len(modules):
        problems.append(
            f"registry: stats schedule has {len(schedule)} rows, "
            f"expected {len(modules)}"
        )
    # placements may legally overlap *spatially* — the schedule must be
    # disjoint per tick and honour the precedence edge
    occupied: dict = {}
    span = {}
    for name, shape_index, x, y, start, duration in schedule:
        span[name] = (start, start + duration)
        for t in range(start, start + duration):
            for dx in range(2):
                for dy in range(2):
                    cell = (t, x + dx, y + dy)
                    if cell in occupied:
                        problems.append(
                            f"registry: {name} and {occupied[cell]} "
                            f"share cell {cell}"
                        )
                    occupied[cell] = name
    if span and span["c"][0] < span["a"][1]:
        problems.append("registry: precedence a -> c violated")
    for ev in tracer.events:
        for p in validate_event(ev.to_dict()):
            problems.append(f"registry: event {ev.kind}: {p}")
    return (
        f"          registry: temporal-cp placed {len(modules)} modules, "
        f"makespan {res.stats.get('makespan')}, "
        f"{len(tracer.events)} events"
    )


def check_reservations(problems: list) -> str:
    """A book-ahead serving replay with full event validation."""
    from repro.core.runtime import RuntimeConfig, RuntimePlacementManager
    from repro.experiments.runtime_exp import (
        reservation_runtime_region,
        slack_heavy_trace,
    )
    from repro.obs import RecordingTracer, validate_event, validate_profile

    region = reservation_runtime_region()
    trace = slack_heavy_trace(80, seed=7)
    tracer = RecordingTracer()
    manager = RuntimePlacementManager(
        region,
        RuntimeConfig(
            probe="greedy",
            queue_capacity=0,
            reservation_horizon=16,
            frag_threshold=1.0,
            defrag_on_reject=False,
            tracer=tracer,
            sample_timeline=False,
        ),
    )
    t0 = time.monotonic()
    log = manager.run(trace)
    elapsed = time.monotonic() - t0
    s = manager.stats

    if log.admitted + log.rejected != len(trace):
        problems.append("reservations: not every request resolved")
    if manager.reservations:
        problems.append(
            f"reservations: {len(manager.reservations)} still open "
            f"after drain"
        )
    if s.reservations_booked == 0:
        problems.append("reservations: the slack-heavy trace booked nothing")
    if s.reservations_booked != s.reservation_admits + s.reservations_expired:
        problems.append(
            f"reservations: accounting does not balance "
            f"({s.reservations_booked} booked != "
            f"{s.reservation_admits} commits + "
            f"{s.reservations_expired} expired)"
        )
    try:
        manager.result().verify()
        manager.check_invariants()
    except ValueError as exc:
        problems.append(f"reservations: final floorplan invalid: {exc}")

    reserve_events = [e for e in tracer.events if e.kind == "runtime.reserve"]
    commits = [
        e for e in tracer.events if e.kind == "runtime.reservation.commit"
    ]
    expiries = [
        e for e in tracer.events if e.kind == "runtime.reservation.expire"
    ]
    if len(reserve_events) != s.reservations_booked:
        problems.append("reservations: reserve events drifted from stats")
    if len(commits) != s.reservation_admits:
        problems.append("reservations: commit events drifted from stats")
    if len(expiries) != s.reservations_expired:
        problems.append("reservations: expire events drifted from stats")
    for ev in tracer.events:
        for p in validate_event(ev.to_dict()):
            problems.append(f"reservations: event {ev.kind}: {p}")
    profile = manager.profile()
    problems += [
        f"reservations: profile: {p}"
        for p in validate_profile(profile.to_dict())
    ]
    if profile.meta.get("runtime.reservations_booked") != s.reservations_booked:
        problems.append("reservations: profile counters drifted from stats")
    return (
        f"      reservations: {len(trace)} requests — {s.admitted} admitted "
        f"({s.reservation_admits} via booking), {s.rejected} rejected, "
        f"{s.reservations_expired} expired, {elapsed:.2f}s"
    )


def main() -> int:
    problems: list = []
    for check in (check_scheduler, check_registry, check_reservations):
        print(check(problems))
    if problems:
        print("\nFAIL:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("temporal smoke check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

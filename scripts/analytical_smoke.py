#!/usr/bin/env python
"""Analytical-backend smoke check: relaxation, warm start, A3 bar.

Drives the analytical force-directed backend end to end:

* the standalone placer on a Table-I style instance — the relaxation
  must converge (stop before its iteration cap), legalize every module,
  and the result must pass ``PlacementResult.verify``,
* the warm-start path: a CP solve seeded with ``warm_start="analytical"``
  must reach its first incumbent without opening a single search node,
  strictly fewer than the cold solve on the same instance, and must
  never return a worse extent than its seed,
* the ablation-A3 acceptance bar: at 25% of the annealing budget the
  analytical placer must reach at least annealing's extent utilization.

Exits non-zero on any problem, so it can gate CI
(``make analytical-smoke``).
"""

from __future__ import annotations

import sys
import time


def _instance(seed: int = 5, n: int = 30):
    from repro.experiments.config import default_fabric
    from repro.modules.generator import ModuleGenerator

    return default_fabric(), ModuleGenerator(seed=seed).generate_set(n)


def check_relaxation(problems: list) -> str:
    """Standalone analytical placement: convergence + verification."""
    from repro.obs import RecordingTracer
    from repro.obs.trace import ANALYTICAL_ITERATE
    from repro.obs.schema import validate_event
    from repro.placer import AnalyticalConfig, AnalyticalPlacer

    region, modules = _instance()
    tracer = RecordingTracer()
    cfg = AnalyticalConfig(tracer=tracer)
    t0 = time.monotonic()
    res = AnalyticalPlacer(cfg).place(region, modules)
    elapsed = time.monotonic() - t0

    iterations = res.stats.get("iterations", 0)
    if iterations >= cfg.iterations:
        problems.append(
            f"relaxation: hit the iteration cap ({iterations}) instead of "
            "converging"
        )
    if not res.all_placed:
        problems.append(
            f"relaxation: {len(res.unplaced)} module(s) failed to legalize"
        )
    try:
        res.verify()
    except ValueError as exc:
        problems.append(f"relaxation: legalized placement invalid: {exc}")
    samples = tracer.by_kind(ANALYTICAL_ITERATE)
    if not samples:
        problems.append("relaxation: no analytical.iterate events emitted")
    for ev in samples:
        for p in validate_event(ev.to_dict()):
            problems.append(f"relaxation: event: {p}")
    return (
        f"        relaxation: {len(modules)} modules legalized in "
        f"{iterations} iterations, extent {res.extent}, {elapsed:.2f}s"
    )


def check_warm_start(problems: list) -> str:
    """Warm-started CP: a free first incumbent, never worse than the seed."""
    from repro.core.placer import CPPlacer, PlacerConfig

    region, modules = _instance()
    t0 = time.monotonic()
    cold = CPPlacer(PlacerConfig(time_limit=3.0)).place(region, modules)
    warm = CPPlacer(
        PlacerConfig(time_limit=3.0, warm_start="analytical")
    ).place(region, modules)
    elapsed = time.monotonic() - t0

    cold_nodes = cold.stats.get("first_incumbent_nodes")
    warm_nodes = warm.stats.get("first_incumbent_nodes")
    if warm_nodes != 0:
        problems.append(
            f"warm start: first incumbent cost {warm_nodes} nodes (want 0)"
        )
    if cold_nodes is None or not (warm_nodes < cold_nodes):
        problems.append(
            f"warm start: not strictly cheaper than cold "
            f"({warm_nodes} vs {cold_nodes} nodes)"
        )
    seed_objective = warm.stats.get("warm_start", {}).get("objective")
    if seed_objective is None:
        problems.append("warm start: stats carry no warm_start section")
    elif warm.extent is not None and warm.extent > seed_objective:
        problems.append(
            f"warm start: returned extent {warm.extent} worse than its "
            f"seed {seed_objective}"
        )
    try:
        warm.verify()
    except ValueError as exc:
        problems.append(f"warm start: placement invalid: {exc}")
    return (
        f"        warm start: first incumbent at {warm_nodes} nodes "
        f"(cold: {cold_nodes}), seed extent {seed_objective} -> "
        f"final {warm.extent}, {elapsed:.2f}s"
    )


def check_a3_bar(problems: list) -> str:
    """A3 acceptance: >= annealing utilization at <= 25% of its budget."""
    from repro.metrics.utilization import extent_utilization
    from repro.placer import (
        AnalyticalConfig,
        AnalyticalPlacer,
        AnnealingConfig,
        AnnealingPlacer,
    )

    region, modules = _instance()
    budget = 4.0
    annealing = AnnealingPlacer(
        AnnealingConfig(time_limit=budget, seed=5, max_evaluations=10_000)
    ).place(region, modules)
    t0 = time.monotonic()
    analytical = AnalyticalPlacer(
        AnalyticalConfig(time_limit=budget / 4, seed=5)
    ).place(region, modules)
    analytical_elapsed = time.monotonic() - t0

    u_ann = extent_utilization(annealing)
    u_ana = extent_utilization(analytical)
    if not analytical.all_placed:
        problems.append(
            f"A3: analytical left {len(analytical.unplaced)} unplaced"
        )
    if u_ana < u_ann:
        problems.append(
            f"A3: analytical utilization {u_ana:.3f} below annealing "
            f"{u_ann:.3f} (must be >= at a quarter of the budget)"
        )
    if analytical_elapsed > budget / 4 + 1.0:
        problems.append(
            f"A3: analytical overran its quarter budget "
            f"({analytical_elapsed:.2f}s > {budget / 4:.2f}s + slack)"
        )
    return (
        f"            A3 bar: analytical {u_ana:.1%} in "
        f"{analytical_elapsed:.2f}s vs annealing {u_ann:.1%} in "
        f"{annealing.elapsed:.2f}s"
    )


def main() -> int:
    problems: list = []
    for check in (check_relaxation, check_warm_start, check_a3_bar):
        print(check(problems))
    if problems:
        print("\nFAIL:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("analytical smoke check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Defrag smoke check: both registered strategies on the demo trace.

Serves the 60-event A6 demo trace twice through the
:class:`~repro.core.runtime.RuntimePlacementManager` — once with the
instant ``greedy-compaction`` oracle, once with the incremental
``no-break`` engine — with full move-transition verification on, then
checks the invariants the defrag engine must uphold:

* every request resolves and the final floorplan verifies,
* every no-break plan replays step by step without ever overlapping a
  running module (``verify_moves=True`` raises inside the run itself),
* move accounting balances: planned = executed + aborted + still queued
  (nothing in flight after drain),
* every ``runtime.defrag`` / ``runtime.defrag.step`` event matches the
  published schema,
* the profile carries the planned/executed/aborted counters.

Exits non-zero on any problem, so it can gate CI (``make defrag-smoke``).
"""

from __future__ import annotations

import sys
import time


def run_one(strategy: str, problems: list) -> str:
    from repro.core.runtime import RuntimeConfig, RuntimePlacementManager
    from repro.experiments.runtime_exp import (
        default_runtime_region,
        default_runtime_trace,
    )
    from repro.obs import RecordingTracer, validate_event, validate_profile

    region = default_runtime_region()
    trace = default_runtime_trace(60, seed=7)
    tracer = RecordingTracer()
    manager = RuntimePlacementManager(
        region,
        RuntimeConfig(
            probe="greedy",
            defragmenter=strategy,
            verify_moves=True,
            tracer=tracer,
            sample_timeline=False,
        ),
    )
    t0 = time.monotonic()
    log = manager.run(trace)
    elapsed = time.monotonic() - t0
    s = manager.stats

    if log.admitted + log.rejected != len(trace):
        problems.append(f"{strategy}: not every request resolved")
    try:
        manager.result().verify()
        manager.check_invariants()
    except ValueError as exc:
        problems.append(f"{strategy}: final floorplan invalid: {exc}")
    if manager.moves_in_flight:
        problems.append(
            f"{strategy}: {manager.moves_in_flight} moves still in flight "
            f"after drain"
        )
    if s.defrag_planned_moves != s.defrag_executed_moves + s.defrag_aborted_moves:
        problems.append(
            f"{strategy}: move accounting does not balance "
            f"({s.defrag_planned_moves} planned != "
            f"{s.defrag_executed_moves} executed + "
            f"{s.defrag_aborted_moves} aborted)"
        )
    if s.defrags == 0:
        problems.append(f"{strategy}: the demo trace triggered no defrag pass")
    steps = [e for e in tracer.events if e.kind == "runtime.defrag.step"]
    if strategy == "no-break" and not steps:
        problems.append("no-break: no runtime.defrag.step events emitted")
    completed = sum(1 for e in steps if e.data["status"] == "completed")
    aborted = sum(1 for e in steps if e.data["status"] == "aborted")
    if steps and (
        completed != s.defrag_executed_moves
        or aborted != s.defrag_aborted_moves
    ):
        # instant strategies emit no step events; incremental ones must
        # account for every executed/aborted move
        problems.append(
            f"{strategy}: step events ({completed} completed, {aborted} "
            f"aborted) drifted from stats ({s.defrag_executed_moves} "
            f"executed, {s.defrag_aborted_moves} aborted)"
        )
    for ev in tracer.events:
        for p in validate_event(ev.to_dict()):
            problems.append(f"{strategy}: event {ev.kind}: {p}")
    profile = manager.profile()
    problems += [
        f"{strategy}: profile: {p}" for p in validate_profile(profile.to_dict())
    ]
    if profile.meta.get("runtime.defrag_executed") != s.defrag_executed_moves:
        problems.append(f"{strategy}: profile counters drifted from stats")
    return (
        f"{strategy:>18}: admitted {s.admitted}, rejected {s.rejected}, "
        f"{s.defrags} passes, moves {s.defrag_planned_moves}p/"
        f"{s.defrag_executed_moves}e/{s.defrag_aborted_moves}a, "
        f"{len(steps)} step events, {elapsed:.2f}s"
    )


def main() -> int:
    from repro.core.defrag import available_defragmenters

    problems: list = []
    strategies = available_defragmenters()
    if set(strategies) < {"greedy-compaction", "no-break"}:
        problems.append(f"built-in strategies missing: {strategies}")
    for strategy in strategies:
        print(run_one(strategy, problems))
    if problems:
        print("\nFAIL:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("defrag smoke check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Table I, runtime column — proven-optimal solves (the paper's regime).

The paper solves the whole model to optimality (SICStus geost), where four
alternatives per module multiply the search space and runtime ~4x
(2.55 s -> 10.82 s).  Our Python kernel cannot prove optimality at
30-module scale in reasonable time, so this bench reproduces the *runtime
shape* in the regime where optimality proofs complete: small instances,
both conditions solved to OPTIMAL, ratio reported.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import run_once
from repro.core.placer import CPPlacer, PlacerConfig
from repro.fabric.devices import irregular_device
from repro.fabric.region import PartialRegion
from repro.modules.generator import GeneratorConfig, ModuleGenerator


def _instance(n_modules=5, seed=2):
    region = PartialRegion.whole_device(
        irregular_device(28, 10, seed=5)
    )
    cfg = GeneratorConfig(clb_min=8, clb_max=18, bram_max=1,
                          height_min=3, height_max=5, max_width=4)
    modules = ModuleGenerator(seed=seed, config=cfg).generate_set(n_modules)
    return region, modules


def _solve(modules, region):
    placer = CPPlacer(PlacerConfig(time_limit=120.0))
    return placer.place(region, modules)


class TestOptimalRuntime:
    def test_bench_optimal_with_alternatives(self, benchmark, report):
        region, modules = _instance()
        res = run_once(benchmark, _solve, modules, region)
        report(
            "optimal solve, 4 alternatives",
            f"status={res.status} extent={res.extent} "
            f"nodes={res.stats['search'].nodes} elapsed={res.elapsed:.2f}s",
        )
        assert res.status == "optimal"
        res.verify()

    def test_bench_optimal_without_alternatives(self, benchmark, report):
        region, modules = _instance()
        restricted = [m.restricted(1) for m in modules]
        res = run_once(benchmark, _solve, restricted, region)
        report(
            "optimal solve, 1 alternative",
            f"status={res.status} extent={res.extent} "
            f"nodes={res.stats['search'].nodes} elapsed={res.elapsed:.2f}s",
        )
        assert res.status == "optimal"

    def test_bench_runtime_and_quality_shape(self, benchmark, report):
        """Alternatives: better or equal optimum, more solver work."""
        region, modules = _instance()
        t0 = time.monotonic()
        with_alts = run_once(benchmark, _solve, modules, region)
        t_with = time.monotonic() - t0
        t0 = time.monotonic()
        without = _solve([m.restricted(1) for m in modules], region)
        t_without = time.monotonic() - t0
        report(
            "paper Table I runtime shape (2.55s -> 10.82s, ~4.2x)",
            f"without: extent={without.extent} time={t_without:.2f}s "
            f"nodes={without.stats['search'].nodes}\n"
            f"with:    extent={with_alts.extent} time={t_with:.2f}s "
            f"nodes={with_alts.stats['search'].nodes}\n"
            f"ratio:   {t_with / max(t_without, 1e-9):.1f}x time",
        )
        assert with_alts.status == without.status == "optimal"
        # quality: the optimum with alternatives is never worse (superset)
        assert with_alts.extent <= without.extent
        # runtime: more shapes => at least as much work (paper: ~4x more)
        assert t_with >= 0.8 * t_without

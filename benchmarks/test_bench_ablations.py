"""Ablations A1-A4 (see DESIGN.md).

A1 — utilization vs number of design alternatives (1, 2, 3, 4).
A2 — fabric heterogeneity (homogeneous / columnar / irregular).
A3 — CP+LNS vs the related-work baselines.
A4 — solver branching strategy and symmetry breaking.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    alternatives_sweep,
    baseline_comparison,
    format_sweep,
    heterogeneity_sweep,
    solver_strategy_sweep,
)
from repro.experiments.config import full_scale

_BUDGET = 10.0 if full_scale() else 4.0
_N = 30 if full_scale() else 12


class TestA1Alternatives:
    def test_bench_ablation_alternatives(self, benchmark, report):
        points = run_once(
            benchmark, alternatives_sweep,
            (1, 2, 3, 4), _N, 5, _BUDGET,
        )
        report("A1 — alternatives sweep", format_sweep(points))
        assert all(p.unplaced == 0 for p in points)
        # utilization with 4 alternatives beats 1 alternative
        assert points[-1].utilization > points[0].utilization
        # extent is monotonically non-increasing up to solver noise
        assert points[-1].extent <= points[0].extent


class TestA2Heterogeneity:
    def test_bench_ablation_heterogeneity(self, benchmark, report):
        points = run_once(
            benchmark, heterogeneity_sweep, max(_N - 4, 6), 5, _BUDGET
        )
        report("A2 — heterogeneity sweep", format_sweep(points))
        by = {p.label: p for p in points}
        assert set(by) == {"homogeneous", "columnar", "irregular"}
        assert all(p.unplaced == 0 for p in points)
        # heterogeneity restricts placement: homogeneous packs at least as
        # tightly as the clock-interrupted irregular fabric
        assert by["homogeneous"].extent <= by["irregular"].extent


class TestA3Baselines:
    def test_bench_ablation_baselines(self, benchmark, report):
        points = run_once(
            benchmark, baseline_comparison, _N, 5, _BUDGET
        )
        report("A3 — placer comparison", format_sweep(points))
        by = {p.label: p for p in points}
        cp = by["cp-lns"]
        assert cp.unplaced == 0
        # the CP placer wins or ties every baseline that placed everything
        for label, p in by.items():
            if label == "cp-lns" or p.unplaced or p.extent is None:
                continue
            assert cp.extent <= p.extent, f"cp-lns lost to {label}"
        # and the greedy heuristics are at least an order faster
        assert by["bottom-left"].elapsed < cp.elapsed


class TestA4Solver:
    def test_bench_ablation_solver(self, benchmark, report):
        points = run_once(
            benchmark, solver_strategy_sweep, 10, 9, _BUDGET / 2
        )
        report("A4 — solver strategies", format_sweep(points))
        by = {p.label: p for p in points}
        assert set(by) == {"fail-first", "static", "fail-first/no-symmetry"}
        # every strategy must produce a full, valid placement
        assert all(p.unplaced == 0 for p in points)


class TestA8StaticFraction:
    def test_bench_ablation_static_fraction(self, benchmark, report):
        from repro.experiments.ablations import static_fraction_sweep

        points = run_once(
            benchmark, static_fraction_sweep,
            (0.0, 0.25, 0.5), max(_N - 4, 8), 5, _BUDGET,
        )
        report("A8 — static-region fraction", format_sweep(points))
        assert all(p.unplaced == 0 for p in points)
        # a growing static region monotonically pushes the absolute extent
        extents = [p.extent for p in points]
        assert extents == sorted(extents)

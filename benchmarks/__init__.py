"""Benchmark suite: one bench per table/figure of the paper plus ablations.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
reproduced tables inline; set ``REPRO_FULL=1`` for paper-scale runs).
"""

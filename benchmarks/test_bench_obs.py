"""Observability overhead: disabled instrumentation must be ~free.

The acceptance bar from the observability issue: a solve with the default
``NullTracer`` (which the engine normalizes to ``None``) stays within 5%
of the un-instrumented wall time.  Wall-clock ratios on a shared CI box
are noisy, so the benchmark solves a deterministic instance to optimality
several times per configuration and compares medians, and the asserted
bound carries slack over the 5% design target; the printed report shows
the actual ratio.
"""

from __future__ import annotations

import statistics
import time

from repro.core.placer import CPPlacer, PlacerConfig
from repro.fabric.devices import irregular_device
from repro.fabric.region import PartialRegion
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.obs import NullTracer, RecordingTracer


def _instance():
    region = PartialRegion.whole_device(irregular_device(24, 10, seed=4))
    cfg = GeneratorConfig(clb_min=4, clb_max=10, bram_max=1,
                          height_min=2, height_max=4)
    modules = ModuleGenerator(seed=3, config=cfg).generate_set(6)
    return region, modules


def _median_solve_time(make_config, repeats: int = 7) -> float:
    region, modules = _instance()
    times = []
    for _ in range(repeats):
        placer = CPPlacer(make_config())
        t0 = time.perf_counter()
        result = placer.place(region, modules)
        times.append(time.perf_counter() - t0)
        assert result.status == "optimal"
    return statistics.median(times)


def test_null_tracer_overhead(report):
    baseline = _median_solve_time(lambda: PlacerConfig(time_limit=None))
    with_null = _median_solve_time(
        lambda: PlacerConfig(time_limit=None, tracer=NullTracer())
    )
    ratio = with_null / baseline
    report(
        "NullTracer overhead",
        f"baseline       {baseline * 1e3:8.2f} ms\n"
        f"NullTracer     {with_null * 1e3:8.2f} ms\n"
        f"ratio          {ratio:8.3f}   (design target <= 1.05)",
    )
    # design target is 5%; asserted with slack for noisy shared machines
    assert ratio < 1.25, f"NullTracer overhead ratio {ratio:.3f}"


def test_profiling_overhead_is_bounded(report):
    """Full profiling costs something, but must stay the same order."""
    baseline = _median_solve_time(lambda: PlacerConfig(time_limit=None))
    profiled = _median_solve_time(
        lambda: PlacerConfig(time_limit=None, profile=True)
    )
    ratio = profiled / baseline
    report(
        "Profiling overhead",
        f"baseline       {baseline * 1e3:8.2f} ms\n"
        f"profile=True   {profiled * 1e3:8.2f} ms\n"
        f"ratio          {ratio:8.3f}",
    )
    assert ratio < 3.0, f"profiling overhead ratio {ratio:.3f}"


def test_recording_tracer_coarse_overhead(report):
    """Coarse event recording (no fine channels) stays cheap."""
    baseline = _median_solve_time(lambda: PlacerConfig(time_limit=None))
    traced = _median_solve_time(
        lambda: PlacerConfig(time_limit=None, tracer=RecordingTracer(fine=False))
    )
    ratio = traced / baseline
    report(
        "RecordingTracer (coarse) overhead",
        f"baseline       {baseline * 1e3:8.2f} ms\n"
        f"coarse tracer  {traced * 1e3:8.2f} ms\n"
        f"ratio          {ratio:8.3f}",
    )
    assert ratio < 2.0, f"coarse tracing overhead ratio {ratio:.3f}"

"""Runtime-facing benches: online service level (A5) and defragmentation.

These extend the paper's offline result into the settings its introduction
motivates: an online request stream (service level = fraction of module
requests fulfilled, the metric of refs [4, 5]) and runtime compaction by
module relocation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.defrag import defragment
from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.result import PlacementResult
from repro.experiments.online import format_online, online_comparison
from repro.fabric.devices import irregular_device
from repro.fabric.region import PartialRegion
from repro.modules.generator import GeneratorConfig, ModuleGenerator


class TestA5Online:
    def test_bench_ablation_online(self, benchmark, report):
        stats = run_once(benchmark, online_comparison, 30, 3)
        report("A5 — online service level", format_online(stats))
        by = {s.label: s for s in stats}
        assert all(s.total == 30 for s in stats)
        # alternatives never lose requests, and on this loaded trace they
        # must win some (the fragmentation-reduction claim at runtime)
        assert (
            by["first-fit (alternatives)"].accepted
            > by["first-fit (1 shape)"].accepted
        )
        assert (
            by["cp (alternatives)"].accepted >= by["cp (1 shape)"].accepted
        )


def _fragmented_state() -> PlacementResult:
    region = PartialRegion.whole_device(irregular_device(72, 12, seed=9))
    gen = ModuleGenerator(
        seed=6,
        config=GeneratorConfig(clb_min=10, clb_max=24, bram_max=1,
                               height_min=3, height_max=5),
    )
    modules = gen.generate_set(8)
    res = CPPlacer(
        PlacerConfig(time_limit=4.0, first_solution_only=True)
    ).place(region, modules)
    assert res.all_placed
    return PlacementResult(region, res.placements[::2])


class TestDefrag:
    def test_bench_defrag_frozen_shapes(self, benchmark, report):
        state = _fragmented_state()
        out = run_once(benchmark, defragment, state, False)
        report(
            "defrag (frozen shapes)",
            f"extent {out.initial_extent} -> {out.final_extent} "
            f"in {len(out.moves)} moves, {out.total_frames} frames",
        )
        out.result.verify()
        assert out.final_extent <= out.initial_extent

    def test_bench_defrag_free_shapes(self, benchmark, report):
        state = _fragmented_state()
        frozen = defragment(state, allow_shape_change=False)
        free = run_once(benchmark, defragment, state, True)
        report(
            "defrag (free shapes)",
            f"extent {free.initial_extent} -> {free.final_extent} "
            f"(frozen-shape policy reached {frozen.final_extent})",
        )
        free.result.verify()
        # alternative-aware relocation compacts at least as far
        assert free.final_extent <= frozen.final_extent


class TestRuntimeManagerThroughput:
    def test_bench_runtime_manager_throughput(self, benchmark, report):
        """Serving throughput of the online placement manager.

        The Table-I module distribution streamed through the full
        fallback chain (budgeted CP probe backed by the greedy rung).
        The pin: at least 50 requests/second end to end — admission has
        to stay cheap enough for a runtime system's serving loop.
        """
        from repro.core.runtime import (
            RuntimeConfig, RuntimePlacementManager, generate_workload,
        )
        from repro.experiments.config import default_fabric

        region = default_fabric()
        trace = generate_workload(100, seed=3)
        config = RuntimeConfig(probe="cp", probe_time_limit=0.05)

        def serve():
            return RuntimePlacementManager(region, config).run(trace)

        log = run_once(benchmark, serve)
        elapsed = benchmark.stats.stats.total
        throughput = len(trace) / elapsed
        report(
            "runtime manager throughput (Table-I workload)",
            f"{len(trace)} requests in {elapsed:.2f}s = "
            f"{throughput:.0f} req/s "
            f"(admitted {log.admitted}, rejected {log.rejected}, "
            f"defrags {log.stats.defrags})",
        )
        assert log.admitted + log.rejected == len(trace)
        assert throughput >= 50.0


class TestPhaseScheduling:
    def test_bench_phase_scheduling(self, benchmark, report):
        """D2 — sticky vs naive reconfiguration cost over a phase sequence."""
        from repro.fabric.devices import irregular_device
        from repro.flow.scheduler import Phase, compare_policies

        region = PartialRegion.whole_device(irregular_device(56, 12, seed=5))
        gen = ModuleGenerator(
            seed=9,
            config=GeneratorConfig(clb_min=8, clb_max=18, bram_max=1,
                                   height_min=2, height_max=4),
        )
        mods = gen.generate_set(7)
        phases = [
            Phase("boot", mods[:3]),
            Phase("steady", mods[1:5]),
            Phase("burst", mods[1:7]),
            Phase("idle", mods[1:3]),
            Phase("steady2", mods[1:5]),
        ]
        sticky, naive = run_once(
            benchmark, compare_policies, region, phases
        )
        report(
            "D2 — phase scheduling (frames written)",
            f"sticky: {sticky.total_frames} frames in {sticky.elapsed:.2f}s\n"
            f"naive:  {naive.total_frames} frames in {naive.elapsed:.2f}s",
        )
        assert sticky.ok and naive.ok
        # keeping survivors in place never writes more frames here, and
        # planning is far cheaper because only arrivals are solved
        assert sticky.total_frames <= naive.total_frames
        assert sticky.elapsed <= naive.elapsed


class TestTemporal:
    def test_bench_temporal_placement(self, benchmark, report):
        """D3 — exact spatio-temporal scheduling (ref [6] as 3-D geost)."""
        from repro.core.temporal import TemporalPlacer, TemporalTask
        from repro.fabric.grid import FabricGrid
        from repro.modules.footprint import Footprint
        from repro.modules.module import Module
        from repro.modules.transform import rotate90

        region = PartialRegion.whole_device(
            FabricGrid.from_rows(["....", "....", "...."])
        )
        wide = Footprint.rectangle(3, 1)
        tasks = [
            TemporalTask(Module("filter", [Footprint.rectangle(2, 3)]), 3),
            TemporalTask(Module("fft", [wide, rotate90(wide)]), 2),
            TemporalTask(Module("crc", [Footprint.rectangle(2, 1)]), 2),
        ]
        placer = TemporalPlacer(horizon=10, time_limit=60.0)
        result = run_once(benchmark, placer.place, region, tasks, [(1, 2)])
        result.verify([(1, 2)])
        mono = placer.place(
            region,
            [TemporalTask(t.module.restricted(1), t.duration) for t in tasks],
            [(1, 2)],
        )
        report(
            "D3 — temporal placement (makespan)",
            f"with alternatives: makespan={result.makespan} "
            f"({result.status})\n"
            f"single layouts:    makespan={mono.makespan} ({mono.status})",
        )
        assert result.status == mono.status == "optimal"
        assert result.makespan <= mono.makespan

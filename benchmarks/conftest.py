"""Shared benchmark scaffolding.

Placement benchmarks are macro-benchmarks: one round, one iteration —
their cost is dominated by the (budgeted) solver run, and repeated rounds
would just multiply wall time without adding information.  Micro-benchmarks
of the substrates (domains, masks, sweep, kernel propagation) use
pytest-benchmark's standard calibrated mode.

Every bench prints the quantitative result it reproduces via the
``report`` fixture so ``pytest benchmarks/ --benchmark-only -s`` shows the
paper-versus-measured comparison inline; the same numbers are asserted as
*shape* checks (who wins, roughly by how much), never as absolute values.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a budgeted run exactly once and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: reproduced tables/figures are appended here during a bench run, so the
#: numbers survive even without ``-s`` (the file is truncated per session)
REPORT_PATH = "bench_report.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_report_file():
    import pathlib

    pathlib.Path(REPORT_PATH).write_text(
        "# Reproduced tables and figures (benchmarks run)\n"
    )


@pytest.fixture
def report(capsys):
    """Print a block (visible with -s) and persist it to bench_report.txt."""

    def emit(title: str, body: str) -> None:
        block = f"\n=== {title} ===\n{body}\n"
        print(block, end="")
        with open(REPORT_PATH, "a") as handle:
            handle.write(block)

    return emit


@pytest.fixture(scope="session")
def table1_instance():
    """The Table-I style instance shared by several benches."""
    from repro.experiments.config import default_fabric
    from repro.modules.generator import ModuleGenerator

    region = default_fabric()
    modules = ModuleGenerator(seed=1).generate_set(30)
    return region, modules

"""Ablation A7 — 1D slot-style vs 2D-grid placement (Section II, axis 5).

Quantifies the utilization gap that motivated the move from slot-based to
2D placement models, and shows design alternatives help the 1D model too
(narrower layouts need fewer slots).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.metrics.utilization import extent_utilization
from repro.placer import BottomLeftPlacer, SlotConfig, SlotPlacer, slot_utilization


class TestA7Slots:
    def test_bench_ablation_slots(self, benchmark, report, table1_instance):
        region, modules = table1_instance
        slot_width = 8
        one_d = run_once(
            benchmark, SlotPlacer(SlotConfig(slot_width)).place, region, modules
        )
        one_d.verify()
        one_d_single = SlotPlacer(SlotConfig(slot_width)).place(
            region, [m.restricted(1) for m in modules]
        )
        two_d = BottomLeftPlacer().place(region, modules)

        report(
            "A7 — 1D slots vs 2D grid",
            f"1D slots (alternatives): placed {len(one_d.placements)}/30, "
            f"slot-util {slot_utilization(one_d, slot_width):.1%}\n"
            f"1D slots (single shape): placed {len(one_d_single.placements)}/30, "
            f"slot-util {slot_utilization(one_d_single, slot_width):.1%}\n"
            f"2D grid  (bottom-left):  placed {len(two_d.placements)}/30, "
            f"util {extent_utilization(two_d):.1%}",
        )
        # the 2D model fulfils at least as many requests ...
        assert len(two_d.placements) >= len(one_d.placements)
        # ... and uses the fabric far better (the motivating gap)
        assert extent_utilization(two_d) > slot_utilization(one_d, slot_width)
        # alternatives also help within the 1D model
        assert len(one_d.placements) >= len(one_d_single.placements)

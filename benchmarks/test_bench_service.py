"""Sharded-service throughput gate: trace replay on the Table-I workload.

The acceptance bar of the sharded placement service: the trace-replay
load harness (:mod:`repro.experiments.service_load`) must sustain at
least 10x the PR 3 single-manager pin (50 req/s, see
``test_bench_runtime.py``) on the seeded Table-I workload replayed
across >= 4 column-split shards, with the admission-latency tail
bounded.

Thresholds are **not** hardcoded: the gate reads the committed
``BENCH_runtime.json`` (tightening it is a reviewed one-line diff) and
every run writes the freshly measured p50/p99/req-s to
``bench_runtime_latest.json`` — append that entry to the JSON's
``history`` when landing a perf-relevant change so the trajectory stays
on record, mirroring the ``BENCH_geost.json`` flow.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.service_load import run_load, serving_config

GATES_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
)
LATEST_PATH = "bench_runtime_latest.json"


@pytest.fixture(scope="module")
def spec():
    return json.loads(GATES_PATH.read_text())


@pytest.fixture(scope="module")
def latest():
    """Collects measured values; written as the trajectory artifact."""
    measured: dict = {"label": "local-run"}
    yield measured
    artifact = {"gates_from": GATES_PATH.name, "entry": measured}
    pathlib.Path(LATEST_PATH).write_text(json.dumps(artifact, indent=2) + "\n")


@pytest.mark.slow
class TestServiceThroughputGate:
    def test_trace_replay_meets_committed_gates(self, spec, latest):
        workload = spec["workload"]
        gates = spec["gates"]
        assert workload["n_shards"] >= 4  # the bar is a *sharded* replay
        report = run_load(
            n_requests=workload["n_requests"],
            n_shards=workload["n_shards"],
            seed=workload["seed"],
            config=serving_config(
                router=workload["router"], chain=workload["chain"]
            ),
            mean_interarrival=workload["mean_interarrival"],
            mean_lifetime=workload["mean_lifetime"],
        )
        latest.update(
            req_per_s=round(report.req_per_s, 1),
            p50_latency_s=round(report.p50_latency_s, 6),
            p99_latency_s=round(report.p99_latency_s, 6),
            reject_rate=round(report.reject_rate, 4),
            admitted=report.admitted,
            rejected=report.rejected,
        )
        assert report.req_per_s >= gates["req_per_s_min"], (
            f"sharded service sustained {report.req_per_s:.0f} req/s, "
            f"gate is {gates['req_per_s_min']:.0f} "
            f"(see {GATES_PATH.name})"
        )
        assert report.p99_latency_s <= gates["p99_latency_s_max"], (
            f"p99 admission latency {report.p99_latency_s * 1e3:.2f}ms "
            f"exceeds the {gates['p99_latency_s_max'] * 1e3:.0f}ms gate"
        )
        # the replay must exercise real admission decisions end to end
        assert report.admitted + report.rejected == workload["n_requests"]

    def test_no_break_defrag_keeps_throughput_floor(self, spec, latest):
        """No-break defrag at the default cadence (reject-triggered
        passes on, fragmentation trigger off) must keep the same req/s
        floor on the 4-shard replay — planning move sequences instead of
        teleporting may not price defragmentation out of the serving
        path."""
        workload = spec["workload"]
        gates = spec["gates"]
        report = run_load(
            n_requests=workload["n_requests"],
            n_shards=workload["n_shards"],
            seed=workload["seed"],
            config=serving_config(
                router=workload["router"],
                chain=workload["chain"],
                defrag="no-break",
            ),
            mean_interarrival=workload["mean_interarrival"],
            mean_lifetime=workload["mean_lifetime"],
        )
        latest["no_break"] = {
            "req_per_s": round(report.req_per_s, 1),
            "p99_latency_s": round(report.p99_latency_s, 6),
            "reject_rate": round(report.reject_rate, 4),
            "defrags": report.defrags,
            "defrag_executed_moves": report.defrag_executed_moves,
            "defrag_aborted_moves": report.defrag_aborted_moves,
        }
        floor = gates.get("no_break_req_per_s_min", gates["req_per_s_min"])
        assert report.req_per_s >= floor, (
            f"no-break defrag sustained {report.req_per_s:.0f} req/s, "
            f"floor is {floor:.0f} (see {GATES_PATH.name})"
        )

    def test_reservation_mode_keeps_throughput_floor(self, spec, latest):
        """Book-ahead admission on the committed slack-heavy replay must
        keep the req/s floor — the horizon probe (projected occupancy,
        anchor masks, candidate ticks) only runs when direct placement
        fails, so turning reservations on may not price the serving
        path out.  The replay is also required to actually exercise the
        reserve path (bookings > 0) and to honour every booking it
        makes (booked = commits + expired after drain)."""
        workload = spec["reservation_workload"]
        gates = spec["gates"]
        report = run_load(
            n_requests=workload["n_requests"],
            n_shards=workload["n_shards"],
            seed=workload["seed"],
            config=serving_config(
                router=workload["router"],
                chain=workload["chain"],
                queue_capacity=workload["queue_capacity"],
                reservation_horizon=workload["reservation_horizon"],
            ),
            mean_interarrival=workload["mean_interarrival"],
            mean_lifetime=workload["mean_lifetime"],
            profile=workload["profile"],
        )
        latest["reservation"] = {
            "req_per_s": round(report.req_per_s, 1),
            "p99_latency_s": round(report.p99_latency_s, 6),
            "reject_rate": round(report.reject_rate, 4),
            "reservations_booked": report.reservations_booked,
            "reservation_admits": report.reservation_admits,
            "reservations_expired": report.reservations_expired,
        }
        floor = gates.get("reservation_req_per_s_min", gates["req_per_s_min"])
        assert report.req_per_s >= floor, (
            f"reservation mode sustained {report.req_per_s:.0f} req/s, "
            f"floor is {floor:.0f} (see {GATES_PATH.name})"
        )
        assert report.reservations_booked > 0
        assert report.reservations_booked == (
            report.reservation_admits + report.reservations_expired
        )
        assert report.admitted + report.rejected == workload["n_requests"]

    def test_three_way_defrag_comparison_recorded(self, spec, latest):
        """The trajectory artifact records the instant / no-break /
        disabled comparison on the same replay, so defrag strategy cost
        stays visible next to the throughput gates."""
        workload = spec["workload"]
        comparison = {}
        for strategy in ("greedy-compaction", "no-break", "disabled"):
            report = run_load(
                n_requests=workload["n_requests"],
                n_shards=workload["n_shards"],
                seed=workload["seed"],
                config=serving_config(
                    router=workload["router"],
                    chain=workload["chain"],
                    defrag=strategy,
                ),
                mean_interarrival=workload["mean_interarrival"],
                mean_lifetime=workload["mean_lifetime"],
            )
            comparison[strategy] = {
                "req_per_s": round(report.req_per_s, 1),
                "p99_latency_s": round(report.p99_latency_s, 6),
                "reject_rate": round(report.reject_rate, 4),
                "defrags": report.defrags,
                "defrag_executed_moves": report.defrag_executed_moves,
                "defrag_time_s": round(report.defrag_time_s, 6),
            }
        latest["defrag_comparison"] = comparison
        assert set(comparison) == {
            "greedy-compaction", "no-break", "disabled",
        }

    def test_sharding_beats_the_single_manager_pin(self, spec):
        """Sanity anchor: one shard alone clears the old 50 req/s pin,
        so the 10x service gate is sharding + serving-path work, not a
        workload change."""
        workload = spec["workload"]
        report = run_load(
            n_requests=150,
            n_shards=1,
            seed=workload["seed"],
            config=serving_config(chain=workload["chain"]),
        )
        assert report.req_per_s >= 50

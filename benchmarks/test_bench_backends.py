"""Baseline placers on the shared anchor-mask cache: `_State` speedup.

The backend refactor routed every baseline placer's static anchor masks
through :class:`~repro.fabric.cache.AnchorMaskCache` (the same cache the
CP kernel and LNS already share).  Acceptance: building the baselines'
``_State`` for the Table-I workload (30 modules, 120 shapes) from a
warmed cache must be at least 2x faster than the uncached fresh
cross-correlation path, and a runtime-chain-shaped sequence of repeated
greedy probes must benefit end to end.
"""

from __future__ import annotations

import statistics
import time

from repro.core.backend import PlacementRequest, create_backend
from repro.fabric.cache import AnchorMaskCache
from repro.placer.base import _State


def _median_time(build, repeats: int = 7) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        build()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def test_cached_state_construction_speedup(report, table1_instance):
    region, modules = table1_instance

    cache = AnchorMaskCache()
    cache.warm(region, modules)

    uncached = _median_time(lambda: _State(region, modules))
    cached = _median_time(lambda: _State(region, modules, cache=cache))
    speedup = uncached / cached

    report(
        "Baseline _State construction (Table-I, 30 modules, 120 shapes)",
        f"uncached {uncached * 1e3:8.2f} ms   (fresh cross-correlations)\n"
        f"cached   {cached * 1e3:8.2f} ms   (warmed anchor-mask cache)\n"
        f"speedup  {speedup:8.2f}x  (acceptance >= 2x)\n"
        f"cache    {cache.stats()}",
    )
    assert speedup >= 2.0, f"cached _State speedup only {speedup:.2f}x"
    assert cache.hits > 0


def test_repeated_greedy_probes_amortize_via_cache(report, table1_instance):
    """The runtime-chain shape of the win: many single-set probes, one cache."""
    region, modules = table1_instance
    backend = create_backend("bottom-left")

    def probes(cache):
        for _ in range(3):
            backend.place(PlacementRequest(region, modules, cache=cache))

    cold = _median_time(lambda: probes(None), repeats=3)
    cache = AnchorMaskCache()
    cache.warm(region, modules)
    warm = _median_time(lambda: probes(cache), repeats=3)
    speedup = cold / warm

    report(
        "Repeated greedy probes through the backend surface (3x place)",
        f"no cache     {cold * 1e3:8.2f} ms\n"
        f"shared cache {warm * 1e3:8.2f} ms\n"
        f"speedup      {speedup:8.2f}x  (acceptance: cache never loses)",
    )
    # the greedy decode dominates less than mask construction, so the bar
    # is deliberately lower than the _State micro-bench
    assert speedup >= 1.2, f"shared-cache probes speedup only {speedup:.2f}x"

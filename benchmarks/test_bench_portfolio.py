"""Ablation A6 — parallel portfolio scaling.

Runs the Table-I instance through 1-, 2- and 4-member portfolios with a
constant per-member budget and reports the quality/wall-clock trade:
members run in parallel processes, so wall time stays ~constant while the
best-of-N extent improves (or ties) monotonically in expectation.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import run_once
from repro.core.portfolio import PortfolioConfig, PortfolioPlacer
from repro.metrics.utilization import extent_utilization

_CPUS = os.cpu_count() or 1
_BUDGET = 6.0


class TestPortfolioScaling:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bench_portfolio(self, benchmark, report, table1_instance, workers):
        if workers > _CPUS:
            pytest.skip(f"host has only {_CPUS} CPUs")
        region, modules = table1_instance
        placer = PortfolioPlacer(
            PortfolioConfig(n_workers=workers, time_limit=_BUDGET, base_seed=7)
        )
        res = run_once(benchmark, placer.place, region, modules)
        assert res.all_placed
        res.verify()
        report(
            f"A6 — portfolio, {workers} member(s)",
            f"extent={res.extent} util={extent_utilization(res):.1%} "
            f"members={res.stats['member_extents']} "
            f"wall={res.elapsed:.1f}s (budget {_BUDGET:.0f}s each)",
        )
        # parallel members must not serialize: wall ~ budget, not N x budget
        assert res.elapsed < _BUDGET * workers * 0.9 + 4.0 or workers == 1

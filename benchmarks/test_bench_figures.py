"""Figures 1-5: qualitative artefacts regenerated with shape assertions.

* Figure 1 — a module with several functionally equivalent layouts.
* Figure 2 — the design flow (region spec + module spec -> placement).
* Figure 3 — optimal placement with vs without alternatives.
* Figure 4 — constraint-by-constraint shrinkage of valid placements.
* Figure 5 — the final side-by-side floorplans (same data as Fig. 3 at
  full-region rendering).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import (
    figure1_gallery,
    figure1_module,
    figure3_comparison,
    figure4_constraint_anatomy,
)
from repro.fabric.region import PartialRegion
from repro.fabric.devices import irregular_device
from repro.flow.design_flow import DesignFlow
from repro.flow.visualize import comparison_figure
from repro.metrics.utilization import extent_utilization
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.library import ModuleLibrary


class TestFigure1:
    def test_bench_fig1_alternatives(self, benchmark, report):
        module = run_once(benchmark, figure1_module, 5)
        report("Figure 1 — design alternatives", figure1_gallery(5))
        # the paper's figure: one module, five layouts, same function
        assert module.n_alternatives >= 4
        assert module.is_resource_equivalent()
        bboxes = {(fp.width, fp.height) for fp in module.shapes}
        assert len(bboxes) >= 2  # external layout variation present


class TestFigure2:
    def test_bench_fig2_flow(self, benchmark, report):
        region = PartialRegion.whole_device(irregular_device(48, 12, seed=5))
        cfg = GeneratorConfig(clb_min=8, clb_max=16, bram_max=1,
                              height_min=2, height_max=4)
        library = ModuleLibrary(
            ModuleGenerator(seed=3, config=cfg).generate_set(4)
        )
        flow = DesignFlow(region, library, time_limit=3.0)
        result = run_once(benchmark, flow.run)
        report("Figure 2 — design flow output", result.report)
        assert result.ok
        result.placement.verify()
        assert result.bitstream.n_frames == region.width


@pytest.fixture(scope="module")
def fig3_results():
    return figure3_comparison(n_modules=8, seed=3, time_limit=5.0)


class TestFigures3And5:
    def test_bench_fig3_placement(self, benchmark, report):
        without, with_alts, fig = run_once(
            benchmark, figure3_comparison, 8, 3, 5.0
        )
        report("Figure 3 — with vs without alternatives", fig)
        without.verify()
        with_alts.verify()
        assert without.all_placed and with_alts.all_placed
        assert with_alts.extent <= without.extent
        assert extent_utilization(with_alts) >= extent_utilization(without)

    def test_bench_fig5_final(self, benchmark, fig3_results, report):
        without, with_alts, _ = fig3_results
        fig = run_once(benchmark, comparison_figure, without, with_alts)
        report("Figure 5 — final floorplans", fig)
        left_width = len(fig.splitlines()[1].split("    ")[0])
        assert left_width >= without.region.width
        assert "without alternatives" in fig


class TestFigure4:
    def test_bench_fig4_constraints(self, benchmark, report):
        anatomy = run_once(benchmark, figure4_constraint_anatomy)
        report(
            "Figure 4 — constraint anatomy",
            f"(a) in-bounds:          {anatomy.in_bounds}\n"
            f"(b) + resource match:   {anatomy.resource_matched}\n"
            f"(c) + reconfig region:  {anatomy.in_region}\n"
            f"(d) + non-overlap:      {anatomy.non_overlapping}",
        )
        assert anatomy.monotone()
        assert anatomy.resource_matched < anatomy.in_bounds
        assert anatomy.in_region < anatomy.resource_matched
        assert anatomy.non_overlapping <= anatomy.in_region

"""Table I — impact of design alternatives on utilization and time.

Paper (mean of 50 runs, 30 modules):

    No design alternatives: 53% utilization, 2.55 s
    Design alternatives:    65% utilization, 10.82 s   (CLB/BRAM change 0)

Reproduced here at reduced run count (set REPRO_FULL=1 for paper scale).
Each benchmarked test also asserts the *shape* of the result: alternatives
must raise mean utilization by several points, consume identical
resources, and need more solver effort to reach a first solution.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.config import Table1Config, full_scale
from repro.experiments.table1 import format_table1, run_table1


def _config() -> Table1Config:
    cfg = Table1Config()
    if not full_scale():
        cfg.n_runs = 2
        cfg.time_limit = 8.0
    return cfg


class TestTable1:
    def test_bench_table1(self, benchmark, report):
        """The headline experiment: both conditions, all shape checks."""
        cfg = _config()
        rows = run_once(benchmark, run_table1, cfg)
        report(f"Table I ({cfg.n_runs} runs)", format_table1(rows))

        without, with_alts = rows
        assert without.n_runs == with_alts.n_runs == cfg.n_runs

        # --- utilization: paper 53% -> 65% (+12 points) ---
        gain = with_alts.mean_utilization - without.mean_utilization
        assert gain > 0.04, f"expected a clear utilization gain, got {gain:+.1%}"
        assert 0.35 < without.mean_utilization < 0.75
        assert 0.45 < with_alts.mean_utilization < 0.85

        # --- resources: paper reports CLB/BRAM change of 0 ---
        assert without.mean_clb == pytest.approx(with_alts.mean_clb)
        assert without.mean_bram == pytest.approx(with_alts.mean_bram)

        # --- time: 4x the shapes => at least as much work per solution ---
        assert (
            with_alts.mean_first_solution_time
            >= without.mean_first_solution_time
        )

"""Anchor-mask cache: model-construction speedup on the Table-I workload.

The acceptance bar from the caching issue: with a warmed
:class:`~repro.fabric.cache.AnchorMaskCache`, constructing the per-
iteration LNS subproblem model — a
:class:`~repro.fabric.region.NarrowedRegion` carving the frozen modules
out of the Table-I fabric (30 modules, 120 shapes) — must be at least 2x
faster than the uncached path, because the kernel derives every anchor
mask from the cached base-region masks with bitset shift-ORs instead of
running fresh cross-correlations.  The cache counters must surface in
the solve's :class:`~repro.obs.profile.SolveProfile` so the effect is
observable in production profiles, not just in this benchmark.
"""

from __future__ import annotations

import random
import statistics
import time

import numpy as np

from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.placement_model import PlacementModel
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.region import NarrowedRegion
from repro.placer.greedy import BottomLeftPlacer


def _lns_iteration(region, modules, n_free: int = 8, seed: int = 0):
    """(sub_region, free_modules) exactly as one LNS iteration builds them.

    An incumbent comes from the bottom-left heuristic; a random
    neighborhood is unfrozen and the remaining placements' cells are
    blocked — so the subproblem is guaranteed feasible (the free modules
    fit at their incumbent spots).
    """
    incumbent = BottomLeftPlacer().place(region, modules)
    assert incumbent.all_placed
    rng = random.Random(seed)
    free = set(rng.sample(range(len(modules)), n_free))
    frozen = [p for i, p in enumerate(incumbent.placements) if i not in free]
    blocked = np.array(
        [(y, x) for p in frozen for x, y, _ in p.absolute_cells()],
        dtype=np.int64,
    ).reshape(-1, 2)
    sub = NarrowedRegion(region, blocked, f"{region.name}-lns")
    free_modules = [incumbent.placements[i].module for i in sorted(free)]
    return sub, free_modules


def _median_time(build, repeats: int = 7) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        build()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def test_cached_subproblem_construction_speedup(report, table1_instance):
    region, modules = table1_instance
    sub, free_modules = _lns_iteration(region, modules)

    cache = AnchorMaskCache()
    cache.warm(region, modules)  # what the LNS initial solve amounts to

    uncached = _median_time(lambda: PlacementModel(sub, free_modules))
    cached = _median_time(
        lambda: PlacementModel(sub, free_modules, cache=cache)
    )
    speedup = uncached / cached

    # the portfolio-worker shape of the win: the full 30-module model on
    # the warmed base region (no narrowing, pure hits)
    base_uncached = _median_time(lambda: PlacementModel(region, modules))
    base_cached = _median_time(
        lambda: PlacementModel(region, modules, cache=cache)
    )

    report(
        "Anchor-mask cache: model construction (Table-I, 30 modules)",
        f"LNS subproblem ({len(free_modules)} free modules)\n"
        f"  uncached {uncached * 1e3:8.2f} ms   (fresh cross-correlations)\n"
        f"  cached   {cached * 1e3:8.2f} ms   (incremental narrowing)\n"
        f"  speedup  {speedup:8.2f}x  (acceptance >= 2x)\n"
        f"full base model (30 modules, 120 shapes)\n"
        f"  uncached {base_uncached * 1e3:8.2f} ms\n"
        f"  cached   {base_cached * 1e3:8.2f} ms   "
        f"({base_uncached / base_cached:.2f}x)\n"
        f"cache      {cache.stats()}",
    )
    assert speedup >= 2.0, f"cache speedup only {speedup:.2f}x"
    assert cache.hits > 0 and cache.narrowed > 0


def test_cache_counters_surface_in_solve_profile(report, table1_instance):
    region, modules = table1_instance
    sub, free_modules = _lns_iteration(region, modules, seed=1)
    cache = AnchorMaskCache()
    cache.warm(region, modules)

    placer = CPPlacer(
        PlacerConfig(
            time_limit=2.0, first_solution_only=True, profile=True,
            cache=cache,
        )
    )
    result = placer.place(sub, free_modules)
    profile = result.stats["profile"]
    counts = profile.counts()
    report(
        "Cache counters in SolveProfile",
        f"cache_hits     {counts['cache_hits']:6d}\n"
        f"cache_misses   {counts['cache_misses']:6d}\n"
        f"cache_narrowed {counts['cache_narrowed']:6d}",
    )
    assert counts["cache_hits"] > 0
    assert counts["cache_misses"] == 0  # fully warmed: no recomputation
    assert counts["cache_narrowed"] > 0
    assert profile.to_dict()["cache_hits"] == counts["cache_hits"]

"""Micro-benchmarks of the hot substrates.

Per the HPC guides: no optimization without measuring.  These pin the
performance of the structures the placer's node rate depends on — bitset
domains, vectorized anchor masks, the sweep kernel, and one propagation
step of the placement kernel — so regressions show up as benchmark
deltas rather than mysterious solver slowdowns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cp.domain import Domain
from repro.cp.model import Model
from repro.fabric.devices import irregular_device
from repro.fabric.masks import compatibility_masks, valid_anchor_mask
from repro.fabric.region import PartialRegion
from repro.geost.boxes import Box
from repro.geost.placement import PlacementKernel
from repro.geost.sweep import sweep_min
from repro.modules.generator import ModuleGenerator


class TestDomainOps:
    def test_bench_domain_intersect(self, benchmark):
        a = Domain(range(0, 200, 2))
        b = Domain(range(0, 200, 3))
        result = benchmark(a.intersect, b)
        assert len(result) == len(set(range(0, 200, 2)) & set(range(0, 200, 3)))

    def test_bench_domain_to_bool_array(self, benchmark):
        d = Domain(range(0, 160, 3))
        vec = benchmark(d.to_bool_array, 160)
        assert int(vec.sum()) == len(d)

    def test_bench_domain_from_bool_array(self, benchmark):
        vec = np.zeros(160, dtype=bool)
        vec[::5] = True
        d = benchmark(Domain.from_bool_array, vec)
        assert len(d) == 32


class TestAnchorMasks:
    @pytest.fixture(scope="class")
    def setup(self):
        region = PartialRegion.whole_device(irregular_device(160, 24, seed=42))
        module = ModuleGenerator(seed=1).generate()
        compat = compatibility_masks(region)
        return region, module, compat

    def test_bench_valid_anchor_mask(self, benchmark, setup):
        region, module, compat = setup
        fp = module.primary()
        mask = benchmark(valid_anchor_mask, region, sorted(fp.cells), compat)
        assert mask.shape == (24, 160)

    def test_bench_compatibility_masks(self, benchmark, setup):
        region, _, _ = setup
        compat = benchmark(compatibility_masks, region)
        assert len(compat) >= 3


class TestSweep:
    def test_bench_sweep_min(self, benchmark):
        bounds = [(0, 100), (0, 100)]
        boxes = [
            Box((x, y), (7, 7))
            for x in range(0, 90, 12)
            for y in range(0, 90, 12)
        ]
        point = benchmark(sweep_min, bounds, [boxes], 0)
        assert point is not None


class TestKernelPropagation:
    @pytest.fixture(scope="class")
    def model(self):
        region = PartialRegion.whole_device(irregular_device(160, 24, seed=42))
        modules = ModuleGenerator(seed=1).generate_set(30)
        m = Model()
        xs = [m.int_var(0, region.width - 1, f"x{i}") for i in range(30)]
        ys = [m.int_var(0, region.height - 1, f"y{i}") for i in range(30)]
        ss = [
            m.int_var(0, mod.n_alternatives - 1, f"s{i}")
            for i, mod in enumerate(modules)
        ]
        kernel = PlacementKernel(region, modules, xs, ys, ss)
        m.post(kernel)
        return m, kernel, xs, ys, ss

    def test_bench_kernel_build(self, benchmark):
        region = PartialRegion.whole_device(irregular_device(160, 24, seed=42))
        modules = ModuleGenerator(seed=1).generate_set(30)

        def build():
            m = Model()
            xs = [m.int_var(0, region.width - 1, f"x{i}") for i in range(30)]
            ys = [m.int_var(0, region.height - 1, f"y{i}") for i in range(30)]
            ss = [
                m.int_var(0, mod.n_alternatives - 1, f"s{i}")
                for i, mod in enumerate(modules)
            ]
            kernel = PlacementKernel(region, modules, xs, ys, ss)
            m.post(kernel)
            return kernel

        kernel = benchmark(build)
        assert not kernel.occupancy.any()

    def test_bench_imprint_and_undo(self, benchmark, model):
        """One module placement commit + trail undo — the per-node cost."""
        m, kernel, xs, ys, ss = model

        def place_and_undo():
            m.engine.push_level()
            anchors = kernel.anchors_for(0)
            sid, x, y = anchors[0]
            ss[0].fix(sid)
            xs[0].fix(x)
            ys[0].fix(y)
            m.engine.fixpoint()
            m.engine.pop_level()

        benchmark(place_and_undo)
        assert not kernel.items[0].placed

    def test_bench_anchor_count(self, benchmark, model):
        _, kernel, *_ = model
        count = benchmark(kernel.anchor_count, 0)
        assert count > 0

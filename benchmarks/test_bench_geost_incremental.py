"""Geost propagation speedups on Table I: incremental and bitboard gates.

Two generations of acceptance bars, both measured as search-shaped
re-propagation cycles (push a trail level, fix one anchor, run the engine
to fixpoint, pop) on the Table-I workload:

* **incremental** (PR 5): the production kernel with dirty-object
  maintenance must beat wholesale re-filtering;
* **bitboard** (this PR): the reference kernel's vectorized
  whole-lattice sweep must beat PR 5's scalar per-point sweep, and a
  cProfile of the vectorized run must show pure-Python sweep inner loops
  (``sweep.py``) well below half the propagation time.

The ratio gates are **not** hardcoded: they are read from the committed
``BENCH_geost.json`` (so tightening a gate is a reviewed one-line diff),
and every run emits the freshly measured ratios to
``bench_geost_latest.json`` — append that entry to the JSON's ``history``
when landing a perf-relevant change to keep the trajectory on record.

The ``geost_*`` counters must surface in the solve's
:class:`~repro.obs.profile.SolveProfile` so the effect is observable in
production profiles, not just here.
"""

from __future__ import annotations

import cProfile
import json
import pathlib
import pstats
import statistics
import time

import pytest

from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.placement_model import PlacementModel
from repro.cp.engine import Inconsistent
from repro.cp.model import Model
from repro.geost.kernel import Geost
from repro.geost.objects import GeostObject
from repro.geost.shapes import ShapeTable

GATES_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_geost.json"
LATEST_PATH = "bench_geost_latest.json"


@pytest.fixture(scope="module")
def gates():
    return json.loads(GATES_PATH.read_text())["gates"]


@pytest.fixture(scope="module")
def latest():
    """Collects measured ratios; written as the trajectory artifact."""
    measured: dict = {"label": "local-run"}
    yield measured
    artifact = {
        "gates_from": GATES_PATH.name,
        "entry": measured,
    }
    pathlib.Path(LATEST_PATH).write_text(json.dumps(artifact, indent=2) + "\n")


def _repropagation_cycle(pm: PlacementModel, n_fixes: int = 24) -> None:
    """Fix one anchor per cycle under a trail level, fixpoint, roll back."""
    engine = pm.model.engine
    for i in range(n_fixes):
        x = pm.xs[i % len(pm.xs)]
        engine.push_level()
        try:
            x.fix(x.min())
            engine.fixpoint()
        except Inconsistent:
            pass
        engine.pop_level()


def _median_time(fn, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def test_incremental_repropagation_speedup(report, table1_instance, gates, latest):
    region, modules = table1_instance

    pm_inc = PlacementModel(region, modules, incremental=True)
    pm_whole = PlacementModel(region, modules, incremental=False)

    t_inc = _median_time(lambda: _repropagation_cycle(pm_inc))
    t_whole = _median_time(lambda: _repropagation_cycle(pm_whole))
    speedup = t_whole / t_inc
    gate = gates["incremental_speedup_min"]
    latest["incremental_speedup"] = round(speedup, 2)

    inc = pm_inc.kernel.inc_stats
    report(
        "Incremental geost propagation (Table-I, 30 modules)",
        f"re-propagation cycle (24 fix/fixpoint/rollback rounds)\n"
        f"  wholesale   {t_whole * 1e3:8.2f} ms   (re-filter all modules)\n"
        f"  incremental {t_inc * 1e3:8.2f} ms   (dirty modules only)\n"
        f"  speedup     {speedup:8.2f}x  (gate >= {gate}x)\n"
        f"incremental counters  dirty={inc.dirty} reused={inc.reused} "
        f"rasterized={inc.rasterized}",
    )
    assert speedup >= gate, f"incremental speedup only {speedup:.2f}x"
    assert inc.dirty > 0


# ----------------------------------------------------------------------
# Bitboard sweep on the reference kernel
# ----------------------------------------------------------------------
def _reference_model(region, modules, bitboard: bool):
    from tests.support import fabric_to_forbidden_regions

    kinds = {
        k for mod in modules for fp in mod.shapes for _, _, k in fp.cells
    }
    regions = fabric_to_forbidden_regions(region, kinds)
    m = Model()
    table = ShapeTable()
    objects = []
    for i, mod in enumerate(modules):
        sids = [table.add_footprint(fp) for fp in mod.shapes]
        x = m.int_var(0, region.width - 1, f"x{i}")
        y = m.int_var(0, region.height - 1, f"y{i}")
        s = m.int_var(min(sids), max(sids), f"s{i}")
        objects.append(GeostObject(i, [x, y], s, table))
    geost = Geost(objects, regions, incremental=True, bitboard=bitboard)
    m.post(geost)
    return m, geost, objects


def _reference_cycle(m: Model, objects, n_fixes: int = 6) -> None:
    engine = m.engine
    for i in range(n_fixes):
        x = objects[i % len(objects)].origin[0]
        engine.push_level()
        try:
            x.fix(x.min())
            engine.fixpoint()
        except Inconsistent:
            pass
        engine.pop_level()


def test_bitboard_sweep_speedup(report, table1_instance, gates, latest):
    """The vectorized sweep vs PR 5's scalar sweep, same reference kernel."""
    region, modules = table1_instance

    m_bb, g_bb, objs_bb = _reference_model(region, modules, bitboard=True)
    m_sc, g_sc, objs_sc = _reference_model(region, modules, bitboard=False)

    t_bb = _median_time(lambda: _reference_cycle(m_bb, objs_bb), repeats=3)
    t_sc = _median_time(lambda: _reference_cycle(m_sc, objs_sc), repeats=3)
    speedup = t_sc / t_bb
    gate = gates["bitboard_speedup_min"]
    latest["bitboard_speedup"] = round(speedup, 2)

    report(
        "Bitboard-first vectorized sweep (Table-I, reference kernel)",
        f"re-propagation cycle (6 fix/fixpoint/rollback rounds)\n"
        f"  scalar sweep    {t_sc * 1e3:8.2f} ms   "
        f"({g_sc.sweep_stats.iterations} point inspections)\n"
        f"  bitboard sweep  {t_bb * 1e3:8.2f} ms   "
        f"({g_bb.sweep_stats.rows} frontier scans)\n"
        f"  speedup         {speedup:8.2f}x  (gate >= {gate}x)",
    )
    assert g_bb.inc_stats.fallbacks == 0, "board missing on Table-I window"
    assert g_bb.sweep_stats.rows > 0
    assert speedup >= gate, f"bitboard speedup only {speedup:.2f}x"


def test_bitboard_sweep_python_fraction(report, table1_instance, gates, latest):
    """cProfile the vectorized cycle: pure-Python per-point sweep loops
    (everything in ``geost/sweep.py``) must be a small fraction of the
    propagation time — the whole point of batching through NumPy."""
    region, modules = table1_instance
    m, geost, objects = _reference_model(region, modules, bitboard=True)

    prof = cProfile.Profile()
    prof.enable()
    _reference_cycle(m, objects)
    prof.disable()

    stats = pstats.Stats(prof)
    total = sum(row[2] for row in stats.stats.values())  # tottime
    sweep_time = sum(
        row[2]
        for key, row in stats.stats.items()
        if key[0].endswith("geost/sweep.py")
    )
    fraction = sweep_time / total if total else 0.0
    gate = gates["python_sweep_fraction_max"]
    latest["python_sweep_fraction"] = round(fraction, 4)

    report(
        "Pure-Python sweep share of bitboard propagation (cProfile)",
        f"sweep.py tottime {sweep_time * 1e3:8.2f} ms of {total * 1e3:8.2f} ms"
        f" total  ->  {fraction * 100:5.1f}%  (gate < {gate * 100:.0f}%)",
    )
    assert fraction < gate, (
        f"sweep.py inner loops at {fraction:.1%} of propagation time — "
        "the vectorized path is leaking work back into per-point Python"
    )


def test_geost_counters_surface_in_solve_profile(report, table1_instance):
    region, modules = table1_instance
    result = CPPlacer(
        PlacerConfig(time_limit=2.0, first_solution_only=True, profile=True)
    ).place(region, modules)
    profile = result.stats["profile"]
    counts = profile.counts()
    report(
        "Incremental-geost counters in SolveProfile",
        f"geost_dirty           {counts['geost_dirty']:6d}\n"
        f"geost_reused          {counts['geost_reused']:6d}\n"
        f"geost_rasterized      {counts['geost_rasterized']:6d}\n"
        f"bitboard_rows_tested  {counts['bitboard_rows_tested']:6d}\n"
        f"bitboard_fallbacks    {counts['bitboard_fallbacks']:6d}",
    )
    assert counts["geost_dirty"] > 0
    assert counts["geost_rasterized"] > 0
    assert counts["bitboard_rows_tested"] > 0


# ----------------------------------------------------------------------
# Warm-started branch-and-bound (the analytical seeder)
# ----------------------------------------------------------------------
def test_warmstart_first_incumbent_is_free(report, table1_instance, gates, latest):
    region, modules = table1_instance

    cold = CPPlacer(PlacerConfig(time_limit=4.0)).place(region, modules)
    warm = CPPlacer(
        PlacerConfig(time_limit=4.0, warm_start="analytical")
    ).place(region, modules)
    warm.verify()

    cold_nodes = cold.stats["first_incumbent_nodes"]
    warm_nodes = warm.stats["first_incumbent_nodes"]
    gate = gates["warmstart_first_incumbent_nodes_max"]
    latest["warmstart_first_incumbent_nodes"] = warm_nodes
    latest["cold_first_incumbent_nodes"] = cold_nodes

    seed = warm.stats["warm_start"]
    report(
        "Warm-started CP first incumbent (Table-I, 30 modules)",
        f"  cold search   first incumbent after {cold_nodes} nodes\n"
        f"  warm-started  first incumbent after {warm_nodes} nodes "
        f"(gate <= {gate})\n"
        f"  seed: {seed['backend']} objective {seed['objective']} "
        f"in {seed['elapsed']:.2f}s",
    )
    assert warm_nodes <= gate, (
        f"warm-started CP spent {warm_nodes} nodes reaching its first "
        "incumbent — the seed is not being injected"
    )
    assert cold_nodes is not None and warm_nodes < cold_nodes

"""Incremental geost propagation: re-propagation speedup on Table I.

The acceptance bar from the incremental-propagation issue: on the
Table-I workload (30 modules, 120 shapes) a search-shaped re-propagation
cycle — push a trail level, fix one anchor variable, run the engine to
fixpoint, pop — must be at least 2x faster with incremental propagation
(dirty-object maintenance + anchor-count caching) than with wholesale
re-filtering, because the wholesale kernel re-filters all 30 modules on
every wake-up while the incremental one touches only the modules whose
domains actually changed.

The ``geost_*`` counters must surface in the solve's
:class:`~repro.obs.profile.SolveProfile` so the effect is observable in
production profiles, not just here.
"""

from __future__ import annotations

import statistics
import time

from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.placement_model import PlacementModel
from repro.cp.engine import Inconsistent


def _repropagation_cycle(pm: PlacementModel, n_fixes: int = 24) -> None:
    """Fix one anchor per cycle under a trail level, fixpoint, roll back."""
    engine = pm.model.engine
    for i in range(n_fixes):
        x = pm.xs[i % len(pm.xs)]
        engine.push_level()
        try:
            x.fix(x.min())
            engine.fixpoint()
        except Inconsistent:
            pass
        engine.pop_level()


def _median_time(fn, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def test_incremental_repropagation_speedup(report, table1_instance):
    region, modules = table1_instance

    pm_inc = PlacementModel(region, modules, incremental=True)
    pm_whole = PlacementModel(region, modules, incremental=False)

    t_inc = _median_time(lambda: _repropagation_cycle(pm_inc))
    t_whole = _median_time(lambda: _repropagation_cycle(pm_whole))
    speedup = t_whole / t_inc

    inc = pm_inc.kernel.inc_stats
    report(
        "Incremental geost propagation (Table-I, 30 modules)",
        f"re-propagation cycle (24 fix/fixpoint/rollback rounds)\n"
        f"  wholesale   {t_whole * 1e3:8.2f} ms   (re-filter all modules)\n"
        f"  incremental {t_inc * 1e3:8.2f} ms   (dirty modules only)\n"
        f"  speedup     {speedup:8.2f}x  (acceptance >= 2x)\n"
        f"incremental counters  dirty={inc.dirty} reused={inc.reused} "
        f"rasterized={inc.rasterized}",
    )
    assert speedup >= 2.0, f"incremental speedup only {speedup:.2f}x"
    assert inc.dirty > 0


def test_geost_counters_surface_in_solve_profile(report, table1_instance):
    region, modules = table1_instance
    result = CPPlacer(
        PlacerConfig(time_limit=2.0, first_solution_only=True, profile=True)
    ).place(region, modules)
    profile = result.stats["profile"]
    counts = profile.counts()
    report(
        "Incremental-geost counters in SolveProfile",
        f"geost_dirty      {counts['geost_dirty']:6d}\n"
        f"geost_reused     {counts['geost_reused']:6d}\n"
        f"geost_rasterized {counts['geost_rasterized']:6d}",
    )
    assert counts["geost_dirty"] > 0
    assert counts["geost_rasterized"] > 0

# Developer entry points.  Everything runs from the repo root with the
# src/ layout on PYTHONPATH; no install step required.

PY := PYTHONPATH=src python

.PHONY: test test-fast test-oracle bench bench-fast bench-geost bench-runtime profile-smoke runtime-smoke backends-smoke defrag-smoke temporal-smoke analytical-smoke

## full tier-1 suite (what CI runs)
test:
	$(PY) -m pytest -q

## quick loop: skip the slow-marked sweeps
test-fast:
	$(PY) -m pytest -q -m "not slow"

## the full differential oracle surface, slow legs included: the
## cross-kernel oracle-ladder suite plus every cross-validation /
## property file that pins one implementation against another
test-oracle:
	$(PY) -m pytest -q \
	  tests/geost/test_differential_oracle.py \
	  tests/geost/test_incremental_differential.py \
	  tests/geost/test_cross_validation.py \
	  tests/geost/test_bitboard_planes.py \
	  tests/geost/test_sweep_monotonic.py

## pytest-benchmark suite (not part of tier-1)
bench:
	$(PY) -m pytest benchmarks -q

## quick benchmark loop: only the non-slow benches
bench-fast:
	$(PY) -m pytest benchmarks -q -m "not slow"

## incremental geost propagation: pins the >= 2x re-propagation speedup
## over wholesale re-filtering on the Table-I workload
bench-geost:
	$(PY) -m pytest benchmarks/test_bench_geost_incremental.py -q -s

## sharded-service trace replay on the seeded Table-I workload: reads
## its req/s and p99-latency gates from the committed BENCH_runtime.json
## and writes the measured values to bench_runtime_latest.json
bench-runtime:
	$(PY) -m pytest benchmarks/test_bench_service.py -q -s

## one instrumented solve; exports a profile JSON and validates it
## against the published schema — fails non-zero on any mismatch
profile-smoke:
	$(PY) scripts/profile_smoke.py

## a ~2-second seeded online serving run through the runtime placement
## manager; validates outcomes, trace events and the profile
runtime-smoke:
	$(PY) scripts/runtime_smoke.py

## every registered placement backend on one seeded instance; validates
## placements, trace events and the honesty of the result flags
backends-smoke:
	$(PY) scripts/backends_smoke.py

## both registered defrag strategies on the 60-event demo trace with
## full move-transition verification; validates plans, step events,
## move accounting and the profile counters
defrag-smoke:
	$(PY) scripts/defrag_smoke.py

## the temporal surface end to end: reference-vs-production scheduler
## agreement, the temporal-cp registry path, and a reservation-mode
## serving replay with full event/profile validation
temporal-smoke:
	$(PY) scripts/temporal_smoke.py

## the analytical backend end to end: relaxation convergence +
## verification, warm-started CP reaching its first incumbent for free,
## and the A3 bar (>= annealing utilization at a quarter of its budget)
analytical-smoke:
	$(PY) scripts/analytical_smoke.py

"""NumPy-backed fabric grid.

The dense representation of a device: an ``(height, width)`` ``int8`` array
of :class:`~repro.fabric.resource.ResourceType` codes.  This is the hot
data structure — valid-anchor computation, occupancy bookkeeping and
utilization metrics are all vectorized array operations over it, per the
HPC guides (vectorize the inner loops, operate on views).

Coordinate convention: ``grid[y, x]``; ``x`` grows rightward, ``y`` grows
upward.  All public APIs take ``(x, y)`` pairs and convert internally.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from repro.fabric.resource import RESOURCE_CHARS, ResourceType, parse_resource
from repro.fabric.tile import Tile, TileSet


class FabricGrid:
    """A rectangular grid of typed tiles."""

    def __init__(self, cells: np.ndarray) -> None:
        cells = np.asarray(cells, dtype=np.int8)
        if cells.ndim != 2:
            raise ValueError("fabric grid must be 2-D")
        if cells.size == 0:
            raise ValueError("fabric grid must be non-empty")
        codes = set(np.unique(cells).tolist())
        valid = {int(r) for r in ResourceType}
        if not codes <= valid:
            raise ValueError(f"unknown resource codes: {codes - valid}")
        self.cells = cells

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def filled(width: int, height: int, kind: ResourceType = ResourceType.CLB) -> "FabricGrid":
        if width <= 0 or height <= 0:
            raise ValueError("fabric dimensions must be positive")
        return FabricGrid(np.full((height, width), int(kind), dtype=np.int8))

    @staticmethod
    def from_rows(rows: Iterable[str]) -> "FabricGrid":
        """Parse an ASCII art fabric (one display char per tile).

        ``rows[0]`` is the *top* row, matching how the renderer prints.
        """
        rows = list(rows)
        if not rows:
            raise ValueError("no rows")
        width = len(rows[0])
        if any(len(r) != width for r in rows):
            raise ValueError("ragged rows")
        hmap = {ch: int(kind) for kind, ch in RESOURCE_CHARS.items()}
        try:
            data = [[hmap[ch] for ch in row] for row in reversed(rows)]
        except KeyError as e:
            raise ValueError(f"unknown tile char: {e}") from None
        return FabricGrid(np.array(data, dtype=np.int8))

    @staticmethod
    def from_tilesets(tilesets: Iterable[TileSet]) -> "FabricGrid":
        """Build the dense grid from the paper's formal representation.

        Coordinates must be non-negative; uncovered cells become
        :attr:`ResourceType.UNAVAILABLE`.
        """
        tilesets = list(tilesets)
        if not tilesets:
            raise ValueError("a partial region is a non-empty set of tilesets")
        max_x = max(t.x for ts in tilesets for t in ts)
        max_y = max(t.y for ts in tilesets for t in ts)
        min_x = min(t.x for ts in tilesets for t in ts)
        min_y = min(t.y for ts in tilesets for t in ts)
        if min_x < 0 or min_y < 0:
            raise ValueError("partial-region tiles use absolute coordinates >= 0")
        cells = np.full(
            (max_y + 1, max_x + 1), int(ResourceType.UNAVAILABLE), dtype=np.int8
        )
        seen: set[Tuple[int, int]] = set()
        for ts in tilesets:
            for t in ts:
                if (t.x, t.y) in seen:
                    raise ValueError(f"tile ({t.x},{t.y}) covered twice")
                seen.add((t.x, t.y))
                cells[t.y, t.x] = int(t.kind)
        return FabricGrid(cells)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.cells.shape[1]

    @property
    def height(self) -> int:
        return self.cells.shape[0]

    @property
    def area(self) -> int:
        return int(self.cells.size)

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def kind_at(self, x: int, y: int) -> ResourceType:
        if not self.in_bounds(x, y):
            raise IndexError(f"({x},{y}) outside {self.width}x{self.height} fabric")
        return ResourceType(int(self.cells[y, x]))

    # ------------------------------------------------------------------
    # Resource queries (vectorized)
    # ------------------------------------------------------------------
    def resource_mask(self, kind: "ResourceType | str | int") -> np.ndarray:
        """Boolean (H, W) array of cells holding ``kind``."""
        return self.cells == int(parse_resource(kind))

    def placeable_mask(self) -> np.ndarray:
        return self.cells != int(ResourceType.UNAVAILABLE)

    def resource_counts(self) -> Dict[ResourceType, int]:
        kinds, counts = np.unique(self.cells, return_counts=True)
        return {ResourceType(int(k)): int(c) for k, c in zip(kinds, counts)}

    def count(self, kind: ResourceType) -> int:
        return int(np.count_nonzero(self.cells == int(kind)))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def tiles(self) -> Iterator[Tile]:
        ys, xs = np.nonzero(self.placeable_mask())
        for y, x in zip(ys.tolist(), xs.tolist()):
            yield Tile(int(x), int(y), ResourceType(int(self.cells[y, x])))

    def tilesets(self) -> List[TileSet]:
        """Group placeable tiles by resource type (one ``T_k`` per type)."""
        by_kind: Dict[ResourceType, List[Tile]] = {}
        for t in self.tiles():
            by_kind.setdefault(t.kind, []).append(t)
        return [TileSet(ts) for ts in by_kind.values()]

    def copy(self) -> "FabricGrid":
        return FabricGrid(self.cells.copy())

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII art, top row first (origin bottom-left)."""
        chars = {int(k): c for k, c in RESOURCE_CHARS.items()}
        lines = [
            "".join(chars[int(v)] for v in row) for row in self.cells[::-1]
        ]
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FabricGrid):
            return NotImplemented
        return self.cells.shape == other.cells.shape and bool(
            np.all(self.cells == other.cells)
        )

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{k.name}:{c}" for k, c in sorted(self.resource_counts().items())
        )
        return f"FabricGrid({self.width}x{self.height}, {counts})"

"""Fabric characterization.

Quantifies how hostile a device is to module placement — the properties
Section I blames for placement restrictions: amount and location of
dedicated resources, irregularity of their columns, and interruption by
clock tiles.  Used by the heterogeneity ablation (A2) to describe its
sweep axis and by examples/docs to print device summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.fabric.grid import FabricGrid
from repro.fabric.resource import ResourceType


@dataclass
class ColumnProfile:
    """Per-column classification of a fabric."""

    #: dominant resource type per column
    kinds: List[ResourceType]
    #: True where the column is pure (a single resource type throughout)
    uniform: List[bool]

    def columns_of(self, kind: ResourceType) -> List[int]:
        return [x for x, k in enumerate(self.kinds) if k is kind]


def column_profile(grid: FabricGrid) -> ColumnProfile:
    """Classify each column by its dominant resource."""
    kinds: List[ResourceType] = []
    uniform: List[bool] = []
    for x in range(grid.width):
        col = grid.cells[:, x]
        values, counts = np.unique(col, return_counts=True)
        kinds.append(ResourceType(int(values[np.argmax(counts)])))
        uniform.append(len(values) == 1)
    return ColumnProfile(kinds, uniform)


def clb_run_lengths(grid: FabricGrid) -> List[int]:
    """Widths of maximal runs of pure-CLB columns.

    These runs bound the module body widths a fabric can host; their
    distribution is the fragmentation potential of the device.
    """
    profile = column_profile(grid)
    runs: List[int] = []
    current = 0
    for kind, uni in zip(profile.kinds, profile.uniform):
        if kind is ResourceType.CLB and uni:
            current += 1
        else:
            if current:
                runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs


def heterogeneity_index(grid: FabricGrid) -> float:
    """Fraction of cells that are not plain CLB (0 = homogeneous)."""
    return 1.0 - grid.count(ResourceType.CLB) / grid.area


def interruption_count(grid: FabricGrid) -> int:
    """Columns whose resource type is interrupted (e.g. by clock tiles).

    The paper singles these out: "some resource columns differ from their
    resource type (e.g. they contain clock resources)".
    """
    profile = column_profile(grid)
    return sum(
        1
        for kind, uni in zip(profile.kinds, profile.uniform)
        if not uni and kind is not ResourceType.CLB
    )


def resource_summary(grid: FabricGrid) -> Dict[str, float]:
    """One-line quantitative fingerprint of a device."""
    runs = clb_run_lengths(grid)
    return {
        "width": grid.width,
        "height": grid.height,
        "heterogeneity": round(heterogeneity_index(grid), 4),
        "interrupted_columns": interruption_count(grid),
        "clb_runs": len(runs),
        "mean_run_width": round(sum(runs) / len(runs), 2) if runs else 0.0,
        "max_run_width": max(runs, default=0),
        "min_run_width": min(runs, default=0),
    }


def format_summary(grid: FabricGrid, name: str = "device") -> str:
    """Human-readable multi-line device summary."""
    s = resource_summary(grid)
    counts = ", ".join(
        f"{k.name}:{n}" for k, n in sorted(grid.resource_counts().items())
    )
    return (
        f"{name}: {s['width']}x{s['height']}  [{counts}]\n"
        f"  heterogeneity index:   {s['heterogeneity']:.1%}\n"
        f"  interrupted columns:   {s['interrupted_columns']}\n"
        f"  CLB runs:              {s['clb_runs']} "
        f"(width {s['min_run_width']}..{s['max_run_width']}, "
        f"mean {s['mean_run_width']})"
    )

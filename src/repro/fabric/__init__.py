"""Heterogeneous FPGA fabric model.

The paper models a device as a set of typed tiles (Section III-B): CLBs,
embedded memory (BRAM), multipliers/DSP, IO and clock resources, plus a
static region that is unavailable to reconfigurable modules.  This package
provides

* the resource-type vocabulary (:mod:`repro.fabric.resource`),
* the formal tile/tileset objects matching the paper's notation
  (:mod:`repro.fabric.tile`),
* a NumPy-backed grid as the fast representation
  (:mod:`repro.fabric.grid`),
* generators for realistic device layouts — regular Virtex-style columns
  and modern irregular layouts (:mod:`repro.fabric.devices`),
* partial-region / static-region modelling (:mod:`repro.fabric.region`),
* vectorized valid-anchor computation (:mod:`repro.fabric.masks`),
* memoized anchor masks keyed by content fingerprints
  (:mod:`repro.fabric.cache`), and
* JSON serialization (:mod:`repro.fabric.io`).
"""

from repro.fabric.resource import ResourceType, RESOURCE_CHARS
from repro.fabric.tile import Tile, TileSet
from repro.fabric.grid import FabricGrid
from repro.fabric.region import NarrowedRegion, PartialRegion
from repro.fabric.devices import (
    homogeneous_device,
    columnar_device,
    irregular_device,
    device_catalog,
    make_device,
)
from repro.fabric.masks import valid_anchor_mask, compatibility_masks
from repro.fabric.cache import (
    AnchorMaskCache,
    footprint_signature,
    region_fingerprint,
)
from repro.fabric.analysis import (
    clb_run_lengths,
    column_profile,
    heterogeneity_index,
    resource_summary,
)

__all__ = [
    "ResourceType",
    "RESOURCE_CHARS",
    "Tile",
    "TileSet",
    "FabricGrid",
    "PartialRegion",
    "NarrowedRegion",
    "homogeneous_device",
    "columnar_device",
    "irregular_device",
    "device_catalog",
    "make_device",
    "valid_anchor_mask",
    "compatibility_masks",
    "AnchorMaskCache",
    "footprint_signature",
    "region_fingerprint",
    "column_profile",
    "clb_run_lengths",
    "heterogeneity_index",
    "resource_summary",
]

"""Vectorized valid-anchor computation and cross-correlation machinery.

This realizes constraints M_a and M_b of the paper (Eqs. 2-3) as array
algebra: an anchor position ``(x, y)`` is valid for a footprint iff every
footprint cell ``(dx, dy, k)`` lands on an available tile of resource type
``k``.  The computation ANDs shifted per-resource compatibility masks — a
boolean cross-correlation evaluated with NumPy views (no copies of the
fabric are made; each cell contributes one slice-AND).

Footprint cells must be normalized so ``min dx == min dy == 0``; anchors
are then the footprint's lower-left bounding-box corner.

The module also hosts the shared sliding-window correlation kernels the
geost bitboard sweep batches through:

* :func:`integral_occupancy` — a k-dimensional summed-area table of a
  boolean occupancy plane, and
* :func:`sliding_box_counts` — occupied-cell counts under a fixed-size
  box anchored at every point of an anchor lattice, evaluated as ``2k``
  clipped slice-subtractions of the table (a box cross-correlation in
  O(lattice) per box, independent of box size), plus
* :func:`count_anchors_batch` — the per-shape fail-first anchor counting
  of :func:`count_anchors` over a whole stack of validity masks at once.

An FFT evaluation of the same correlations was considered and rejected:
at the paper's fabric sizes (≤ a few thousand cells) the integral-image
form is already memory-bound and beats ``rfftn`` round-trips by an order
of magnitude, so no size-thresholded FFT path is wired in.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple, Union

import numpy as np

from repro.fabric.grid import FabricGrid
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType

#: (dx, dy, kind) relative cell of a footprint
Cell = Tuple[int, int, ResourceType]


def compatibility_masks(region: PartialRegion) -> Dict[ResourceType, np.ndarray]:
    """Per-resource boolean maps of cells a module tile of that type may use."""
    allowed = region.allowed_mask()
    out: Dict[ResourceType, np.ndarray] = {}
    for kind in ResourceType:
        if kind is ResourceType.UNAVAILABLE:
            continue
        out[kind] = region.grid.resource_mask(kind) & allowed
    return out


def valid_anchor_mask(
    region: Union[PartialRegion, FabricGrid],
    cells: Sequence[Cell],
    compat: Dict[ResourceType, np.ndarray] | None = None,
) -> np.ndarray:
    """Boolean (H, W) array: True where the footprint may be anchored.

    Parameters
    ----------
    region:
        The partial region (or a bare grid, treated as fully reconfigurable).
    cells:
        Normalized footprint cells ``(dx, dy, kind)`` with ``dx, dy >= 0``
        and ``min dx == min dy == 0``.
    compat:
        Optional precomputed :func:`compatibility_masks` (reused across the
        many footprints of a module library).
    """
    if isinstance(region, FabricGrid):
        region = PartialRegion.whole_device(region)
    if not cells:
        raise ValueError("footprint has no cells")
    if min(c[0] for c in cells) != 0 or min(c[1] for c in cells) != 0:
        raise ValueError("footprint cells must be normalized to origin 0,0")
    if compat is None:
        compat = compatibility_masks(region)

    H, W = region.height, region.width
    valid = np.ones((H, W), dtype=bool)
    for dx, dy, kind in cells:
        if kind is ResourceType.UNAVAILABLE:
            raise ValueError("footprint cells cannot require UNAVAILABLE")
        source = compat[kind]
        shifted = np.zeros((H, W), dtype=bool)
        if dy < H and dx < W:
            shifted[: H - dy, : W - dx] = source[dy:, dx:]
        valid &= shifted
        if not valid.any():
            break
    return valid


def count_anchors(valid: np.ndarray, col: np.ndarray, row: np.ndarray) -> int:
    """Anchors of a (H, W) validity mask surviving the axis-domain masks.

    Equivalent to ``(valid & row[:, None] & col[None, :]).sum()`` but
    selects the surviving rows/columns first, so the intermediate scales
    with the *domain* sizes rather than the fabric — the shape branching
    heuristics call this for every module at every search node.
    """
    if not row.any() or not col.any():
        return 0
    return int(np.count_nonzero(valid[row][:, col]))


def count_anchors_batch(
    valid_stack: np.ndarray, col: np.ndarray, row: np.ndarray
) -> np.ndarray:
    """Per-shape anchor counts of a stacked ``(S, H, W)`` validity array.

    Row ``s`` of the result equals ``count_anchors(valid_stack[s], col,
    row)``; the whole stack is reduced in one fancy-indexed pass, so the
    fail-first heuristic pays one NumPy dispatch per *module* instead of
    one per candidate shape.
    """
    n = len(valid_stack)
    if n == 0 or not row.any() or not col.any():
        return np.zeros(n, dtype=np.int64)
    sub = valid_stack[:, row][:, :, col]
    return sub.reshape(n, -1).sum(axis=1, dtype=np.int64)


def integral_occupancy(occ: np.ndarray) -> np.ndarray:
    """k-D summed-area table of a boolean occupancy array, zero-bordered.

    ``table[i1, ..., ik]`` is the number of occupied cells in
    ``occ[:i1, ..., :ik]``; the table has one extra (leading zero) entry
    per axis so every half-open box sum is a pure inclusion-exclusion of
    table entries with no boundary special cases.
    """
    table = occ.astype(np.int64)
    for axis in range(occ.ndim):
        table = table.cumsum(axis=axis)
    return np.pad(table, [(1, 0)] * occ.ndim)


def sliding_box_counts(
    table: np.ndarray,
    starts: Sequence[int],
    lengths: Sequence[int],
    counts: Sequence[int],
) -> np.ndarray:
    """Occupied-cell counts under a sliding box, for a whole anchor lattice.

    For every lattice offset ``a`` in ``prod(range(c) for c in counts)``
    the result holds the number of occupied cells inside the half-open box
    ``[starts + a, starts + a + lengths)`` of the occupancy grid that
    ``table`` (an :func:`integral_occupancy`) was built from.  Box
    portions outside the grid count as empty: indices are clipped, which
    is exact because the table is axis-wise monotone — clipping evaluates
    the intersection of the box with the grid.

    This is the batched replacement for per-point raster probes: one call
    tests every candidate anchor of a shifted box against the occupancy
    planes via ``2k`` slice-subtractions, instead of one Python-level
    probe per sweep point.
    """
    out = table
    for axis in range(table.ndim):
        n = int(counts[axis])
        s0 = int(starts[axis])
        ln = int(lengths[axis])
        limit = out.shape[axis] - 1  # grid extent along this axis
        hi = np.clip(np.arange(s0 + ln, s0 + ln + n), 0, limit)
        lo = np.clip(np.arange(s0, s0 + n), 0, limit)
        out = out.take(hi, axis=axis) - out.take(lo, axis=axis)
    return out


def nearest_anchor(
    valid: np.ndarray, x: float, y: float
) -> Tuple[int, int] | None:
    """Closest valid anchor to a (possibly fractional) target position.

    Returns the ``(ax, ay)`` with ``valid[ay, ax]`` minimizing the squared
    Euclidean distance to ``(x, y)``, or None when the mask has no anchors.
    Ties break bottom-left (smallest x, then smallest y) so the answer is
    deterministic — the analytical legalizer snaps every relaxed centroid
    through this query and must not depend on ``nonzero`` ordering.
    """
    ys, xs = np.nonzero(valid)
    if ys.size == 0:
        return None
    d2 = (xs - x) ** 2 + (ys - y) ** 2
    k = np.lexsort((ys, xs, d2))[0]
    return int(xs[k]), int(ys[k])


def anchors_list(valid: np.ndarray) -> list[Tuple[int, int]]:
    """The (x, y) anchor coordinates of a validity mask, bottom-left order.

    Sorted by x then y — the value ordering used by the min-extent
    objective's branching (place as far left as possible first).
    """
    ys, xs = np.nonzero(valid)
    order = np.lexsort((ys, xs))
    return [(int(xs[i]), int(ys[i])) for i in order]


def brute_force_anchor_mask(
    region: PartialRegion, cells: Sequence[Cell]
) -> np.ndarray:
    """Reference implementation: per-anchor loop.

    Exists solely so property-based tests can cross-check the vectorized
    fast path; do not use in production code paths.
    """
    H, W = region.height, region.width
    allowed = region.allowed_mask()
    grid = region.grid.cells
    valid = np.zeros((H, W), dtype=bool)
    for y in range(H):
        for x in range(W):
            ok = True
            for dx, dy, kind in cells:
                xx, yy = x + dx, y + dy
                if xx >= W or yy >= H or not allowed[yy, xx] or \
                        grid[yy, xx] != int(kind):
                    ok = False
                    break
            valid[y, x] = ok
    return valid

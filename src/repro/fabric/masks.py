"""Vectorized valid-anchor computation.

This realizes constraints M_a and M_b of the paper (Eqs. 2-3) as array
algebra: an anchor position ``(x, y)`` is valid for a footprint iff every
footprint cell ``(dx, dy, k)`` lands on an available tile of resource type
``k``.  The computation ANDs shifted per-resource compatibility masks — a
boolean cross-correlation evaluated with NumPy views (no copies of the
fabric are made; each cell contributes one slice-AND).

Footprint cells must be normalized so ``min dx == min dy == 0``; anchors
are then the footprint's lower-left bounding-box corner.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple, Union

import numpy as np

from repro.fabric.grid import FabricGrid
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType

#: (dx, dy, kind) relative cell of a footprint
Cell = Tuple[int, int, ResourceType]


def compatibility_masks(region: PartialRegion) -> Dict[ResourceType, np.ndarray]:
    """Per-resource boolean maps of cells a module tile of that type may use."""
    allowed = region.allowed_mask()
    out: Dict[ResourceType, np.ndarray] = {}
    for kind in ResourceType:
        if kind is ResourceType.UNAVAILABLE:
            continue
        out[kind] = region.grid.resource_mask(kind) & allowed
    return out


def valid_anchor_mask(
    region: Union[PartialRegion, FabricGrid],
    cells: Sequence[Cell],
    compat: Dict[ResourceType, np.ndarray] | None = None,
) -> np.ndarray:
    """Boolean (H, W) array: True where the footprint may be anchored.

    Parameters
    ----------
    region:
        The partial region (or a bare grid, treated as fully reconfigurable).
    cells:
        Normalized footprint cells ``(dx, dy, kind)`` with ``dx, dy >= 0``
        and ``min dx == min dy == 0``.
    compat:
        Optional precomputed :func:`compatibility_masks` (reused across the
        many footprints of a module library).
    """
    if isinstance(region, FabricGrid):
        region = PartialRegion.whole_device(region)
    if not cells:
        raise ValueError("footprint has no cells")
    if min(c[0] for c in cells) != 0 or min(c[1] for c in cells) != 0:
        raise ValueError("footprint cells must be normalized to origin 0,0")
    if compat is None:
        compat = compatibility_masks(region)

    H, W = region.height, region.width
    valid = np.ones((H, W), dtype=bool)
    for dx, dy, kind in cells:
        if kind is ResourceType.UNAVAILABLE:
            raise ValueError("footprint cells cannot require UNAVAILABLE")
        source = compat[kind]
        shifted = np.zeros((H, W), dtype=bool)
        if dy < H and dx < W:
            shifted[: H - dy, : W - dx] = source[dy:, dx:]
        valid &= shifted
        if not valid.any():
            break
    return valid


def count_anchors(valid: np.ndarray, col: np.ndarray, row: np.ndarray) -> int:
    """Anchors of a (H, W) validity mask surviving the axis-domain masks.

    Equivalent to ``(valid & row[:, None] & col[None, :]).sum()`` but
    selects the surviving rows/columns first, so the intermediate scales
    with the *domain* sizes rather than the fabric — the shape branching
    heuristics call this for every module at every search node.
    """
    if not row.any() or not col.any():
        return 0
    return int(np.count_nonzero(valid[row][:, col]))


def anchors_list(valid: np.ndarray) -> list[Tuple[int, int]]:
    """The (x, y) anchor coordinates of a validity mask, bottom-left order.

    Sorted by x then y — the value ordering used by the min-extent
    objective's branching (place as far left as possible first).
    """
    ys, xs = np.nonzero(valid)
    order = np.lexsort((ys, xs))
    return [(int(xs[i]), int(ys[i])) for i in order]


def brute_force_anchor_mask(
    region: PartialRegion, cells: Sequence[Cell]
) -> np.ndarray:
    """Reference implementation: per-anchor loop.

    Exists solely so property-based tests can cross-check the vectorized
    fast path; do not use in production code paths.
    """
    H, W = region.height, region.width
    allowed = region.allowed_mask()
    grid = region.grid.cells
    valid = np.zeros((H, W), dtype=bool)
    for y in range(H):
        for x in range(W):
            ok = True
            for dx, dy, kind in cells:
                xx, yy = x + dx, y + dy
                if xx >= W or yy >= H or not allowed[yy, xx] or \
                        grid[yy, xx] != int(kind):
                    ok = False
                    break
            valid[y, x] = ok
    return valid

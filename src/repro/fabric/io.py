"""JSON (de)serialization for fabrics and partial regions.

The design flow (Figure 2) feeds the placer a *partial region
specification*; this module defines that on-disk format.  A region file is
a JSON object::

    {
      "name": "demo",
      "fabric": ["..#..", "..#..", ...],     # ASCII rows, top row first
      "reconfigurable": ["11011", ...]       # optional 0/1 rows, top first
    }

The ASCII alphabet is :data:`repro.fabric.resource.RESOURCE_CHARS`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.fabric.grid import FabricGrid
from repro.fabric.region import PartialRegion


def region_to_dict(region: PartialRegion) -> dict:
    """Serialize a region to the JSON structure documented above."""
    mask_rows = [
        "".join("1" if v else "0" for v in row)
        for row in region.reconfigurable[::-1]
    ]
    return {
        "name": region.name,
        "fabric": region.grid.render().splitlines(),
        "reconfigurable": mask_rows,
    }


def region_from_dict(data: dict) -> PartialRegion:
    """Inverse of :func:`region_to_dict` (validates mask shape/alphabet)."""
    grid = FabricGrid.from_rows(data["fabric"])
    mask = None
    if "reconfigurable" in data and data["reconfigurable"] is not None:
        rows = data["reconfigurable"]
        if len(rows) != grid.height or any(len(r) != grid.width for r in rows):
            raise ValueError("reconfigurable mask shape mismatch")
        bad = {ch for row in rows for ch in row} - {"0", "1"}
        if bad:
            raise ValueError(f"reconfigurable mask must be 0/1, got {bad}")
        mask = np.array(
            [[ch == "1" for ch in row] for row in reversed(rows)], dtype=bool
        )
    return PartialRegion(grid, mask, data.get("name", "pr"))


def save_region(region: PartialRegion, path: Union[str, Path]) -> None:
    """Write a region spec file."""
    Path(path).write_text(json.dumps(region_to_dict(region), indent=2))


def load_region(path: Union[str, Path]) -> PartialRegion:
    """Read a region spec file."""
    return region_from_dict(json.loads(Path(path).read_text()))

"""Resource types of a heterogeneous FPGA.

The paper's tiles carry an *internal resource type* ``k`` representing a
physical FPGA resource: configurable logic (CLB), embedded memory (BRAM),
multipliers / DSP blocks, IO, and clock resources; in addition the static
region is modelled "as a tile or several tiles with a resource type defined
as not available" (Section III-B).  We also reserve a type for on-FPGA
communication macros (bus attachment points), which the paper mentions as a
use of internal resource types.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict


class ResourceType(IntEnum):
    """Physical resource classes of fabric tiles.

    Values are small ints so a fabric is a dense ``int8`` NumPy grid.
    """

    #: Configurable logic block — the common reconfigurable resource.
    CLB = 0
    #: Embedded block RAM (dedicated memory; larger physical tile).
    BRAM = 1
    #: Dedicated multiplier / DSP block.
    DSP = 2
    #: Input/output resources.
    IO = 3
    #: Clock management resources (interrupt resource columns on modern parts).
    CLK = 4
    #: Bus-macro / communication-infrastructure attachment point.
    BUSMACRO = 5
    #: Not available to modules (static region, holes, hard macros).
    UNAVAILABLE = 6

    @property
    def is_placeable(self) -> bool:
        """Can a module tile be mapped onto this resource at all?"""
        return self is not ResourceType.UNAVAILABLE

    @property
    def is_dedicated(self) -> bool:
        """Dedicated (non-CLB) resources restrict placement (Section I)."""
        return self in (ResourceType.BRAM, ResourceType.DSP)


#: One display character per resource type, used by the ASCII renderers.
RESOURCE_CHARS: Dict[ResourceType, str] = {
    ResourceType.CLB: ".",
    ResourceType.BRAM: "B",
    ResourceType.DSP: "D",
    ResourceType.IO: "I",
    ResourceType.CLK: "K",
    ResourceType.BUSMACRO: "M",
    ResourceType.UNAVAILABLE: "#",
}

#: Relative physical area of one tile of each type, used by area metrics.
#: The paper notes embedded memory consumes more area than multipliers and
#: logic (Section III-B); these weights only affect area-weighted reports.
RESOURCE_AREA_WEIGHT: Dict[ResourceType, float] = {
    ResourceType.CLB: 1.0,
    ResourceType.BRAM: 4.0,
    ResourceType.DSP: 2.0,
    ResourceType.IO: 1.0,
    ResourceType.CLK: 1.0,
    ResourceType.BUSMACRO: 1.0,
    ResourceType.UNAVAILABLE: 1.0,
}


def parse_resource(token: "str | int | ResourceType") -> ResourceType:
    """Parse a resource type from an int code, name, or display char."""
    if isinstance(token, ResourceType):
        return token
    if isinstance(token, int):
        return ResourceType(token)
    text = token.strip()
    if len(text) == 1:
        for kind, ch in RESOURCE_CHARS.items():
            if ch == text:
                return kind
    try:
        return ResourceType[text.upper()]
    except KeyError:
        raise ValueError(f"unknown resource type: {token!r}") from None

"""Partial region: the placement target.

The paper's partial region model "encompasses the reconfigurable and the
static regions of the device"; the static region (about 50% of the device
in Figure 4c) is modelled as tiles of type *not available* (Section III-B).
A :class:`PartialRegion` couples a fabric grid with a boolean mask of cells
belonging to the reconfigurable region; everything outside the mask — and
every UNAVAILABLE tile inside it — is off-limits to modules.

Constraint M_a (Eq. 2: all tiles within the constrained region) and the
in-fabric part of M_b are realized here as mask algebra; the resource
matching part of M_b and the non-overlap M_c live in
:mod:`repro.fabric.masks` and :mod:`repro.geost`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.fabric.grid import FabricGrid
from repro.fabric.resource import ResourceType


class PartialRegion:
    """A fabric plus the mask of its reconfigurable cells."""

    def __init__(
        self, grid: FabricGrid, reconfigurable: Optional[np.ndarray] = None,
        name: str = "pr",
    ) -> None:
        self.grid = grid
        self.name = name
        if reconfigurable is None:
            reconfigurable = np.ones((grid.height, grid.width), dtype=bool)
        reconfigurable = np.asarray(reconfigurable, dtype=bool)
        if reconfigurable.shape != (grid.height, grid.width):
            raise ValueError(
                f"mask shape {reconfigurable.shape} != fabric "
                f"{(grid.height, grid.width)}"
            )
        self.reconfigurable = reconfigurable

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def whole_device(grid: FabricGrid, name: str = "pr") -> "PartialRegion":
        return PartialRegion(grid, None, name)

    @staticmethod
    def with_static_box(
        grid: FabricGrid, x: int, y: int, w: int, h: int, name: str = "pr"
    ) -> "PartialRegion":
        """Reserve a rectangular static region (the usual modelling, Fig 4c)."""
        if w < 0 or h < 0:
            raise ValueError("static box dimensions must be non-negative")
        if not (0 <= x and 0 <= y and x + w <= grid.width and y + h <= grid.height):
            raise ValueError("static box outside the fabric")
        mask = np.ones((grid.height, grid.width), dtype=bool)
        mask[y : y + h, x : x + w] = False
        return PartialRegion(grid, mask, name)

    @staticmethod
    def reconfigurable_box(
        grid: FabricGrid, x: int, y: int, w: int, h: int, name: str = "pr"
    ) -> "PartialRegion":
        """Only the given rectangle is reconfigurable; the rest is static."""
        if w <= 0 or h <= 0:
            raise ValueError("reconfigurable box must have positive size")
        if not (0 <= x and 0 <= y and x + w <= grid.width and y + h <= grid.height):
            raise ValueError("reconfigurable box outside the fabric")
        mask = np.zeros((grid.height, grid.width), dtype=bool)
        mask[y : y + h, x : x + w] = True
        return PartialRegion(grid, mask, name)

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.grid.width

    @property
    def height(self) -> int:
        return self.grid.height

    def allowed_mask(self) -> np.ndarray:
        """Cells modules may occupy: reconfigurable and not UNAVAILABLE."""
        return self.reconfigurable & self.grid.placeable_mask()

    def available_area(self) -> int:
        return int(np.count_nonzero(self.allowed_mask()))

    def available_counts(self) -> Dict[ResourceType, int]:
        """Per-resource counts of cells available to modules."""
        allowed = self.allowed_mask()
        out: Dict[ResourceType, int] = {}
        for kind in ResourceType:
            if kind is ResourceType.UNAVAILABLE:
                continue
            n = int(np.count_nonzero(allowed & self.grid.resource_mask(kind)))
            if n:
                out[kind] = n
        return out

    def bounding_box(self) -> Tuple[int, int, int, int]:
        """(x, y, w, h) bounding box of the reconfigurable cells."""
        ys, xs = np.nonzero(self.reconfigurable)
        if xs.size == 0:
            raise ValueError("region has no reconfigurable cells")
        x0, x1 = int(xs.min()), int(xs.max())
        y0, y1 = int(ys.min()), int(ys.max())
        return x0, y0, x1 - x0 + 1, y1 - y0 + 1

    def render(self, occupied: Optional[np.ndarray] = None) -> str:
        """ASCII view: static cells as '#', optionally with occupancy '@'."""
        from repro.fabric.resource import RESOURCE_CHARS

        chars = {int(k): c for k, c in RESOURCE_CHARS.items()}
        rows = []
        for y in range(self.height - 1, -1, -1):
            row = []
            for x in range(self.width):
                if occupied is not None and occupied[y, x]:
                    row.append("@")
                elif not self.reconfigurable[y, x]:
                    row.append("#")
                else:
                    row.append(chars[int(self.grid.cells[y, x])])
            rows.append("".join(row))
        return "\n".join(rows)

    def __repr__(self) -> str:
        return (
            f"PartialRegion({self.name!r}, {self.width}x{self.height}, "
            f"available={self.available_area()})"
        )


class NarrowedRegion(PartialRegion):
    """A base region minus a set of blocked cells, remembering its lineage.

    The LNS driver carves the frozen modules' cells out of the incumbent
    region before re-solving the free modules; the result behaves exactly
    like a plain :class:`PartialRegion` (and is safe to hand to any
    consumer), but additionally records *which* base region it narrows and
    *which* cells were blocked.  Cache-aware consumers — the placement
    kernel with an :class:`~repro.fabric.cache.AnchorMaskCache` — use that
    lineage to derive anchor masks from the cached base-region masks by
    clearing only the anchors that collide with the blocked cells, instead
    of recomputing every cross-correlation against the carved-up fabric.
    """

    def __init__(
        self, base: PartialRegion, blocked_yx: np.ndarray, name: str = ""
    ) -> None:
        blocked_yx = np.asarray(blocked_yx, dtype=np.int64).reshape(-1, 2)
        mask = base.reconfigurable.copy()
        if blocked_yx.size:
            if (
                blocked_yx.min() < 0
                or blocked_yx[:, 0].max() >= base.height
                or blocked_yx[:, 1].max() >= base.width
            ):
                raise ValueError("blocked cells outside the base region")
            mask[blocked_yx[:, 0], blocked_yx[:, 1]] = False
        super().__init__(base.grid, mask, name or f"{base.name}-narrowed")
        #: the region this one was carved from
        self.base = base
        #: (n, 2) array of blocked (y, x) cells
        self.blocked_yx = blocked_yx

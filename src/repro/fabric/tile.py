"""Formal tile / tileset objects matching the paper's notation.

Section III defines: a tile ``t_{x,y,k}`` with origin coordinates ``(x, y)``
and resource type ``k``; a tileset ``T_k`` as a non-empty set of tiles of
identical type; a shape ``S`` as a non-empty set of tilesets; a module ``M``
as a non-empty set of shapes; and a partial region ``P`` as a non-empty set
of tilesets with *absolute* coordinates.

These classes are the readable, formal layer.  The solver-facing fast path
converts them into NumPy grids/footprints (:mod:`repro.fabric.grid`,
:mod:`repro.modules.footprint`); round-trip conversions are tested for
equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Tuple

from repro.fabric.resource import ResourceType


@dataclass(frozen=True, order=True)
class Tile:
    """A unit tile ``t_{x,y,k}``: 1x1 cell of resource type ``k``."""

    x: int
    y: int
    kind: ResourceType

    def translated(self, dx: int, dy: int) -> "Tile":
        return Tile(self.x + dx, self.y + dy, self.kind)

    def __str__(self) -> str:
        return f"t({self.x},{self.y},{self.kind.name})"


class TileSet:
    """A non-empty set of tiles sharing one resource type (``T_k``)."""

    __slots__ = ("kind", "_tiles")

    def __init__(self, tiles: Iterable[Tile]) -> None:
        tiles = frozenset(tiles)
        if not tiles:
            raise ValueError("a tileset must be non-empty (paper: n > 0)")
        kinds = {t.kind for t in tiles}
        if len(kinds) > 1:
            raise ValueError(
                f"tiles in a tileset must share one resource type, got {kinds}"
            )
        self._tiles: FrozenSet[Tile] = tiles
        self.kind: ResourceType = next(iter(kinds))

    @staticmethod
    def from_coords(
        coords: Iterable[Tuple[int, int]], kind: ResourceType
    ) -> "TileSet":
        return TileSet(Tile(x, y, kind) for x, y in coords)

    @staticmethod
    def block(x: int, y: int, w: int, h: int, kind: ResourceType) -> "TileSet":
        """A ``w`` x ``h`` rectangle of tiles with origin ``(x, y)``.

        E.g. the paper's multiplier example is ``block(0, 0, 2, 2, DSP)``:
        four tiles ``{t_00, t_01, t_10, t_11}``.
        """
        if w <= 0 or h <= 0:
            raise ValueError("block dimensions must be positive")
        return TileSet(
            Tile(x + i, y + j, kind) for i in range(w) for j in range(h)
        )

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tile]:
        return iter(self._tiles)

    def __len__(self) -> int:
        return len(self._tiles)

    def __contains__(self, t: Tile) -> bool:
        return t in self._tiles

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TileSet):
            return NotImplemented
        return self._tiles == other._tiles

    def __hash__(self) -> int:
        return hash(self._tiles)

    def coords(self) -> FrozenSet[Tuple[int, int]]:
        return frozenset((t.x, t.y) for t in self._tiles)

    def translated(self, dx: int, dy: int) -> "TileSet":
        return TileSet(t.translated(dx, dy) for t in self._tiles)

    def bounding_box(self) -> Tuple[int, int, int, int]:
        """(min_x, min_y, width, height)."""
        xs = [t.x for t in self._tiles]
        ys = [t.y for t in self._tiles]
        return min(xs), min(ys), max(xs) - min(xs) + 1, max(ys) - min(ys) + 1

    def overlaps(self, other: "TileSet") -> bool:
        return bool(self.coords() & other.coords())

    def __repr__(self) -> str:
        return f"TileSet({self.kind.name}, n={len(self._tiles)})"

"""Synthetic device generators.

The paper evaluates on "a heterogeneous FPGA model ... modelled after a real
world FPGA" (Section III-B, V).  We provide three families:

``homogeneous_device``
    All-CLB fabric — the baseline the 2-D packing literature assumes
    (Section II); used for the DiffN/geost cross-checks and ablation A2.

``columnar_device``
    Previous-generation style: dedicated resources "located regularly
    aligned in columns" (Section I) — BRAM/DSP columns at fixed strides,
    IO at the left/right edges.

``irregular_device``
    Current-generation style: dedicated resources "spread more irregularly
    over the device", with "some resource columns differ[ing] from their
    resource type (e.g. they contain clock resources)" (Section I) — column
    strides are jittered per-seed and resource columns are interrupted by
    clock tiles around the horizontal center line.

A small named catalog (:func:`device_catalog`) pins the instances used by
tests, examples and benchmarks so results are reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Sequence

import numpy as np

from repro.fabric.grid import FabricGrid
from repro.fabric.resource import ResourceType


def homogeneous_device(width: int, height: int) -> FabricGrid:
    """An all-CLB fabric (the homogeneous xy-plane of Section II)."""
    return FabricGrid.filled(width, height, ResourceType.CLB)


def columnar_device(
    width: int,
    height: int,
    bram_stride: int = 8,
    dsp_stride: int = 12,
    io_edges: bool = True,
) -> FabricGrid:
    """Virtex-style fabric with regular resource columns.

    Every ``bram_stride``-th column is BRAM and every ``dsp_stride``-th is
    DSP (BRAM wins collisions, mirroring real parts where memory columns
    displace multipliers).  With ``io_edges`` the outermost columns are IO.
    """
    if width <= 0 or height <= 0:
        raise ValueError("device dimensions must be positive")
    grid = FabricGrid.filled(width, height, ResourceType.CLB)
    cells = grid.cells
    for x in range(width):
        if io_edges and (x == 0 or x == width - 1):
            cells[:, x] = int(ResourceType.IO)
        elif bram_stride > 0 and x % bram_stride == bram_stride // 2:
            cells[:, x] = int(ResourceType.BRAM)
        elif dsp_stride > 0 and x % dsp_stride == dsp_stride // 2 + 1:
            cells[:, x] = int(ResourceType.DSP)
    return grid


def irregular_device(
    width: int,
    height: int,
    seed: int = 0,
    bram_stride: int = 8,
    dsp_stride: int = 0,
    jitter: int = 2,
    clk_rows: int = 1,
    io_edges: bool = True,
) -> FabricGrid:
    """Modern-style fabric with irregular columns and clock interruptions.

    Dedicated columns follow a *jittered* stride: the k-th BRAM column sits
    near ``k * bram_stride`` but shifted by up to ``jitter`` tiles, so
    spacing between consecutive columns varies (the paper's "spread more
    irregularly over the device") while the logic runs between them stay
    wide enough to host module bodies — as on real parts, where column
    spacing varies but is never degenerate.  Each dedicated column is
    additionally interrupted by ``clk_rows`` clock tiles around the
    vertical midpoint ("some resource columns differ from their resource
    type (e.g. they contain clock resources)").  ``dsp_stride == 0``
    disables DSP columns.
    """
    if width <= 0 or height <= 0:
        raise ValueError("device dimensions must be positive")
    if bram_stride < 0 or dsp_stride < 0 or jitter < 0:
        raise ValueError("strides and jitter must be non-negative")
    rng = random.Random(seed)
    grid = FabricGrid.filled(width, height, ResourceType.CLB)
    cells = grid.cells

    lo_x, hi_x = (1, width - 2) if io_edges else (0, width - 1)
    if io_edges:
        cells[:, 0] = int(ResourceType.IO)
        cells[:, width - 1] = int(ResourceType.IO)

    def jittered_columns(stride: int, phase: int) -> List[int]:
        if stride <= 0:
            return []
        cols = []
        x = phase
        while x <= hi_x:
            c = x + rng.randint(-jitter, jitter)
            if lo_x <= c <= hi_x:
                cols.append(c)
            x += stride
        return sorted(set(cols))

    bram_cols = jittered_columns(bram_stride, bram_stride // 2 + 1)
    dsp_cols = [
        c for c in jittered_columns(dsp_stride, dsp_stride // 2 + 2)
        if c not in bram_cols
    ]
    for x in bram_cols:
        cells[:, x] = int(ResourceType.BRAM)
    for x in dsp_cols:
        cells[:, x] = int(ResourceType.DSP)

    # clock tiles interrupt dedicated columns around the center line
    if clk_rows > 0:
        mid = height // 2
        lo = max(0, mid - clk_rows // 2)
        hi = min(height, lo + clk_rows)
        for x in bram_cols + dsp_cols:
            cells[lo:hi, x] = int(ResourceType.CLK)
    return grid


def with_static_columns(grid: FabricGrid, first: int, last: int) -> FabricGrid:
    """Mark columns ``[first, last]`` unavailable (a static region)."""
    if not (0 <= first <= last < grid.width):
        raise ValueError("static column range outside fabric")
    out = grid.copy()
    out.cells[:, first : last + 1] = int(ResourceType.UNAVAILABLE)
    return out


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
def device_catalog() -> Dict[str, Callable[[], FabricGrid]]:
    """Named, deterministic devices used across the test/bench suite."""
    return {
        # tiny fabrics for unit tests and doc examples
        "homog-8x8": lambda: homogeneous_device(8, 8),
        "homog-16x16": lambda: homogeneous_device(16, 16),
        "columnar-24x16": lambda: columnar_device(24, 16),
        "irregular-24x16": lambda: irregular_device(24, 16, seed=7),
        # mid-size fabrics for examples / figures
        "columnar-48x32": lambda: columnar_device(48, 32),
        "irregular-48x32": lambda: irregular_device(48, 32, seed=11),
        # the Table-I scale fabric: heterogeneous, clock-interrupted
        "irregular-64x48": lambda: irregular_device(64, 48, seed=42),
        "columnar-64x48": lambda: columnar_device(64, 48),
    }


def make_device(name: str) -> FabricGrid:
    """Instantiate a catalog device by name."""
    catalog = device_catalog()
    try:
        return catalog[name]()
    except KeyError:
        known = ", ".join(sorted(catalog))
        raise KeyError(f"unknown device {name!r}; known: {known}") from None

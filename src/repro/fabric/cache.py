"""Anchor-mask caching: memoized M_a ∧ M_b computation.

The placement maths of Eqs. 2-3 is *static* per (region, footprint): a
valid-anchor mask depends only on the fabric contents, the reconfigurable
mask and the footprint's cell set.  Yet the hot paths rebuild placement
models constantly — every LNS iteration constructs a fresh
:class:`~repro.geost.placement.PlacementKernel`, and every portfolio
member repeats the identical base-region computation in its own process.
Dynamic-placement workloads are dominated by exactly this repeated
free-space recomputation (cf. the defragmentation line of Fekete et al.),
so this module memoizes it:

* :class:`AnchorMaskCache` maps ``(region fingerprint, footprint
  signature)`` to the finished :func:`~repro.fabric.masks.valid_anchor_mask`
  array (stored read-only; consumers copy into their own mutable banks),
  and caches :func:`~repro.fabric.masks.compatibility_masks` per region so
  a miss only pays the cross-correlation, never the per-resource setup.
* :func:`region_fingerprint` / :func:`footprint_signature` define the keys:
  pure content hashes, so two structurally identical regions (e.g. the
  same payload deserialized in two worker processes) share entries and the
  region's *name* never matters.

The cache is unbounded *by default*: an offline placement run works
against a handful of fabrics and a module library whose footprints number
in the hundreds, so the working set is small and eviction would only add
a way to lose the hits this layer exists to provide.  Long-running shard
workers are different — the runtime manager probes every arrival against
the current *residual* region, whose fingerprint changes with every
admission and departure, so entries accumulate without bound over a long
serving run.  For that consumer the cache takes an opt-in LRU
``capacity``; evictions are counted (``evictions``) and surface in the
``cache.masks`` trace event and the
:class:`~repro.obs.profile.SolveProfile` so memory pressure is
observable, and the default stays unbounded so existing pins are
bit-identical.

Warmed entries can be persisted (:meth:`AnchorMaskCache.save` /
:meth:`AnchorMaskCache.load`) so pools of worker processes — the sharded
placement service, the portfolio — deserialize finished masks instead of
re-deriving every cross-correlation per process.  The file is a pickle of
plain numpy arrays and cache keys: a local, trusted artifact (same trust
model as a ``.npy`` file), not an interchange format.

The *incremental* consumer of this cache is the kernel itself: for an LNS
sub-region (:class:`~repro.fabric.region.NarrowedRegion`) the kernel
fetches the cached **base**-region masks and narrows them with the frozen
modules' cells via its batched difference-of-coordinates update, instead
of recomputing every cross-correlation against the carved-up region.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.fabric.masks import compatibility_masks, valid_anchor_mask
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType

if TYPE_CHECKING:  # avoid a fabric -> modules import at runtime
    from repro.modules.footprint import Footprint

#: content hash of a region (grid cells + reconfigurable mask + dims)
RegionKey = bytes
#: canonical hashable identity of a footprint's cell set
FootprintKey = frozenset


def region_fingerprint(region: PartialRegion) -> RegionKey:
    """Content hash of a region: identical fabrics share cache entries.

    Hashes the dense resource grid and the reconfigurable mask (shape
    included via the raw dimensions); the region *name* is deliberately
    excluded so ``pr`` and ``pr-lns`` with identical cells collide — which
    is exactly what a cache keyed on placement maths wants.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.int64(region.width).tobytes())
    h.update(region.grid.cells.tobytes())
    h.update(np.packbits(region.reconfigurable).tobytes())
    return h.digest()


def footprint_signature(footprint: "Footprint") -> FootprintKey:
    """Hashable identity of a footprint: its normalized typed cell set."""
    return footprint.cells


class AnchorMaskCache:
    """Memoizes valid-anchor masks and compatibility masks per region.

    One cache instance is intended per *process* (the portfolio creates one
    per worker; the LNS driver one per ``place`` call unless handed a
    shared instance).  Entries are stored write-protected and returned as
    views — callers that mutate masks (the kernel's non-overlap narrowing)
    copy them into their own bank first, which :func:`numpy.stack` already
    does.

    Counters (``hits``/``misses``/``narrowed``/``evictions``) are
    cumulative; consumers snapshot them around a model construction to
    attribute deltas (see :meth:`snapshot` / :meth:`delta`).

    ``capacity`` (None = unbounded, the default) turns the mask store into
    an LRU: a hit refreshes the entry, an insert past capacity evicts the
    least recently used mask.  The per-region compatibility masks are
    bounded by the same capacity (they are the larger entries for a
    runtime shard worker, one dict of per-resource planes per residual
    fingerprint); both kinds of eviction count into ``evictions``.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("cache capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._masks: "OrderedDict[Tuple[RegionKey, FootprintKey], np.ndarray]" = (
            OrderedDict()
        )
        self._compat: "OrderedDict[RegionKey, Dict[ResourceType, np.ndarray]]" = (
            OrderedDict()
        )
        #: derived-artifact memo (see :meth:`memo`); not persisted by save
        self._aux: "OrderedDict[Tuple, object]" = OrderedDict()
        #: anchor-mask lookups served from the cache
        self.hits = 0
        #: anchor-mask lookups that had to run the cross-correlation
        self.misses = 0
        #: mask rows derived incrementally from cached base-region masks
        #: (maintained by the kernel via :meth:`note_narrowed`)
        self.narrowed = 0
        #: entries dropped by the LRU bound (0 while unbounded)
        self.evictions = 0

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def region_key(self, region: PartialRegion) -> RegionKey:
        return region_fingerprint(region)

    def compat(
        self, region: PartialRegion, region_key: Optional[RegionKey] = None
    ) -> Dict[ResourceType, np.ndarray]:
        """Cached :func:`compatibility_masks` of one region."""
        key = region_key if region_key is not None else self.region_key(region)
        found = self._compat.get(key)
        if found is None:
            found = compatibility_masks(region)
            self._compat[key] = found
            if self.capacity is not None:
                while len(self._compat) > self.capacity:
                    self._compat.popitem(last=False)
                    self.evictions += 1
        elif self.capacity is not None:
            self._compat.move_to_end(key)
        return found

    def anchor_mask(
        self,
        region: PartialRegion,
        footprint: "Footprint",
        region_key: Optional[RegionKey] = None,
    ) -> np.ndarray:
        """Cached ``valid_anchor_mask`` for one (region, footprint) pair.

        Returns a read-only (H, W) boolean array; copy before mutating.
        """
        key = region_key if region_key is not None else self.region_key(region)
        entry = (key, footprint_signature(footprint))
        mask = self._masks.get(entry)
        if mask is not None:
            self.hits += 1
            if self.capacity is not None:
                self._masks.move_to_end(entry)
            return mask
        self.misses += 1
        mask = valid_anchor_mask(
            region, sorted(footprint.cells), self.compat(region, key)
        )
        mask.setflags(write=False)
        self._store(entry, mask)
        return mask

    def _store(
        self, entry: Tuple[RegionKey, FootprintKey], mask: np.ndarray
    ) -> None:
        self._masks[entry] = mask
        if self.capacity is not None:
            while len(self._masks) > self.capacity:
                self._masks.popitem(last=False)
                self.evictions += 1

    def memo(self, key: Tuple, build: "Callable[[], object]") -> object:
        """Cached derived artifact keyed by an arbitrary hashable tuple.

        The temporal placement path memoizes objects that, like the anchor
        masks, depend only on fabric content — the per-(region, horizon)
        forbidden-region list and per-(footprint, duration) shape
        extrusions — without this module having to know their types (which
        live in ``repro.geost``; importing them here would cycle).  Lookups
        count into the same ``hits``/``misses`` counters the masks use and
        the store honors the same LRU ``capacity``.  Entries are returned
        by reference: consumers must treat them as immutable, exactly like
        the read-only mask arrays.
        """
        found = self._aux.get(key)
        if found is not None:
            self.hits += 1
            if self.capacity is not None:
                self._aux.move_to_end(key)
            return found
        self.misses += 1
        found = build()
        self._aux[key] = found
        if self.capacity is not None:
            while len(self._aux) > self.capacity:
                self._aux.popitem(last=False)
                self.evictions += 1
        return found

    def warm(self, region: PartialRegion, modules: Iterable) -> int:
        """Precompute every shape's mask for one region; returns the count.

        Used by portfolio workers so all subsequent model constructions —
        including the very first — run entirely on hits.
        """
        key = self.region_key(region)
        n = 0
        for module in modules:
            for fp in module.shapes:
                self.anchor_mask(region, fp, region_key=key)
                n += 1
        return n

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def note_narrowed(self, rows: int) -> None:
        """Record ``rows`` mask rows derived incrementally (not recomputed)."""
        self.narrowed += rows

    def __len__(self) -> int:
        return len(self._masks)

    def snapshot(self) -> Tuple[int, int, int, int]:
        """Current (hits, misses, narrowed, evictions) counter values."""
        return (self.hits, self.misses, self.narrowed, self.evictions)

    def delta(self, snapshot: Tuple[int, ...]) -> Dict[str, int]:
        """Counter increments since ``snapshot`` (from :meth:`snapshot`)."""
        h0, m0, n0 = snapshot[:3]
        e0 = snapshot[3] if len(snapshot) > 3 else 0
        return {
            "hits": self.hits - h0,
            "misses": self.misses - m0,
            "narrowed": self.narrowed - n0,
            "evictions": self.evictions - e0,
        }

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "narrowed": self.narrowed,
            "evictions": self.evictions,
            "entries": len(self._masks),
        }

    # ------------------------------------------------------------------
    # Persistence (warmed entries shared across worker processes)
    # ------------------------------------------------------------------
    SAVE_VERSION = 1

    def save(self, path: str) -> int:
        """Persist the finished masks; returns the entry count.

        The artifact is a pickle of cache keys and numpy arrays — a local,
        trusted file (load only what this process, or a sibling worker of
        the same service, wrote).  Counters are *not* persisted: a loaded
        cache starts with fresh accounting.
        """
        payload = {
            "version": self.SAVE_VERSION,
            "masks": [
                (key, sorted(sig), np.asarray(mask))
                for (key, sig), mask in self._masks.items()
            ],
            "compat": [
                (key, {kind: np.asarray(m) for kind, m in compat.items()})
                for key, compat in self._compat.items()
            ],
        }
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return len(self._masks)

    @classmethod
    def load(
        cls, path: str, capacity: Optional[int] = None
    ) -> "AnchorMaskCache":
        """Rebuild a cache from :meth:`save` output (counters start at 0)."""
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        version = payload.get("version")
        if version != cls.SAVE_VERSION:
            raise ValueError(
                f"unsupported cache file version {version!r} "
                f"(expected {cls.SAVE_VERSION})"
            )
        cache = cls(capacity=capacity)
        for key, compat in payload["compat"]:
            cache._compat[key] = dict(compat)
        for key, cells, mask in payload["masks"]:
            mask = np.asarray(mask)
            mask.setflags(write=False)
            cache._store((key, frozenset(cells)), mask)
        # a capacity smaller than the artifact truncates silently here;
        # runtime accounting starts clean
        cache.evictions = 0
        return cache

    def __repr__(self) -> str:
        return (
            f"AnchorMaskCache(entries={len(self._masks)}, hits={self.hits}, "
            f"misses={self.misses}, narrowed={self.narrowed}, "
            f"evictions={self.evictions})"
        )

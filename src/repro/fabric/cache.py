"""Anchor-mask caching: memoized M_a ∧ M_b computation.

The placement maths of Eqs. 2-3 is *static* per (region, footprint): a
valid-anchor mask depends only on the fabric contents, the reconfigurable
mask and the footprint's cell set.  Yet the hot paths rebuild placement
models constantly — every LNS iteration constructs a fresh
:class:`~repro.geost.placement.PlacementKernel`, and every portfolio
member repeats the identical base-region computation in its own process.
Dynamic-placement workloads are dominated by exactly this repeated
free-space recomputation (cf. the defragmentation line of Fekete et al.),
so this module memoizes it:

* :class:`AnchorMaskCache` maps ``(region fingerprint, footprint
  signature)`` to the finished :func:`~repro.fabric.masks.valid_anchor_mask`
  array (stored read-only; consumers copy into their own mutable banks),
  and caches :func:`~repro.fabric.masks.compatibility_masks` per region so
  a miss only pays the cross-correlation, never the per-resource setup.
* :func:`region_fingerprint` / :func:`footprint_signature` define the keys:
  pure content hashes, so two structurally identical regions (e.g. the
  same payload deserialized in two worker processes) share entries and the
  region's *name* never matters.

The cache is deliberately unbounded: a placement service works against a
handful of fabrics and a module library whose footprints number in the
hundreds, so the working set is small and eviction would only add a way
to lose the hits this layer exists to provide.

The *incremental* consumer of this cache is the kernel itself: for an LNS
sub-region (:class:`~repro.fabric.region.NarrowedRegion`) the kernel
fetches the cached **base**-region masks and narrows them with the frozen
modules' cells via its batched difference-of-coordinates update, instead
of recomputing every cross-correlation against the carved-up region.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.fabric.masks import compatibility_masks, valid_anchor_mask
from repro.fabric.region import PartialRegion
from repro.fabric.resource import ResourceType

if TYPE_CHECKING:  # avoid a fabric -> modules import at runtime
    from repro.modules.footprint import Footprint

#: content hash of a region (grid cells + reconfigurable mask + dims)
RegionKey = bytes
#: canonical hashable identity of a footprint's cell set
FootprintKey = frozenset


def region_fingerprint(region: PartialRegion) -> RegionKey:
    """Content hash of a region: identical fabrics share cache entries.

    Hashes the dense resource grid and the reconfigurable mask (shape
    included via the raw dimensions); the region *name* is deliberately
    excluded so ``pr`` and ``pr-lns`` with identical cells collide — which
    is exactly what a cache keyed on placement maths wants.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.int64(region.width).tobytes())
    h.update(region.grid.cells.tobytes())
    h.update(np.packbits(region.reconfigurable).tobytes())
    return h.digest()


def footprint_signature(footprint: "Footprint") -> FootprintKey:
    """Hashable identity of a footprint: its normalized typed cell set."""
    return footprint.cells


class AnchorMaskCache:
    """Memoizes valid-anchor masks and compatibility masks per region.

    One cache instance is intended per *process* (the portfolio creates one
    per worker; the LNS driver one per ``place`` call unless handed a
    shared instance).  Entries are stored write-protected and returned as
    views — callers that mutate masks (the kernel's non-overlap narrowing)
    copy them into their own bank first, which :func:`numpy.stack` already
    does.

    Counters (``hits``/``misses``/``narrowed``) are cumulative; consumers
    snapshot them around a model construction to attribute deltas (see
    :meth:`snapshot` / :meth:`delta`).
    """

    def __init__(self) -> None:
        self._masks: Dict[Tuple[RegionKey, FootprintKey], np.ndarray] = {}
        self._compat: Dict[RegionKey, Dict[ResourceType, np.ndarray]] = {}
        #: anchor-mask lookups served from the cache
        self.hits = 0
        #: anchor-mask lookups that had to run the cross-correlation
        self.misses = 0
        #: mask rows derived incrementally from cached base-region masks
        #: (maintained by the kernel via :meth:`note_narrowed`)
        self.narrowed = 0

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def region_key(self, region: PartialRegion) -> RegionKey:
        return region_fingerprint(region)

    def compat(
        self, region: PartialRegion, region_key: Optional[RegionKey] = None
    ) -> Dict[ResourceType, np.ndarray]:
        """Cached :func:`compatibility_masks` of one region."""
        key = region_key if region_key is not None else self.region_key(region)
        found = self._compat.get(key)
        if found is None:
            found = compatibility_masks(region)
            self._compat[key] = found
        return found

    def anchor_mask(
        self,
        region: PartialRegion,
        footprint: "Footprint",
        region_key: Optional[RegionKey] = None,
    ) -> np.ndarray:
        """Cached ``valid_anchor_mask`` for one (region, footprint) pair.

        Returns a read-only (H, W) boolean array; copy before mutating.
        """
        key = region_key if region_key is not None else self.region_key(region)
        entry = (key, footprint_signature(footprint))
        mask = self._masks.get(entry)
        if mask is not None:
            self.hits += 1
            return mask
        self.misses += 1
        mask = valid_anchor_mask(
            region, sorted(footprint.cells), self.compat(region, key)
        )
        mask.setflags(write=False)
        self._masks[entry] = mask
        return mask

    def warm(self, region: PartialRegion, modules: Iterable) -> int:
        """Precompute every shape's mask for one region; returns the count.

        Used by portfolio workers so all subsequent model constructions —
        including the very first — run entirely on hits.
        """
        key = self.region_key(region)
        n = 0
        for module in modules:
            for fp in module.shapes:
                self.anchor_mask(region, fp, region_key=key)
                n += 1
        return n

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def note_narrowed(self, rows: int) -> None:
        """Record ``rows`` mask rows derived incrementally (not recomputed)."""
        self.narrowed += rows

    def __len__(self) -> int:
        return len(self._masks)

    def snapshot(self) -> Tuple[int, int, int]:
        """Current (hits, misses, narrowed) counter values."""
        return (self.hits, self.misses, self.narrowed)

    def delta(self, snapshot: Tuple[int, int, int]) -> Dict[str, int]:
        """Counter increments since ``snapshot`` (from :meth:`snapshot`)."""
        h0, m0, n0 = snapshot
        return {
            "hits": self.hits - h0,
            "misses": self.misses - m0,
            "narrowed": self.narrowed - n0,
        }

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "narrowed": self.narrowed,
            "entries": len(self._masks),
        }

    def __repr__(self) -> str:
        return (
            f"AnchorMaskCache(entries={len(self._masks)}, hits={self.hits}, "
            f"misses={self.misses}, narrowed={self.narrowed})"
        )

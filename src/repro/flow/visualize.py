"""Figure-style ASCII visualizations.

Recreates the pictures of the paper as text: the design-alternative
gallery (Figure 1), and side-by-side with/without-alternatives placements
(Figures 3 and 5).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.report import render_placement, side_by_side
from repro.core.result import PlacementResult
from repro.modules.module import Module


def alternatives_gallery(module: Module, gap: int = 3) -> str:
    """All design alternatives of a module, side by side (Figure 1)."""
    blocks = [fp.render().splitlines() for fp in module.shapes]
    height = max(len(b) for b in blocks)
    widths = [max((len(r) for r in b), default=0) for b in blocks]
    # pad each block to its width and common height (top-aligned like Fig 1)
    padded: List[List[str]] = []
    for b, w in zip(blocks, widths):
        rows = [r.ljust(w) for r in b]
        rows = [" " * w] * (height - len(rows)) + rows
        padded.append(rows)
    lines = []
    header = (" " * gap).join(
        f"alt {i} ({fp.width}x{fp.height})".ljust(w)
        for i, (fp, w) in enumerate(zip(module.shapes, widths))
    )
    lines.append(f"module {module.name}: {module.n_alternatives} design alternatives")
    lines.append(header)
    for y in range(height):
        lines.append((" " * gap).join(padded[i][y] for i in range(len(padded))))
    return "\n".join(lines)


def comparison_figure(
    without: PlacementResult, with_alts: PlacementResult
) -> str:
    """The Figure 5 layout: left = no alternatives, right = alternatives."""
    return side_by_side(
        render_placement(without),
        render_placement(with_alts),
        labels=(
            f"without alternatives (extent={without.extent})",
            f"with alternatives (extent={with_alts.extent})",
        ),
    )

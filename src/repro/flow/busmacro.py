"""On-FPGA communication infrastructure: bus macros.

ReCoBus-style systems run a horizontal communication bus through the
reconfigurable region; modules attach to it through *bus macros* at fixed
attachment points.  The paper notes that "internal resource types can
further be used to represent communication macros for bus attachment"
(Section III-A) — which is exactly how we model it: attachment points are
fabric tiles of type :attr:`ResourceType.BUSMACRO`, and a bus-attached
module carries a BUSMACRO tile in its footprint.  Constraint M_b then
forces every placement to put the module's attachment cell on an
attachment point, with no extra machinery.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fabric.grid import FabricGrid
from repro.fabric.resource import ResourceType
from repro.modules.footprint import Footprint
from repro.modules.module import Module


def add_bus_row(
    grid: FabricGrid, y: int, stride: int = 4, phase: int = 1
) -> FabricGrid:
    """Place bus-macro attachment tiles along row ``y`` every ``stride``.

    Only CLB tiles are converted (dedicated columns cannot host macros);
    returns a new grid.
    """
    if not 0 <= y < grid.height:
        raise ValueError(f"bus row {y} outside fabric height {grid.height}")
    if stride <= 0:
        raise ValueError("stride must be positive")
    out = grid.copy()
    for x in range(phase, grid.width, stride):
        if out.cells[y, x] == int(ResourceType.CLB):
            out.cells[y, x] = int(ResourceType.BUSMACRO)
    return out


def attach_bus_macro(
    fp: Footprint, column: Optional[int] = None, row: int = 0
) -> Footprint:
    """Replace one CLB cell of the footprint with a BUSMACRO cell.

    By default the leftmost CLB cell of the given row becomes the
    attachment point.  Raises if the footprint has no CLB cell there.
    """
    cells = list(fp.cells)
    candidates = [
        (x, y, k)
        for x, y, k in cells
        if k is ResourceType.CLB and y == row and (column is None or x == column)
    ]
    if not candidates:
        raise ValueError(
            f"no CLB cell at row {row}"
            + (f", column {column}" if column is not None else "")
        )
    target = min(candidates)
    cells.remove(target)
    cells.append((target[0], target[1], ResourceType.BUSMACRO))
    return Footprint(cells)


def bus_aligned_modules(modules: List[Module], row: int = 0) -> List[Module]:
    """Attach a bus macro to every shape of every module.

    Shapes without a CLB cell in the attachment row are dropped (they
    cannot connect to the bus); modules losing all shapes raise.
    """
    out: List[Module] = []
    for m in modules:
        shapes: List[Footprint] = []
        for fp in m.shapes:
            try:
                shapes.append(attach_bus_macro(fp, row=row))
            except ValueError:
                continue
        if not shapes:
            raise ValueError(f"module {m.name!r} has no bus-attachable shape")
        out.append(Module(m.name, shapes, m.info))
    return out

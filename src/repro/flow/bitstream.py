"""Mock bitstream assembly.

ReCoBus-Builder's final stage assembles partial bitstreams for each module
placement.  Real bitstreams need vendor silicon; we simulate the artefact
faithfully enough to exercise the flow: a :class:`Bitstream` is a
column-major sequence of frames (one frame per fabric column, one word per
tile encoding resource type and occupancy), plus a CRC32.  The interesting
operation — computing the *partial* reconfiguration frames between two
placements, whose size determines reconfiguration time — is provided by
:func:`partial_diff`, and frame counts feed the reconfiguration-overhead
figures in the examples.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.result import PlacementResult
from repro.fabric.region import PartialRegion

#: word layout: low byte = resource type, bit 8 = occupied, bits 16+ = module id
_OCCUPIED_BIT = 1 << 8


@dataclass(frozen=True)
class Bitstream:
    """A full-device configuration image (column-major frames)."""

    width: int
    height: int
    frames: Tuple[Tuple[int, ...], ...]  # frames[x][y] = word
    crc: int

    def frame(self, x: int) -> Tuple[int, ...]:
        return self.frames[x]

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    def size_words(self) -> int:
        return self.width * self.height


def _words(result: PlacementResult) -> np.ndarray:
    region = result.region
    words = region.grid.cells.astype(np.int64).copy()
    for idx, p in enumerate(result.placements, start=1):
        for x, y, _ in p.absolute_cells():
            words[y, x] |= _OCCUPIED_BIT | (idx << 16)
    return words


def assemble_bitstream(result: PlacementResult) -> Bitstream:
    """Assemble the full-device image for a placement."""
    words = _words(result)
    frames = tuple(
        tuple(int(w) for w in words[:, x]) for x in range(words.shape[1])
    )
    crc = zlib.crc32(words.tobytes())
    return Bitstream(words.shape[1], words.shape[0], frames, crc)


def partial_diff(old: Bitstream, new: Bitstream) -> List[int]:
    """Frame indices that must be rewritten to go from ``old`` to ``new``.

    Frame count is the reconfiguration-time proxy: column-based devices
    reconfigure whole frames, so a module touching k columns costs k frames
    even if it uses few tiles in each — the reconfiguration overhead the
    paper's introduction discusses.
    """
    if (old.width, old.height) != (new.width, new.height):
        raise ValueError("bitstreams are for different devices")
    return [x for x in range(old.n_frames) if old.frames[x] != new.frames[x]]


def module_frame_cost(result: PlacementResult) -> Dict[str, int]:
    """Per-module reconfiguration cost in frames (columns spanned)."""
    return {
        p.module.name: p.footprint.width for p in result.placements
    }

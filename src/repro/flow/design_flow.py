"""End-to-end design flow (Figure 2).

    partial region specification ──┐
                                   ├──> constraint solver ──> optimal placement
    module specification ──────────┘

:class:`DesignFlow` loads a partial-region spec and module specs (JSON, see
:mod:`repro.fabric.io` and :mod:`repro.modules.spec`), generates the
placement constraints, invokes the CP placer (optionally with LNS
improvement), and assembles the floorplan artefacts: report, rendering and
mock bitstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.core.lns import LNSConfig, LNSPlacer
from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.report import placement_report, render_placement
from repro.core.result import PlacementResult
from repro.fabric.io import load_region
from repro.fabric.region import PartialRegion
from repro.flow.bitstream import Bitstream, assemble_bitstream
from repro.modules.library import ModuleLibrary
from repro.modules.module import Module
from repro.modules.spec import load_modules


@dataclass
class FlowResult:
    """Everything the flow produces for one design."""

    placement: PlacementResult
    report: str
    rendering: str
    bitstream: Bitstream

    @property
    def ok(self) -> bool:
        return self.placement.all_placed and bool(self.placement.placements)


class DesignFlow:
    """Orchestrates region spec + module specs -> placed floorplan."""

    def __init__(
        self,
        region: Union[PartialRegion, str, Path],
        modules: Union[ModuleLibrary, Sequence[Module], str, Path],
        use_lns: bool = True,
        time_limit: float = 5.0,
        seed: int = 0,
    ) -> None:
        self.region = (
            region if isinstance(region, PartialRegion) else load_region(region)
        )
        if isinstance(modules, (str, Path)):
            library = load_modules(modules)
        elif isinstance(modules, ModuleLibrary):
            library = modules
        else:
            library = ModuleLibrary(modules)
        self.library = library
        self.use_lns = use_lns
        self.time_limit = time_limit
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self) -> FlowResult:
        """Execute the flow; placements are verified before returning."""
        modules = list(self.library)
        if self.use_lns:
            placer = LNSPlacer(
                LNSConfig(time_limit=self.time_limit, seed=self.seed)
            )
            result = placer.place(self.region, modules)
        else:
            result = CPPlacer(PlacerConfig(time_limit=self.time_limit)).place(
                self.region, modules
            )
        if result.placements:
            result.verify()
        return FlowResult(
            placement=result,
            report=placement_report(result),
            rendering=render_placement(result),
            bitstream=assemble_bitstream(result),
        )

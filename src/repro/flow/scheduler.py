"""Phase-based reconfiguration scheduling.

Runtime reconfigurable applications run in *phases* (Styles & Luk's
phase-optimized systems, the paper's ref [10]): each phase needs a set of
modules, and transitions reconfigure the fabric.  Since reconfiguration
time is proportional to the configuration frames written (the overhead the
paper's introduction worries about), a scheduler should keep modules that
survive a transition *in place* and only write frames for what changes.

:class:`ReconfigurationScheduler` plans placements for a phase sequence
under two policies:

* **sticky** — modules present in consecutive phases keep their placement;
  only departures are erased and arrivals placed (into the residual
  region, CP-placed);
* **naive** — every phase is placed from scratch (each transition rewrites
  everything that moved).

Transition cost counts the configuration frames that must be *written*:
the columns touched by modules that are new or moved.  Departed modules
cost nothing — real systems leave stale configuration in place until it is
overwritten (cf. Becker et al. on partial bitstreams); the mock bitstream
diff remains available for full-image comparisons.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.incremental import IncrementalPlacer
from repro.core.lns import LNSConfig, LNSPlacer
from repro.core.placer import PlacerConfig
from repro.core.result import Placement, PlacementResult
from repro.fabric.region import PartialRegion
from repro.modules.module import Module


def _written_frames(
    previous: Optional[PlacementResult], current: PlacementResult
) -> int:
    """Configuration frames (columns) written by this transition.

    A module costs its footprint's columns iff it is new or its placement
    changed; surviving modules in unchanged positions are free, and
    departed modules leave stale configuration at no cost.
    """
    prev_pos = {}
    if previous is not None:
        prev_pos = {
            p.module.name: (p.shape_index, p.x, p.y)
            for p in previous.placements
        }
    columns = set()
    for p in current.placements:
        if prev_pos.get(p.module.name) == (p.shape_index, p.x, p.y):
            continue
        columns.update(p.x + dx for dx, _, _ in p.footprint.cells)
    return len(columns)


@dataclass(frozen=True)
class Phase:
    """One application phase: a name and its active module set."""

    name: str
    modules: Tuple[Module, ...]

    def __init__(self, name: str, modules: Sequence[Module]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "modules", tuple(modules))
        names = [m.name for m in self.modules]
        if len(names) != len(set(names)):
            raise ValueError(f"phase {name!r} lists a module twice")

    def module_names(self) -> List[str]:
        return [m.name for m in self.modules]


@dataclass
class Transition:
    """Cost record of one phase change."""

    from_phase: str
    to_phase: str
    frames: int
    arrived: List[str]
    departed: List[str]
    kept: List[str]


@dataclass
class ScheduleResult:
    """Outcome of scheduling a phase sequence."""

    #: placements per phase, in sequence order
    phases: List[PlacementResult]
    transitions: List[Transition]
    #: module names that could not be placed, per phase name
    failures: Dict[str, List[str]] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def total_frames(self) -> int:
        return sum(t.frames for t in self.transitions)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        return (
            f"phases={len(self.phases)} total_frames={self.total_frames} "
            f"failures={sum(len(v) for v in self.failures.values())} "
            f"elapsed={self.elapsed:.2f}s"
        )


class ReconfigurationScheduler:
    """Plan placements across phases, minimizing rewritten frames."""

    def __init__(
        self,
        region: PartialRegion,
        sticky: bool = True,
        placer_config: Optional[PlacerConfig] = None,
        fresh_time_limit: float = 4.0,
    ) -> None:
        self.region = region
        self.sticky = sticky
        self.placer_config = placer_config or PlacerConfig(
            time_limit=1.0, first_solution_only=True
        )
        self.fresh_time_limit = fresh_time_limit

    # ------------------------------------------------------------------
    def schedule(self, phases: Sequence[Phase]) -> ScheduleResult:
        """Place every phase; record transition frame costs."""
        start = time.monotonic()
        results: List[PlacementResult] = []
        transitions: List[Transition] = []
        failures: Dict[str, List[str]] = {}
        previous: Optional[PlacementResult] = None
        prev_phase_name = "<empty>"

        for phase in phases:
            if self.sticky and previous is not None:
                result, failed = self._sticky_step(previous, phase)
            else:
                result, failed = self._fresh_step(phase)
            if failed:
                failures[phase.name] = failed
            result.verify()
            frames = _written_frames(previous, result)
            prev_names = (
                {p.module.name for p in previous.placements}
                if previous is not None
                else set()
            )
            new_names = {p.module.name for p in result.placements}
            transitions.append(
                Transition(
                    from_phase=prev_phase_name,
                    to_phase=phase.name,
                    frames=frames,
                    arrived=sorted(new_names - prev_names),
                    departed=sorted(prev_names - new_names),
                    kept=sorted(prev_names & new_names),
                )
            )
            results.append(result)
            previous = result
            prev_phase_name = phase.name

        return ScheduleResult(
            phases=results,
            transitions=transitions,
            failures=failures,
            elapsed=time.monotonic() - start,
        )

    # ------------------------------------------------------------------
    def _fresh_step(
        self, phase: Phase
    ) -> Tuple[PlacementResult, List[str]]:
        """Place the whole phase from scratch (naive policy)."""
        placer = LNSPlacer(
            LNSConfig(time_limit=self.fresh_time_limit, seed=0)
        )
        result = placer.place(self.region, list(phase.modules))
        if result.all_placed and result.placements:
            return result, []
        # partial fallback: place greedily one by one so the schedule can
        # continue and report precisely what did not fit
        inc = IncrementalPlacer(self.region, self.placer_config)
        rejected = inc.add_all(list(phase.modules))
        return inc.result(), [m.name for m in rejected]

    def _sticky_step(
        self, previous: PlacementResult, phase: Phase
    ) -> Tuple[PlacementResult, List[str]]:
        """Keep surviving modules in place; place only the arrivals."""
        wanted = {m.name: m for m in phase.modules}
        kept = [
            p for p in previous.placements if p.module.name in wanted
        ]
        inc = IncrementalPlacer(self.region, self.placer_config)
        for p in kept:
            inc._placements[p.module.name] = p  # trusted: verified before
        arrivals = [
            m for m in phase.modules
            if m.name not in {p.module.name for p in kept}
        ]
        rejected = inc.add_all(arrivals)
        return inc.result(), [m.name for m in rejected]


def compare_policies(
    region: PartialRegion, phases: Sequence[Phase], **kwargs
) -> Tuple[ScheduleResult, ScheduleResult]:
    """(sticky, naive) schedules of the same phase sequence."""
    sticky = ReconfigurationScheduler(
        region, sticky=True, **kwargs
    ).schedule(phases)
    naive = ReconfigurationScheduler(
        region, sticky=False, **kwargs
    ).schedule(phases)
    return sticky, naive

"""ReCoBus-Builder-style design flow (Figure 2).

The paper's placer is "planned to be a part of the ReCoBus-Builder
framework": partial region specification + module specifications go into
the constraint solver, which produces the optimal placement; the framework
then synthesizes the communication architecture and assembles bitstreams.
This package provides that surrounding flow against our simulated fabric:

* :mod:`repro.flow.design_flow` — the end-to-end orchestration,
* :mod:`repro.flow.busmacro` — on-FPGA communication (bus macro) modelling,
* :mod:`repro.flow.bitstream` — deterministic mock bitstream assembly with
  partial-reconfiguration diffs,
* :mod:`repro.flow.visualize` — figure-style ASCII renderings.
"""

from repro.flow.design_flow import DesignFlow, FlowResult
from repro.flow.busmacro import add_bus_row, attach_bus_macro, bus_aligned_modules
from repro.flow.bitstream import Bitstream, assemble_bitstream, partial_diff
from repro.flow.visualize import alternatives_gallery, comparison_figure
from repro.flow.constraints_export import (
    export_constraints,
    parse_constraints,
    reconstruct_placements,
    save_constraints,
)
from repro.flow.scheduler import (
    Phase,
    ReconfigurationScheduler,
    ScheduleResult,
    compare_policies,
)

__all__ = [
    "DesignFlow",
    "FlowResult",
    "add_bus_row",
    "attach_bus_macro",
    "bus_aligned_modules",
    "Bitstream",
    "assemble_bitstream",
    "partial_diff",
    "alternatives_gallery",
    "comparison_figure",
    "export_constraints",
    "save_constraints",
    "parse_constraints",
    "reconstruct_placements",
    "Phase",
    "ReconfigurationScheduler",
    "ScheduleResult",
    "compare_policies",
]

"""repro — CP-based FPGA module placement with design alternatives.

A from-scratch Python reproduction of *"Enhancing Resource Utilization
with Design Alternatives in Runtime Reconfigurable Systems"* (Wold, Koch,
Torresen — RAW @ IPDPS 2011), including every substrate the paper relies
on: a finite-domain constraint solver, a geost-style geometric kernel
extended with resource types, a heterogeneous FPGA fabric model, module
generation with design alternatives, baseline placers from the related
work, and a ReCoBus-style design flow.

Quickstart::

    from repro.fabric import irregular_device, PartialRegion
    from repro.modules import ModuleGenerator
    from repro.core import place, placement_report

    region = PartialRegion.whole_device(irregular_device(64, 16, seed=7))
    modules = ModuleGenerator(seed=1).generate_set(6)
    result = place(region, modules, time_limit=5.0)
    print(placement_report(result))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every table and figure.
"""

__version__ = "1.0.0"

from repro.core import CPPlacer, PlacerConfig, place
from repro.core.lns import LNSConfig, LNSPlacer

__all__ = [
    "__version__",
    "CPPlacer",
    "PlacerConfig",
    "place",
    "LNSPlacer",
    "LNSConfig",
]

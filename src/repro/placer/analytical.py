"""Analytical (force-directed) placement with anchor-mask legalization.

FRAME-style analytical floorplanning split into the classic two stages:

1. **Relaxation** — modules are soft bodies represented by the centroid of
   their primary footprint's bounding box.  A NumPy force loop integrates
   three fields over the resource-weighted grid:

   * *compaction attraction*: a constant leftward pull toward the x = 0
     wall, the continuous analogue of the paper's min-extent objective
     (Eq. 6),
   * *pairwise overlap repulsion*: overlapping bounding boxes push each
     other apart along the axis of least penetration, and
   * *per-resource density penalty*: each module splats its per-type cell
     demand uniformly over its bbox; binned demand minus the fabric's
     typed capacity planes (from :func:`repro.fabric.masks.compatibility_masks`)
     yields an overflow field whose negative gradient steers modules
     toward bins that can actually host their resource mix — this is what
     pulls BRAM-hungry modules onto the sparse BRAM columns.

2. **Legalization** — relaxed centroids are snapped, left-to-right, onto
   the nearest valid anchor (:func:`repro.fabric.masks.nearest_anchor`)
   of the occupancy-checked anchor masks, choosing the design alternative
   whose legalized centroid moves least from its relaxed position.  A
   bounded left-compaction polish then re-anchors the modules on the
   extent frontier while strictly improving their right edges.

The relaxation is fully deterministic per seed (the only randomness is
the seeded initial jitter) and typically converges in well under 100 ms
on the Table-I instances, which is what makes the placer useful twice:
standalone as the ``analytical`` backend, and as the warm-start seeder
whose legalized placement becomes the CP branch-and-bound's initial
incumbent (``warm_start="analytical"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fabric.masks import compatibility_masks, nearest_anchor
from repro.fabric.resource import ResourceType
from repro.core.result import Placement
from repro.modules.module import Module
from repro.obs.trace import ANALYTICAL_ITERATE, Tracer
from repro.placer.base import BasePlacer, _State


@dataclass
class AnalyticalConfig:
    """Knobs of the force relaxation and its legalizer."""

    #: maximum relaxation iterations (the loop usually converges earlier)
    iterations: int = 300
    #: integration step in cells; decays geometrically per iteration
    step: float = 1.0
    step_decay: float = 0.985
    #: constant leftward compaction pull (cells of force per iteration)
    pull: float = 0.6
    #: gain on pairwise bbox-penetration repulsion
    repulsion: float = 0.35
    #: gain on the per-resource density-overflow gradient
    density: float = 0.05
    #: square bin edge (cells) of the density grid
    bin_size: int = 4
    #: stop once the mean per-module move drops below this many cells
    tolerance: float = 0.02
    #: emit one ``analytical.iterate`` event every this many iterations
    trace_every: int = 10
    #: bounded left-compaction passes after the snap (0 disables the
    #: polish); each bound covers one of the two monotone stages
    compaction_passes: int = 10
    #: how far (in columns) behind the extent a right edge still counts
    #: as frontier during the first compaction stage
    frontier_margin: int = 2
    seed: int = 0
    #: wall-clock budget; the relaxation checks it every iteration and the
    #: polish between passes (None = run to convergence)
    time_limit: Optional[float] = None
    #: structured event sink for ``analytical.iterate`` (None = off)
    tracer: Optional[Tracer] = None


class AnalyticalPlacer(BasePlacer):
    """Force relaxation over module centroids + nearest-anchor snap."""

    name = "analytical"

    def __init__(self, config: Optional[AnalyticalConfig] = None) -> None:
        self.config = config or AnalyticalConfig()
        self.seed = self.config.seed
        self.time_limit = self.config.time_limit

    # ------------------------------------------------------------------
    # Relaxation
    # ------------------------------------------------------------------
    def _demand_planes(
        self, state: _State
    ) -> Tuple[Dict[ResourceType, np.ndarray], List[ResourceType]]:
        """Typed capacity planes (binned) and the resource kinds in demand."""
        cfg = self.config
        b = max(1, cfg.bin_size)
        H, W = state.H, state.W
        nby, nbx = -(-H // b), -(-W // b)
        compat = compatibility_masks(state.region)
        kinds = sorted(
            {
                kind
                for m in state.modules
                for kind in m.primary().resource_counts()
            },
            key=lambda k: int(k),
        )
        capacity: Dict[ResourceType, np.ndarray] = {}
        for kind in kinds:
            plane = np.zeros((nby * b, nbx * b), dtype=np.float64)
            plane[:H, :W] = compat[kind]
            capacity[kind] = plane.reshape(nby, b, nbx, b).sum(axis=(1, 3))
        return capacity, kinds

    def _overflow_gradient(
        self,
        capacity: Dict[ResourceType, np.ndarray],
        kinds: List[ResourceType],
        demand: Dict[ResourceType, np.ndarray],
        cx: np.ndarray,
        cy: np.ndarray,
        w: np.ndarray,
        h: np.ndarray,
    ) -> np.ndarray:
        """Per-module force from the typed density-overflow fields."""
        cfg = self.config
        b = max(1, cfg.bin_size)
        nby, nbx = next(iter(capacity.values())).shape
        n = cx.size
        force = np.zeros((n, 2), dtype=np.float64)
        bx = np.clip((cx // b).astype(np.int64), 0, nbx - 1)
        by = np.clip((cy // b).astype(np.int64), 0, nby - 1)
        for kind in kinds:
            dem = np.zeros((nby, nbx), dtype=np.float64)
            per_cell = demand[kind]
            # splat each module's demand uniformly over the bins its bbox
            # covers (integer bin ranges; exact fractions don't pay off at
            # bin_size ~ 4)
            x0 = np.clip(((cx - w / 2) // b).astype(np.int64), 0, nbx - 1)
            x1 = np.clip(((cx + w / 2) // b).astype(np.int64), 0, nbx - 1)
            y0 = np.clip(((cy - h / 2) // b).astype(np.int64), 0, nby - 1)
            y1 = np.clip(((cy + h / 2) // b).astype(np.int64), 0, nby - 1)
            for i in range(n):
                if per_cell[i] <= 0:
                    continue
                span = (y1[i] - y0[i] + 1) * (x1[i] - x0[i] + 1)
                dem[y0[i]:y1[i] + 1, x0[i]:x1[i] + 1] += per_cell[i] / span
            overflow = np.maximum(0.0, dem - capacity[kind])
            if not overflow.any():
                continue
            gy, gx = np.gradient(overflow)
            sel = per_cell > 0
            force[sel, 0] -= gx[by[sel], bx[sel]] * per_cell[sel]
            force[sel, 1] -= gy[by[sel], bx[sel]] * per_cell[sel]
        return force

    def _relax(self, state: _State) -> Tuple[np.ndarray, np.ndarray, int]:
        """Run the force loop; returns (centroids, overlap, iterations)."""
        cfg = self.config
        modules = state.modules
        n = len(modules)
        H, W = state.H, state.W
        w = np.array([m.primary().width for m in modules], dtype=np.float64)
        h = np.array([m.primary().height for m in modules], dtype=np.float64)
        areas = np.array([m.primary().area for m in modules], dtype=np.float64)
        capacity, kinds = self._demand_planes(state)
        demand = {
            kind: np.array(
                [m.primary().resource_counts().get(kind, 0) for m in modules],
                dtype=np.float64,
            )
            for kind in kinds
        }

        # seeded start: big modules to the left, small jitter breaks the
        # symmetry between identical modules deterministically
        rng = np.random.default_rng(cfg.seed)
        order = np.argsort(-areas, kind="stable")
        cx = np.empty(n)
        cy = np.empty(n)
        cursor = 0.0
        row = 0.0
        for i in order:
            if row + h[i] > H:
                row, cursor = 0.0, cursor + w[i]
            cx[i] = min(cursor + w[i] / 2, W - w[i] / 2)
            cy[i] = min(row + h[i] / 2, H - h[i] / 2)
            row += h[i]
        cx += rng.uniform(-0.5, 0.5, n)
        cy += rng.uniform(-0.5, 0.5, n)

        # deterministic push direction for exactly-coincident pairs
        tie = np.sign(np.subtract.outer(np.arange(n), np.arange(n)))
        tie[tie == 0] = 1.0
        tracer = cfg.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None

        step = cfg.step
        overlap_total = 0.0
        iteration = 0
        for iteration in range(1, cfg.iterations + 1):
            force = np.zeros((n, 2), dtype=np.float64)
            force[:, 0] -= cfg.pull

            dx = cx[:, None] - cx[None, :]
            dy = cy[:, None] - cy[None, :]
            px = (w[:, None] + w[None, :]) / 2 - np.abs(dx)
            py = (h[:, None] + h[None, :]) / 2 - np.abs(dy)
            overlapping = (px > 0) & (py > 0)
            np.fill_diagonal(overlapping, False)
            overlap_total = float((px * py)[overlapping].sum()) / 2
            sx = np.where(dx == 0, tie, np.sign(dx))
            sy = np.where(dy == 0, tie, np.sign(dy))
            use_x = overlapping & (px <= py)
            use_y = overlapping & ~ (px <= py)
            force[:, 0] += cfg.repulsion * np.where(use_x, px * sx, 0.0).sum(
                axis=1
            )
            force[:, 1] += cfg.repulsion * np.where(use_y, py * sy, 0.0).sum(
                axis=1
            )

            if cfg.density > 0:
                force += cfg.density * self._overflow_gradient(
                    capacity, kinds, demand, cx, cy, w, h
                )

            move = step * np.clip(force, -3.0, 3.0)
            cx = np.clip(cx + move[:, 0], w / 2, W - w / 2)
            cy = np.clip(cy + move[:, 1], h / 2, H - h / 2)
            step *= cfg.step_decay
            mean_move = float(np.abs(move).mean())
            if tracer is not None and (
                iteration % max(1, cfg.trace_every) == 0 or iteration == 1
            ):
                tracer.emit(
                    ANALYTICAL_ITERATE,
                    iteration=iteration,
                    move=mean_move,
                    overlap=overlap_total,
                )
            if mean_move < cfg.tolerance or state.out_of_budget():
                break
        state.stats["iterations"] = iteration
        state.stats["overlap"] = overlap_total
        return cx, cy, iteration

    # ------------------------------------------------------------------
    # Legalization
    # ------------------------------------------------------------------
    @staticmethod
    def _shape_centroid(off: np.ndarray) -> Tuple[float, float]:
        """Mean (dx, dy) of one shape's cells (offsets are (dy, dx))."""
        return float(off[:, 1].mean()), float(off[:, 0].mean())

    def _snap(
        self, state: _State, cx: np.ndarray, cy: np.ndarray
    ) -> List[Module]:
        """Left-to-right nearest-anchor snap; least-movement alternative."""
        n = len(state.modules)
        areas = [m.primary().area for m in state.modules]
        order = sorted(range(n), key=lambda i: (cx[i], -areas[i], i))
        unplaced: List[Module] = []
        snapped = 0
        movement = 0.0
        for mi in order:
            best: Optional[Tuple[float, int, int, int]] = None
            for si in range(state.modules[mi].n_alternatives):
                mask = state.anchors(mi, si)
                ox, oy = self._shape_centroid(state.offsets[mi][si])
                hit = nearest_anchor(mask, cx[mi] - ox, cy[mi] - oy)
                if hit is None:
                    continue
                ax, ay = hit
                d2 = (ax + ox - cx[mi]) ** 2 + (ay + oy - cy[mi]) ** 2
                key = (d2, si, ax, ay)
                if best is None or key < best:
                    best = key
            if best is None:
                unplaced.append(state.modules[mi])
                continue
            d2, si, ax, ay = best
            state.commit(mi, si, ax, ay)
            snapped += 1
            movement += float(np.sqrt(d2))
        state.stats["snapped"] = snapped
        state.stats["snap_movement"] = movement
        return unplaced

    def _try_left_move(self, state: _State, mi: int, pi: int) -> bool:
        """Re-anchor one placement iff some (shape, anchor) strictly
        reduces its right edge; the floorplan stays valid throughout (the
        module only ever lands on currently-free valid anchors)."""
        p = state.placements[pi]
        off = state.offsets[mi][p.shape_index]
        state.occupancy[p.y + off[:, 0], p.x + off[:, 1]] = False
        best: Optional[Tuple[int, int, int, int]] = None
        for si, fp in enumerate(p.module.shapes):
            mask = state.anchors(mi, si)
            ys, xs = np.nonzero(mask)
            if xs.size == 0:
                continue
            rights = xs + fp.width
            k = np.lexsort((ys, xs, rights))[0]
            key = (int(rights[k]), int(xs[k]), int(ys[k]), si)
            if best is None or key < best:
                best = key
        if best is not None and best[0] < p.right:
            _, x, y, si = best
            new_off = state.offsets[mi][si]
            state.occupancy[y + new_off[:, 0], x + new_off[:, 1]] = True
            state.placements[pi] = Placement(p.module, si, x, y)
            return True
        state.occupancy[p.y + off[:, 0], p.x + off[:, 1]] = True
        return False

    def _compact(self, state: _State) -> int:
        """Bounded left-compaction polish; returns the move count.

        Two monotone stages (every accepted move strictly reduces one
        module's right edge, so the extent never increases): first the
        extent *frontier* is re-anchored until fixpoint — only moving
        frontier modules can reduce the objective, and touching nothing
        else preserves the holes they compact into — then full
        ascending-x sweeps tighten the interior, which helps the
        warm-started CP search and any later arrivals without being able
        to undo the frontier's gains."""
        cfg = self.config
        moves = 0
        mi_of_name = {m.name: i for i, m in enumerate(state.modules)}
        passes = max(0, cfg.compaction_passes)
        for _ in range(passes):
            if state.out_of_budget():
                break
            improved = False
            extent = state.extent()
            for pi, p in enumerate(state.placements):
                if p.right >= extent - cfg.frontier_margin:
                    if self._try_left_move(state, mi_of_name[p.module.name], pi):
                        moves += 1
                        improved = True
            if not improved:
                break
        for _ in range(passes):
            if state.out_of_budget():
                break
            improved = False
            order = sorted(
                range(len(state.placements)),
                key=lambda pi: (state.placements[pi].x, state.placements[pi].y),
            )
            for pi in order:
                p = state.placements[pi]
                if self._try_left_move(state, mi_of_name[p.module.name], pi):
                    moves += 1
                    improved = True
            if not improved:
                break
        state.stats["compaction_moves"] = moves
        return moves

    def _retry_unplaced(
        self, state: _State, unplaced: List[Module]
    ) -> List[Module]:
        """Second chance for modules the snap could not seat: compaction
        just freed space, so try again with plain bottom-left anchors."""
        mi_of_name = {m.name: i for i, m in enumerate(state.modules)}
        still: List[Module] = []
        for m in unplaced:
            mi = mi_of_name[m.name]
            best: Optional[Tuple[int, int, int]] = None
            for si in range(m.n_alternatives):
                mask = state.anchors(mi, si)
                ys, xs = np.nonzero(mask)
                if xs.size == 0:
                    continue
                k = np.lexsort((ys, xs))[0]
                key = (int(xs[k]), int(ys[k]), si)
                if best is None or key < best:
                    best = key
            if best is None:
                still.append(m)
            else:
                x, y, si = best
                state.commit(mi, si, x, y)
                state.stats["snapped"] = state.stats.get("snapped", 0) + 1
        return still

    # ------------------------------------------------------------------
    def _run(self, state: _State) -> List[Module]:
        if not state.modules:
            return []
        cx, cy, _ = self._relax(state)
        unplaced = self._snap(state, cx, cy)
        if self.config.compaction_passes > 0 and state.placements:
            self._compact(state)
        if unplaced:
            unplaced = self._retry_unplaced(state, unplaced)
        return unplaced

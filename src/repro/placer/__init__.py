"""Baseline placers from the related-work taxonomy (Section II).

These implement the classic alternatives the paper positions itself
against:

* greedy offline heuristics — first-fit / best-fit / bottom-left
  (:mod:`repro.placer.greedy`),
* Bazargan-style online placement managing free space with maximal empty
  rectangles (KAMER, :mod:`repro.placer.kamer`), and
* a simulated-annealing placer over (order, alternative) encodings
  (:mod:`repro.placer.annealing`), and
* a FRAME-style analytical placer — force relaxation over centroids with
  nearest-anchor legalization (:mod:`repro.placer.analytical`), also the
  CP/LNS warm-start seeder.

All of them produce :class:`repro.core.result.PlacementResult` objects and
pass the same verification, so benchmark ablation A3 compares them
apples-to-apples against the CP placer.
"""

from repro.placer.analytical import AnalyticalConfig, AnalyticalPlacer
from repro.placer.base import BasePlacer
from repro.placer.greedy import BottomLeftPlacer, FirstFitPlacer, BestFitPlacer
from repro.placer.kamer import KamerPlacer
from repro.placer.annealing import AnnealingConfig, AnnealingPlacer
from repro.placer.slots import SlotConfig, SlotPlacer, slot_utilization

__all__ = [
    "AnalyticalConfig",
    "AnalyticalPlacer",
    "BasePlacer",
    "BottomLeftPlacer",
    "FirstFitPlacer",
    "BestFitPlacer",
    "KamerPlacer",
    "AnnealingConfig",
    "AnnealingPlacer",
    "SlotConfig",
    "SlotPlacer",
    "slot_utilization",
]

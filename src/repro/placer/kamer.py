"""Bazargan-style online placement with maximal empty rectangles (KAMER).

Reference [4] of the paper (Bazargan & Sarrafzadeh) manages free space for
*online* placement; the "Keep All Maximal Empty Rectangles" strategy
maintains the set of maximal free rectangles, places each arriving module's
bounding box into a chosen MER, and re-splits intersecting rectangles.

Because our fabric is heterogeneous, a candidate position inside a MER is
additionally validated against the resource-typed anchor mask; the MER
machinery is used (as in the original) for fast free-space management,
while M_b feasibility comes from the same mask test all placers share.
Modules arrive online (input order) and are rejected if nothing fits —
utilization then reflects the service level, the metric the online
literature reports.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.modules.module import Module
from repro.placer.base import BasePlacer, _State

Rect = Tuple[int, int, int, int]  # (x, y, w, h)


def split_rectangle(mer: Rect, used: Rect) -> List[Rect]:
    """Split a MER around a placed box: up to four residual rectangles."""
    mx, my, mw, mh = mer
    ux, uy, uw, uh = used
    ix0, iy0 = max(mx, ux), max(my, uy)
    ix1, iy1 = min(mx + mw, ux + uw), min(my + mh, uy + uh)
    if ix0 >= ix1 or iy0 >= iy1:
        return [mer]  # no intersection
    out: List[Rect] = []
    if ix0 > mx:
        out.append((mx, my, ix0 - mx, mh))           # left slab
    if ix1 < mx + mw:
        out.append((ix1, my, mx + mw - ix1, mh))     # right slab
    if iy0 > my:
        out.append((mx, my, mw, iy0 - my))           # bottom slab
    if iy1 < my + mh:
        out.append((mx, iy1, mw, my + mh - iy1))     # top slab
    return out


def prune_non_maximal(rects: List[Rect]) -> List[Rect]:
    """Drop rectangles contained in another rectangle of the list."""
    out: List[Rect] = []
    for i, a in enumerate(rects):
        ax, ay, aw, ah = a
        contained = False
        for j, b in enumerate(rects):
            if i == j:
                continue
            bx, by, bw, bh = b
            if bx <= ax and by <= ay and bx + bw >= ax + aw and by + bh >= ay + ah:
                if (b != a) or (j < i):  # identical rects: keep the first
                    contained = True
                    break
        if not contained:
            out.append(a)
    return out


class KamerPlacer(BasePlacer):
    """Online first-fit over maximal empty rectangles."""

    name = "kamer"

    def __init__(self, fit: str = "best-area") -> None:
        if fit not in ("best-area", "first", "bottom-left"):
            raise ValueError(f"unknown fit rule {fit!r}")
        self.fit = fit

    # ------------------------------------------------------------------
    def _initial_mers(self, state: _State) -> List[Rect]:
        from repro.metrics.fragmentation import maximal_empty_rectangles

        return maximal_empty_rectangles(state.region.allowed_mask())

    def _candidate_in_mer(
        self, state: _State, mi: int, si: int, mer: Rect
    ) -> Optional[Tuple[int, int]]:
        """Bottom-left resource-feasible anchor of shape inside the MER."""
        fp = state.modules[mi].shapes[si]
        x0, y0, w, h = mer
        if fp.width > w or fp.height > h:
            return None
        mask = state.anchors(mi, si)
        sub = mask[y0 : y0 + h - fp.height + 1, x0 : x0 + w - fp.width + 1]
        ys, xs = np.nonzero(sub)
        if xs.size == 0:
            return None
        order = np.lexsort((ys, xs))
        return x0 + int(xs[order[0]]), y0 + int(ys[order[0]])

    def _run(self, state: _State) -> List[Module]:
        mers = self._initial_mers(state)
        unplaced: List[Module] = []
        for mi, module in enumerate(state.modules):
            choice = None  # (score, si, x, y, mer)
            for mer in sorted(
                mers,
                key=(lambda r: r[2] * r[3]) if self.fit == "best-area" else
                    (lambda r: (r[0], r[1])),
            ):
                for si in range(len(module.shapes)):
                    pos = self._candidate_in_mer(state, mi, si, mer)
                    if pos is None:
                        continue
                    choice = (si, pos[0], pos[1])
                    break
                if choice is not None:
                    break
            if choice is None:
                unplaced.append(module)
                continue
            si, x, y = choice
            fp = module.shapes[si]
            state.commit(mi, si, x, y)
            used = (x, y, fp.width, fp.height)
            new: List[Rect] = []
            for mer in mers:
                new.extend(split_rectangle(mer, used))
            mers = prune_non_maximal(list(dict.fromkeys(new)))
        return unplaced

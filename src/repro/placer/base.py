"""Shared scaffolding for the baseline placers.

Baselines maintain an explicit occupancy mask and query anchor feasibility
through the same vectorized machinery as the kernel
(:func:`repro.fabric.masks.valid_anchor_mask` plus an occupancy
convolution), so their placements satisfy M_a / M_b / M_c by construction
and are cross-checked by ``PlacementResult.verify`` in the tests.

Seeding, wall-clock budgets and :class:`~repro.fabric.cache.AnchorMaskCache`
reuse are owned here, once: ``BasePlacer.place`` builds one :class:`_State`
carrying the RNG, the deadline and the (possibly cached) static anchor
masks, and every concrete placer only implements ``_run(state)``.  The
backend adapters (:mod:`repro.core.backend`) thread a request's seed,
budget and cache straight through this surface.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import Placement, PlacementResult
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.masks import compatibility_masks, valid_anchor_mask
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.module import Module


class _State:
    """Occupancy-tracking placement state shared by the greedy baselines."""

    def __init__(
        self,
        region: PartialRegion,
        modules: Sequence[Module],
        cache: Optional[AnchorMaskCache] = None,
        seed: int = 0,
        deadline: Optional[float] = None,
    ) -> None:
        self.region = region
        self.modules = list(modules)
        self.H, self.W = region.height, region.width
        self.occupancy = np.zeros((self.H, self.W), dtype=bool)
        #: static anchors per (module index, shape index); served from the
        #: shared cache when one is handed in (the masks are read-only
        #: views then — ``anchors`` never mutates them)
        if cache is not None:
            key = cache.region_key(region)
            self.static: List[List[np.ndarray]] = [
                [cache.anchor_mask(region, fp, region_key=key) for fp in m.shapes]
                for m in self.modules
            ]
        else:
            compat = compatibility_masks(region)
            self.static = [
                [
                    valid_anchor_mask(region, sorted(fp.cells), compat)
                    for fp in m.shapes
                ]
                for m in self.modules
            ]
        #: per (module, shape) cell offset arrays (dy, dx)
        self.offsets: List[List[np.ndarray]] = [
            [
                np.array([(dy, dx) for dx, dy, _ in sorted(fp.cells)], dtype=np.int64)
                for fp in m.shapes
            ]
            for m in self.modules
        ]
        self.placements: List[Placement] = []
        #: seeded RNG for stochastic placers (annealing); deterministic per
        #: (placer seed) because it is drawn nowhere else
        self.rng = random.Random(seed)
        #: wall-clock deadline (``time.monotonic()`` scale) or None
        self.deadline = deadline
        #: placer-specific counters merged into ``PlacementResult.stats``
        self.stats: Dict = {}

    # ------------------------------------------------------------------
    def anchors(self, mi: int, si: int) -> np.ndarray:
        """Current (H, W) anchor feasibility of one shape."""
        static = self.static[mi][si]
        if not self.occupancy.any():
            return static
        off = self.offsets[mi][si]
        ys, xs = np.nonzero(static)
        if ys.size == 0:
            return static
        # check occupancy under each candidate anchor (vectorized gather)
        cy = ys[:, None] + off[None, :, 0]
        cx = xs[:, None] + off[None, :, 1]
        free = ~self.occupancy[cy, cx].any(axis=1)
        out = np.zeros_like(static)
        out[ys[free], xs[free]] = True
        return out

    def commit(self, mi: int, si: int, x: int, y: int) -> None:
        off = self.offsets[mi][si]
        self.occupancy[y + off[:, 0], x + off[:, 1]] = True
        self.placements.append(Placement(self.modules[mi], si, x, y))

    def reset(self) -> None:
        """Clear occupancy and placements (decode loops re-place from zero)."""
        self.occupancy[:] = False
        self.placements = []

    def out_of_budget(self) -> bool:
        """True once the wall-clock deadline (if any) has passed."""
        return self.deadline is not None and time.monotonic() >= self.deadline

    def extent(self) -> int:
        return max((p.right for p in self.placements), default=0)


class BasePlacer:
    """Interface of every baseline placer.

    Class-level ``seed`` / ``time_limit`` are the uniform knobs the backend
    adapter overrides per request; placers with their own config objects
    (annealing, slots) mirror the relevant fields onto these attributes in
    their ``__init__``.
    """

    name = "base"
    #: RNG seed handed to the run state (stochastic placers draw from it)
    seed: int = 0
    #: optional wall-clock budget in seconds (None = unbounded)
    time_limit: Optional[float] = None

    def place(
        self,
        region: PartialRegion,
        modules: Sequence[Module],
        *,
        cache: Optional[AnchorMaskCache] = None,
    ) -> PlacementResult:
        start = time.monotonic()
        deadline = (
            start + self.time_limit if self.time_limit is not None else None
        )
        state = _State(
            region, modules, cache=cache, seed=self.seed, deadline=deadline
        )
        unplaced = self._run(state)
        return PlacementResult(
            region,
            state.placements,
            unplaced,
            status="feasible" if not unplaced else "partial",
            elapsed=time.monotonic() - start,
            stats={"method": self.name, **state.stats},
        )

    def _run(self, state: _State) -> List[Module]:
        """Place modules; return the ones that did not fit (override)."""
        raise NotImplementedError

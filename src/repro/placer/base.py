"""Shared scaffolding for the baseline placers.

Baselines maintain an explicit occupancy mask and query anchor feasibility
through the same vectorized machinery as the kernel
(:func:`repro.fabric.masks.valid_anchor_mask` plus an occupancy
convolution), so their placements satisfy M_a / M_b / M_c by construction
and are cross-checked by ``PlacementResult.verify`` in the tests.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import Placement, PlacementResult
from repro.fabric.masks import compatibility_masks, valid_anchor_mask
from repro.fabric.region import PartialRegion
from repro.modules.footprint import Footprint
from repro.modules.module import Module


class _State:
    """Occupancy-tracking placement state shared by the greedy baselines."""

    def __init__(self, region: PartialRegion, modules: Sequence[Module]) -> None:
        self.region = region
        self.modules = list(modules)
        self.H, self.W = region.height, region.width
        self.occupancy = np.zeros((self.H, self.W), dtype=bool)
        compat = compatibility_masks(region)
        #: static anchors per (module index, shape index)
        self.static: List[List[np.ndarray]] = [
            [
                valid_anchor_mask(region, sorted(fp.cells), compat)
                for fp in m.shapes
            ]
            for m in self.modules
        ]
        #: per (module, shape) cell offset arrays (dy, dx)
        self.offsets: List[List[np.ndarray]] = [
            [
                np.array([(dy, dx) for dx, dy, _ in sorted(fp.cells)], dtype=np.int64)
                for fp in m.shapes
            ]
            for m in self.modules
        ]
        self.placements: List[Placement] = []

    # ------------------------------------------------------------------
    def anchors(self, mi: int, si: int) -> np.ndarray:
        """Current (H, W) anchor feasibility of one shape."""
        static = self.static[mi][si]
        if not self.occupancy.any():
            return static
        off = self.offsets[mi][si]
        ys, xs = np.nonzero(static)
        if ys.size == 0:
            return static
        # check occupancy under each candidate anchor (vectorized gather)
        cy = ys[:, None] + off[None, :, 0]
        cx = xs[:, None] + off[None, :, 1]
        free = ~self.occupancy[cy, cx].any(axis=1)
        out = np.zeros_like(static)
        out[ys[free], xs[free]] = True
        return out

    def commit(self, mi: int, si: int, x: int, y: int) -> None:
        off = self.offsets[mi][si]
        self.occupancy[y + off[:, 0], x + off[:, 1]] = True
        self.placements.append(Placement(self.modules[mi], si, x, y))

    def extent(self) -> int:
        return max((p.right for p in self.placements), default=0)


class BasePlacer:
    """Interface of every baseline placer."""

    name = "base"

    def place(
        self, region: PartialRegion, modules: Sequence[Module]
    ) -> PlacementResult:
        start = time.monotonic()
        state = _State(region, modules)
        unplaced = self._run(state)
        return PlacementResult(
            region,
            state.placements,
            unplaced,
            status="feasible" if not unplaced else "partial",
            elapsed=time.monotonic() - start,
            stats={"method": self.name},
        )

    def _run(self, state: _State) -> List[Module]:
        """Place modules; return the ones that did not fit (override)."""
        raise NotImplementedError

"""Greedy offline placers.

Three classics, all alternative-aware (they consider every shape of a
module when scoring candidate positions, so the benefit of design
alternatives can be measured for cheap heuristics too):

* :class:`BottomLeftPlacer` — modules by decreasing area, each at the
  lowest-leftmost feasible anchor over all its shapes.
* :class:`FirstFitPlacer` — modules in input order, first feasible anchor
  scanning columns left to right (shape order as given).
* :class:`BestFitPlacer` — each module at the position minimizing the
  resulting global extent, ties broken by lower-left preference.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.modules.module import Module
from repro.placer.base import BasePlacer, _State


def _bottom_left_anchor(state: _State, mi: int) -> Optional[Tuple[int, int, int]]:
    """(shape, x, y) minimizing (x, y) over all shapes; None if unplaceable."""
    best: Optional[Tuple[int, int, int]] = None  # (x, y, shape)
    for si in range(len(state.modules[mi].shapes)):
        mask = state.anchors(mi, si)
        ys, xs = np.nonzero(mask)
        if xs.size == 0:
            continue
        order = np.lexsort((ys, xs))
        x, y = int(xs[order[0]]), int(ys[order[0]])
        if best is None or (x, y) < (best[0], best[1]):
            best = (x, y, si)
    if best is None:
        return None
    return best[2], best[0], best[1]


class BottomLeftPlacer(BasePlacer):
    """Decreasing-area order, bottom-left rule."""

    name = "bottom-left"

    def _run(self, state: _State) -> List[Module]:
        order = sorted(
            range(len(state.modules)),
            key=lambda i: -state.modules[i].primary().area,
        )
        unplaced: List[Module] = []
        for mi in order:
            pick = _bottom_left_anchor(state, mi)
            if pick is None:
                unplaced.append(state.modules[mi])
                continue
            si, x, y = pick
            state.commit(mi, si, x, y)
        return unplaced


class FirstFitPlacer(BasePlacer):
    """Input order, first feasible anchor (column-major scan)."""

    name = "first-fit"

    def _run(self, state: _State) -> List[Module]:
        unplaced: List[Module] = []
        for mi in range(len(state.modules)):
            placed = False
            for si in range(len(state.modules[mi].shapes)):
                mask = state.anchors(mi, si)
                ys, xs = np.nonzero(mask)
                if xs.size == 0:
                    continue
                order = np.lexsort((ys, xs))
                state.commit(mi, si, int(xs[order[0]]), int(ys[order[0]]))
                placed = True
                break
            if not placed:
                unplaced.append(state.modules[mi])
        return unplaced


class BestFitPlacer(BasePlacer):
    """Decreasing-area order; position minimizing the resulting extent."""

    name = "best-fit"

    def _run(self, state: _State) -> List[Module]:
        order = sorted(
            range(len(state.modules)),
            key=lambda i: -state.modules[i].primary().area,
        )
        unplaced: List[Module] = []
        for mi in order:
            current = state.extent()
            best: Optional[Tuple[Tuple[int, int, int], Tuple[int, int, int]]] = None
            for si, fp in enumerate(state.modules[mi].shapes):
                mask = state.anchors(mi, si)
                ys, xs = np.nonzero(mask)
                if xs.size == 0:
                    continue
                rights = xs + fp.width
                # resulting extent if placed here
                scores = np.maximum(rights, current)
                key = np.lexsort((ys, xs, scores))
                j = key[0]
                cand_score = (int(scores[j]), int(xs[j]), int(ys[j]))
                if best is None or cand_score < best[0]:
                    best = (cand_score, (si, int(xs[j]), int(ys[j])))
            if best is None:
                unplaced.append(state.modules[mi])
                continue
            si, x, y = best[1]
            state.commit(mi, si, x, y)
        return unplaced

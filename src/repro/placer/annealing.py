"""Simulated-annealing placer.

A sequence-based encoding: the state is a (module order, shape choice)
pair decoded by the bottom-left rule into a concrete placement; moves swap
two modules in the order or switch one module's design alternative.  The
energy is the decoded extent (with a large penalty per unplaced module).
This gives a strong stochastic baseline for ablation A3 and shows that
design alternatives also pay off inside a metaheuristic: with one shape
per module the alternative-switch move vanishes and the reachable state
space shrinks.

The placer implements ``BasePlacer._run`` like every other baseline (it
used to override ``place`` with its own scaffolding): the seeded RNG, the
wall-clock deadline and the static anchor masks all live on the shared
``_State``, so one mask construction serves every decode of the run — and
an :class:`~repro.fabric.cache.AnchorMaskCache` handed in by the backend
adapter serves every *run* on the same region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.result import Placement
from repro.modules.module import Module
from repro.placer.base import BasePlacer, _State


@dataclass
class AnnealingConfig:
    time_limit: float = 5.0
    initial_temperature: float = 8.0
    cooling: float = 0.95
    moves_per_temperature: int = 40
    min_temperature: float = 0.05
    seed: int = 0
    #: energy penalty per unplaced module (dominates any extent term)
    unplaced_penalty: int = 10_000
    #: optional hard cap on decode evaluations; with it set, a run is
    #: fully deterministic per seed regardless of machine load (the
    #: wall-clock limit still applies as a safety net)
    max_evaluations: Optional[int] = None


class AnnealingPlacer(BasePlacer):
    """Simulated annealing over (order, shape-choice) encodings."""

    name = "annealing"

    def __init__(self, config: Optional[AnnealingConfig] = None) -> None:
        self.config = config or AnnealingConfig()
        # mirror onto the uniform BasePlacer knobs: `place` derives the
        # deadline and the state RNG from these
        self.seed = self.config.seed
        self.time_limit = self.config.time_limit

    # ------------------------------------------------------------------
    def _decode(
        self,
        state: _State,
        order: List[int],
        shape_choice: List[int],
    ) -> Tuple[int, List[Placement], List[Module]]:
        """Bottom-left decode; returns (energy, placements, unplaced)."""
        state.reset()
        unplaced: List[Module] = []
        for mi in order:
            si = shape_choice[mi]
            mask = state.anchors(mi, si)
            ys, xs = np.nonzero(mask)
            if xs.size == 0:
                unplaced.append(state.modules[mi])
                continue
            k = np.lexsort((ys, xs))[0]
            state.commit(mi, si, int(xs[k]), int(ys[k]))
        energy = state.extent() + self.config.unplaced_penalty * len(unplaced)
        return energy, state.placements, unplaced

    def _run(self, state: _State) -> List[Module]:
        cfg = self.config
        rng = state.rng
        modules = state.modules
        n = len(modules)

        order = sorted(range(n), key=lambda i: -modules[i].primary().area)
        shapes = [0] * n
        energy, placements, unplaced = self._decode(state, order, shapes)
        best = (energy, placements, unplaced)

        temperature = cfg.initial_temperature
        evaluations = 1

        def exhausted() -> bool:
            # the wall clock stays on as a safety net even under an
            # evaluation cap: a deterministic run must still terminate
            # within (roughly) its budget on a pathologically slow box
            if state.out_of_budget():
                return True
            return (
                cfg.max_evaluations is not None
                and evaluations >= cfg.max_evaluations
            )

        while temperature > cfg.min_temperature and not exhausted():
            for _ in range(cfg.moves_per_temperature):
                if exhausted():
                    break
                new_order = list(order)
                new_shapes = list(shapes)
                if rng.random() < 0.5 and n >= 2:
                    i, j = rng.sample(range(n), 2)
                    new_order[i], new_order[j] = new_order[j], new_order[i]
                else:
                    mi = rng.randrange(n)
                    n_alt = modules[mi].n_alternatives
                    if n_alt > 1:
                        new_shapes[mi] = rng.randrange(n_alt)
                    elif n >= 2:
                        i, j = rng.sample(range(n), 2)
                        new_order[i], new_order[j] = new_order[j], new_order[i]
                new_energy, new_p, new_u = self._decode(
                    state, new_order, new_shapes
                )
                evaluations += 1
                delta = new_energy - energy
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    order, shapes, energy = new_order, new_shapes, new_energy
                    if new_energy < best[0]:
                        best = (new_energy, new_p, new_u)
            temperature *= cfg.cooling

        _, placements, unplaced = best
        state.reset()
        state.placements.extend(placements)
        state.stats["evaluations"] = evaluations
        return unplaced

"""1-D slot-style placement.

The related-work taxonomy (Section II, axis 5) contrasts "1D slot-style"
with "2D-grid module placement".  Early reconfigurable systems divided the
device into fixed-width, full-height *slots*; a module occupies a
contiguous run of slots regardless of how little of each slot it actually
uses.  That simplicity costs utilization twice:

* vertical waste — a module shorter than the device still consumes the
  slots' full height (internal fragmentation of the slot), and
* horizontal waste — module widths are rounded up to whole slots.

:class:`SlotPlacer` implements this model faithfully on top of our fabric
(a module may only anchor at slot boundaries, at y = 0, and reserves the
full height of every slot it touches), so ablation A7 can quantify the 1D
→ 2D utilization gap the literature reports — and show that design
alternatives help the 1D model too (a narrower alternative may need fewer
slots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import Placement, PlacementResult
from repro.fabric.masks import compatibility_masks, valid_anchor_mask
from repro.fabric.region import PartialRegion
from repro.modules.module import Module
from repro.placer.base import BasePlacer, _State


@dataclass
class SlotConfig:
    """Slot geometry."""

    #: slot width in tiles (typical historical systems: 4-8 CLB columns)
    slot_width: int = 4

    def validate(self) -> None:
        if self.slot_width < 1:
            raise ValueError("slot width must be positive")


class SlotPlacer(BasePlacer):
    """First-fit placement into fixed-width, full-height slots."""

    name = "1d-slots"

    def __init__(self, config: Optional[SlotConfig] = None) -> None:
        self.config = config or SlotConfig()
        self.config.validate()

    # ------------------------------------------------------------------
    def slots_needed(self, width: int) -> int:
        """Slots a module of the given bounding-box width occupies."""
        return -(-width // self.config.slot_width)

    def _run(self, state: _State) -> List[Module]:
        sw = self.config.slot_width
        n_slots = state.W // sw
        slot_free = [True] * n_slots
        unplaced: List[Module] = []
        for mi, module in enumerate(state.modules):
            placed = False
            # try alternatives narrow-first: fewer slots wasted
            order = sorted(
                range(len(module.shapes)),
                key=lambda s: module.shapes[s].width,
            )
            for si in order:
                fp = module.shapes[si]
                if fp.height > state.H:
                    continue
                need = self.slots_needed(fp.width)
                if need > n_slots:
                    continue
                anchors = state.anchors(mi, si)
                for first in range(n_slots - need + 1):
                    if not all(slot_free[first : first + need]):
                        continue
                    x = first * sw
                    # slot model anchors at the slot origin, bottom row;
                    # resource compatibility must still hold (M_b)
                    if not anchors[0, x]:
                        continue
                    state.commit(mi, si, x, 0)
                    for k in range(first, first + need):
                        slot_free[k] = False
                    placed = True
                    break
                if placed:
                    break
            if not placed:
                unplaced.append(module)
        return unplaced


def slot_utilization(result: PlacementResult, slot_width: int) -> float:
    """Used tiles / tiles of all *reserved* slots (the 1D accounting).

    The denominator charges whole slots — the honest utilization number a
    slot-based runtime system experiences.
    """
    if not result.placements:
        return 0.0
    H = result.region.height
    reserved_slots = set()
    for p in result.placements:
        first = p.x // slot_width
        need = -(-p.footprint.width // slot_width)
        reserved_slots.update(range(first, first + need))
    reserved_cells = len(reserved_slots) * slot_width * H
    if reserved_cells == 0:
        return 0.0
    return result.used_cells() / reserved_cells

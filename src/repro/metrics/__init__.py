"""Placement quality metrics: utilization, fragmentation, run statistics."""

from repro.metrics.utilization import (
    extent_utilization,
    region_utilization,
    resource_utilization,
    weighted_extent_utilization,
)
from repro.metrics.fragmentation import (
    external_fragmentation,
    internal_fragmentation,
    largest_free_rectangle,
    maximal_empty_rectangles,
)
from repro.metrics.stats import RunAggregate, aggregate_runs

__all__ = [
    "extent_utilization",
    "region_utilization",
    "resource_utilization",
    "weighted_extent_utilization",
    "external_fragmentation",
    "internal_fragmentation",
    "largest_free_rectangle",
    "maximal_empty_rectangles",
    "RunAggregate",
    "aggregate_runs",
]

"""Aggregation of repeated experiment runs (Table I reports means of 50)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class RunAggregate:
    """Mean / stdev / extrema of one measured quantity across runs."""

    name: str
    values: List[float] = field(default_factory=list)

    def add(self, v: float) -> None:
        self.values.append(float(v))

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"no samples recorded for {self.name!r}")
        return sum(self.values) / len(self.values)

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (len(self.values) - 1))

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def summary(self, as_percent: bool = False) -> str:
        if not self.values:
            return f"{self.name}: (no samples)"
        if as_percent:
            return (
                f"{self.name}: mean={self.mean:.1%} sd={self.stdev:.1%} "
                f"[{self.min:.1%}, {self.max:.1%}] n={self.n}"
            )
        return (
            f"{self.name}: mean={self.mean:.3g} sd={self.stdev:.3g} "
            f"[{self.min:.3g}, {self.max:.3g}] n={self.n}"
        )


def aggregate_runs(samples: Sequence[Dict[str, float]]) -> Dict[str, RunAggregate]:
    """Turn a list of per-run metric dicts into named aggregates."""
    out: Dict[str, RunAggregate] = {}
    for sample in samples:
        for k, v in sample.items():
            out.setdefault(k, RunAggregate(k)).add(v)
    return out

"""Average resource utilization (the paper's headline metric).

Table I reports "Mean Area Util." — the fraction of reconfigurable
resources actually used by modules.  Because the placer minimizes the x
extent (Eq. 6), the natural denominator is the *extent window*: the
available cells in the columns up to the occupied extent.  Packing the
same modules into a smaller extent raises this ratio, which is exactly the
effect design alternatives deliver (53% -> 65% in the paper).

Three variants are provided:

* :func:`extent_utilization` — used cells / available cells within the
  occupied x window (the Table I metric),
* :func:`region_utilization` — used cells / all available cells in the
  region (constant denominator; service-level style),
* :func:`resource_utilization` — per resource type within the extent
  window (the Table I CLB / BRAM columns).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.result import PlacementResult
from repro.fabric.resource import ResourceType


def _extent_window(
    result: PlacementResult, from_zero: bool = True
) -> Optional[tuple]:
    """``(lo, hi)`` denominator columns shared by every extent metric.

    ``hi`` is one past the rightmost occupied column.  With ``from_zero``
    the window starts at the first reconfigurable column (extent
    minimization packs against that edge); otherwise at the leftmost
    placed module.  All three utilization variants below slice the same
    window, so their denominators always agree column-for-column.
    """
    if not result.placements:
        return None
    lo = min(p.x for p in result.placements)
    hi = max(p.right for p in result.placements)
    if from_zero:
        allowed = result.region.allowed_mask()
        cols_any = np.nonzero(allowed.any(axis=0))[0]
        first = int(cols_any.min()) if cols_any.size else 0
        lo = min(first, lo)
    return lo, hi


def extent_utilization(result: PlacementResult, from_zero: bool = True) -> float:
    """Used / available cells within the occupied x window.

    With ``from_zero`` the window starts at the first reconfigurable
    column (extent minimization packs against that edge); otherwise at the
    leftmost placed module.
    """
    window = _extent_window(result, from_zero)
    if window is None:
        return 0.0
    lo, hi = window
    allowed = result.region.allowed_mask()
    available = int(allowed[:, lo:hi].sum())
    if available == 0:
        return 0.0
    return result.used_cells() / available


def region_utilization(result: PlacementResult) -> float:
    """Used cells / all available cells of the region."""
    available = result.region.available_area()
    if available == 0:
        return 0.0
    return result.used_cells() / available


def weighted_extent_utilization(
    result: PlacementResult, from_zero: bool = True
) -> float:
    """Area-weighted utilization within the extent window.

    Like :func:`extent_utilization` but each tile counts its physical
    silicon area (:data:`repro.fabric.resource.RESOURCE_AREA_WEIGHT`):
    the paper notes embedded memory consumes more area than logic
    (Section III-B), so a BRAM tile left idle wastes more silicon than a
    CLB tile.  Weighted and unweighted numbers coincide on CLB-only
    workloads and diverge when dedicated resources go unused.  The
    ``from_zero`` window semantics match :func:`extent_utilization`
    exactly (same ``_extent_window`` columns in the denominator).
    """
    from repro.fabric.resource import RESOURCE_AREA_WEIGHT

    window = _extent_window(result, from_zero)
    if window is None:
        return 0.0
    lo, hi = window
    allowed = result.region.allowed_mask()
    grid = result.region.grid.cells
    available = 0.0
    for kind in ResourceType:
        if kind is ResourceType.UNAVAILABLE:
            continue
        n = int(
            np.count_nonzero(
                allowed[:, lo:hi] & (grid[:, lo:hi] == int(kind))
            )
        )
        available += n * RESOURCE_AREA_WEIGHT[kind]
    if available == 0:
        return 0.0
    used = 0.0
    for p in result.placements:
        for _, _, kind in p.footprint.cells:
            used += RESOURCE_AREA_WEIGHT[kind]
    return used / available


def resource_utilization(
    result: PlacementResult, window: bool = True, from_zero: bool = True
) -> Dict[ResourceType, float]:
    """Per-resource-type utilization (Table I's CLB and BRAM columns).

    With ``window`` the denominator is the shared extent window of
    :func:`_extent_window` (same ``from_zero`` semantics as the other
    variants); without it, the whole region width.
    """
    allowed = result.region.allowed_mask()
    grid = result.region.grid.cells
    if window:
        w = _extent_window(result, from_zero)
        if w is None:
            return {}
        lo, hi = w
    else:
        lo, hi = 0, result.region.width

    used: Dict[ResourceType, int] = {}
    for p in result.placements:
        for _, _, k in p.footprint.cells:
            used[k] = used.get(k, 0) + 1

    out: Dict[ResourceType, float] = {}
    for kind in ResourceType:
        if kind is ResourceType.UNAVAILABLE:
            continue
        avail = int(
            np.count_nonzero(allowed[:, lo:hi] & (grid[:, lo:hi] == int(kind)))
        )
        if avail:
            out[kind] = used.get(kind, 0) / avail
    return out

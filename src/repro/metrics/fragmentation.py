"""Fragmentation measures.

The paper frames design alternatives as an attack on *external*
fragmentation: resources left unusable because the free space is shattered
into pieces no module fits into.  *Internal* fragmentation is the space a
module's bounding box covers but its tiles do not use (cf. Koch et al.
[12] on fine-grained placement).

``maximal_empty_rectangles`` is the classic KAMER staircase computation
(also used by the Bazargan-style online baseline); external fragmentation
is reported as ``1 - largest_free_rect / total_free``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.result import PlacementResult


def free_mask(result: PlacementResult) -> np.ndarray:
    """Cells available to future modules: allowed and unoccupied."""
    return result.region.allowed_mask() & ~result.occupancy_mask()


def maximal_empty_rectangles(free: np.ndarray) -> List[Tuple[int, int, int, int]]:
    """All maximal axis-aligned empty rectangles of a boolean mask.

    Returns ``(x, y, w, h)`` tuples.  Classic histogram/staircase sweep:
    O(H * W) candidate generation with maximality filtering.
    """
    free = np.asarray(free, dtype=bool)
    H, W = free.shape
    heights = np.zeros(W, dtype=int)
    candidates: set[Tuple[int, int, int, int]] = set()
    for y in range(H):
        heights = np.where(free[y], heights + 1, 0)
        # for each maximal-in-row rectangle of the histogram at row y
        stack: List[Tuple[int, int]] = []  # (start_col, height)
        for x in range(W + 1):
            h = int(heights[x]) if x < W else 0
            start = x
            while stack and stack[-1][1] >= h:
                sx, sh = stack.pop()
                # only a strict height drop ends a maximal-width run: on a
                # tie the run continues (the re-push below) and emitting a
                # candidate here would yield a right-extendable rectangle
                if sh > h:
                    # rectangle [sx, x) x [y-sh+1, y]
                    candidates.add((sx, y - sh + 1, x - sx, sh))
                start = sx
            if h > 0 and (not stack or stack[-1][1] < h):
                stack.append((start, h))
    # histogram rectangles are maximal in width and in downward extension;
    # filter those extendable upward (not maximal in height)
    out = []
    for x, y, w, h in candidates:
        if y + h < H and bool(free[y + h, x : x + w].all()):
            continue
        out.append((x, y, w, h))
    return sorted(out)


def largest_free_rectangle(result: PlacementResult) -> Tuple[int, int, int, int]:
    """The (x, y, w, h) free rectangle of maximum area ((0,0,0,0) if none)."""
    rects = maximal_empty_rectangles(free_mask(result))
    if not rects:
        return (0, 0, 0, 0)
    return max(rects, key=lambda r: r[2] * r[3])


def external_fragmentation(result: PlacementResult) -> float:
    """1 - (largest free rectangle area) / (total free area).

    0.0 means all remaining space is one rectangle (no fragmentation);
    approaching 1.0 means the free space is badly shattered.  Returns 0.0
    when the region is completely full.
    """
    free = free_mask(result)
    total = int(free.sum())
    if total == 0:
        return 0.0
    _, _, w, h = largest_free_rectangle(result)
    return 1.0 - (w * h) / total


def internal_fragmentation(result: PlacementResult) -> float:
    """Unused bounding-box cells / total bounding-box cells of placements."""
    bbox_total = sum(p.footprint.bbox_area for p in result.placements)
    if bbox_total == 0:
        return 0.0
    used = sum(p.footprint.area for p in result.placements)
    return 1.0 - used / bbox_total

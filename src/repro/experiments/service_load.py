"""Trace-replay load harness for the sharded placement service.

Replays a seeded Table-I workload (:func:`repro.core.runtime.generate_workload`)
through a :class:`~repro.core.service.ShardedPlacementService` and
measures what a serving system is judged on: sustained request rate and
the admission-latency distribution.  Latency here is the *wall-clock*
time one ``submit`` call takes — routing, spill probes, chain solves and
queue upkeep included — which is the figure an operator of the service
would see, not the solver-internal probe time alone.

The benchmark gate (``make bench-runtime``) runs :func:`run_load` on the
committed configuration in ``BENCH_runtime.json`` and compares the
measured throughput against the stored threshold, mirroring the
``BENCH_geost.json`` flow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.runtime import RuntimeConfig, RuntimeRequest, generate_workload
from repro.core.service import ServiceConfig, ShardedPlacementService
from repro.experiments.config import default_fabric


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of pre-sorted data."""
    if not sorted_values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("percentile must be within [0, 100]")
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q / 100.0 * (len(sorted_values) - 1)))))
    return sorted_values[rank]


@dataclass
class LoadReport:
    """One load run's service-level measurements."""

    n_requests: int
    n_shards: int
    router: str
    elapsed_s: float
    #: sustained request rate over the whole replay (drain excluded)
    req_per_s: float
    #: wall-clock per-submit admission latency percentiles (seconds)
    p50_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    admitted: int
    rejected: int
    reject_rate: float
    #: defrag strategy the run served with ("disabled" when off)
    defrag: str = "disabled"
    defrags: int = 0
    defrag_planned_moves: int = 0
    defrag_executed_moves: int = 0
    defrag_aborted_moves: int = 0
    #: wall-clock spent in defrag passes (excluded from request latency)
    defrag_time_s: float = 0.0
    #: book-ahead admission accounting (zero when the horizon is off)
    reservations_booked: int = 0
    reservation_admits: int = 0
    reservations_expired: int = 0
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)
    per_shard_admitted: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "n_requests": self.n_requests,
            "n_shards": self.n_shards,
            "router": self.router,
            "elapsed_s": round(self.elapsed_s, 4),
            "req_per_s": round(self.req_per_s, 1),
            "p50_latency_s": round(self.p50_latency_s, 6),
            "p99_latency_s": round(self.p99_latency_s, 6),
            "max_latency_s": round(self.max_latency_s, 6),
            "admitted": self.admitted,
            "rejected": self.rejected,
            "reject_rate": round(self.reject_rate, 4),
            "defrag": self.defrag,
            "defrags": self.defrags,
            "defrag_planned_moves": self.defrag_planned_moves,
            "defrag_executed_moves": self.defrag_executed_moves,
            "defrag_aborted_moves": self.defrag_aborted_moves,
            "defrag_time_s": round(self.defrag_time_s, 6),
            "reservations_booked": self.reservations_booked,
            "reservation_admits": self.reservation_admits,
            "reservations_expired": self.reservations_expired,
            "rejected_by_reason": dict(self.rejected_by_reason),
            "per_shard_admitted": dict(self.per_shard_admitted),
        }


def serving_config(
    router: str = "affinity",
    chain: Sequence[str] = ("greedy",),
    queue_capacity: int = 8,
    spill: bool = True,
    defrag: str = "disabled",
    reservation_horizon: int = 0,
) -> ServiceConfig:
    """The high-throughput serving profile used by the benchmark gate.

    Greedy-only chain (deterministic, no wall-clock solver budgets),
    timeline sampling off — the configuration a latency-sensitive
    deployment would run.  ``defrag`` selects the strategy: "disabled"
    (the historical gate configuration: no reject-triggered pass), or a
    registered defragmenter name served at the *default cadence* —
    reject-triggered passes on, fragmentation-triggered passes off
    (``frag_threshold=1.0`` is short-circuited by the manager, keeping
    the pure-Python fragmentation metric off the hot path).
    """
    runtime = RuntimeConfig(
        chain=tuple(chain),
        queue_capacity=queue_capacity,
        frag_threshold=1.0,
        defrag_on_reject=defrag != "disabled",
        sample_timeline=False,
        reservation_horizon=reservation_horizon,
    )
    if defrag != "disabled":
        runtime.defragmenter = defrag
    return ServiceConfig(
        router=router,
        spill=spill,
        runtime=runtime,
    )


def run_load(
    n_requests: int = 500,
    n_shards: int = 4,
    seed: int = 0,
    config: Optional[ServiceConfig] = None,
    mean_interarrival: int = 2,
    mean_lifetime: int = 24,
    profile: str = "uniform",
) -> LoadReport:
    """Replay one seeded Table-I trace; returns the measured report.

    The fabric is the Table-I device (:func:`default_fabric`) column-split
    into ``n_shards`` slabs, so the service serves the same silicon a
    single manager would — just partitioned.
    """
    cfg = config or serving_config()
    fabric = default_fabric()
    regions = (
        ShardedPlacementService.split(fabric, n_shards)
        if n_shards > 1
        else [fabric]
    )
    service = ShardedPlacementService(regions, cfg)
    trace = generate_workload(
        n_requests,
        seed=seed,
        mean_interarrival=mean_interarrival,
        mean_lifetime=mean_lifetime,
        profile=profile,
    )

    latencies: List[float] = []
    start = time.monotonic()
    for request in sorted(trace, key=lambda r: r.arrival):
        t0 = time.monotonic()
        service.submit(request)
        latencies.append(time.monotonic() - t0)
    elapsed = time.monotonic() - start
    service.drain()
    service.close()

    stats = service.stats
    latencies.sort()
    total = stats.admitted + stats.rejected
    defrag_label = (
        cfg.runtime.defragmenter
        if cfg.runtime.defrag_on_reject or cfg.runtime.frag_threshold < 1.0
        else "disabled"
    )
    return LoadReport(
        n_requests=n_requests,
        n_shards=n_shards,
        router=cfg.router,
        elapsed_s=elapsed,
        req_per_s=n_requests / elapsed if elapsed > 0 else float("inf"),
        p50_latency_s=percentile(latencies, 50),
        p99_latency_s=percentile(latencies, 99),
        max_latency_s=latencies[-1] if latencies else 0.0,
        admitted=stats.admitted,
        rejected=stats.rejected,
        reject_rate=stats.rejected / total if total else 0.0,
        defrag=defrag_label,
        defrags=stats.defrags,
        defrag_planned_moves=stats.defrag_planned_moves,
        defrag_executed_moves=stats.defrag_executed_moves,
        defrag_aborted_moves=stats.defrag_aborted_moves,
        defrag_time_s=stats.defrag_time_s,
        reservations_booked=stats.reservations_booked,
        reservation_admits=stats.reservation_admits,
        reservations_expired=stats.reservations_expired,
        rejected_by_reason=dict(stats.rejected_by_reason),
        per_shard_admitted={
            name: s.admitted for name, s in service.shard_stats().items()
        },
    )


def format_report(report: LoadReport) -> str:
    """Human-readable one-block summary of one load run."""
    lines = [
        f"service load: {report.n_requests} requests, "
        f"{report.n_shards} shard(s), router={report.router}",
        f"  throughput : {report.req_per_s:,.0f} req/s "
        f"({report.elapsed_s:.3f}s total)",
        f"  latency    : p50={report.p50_latency_s * 1e3:.3f}ms "
        f"p99={report.p99_latency_s * 1e3:.3f}ms "
        f"max={report.max_latency_s * 1e3:.3f}ms",
        f"  admission  : {report.admitted} admitted, "
        f"{report.rejected} rejected "
        f"(reject rate {report.reject_rate:.1%})",
    ]
    if report.defrag != "disabled" or report.defrags:
        lines.append(
            f"  defrag     : {report.defrag} — {report.defrags} passes, "
            f"moves {report.defrag_planned_moves} planned / "
            f"{report.defrag_executed_moves} executed / "
            f"{report.defrag_aborted_moves} aborted "
            f"({report.defrag_time_s * 1e3:.1f}ms)"
        )
    if report.rejected_by_reason:
        reasons = ", ".join(
            f"{k}={v}" for k, v in sorted(report.rejected_by_reason.items())
        )
        lines.append(f"  reasons    : {reasons}")
    if report.per_shard_admitted:
        shards = ", ".join(
            f"{k}={v}" for k, v in sorted(report.per_shard_admitted.items())
        )
        lines.append(f"  per shard  : {shards}")
    return "\n".join(lines)

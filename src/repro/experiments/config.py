"""Shared experiment configuration.

The Table I setup: 30 automatically generated modules (20-100 CLBs, 0-4
BRAMs, 4 design alternatives) placed on a heterogeneous fabric, repeated
over many seeds; the placer minimizes the x extent within a wall-clock
budget.  Run counts and budgets are scaled down by default so the bench
suite completes in minutes; the paper-faithful full scale is selected with
``REPRO_FULL=1`` in the environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.fabric.devices import irregular_device
from repro.fabric.grid import FabricGrid
from repro.fabric.region import PartialRegion
from repro.modules.generator import GeneratorConfig


def full_scale() -> bool:
    """True when the environment requests paper-scale experiment runs."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def default_fabric(width: int = 160, height: int = 24, seed: int = 42) -> PartialRegion:
    """The Table-I fabric: heterogeneous, clock-interrupted, open x extent.

    Width is generous on purpose: the placer minimizes the occupied x
    extent, so utilization is measured within the used window and the
    fabric only needs to be wide enough never to clip a bad placement.
    """
    return PartialRegion.whole_device(irregular_device(width, height, seed=seed))


@dataclass
class Table1Config:
    """Parameters of the Table I reproduction."""

    #: independent experiment repetitions (paper: 50)
    n_runs: int = field(default_factory=lambda: 50 if full_scale() else 5)
    #: modules per run (paper: 30)
    n_modules: int = 30
    #: design alternatives per module in the 'with' condition (paper: 4)
    n_alternatives: int = 4
    #: anytime budget per placement run, seconds
    time_limit: float = field(default_factory=lambda: 20.0 if full_scale() else 8.0)
    #: base seed; run i uses seed base_seed + i
    base_seed: int = 1000
    fabric_width: int = 160
    fabric_height: int = 24
    fabric_seed: int = 42
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)

    def region(self) -> PartialRegion:
        return default_fabric(self.fabric_width, self.fabric_height, self.fabric_seed)

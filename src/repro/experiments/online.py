"""Online service-level experiment (ablation A5).

The related work (Section II) frames placement quality as *service level*:
"the amount of module requests that can be fulfilled" in an online,
non-deterministic context-switching environment [4, 5].  This driver
simulates such a workload — modules arrive, run for a while, and leave —
and measures the acceptance ratio of three space managers:

* KAMER (Bazargan-style online placement over maximal empty rectangles),
* incremental CP placement *without* design alternatives, and
* incremental CP placement *with* design alternatives.

The hypothesis (and the paper's thesis transplanted to the online
setting): alternatives reduce fragmentation, so more requests fit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.incremental import IncrementalPlacer
from repro.core.placer import PlacerConfig
from repro.fabric.region import PartialRegion
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module


@dataclass(frozen=True)
class Request:
    """One arrival in the online trace."""

    module: Module
    arrival: int
    lifetime: int


def generate_trace(
    n_requests: int,
    seed: int = 0,
    mean_interarrival: int = 2,
    mean_lifetime: int = 30,
    generator_config: Optional[GeneratorConfig] = None,
) -> List[Request]:
    """A seeded arrival/departure trace of module requests."""
    rng = random.Random(seed)
    cfg = generator_config or GeneratorConfig(
        clb_min=16, clb_max=56, bram_max=2, height_min=3, height_max=6
    )
    gen = ModuleGenerator(seed=seed, config=cfg)
    t = 0
    trace = []
    for _ in range(n_requests):
        t += rng.randint(1, 2 * mean_interarrival - 1)
        trace.append(
            Request(
                module=gen.generate(),
                arrival=t,
                lifetime=rng.randint(2, 2 * mean_lifetime - 2),
            )
        )
    return trace


@dataclass
class OnlineStats:
    """Result of one online simulation."""

    label: str
    accepted: int = 0
    rejected: int = 0
    rejected_names: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.accepted + self.rejected

    @property
    def acceptance_ratio(self) -> float:
        return self.accepted / self.total if self.total else 0.0


def simulate_incremental(
    region: PartialRegion,
    trace: Sequence[Request],
    with_alternatives: bool,
    label: str,
    sub_time_limit: float = 0.5,
) -> OnlineStats:
    """Drive the incremental CP placer over the trace."""
    placer = IncrementalPlacer(
        region,
        PlacerConfig(time_limit=sub_time_limit, first_solution_only=True),
    )
    stats = OnlineStats(label)
    active: List[Tuple[int, str]] = []  # (departure time, module name)
    for req in trace:
        # departures first
        still = []
        for departure, name in active:
            if departure <= req.arrival:
                placer.remove(name)
            else:
                still.append((departure, name))
        active = still
        module = req.module if with_alternatives else req.module.restricted(1)
        if placer.add(module) is not None:
            stats.accepted += 1
            active.append((req.arrival + req.lifetime, module.name))
        else:
            stats.rejected += 1
            stats.rejected_names.append(module.name)
    return stats


def simulate_kamer(
    region: PartialRegion,
    trace: Sequence[Request],
    with_alternatives: bool = True,
    label: str = "kamer",
) -> OnlineStats:
    """Drive a KAMER-style free-space manager over the trace.

    Uses the batch MER computation on the live free mask per request —
    equivalent to (and simpler than) maintaining the split structure, since
    departures would force re-merging anyway.
    """
    from repro.fabric.masks import compatibility_masks, valid_anchor_mask

    stats = OnlineStats(label)
    occupied = np.zeros((region.height, region.width), dtype=bool)
    active: List[Tuple[int, List[Tuple[int, int]]]] = []
    for req in trace:
        still = []
        for departure, cells in active:
            if departure <= req.arrival:
                for x, y in cells:
                    occupied[y, x] = False
            else:
                still.append((departure, cells))
        active = still
        free_region = PartialRegion(
            region.grid, region.reconfigurable & ~occupied
        )
        compat = compatibility_masks(free_region)
        module = req.module if with_alternatives else req.module.restricted(1)
        placed_cells: Optional[List[Tuple[int, int]]] = None
        for fp in module.shapes:
            mask = valid_anchor_mask(free_region, sorted(fp.cells), compat)
            ys, xs = np.nonzero(mask)
            if xs.size == 0:
                continue
            k = np.lexsort((ys, xs))[0]
            x0, y0 = int(xs[k]), int(ys[k])
            placed_cells = [(x0 + dx, y0 + dy) for dx, dy, _ in fp.cells]
            break
        if placed_cells is None:
            stats.rejected += 1
            stats.rejected_names.append(module.name)
        else:
            for x, y in placed_cells:
                occupied[y, x] = True
            stats.accepted += 1
            active.append((req.arrival + req.lifetime, placed_cells))
    return stats


def online_comparison(
    n_requests: int = 40,
    seed: int = 3,
    region: Optional[PartialRegion] = None,
) -> List[OnlineStats]:
    """A1-style three-way comparison on one trace."""
    from repro.fabric.devices import irregular_device

    region = region or PartialRegion.whole_device(
        irregular_device(40, 12, seed=9)
    )
    trace = generate_trace(n_requests, seed=seed)
    return [
        simulate_kamer(region, trace, with_alternatives=False,
                       label="first-fit (1 shape)"),
        simulate_kamer(region, trace, with_alternatives=True,
                       label="first-fit (alternatives)"),
        simulate_incremental(region, trace, False, "cp (1 shape)"),
        simulate_incremental(region, trace, True, "cp (alternatives)"),
    ]


def format_online(stats: Sequence[OnlineStats]) -> str:
    """Tabular rendering of online simulation results."""
    header = f"{'space manager':<26} {'accepted':>9} {'rejected':>9} {'ratio':>7}"
    lines = [header, "-" * len(header)]
    for s in stats:
        lines.append(
            f"{s.label:<26} {s.accepted:>9} {s.rejected:>9} "
            f"{s.acceptance_ratio:>6.1%}"
        )
    return "\n".join(lines)

"""Experiment drivers reproducing the paper's evaluation.

Each module regenerates one artefact of Section V (or one of our
ablations); the benchmark suite under ``benchmarks/`` calls into these so
the numbers printed by ``pytest benchmarks/ --benchmark-only`` come from
exactly the code documented here.
"""

from repro.experiments.config import Table1Config, default_fabric
from repro.experiments.table1 import Table1Row, run_table1, format_table1
from repro.experiments.figures import (
    figure1_gallery,
    figure3_comparison,
    figure4_constraint_anatomy,
)
from repro.experiments.ablations import (
    alternatives_sweep,
    baseline_comparison,
    heterogeneity_sweep,
    solver_strategy_sweep,
    static_fraction_sweep,
)
from repro.experiments.online import (
    format_online,
    generate_trace,
    online_comparison,
)
from repro.experiments.service_load import (
    LoadReport,
    format_report,
    run_load,
    serving_config,
)

__all__ = [
    "Table1Config",
    "default_fabric",
    "Table1Row",
    "run_table1",
    "format_table1",
    "figure1_gallery",
    "figure3_comparison",
    "figure4_constraint_anatomy",
    "alternatives_sweep",
    "baseline_comparison",
    "heterogeneity_sweep",
    "solver_strategy_sweep",
    "static_fraction_sweep",
    "online_comparison",
    "generate_trace",
    "format_online",
    "LoadReport",
    "run_load",
    "serving_config",
    "format_report",
]

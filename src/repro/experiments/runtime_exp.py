"""Runtime serving experiment (A6): design alternatives under load.

The paper's offline claim — alternatives reduce fragmentation, so more
fits — transplanted to the serving setting its introduction motivates.
One seeded arrival/departure trace (Table-I module distribution) is
served twice by :class:`~repro.core.runtime.RuntimePlacementManager`,
once with the full alternative sets and once restricted to the primary
shape; the comparison reports rejection counts, time-weighted mean
utilization and defragmentation activity.

The defrag extension (:func:`defrag_comparison`) serves one seeded
*heavy-traffic* trace three ways — instant teleporting defrag
(``greedy-compaction``), the no-break engine, and defrag disabled — and
reports reject counts, p99 admission latency and move accounting.  The
no-break run verifies every move transition against the full floorplan
invariants (``verify_moves=True``), so a passing run is also a proof
that no intermediate state ever overlapped a running module.

The greedy probe is used so both runs are deterministic (no wall-clock
budget in the admission decision); the CP probe variant is exercised by
``benchmarks/test_bench_runtime.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.runtime import (
    RuntimeConfig,
    RuntimeLog,
    RuntimePlacementManager,
    RuntimeRequest,
    generate_workload,
)
from repro.fabric.region import PartialRegion
from repro.modules.generator import GeneratorConfig


@dataclass
class RuntimeRow:
    """One serving run, summarized."""

    label: str
    admitted: int
    rejected: int
    mean_utilization: float
    defrags: int
    defrag_moves: int
    mean_latency_ms: float

    @property
    def total(self) -> int:
        return self.admitted + self.rejected

    @property
    def rejection_ratio(self) -> float:
        return self.rejected / self.total if self.total else 0.0


def default_runtime_region(seed: int = 9) -> PartialRegion:
    """The demo fabric: a seeded irregular 48x12 device."""
    from repro.fabric.devices import irregular_device

    return PartialRegion.whole_device(irregular_device(48, 12, seed=seed))


def default_runtime_trace(
    n_requests: int = 60, seed: int = 7
) -> List[RuntimeRequest]:
    """The demo trace: Table-I sized modules scaled to the demo fabric."""
    return generate_workload(
        n_requests,
        seed=seed,
        mean_interarrival=2,
        mean_lifetime=24,
        generator_config=GeneratorConfig(
            clb_min=12, clb_max=48, bram_max=2, height_min=3, height_max=6
        ),
    )


def heavy_runtime_trace(
    n_requests: int = 90, seed: int = 5
) -> List[RuntimeRequest]:
    """The heavy-traffic trace: arrivals every tick, so the floorplan
    never empties and fragmentation compounds — the regime where
    defragmentation strategy actually changes admission outcomes."""
    return generate_workload(
        n_requests,
        seed=seed,
        mean_interarrival=1,
        mean_lifetime=24,
        generator_config=GeneratorConfig(
            clb_min=12, clb_max=48, bram_max=2, height_min=3, height_max=6
        ),
    )


def serve_trace(
    region: PartialRegion,
    trace: Sequence[RuntimeRequest],
    with_alternatives: bool,
    label: str,
    config: Optional[RuntimeConfig] = None,
) -> RuntimeRow:
    """One serving run; returns the summary row."""
    cfg = config or RuntimeConfig(probe="greedy")
    cfg.with_alternatives = with_alternatives
    manager = RuntimePlacementManager(region, cfg)
    log: RuntimeLog = manager.run(trace)
    return RuntimeRow(
        label=label,
        admitted=log.admitted,
        rejected=log.rejected,
        mean_utilization=log.mean_utilization(),
        defrags=log.stats.defrags,
        defrag_moves=log.stats.defrag_moves,
        mean_latency_ms=1e3 * log.stats.mean_latency_s,
    )


def runtime_comparison(
    n_requests: int = 60,
    seed: int = 7,
    region: Optional[PartialRegion] = None,
    allow_shape_change: bool = False,
) -> List[RuntimeRow]:
    """Alternatives-on vs alternatives-off on one seeded trace."""
    region = region or default_runtime_region()
    trace = default_runtime_trace(n_requests, seed)
    rows = []
    for with_alts, label in (
        (False, "runtime (1 shape)"),
        (True, "runtime (alternatives)"),
    ):
        rows.append(
            serve_trace(
                region,
                trace,
                with_alts,
                label,
                RuntimeConfig(
                    probe="greedy", allow_shape_change=allow_shape_change
                ),
            )
        )
    return rows


@dataclass
class DefragRow:
    """One defrag-strategy serving run, summarized."""

    label: str
    admitted: int
    rejected: int
    p99_latency_ms: float
    defrags: int
    planned_moves: int
    executed_moves: int
    aborted_moves: int
    defrag_time_ms: float

    @property
    def total(self) -> int:
        return self.admitted + self.rejected

    @property
    def rejection_ratio(self) -> float:
        return self.rejected / self.total if self.total else 0.0


def _p99_ms(log: RuntimeLog) -> float:
    """p99 per-request admission latency, in milliseconds."""
    lat = sorted(o.latency_s for o in log.outcomes)
    if not lat:
        return 0.0
    return 1e3 * lat[min(len(lat) - 1, int(0.99 * len(lat)))]


def defrag_strategy_config(strategy: str) -> RuntimeConfig:
    """The per-strategy serving knobs of the defrag comparison.

    ``strategy`` is a registered defragmenter name, or ``"disabled"``
    (no reject-triggered pass, fragmentation trigger off).  The
    no-break run additionally verifies every move transition.
    """
    if strategy == "disabled":
        return RuntimeConfig(
            probe="greedy",
            defrag_on_reject=False,
            frag_threshold=1.0,
            sample_timeline=False,
        )
    return RuntimeConfig(
        probe="greedy",
        defragmenter=strategy,
        verify_moves=(strategy == "no-break"),
        sample_timeline=False,
    )


def defrag_comparison(
    n_requests: int = 90,
    seed: int = 5,
    region: Optional[PartialRegion] = None,
) -> List[DefragRow]:
    """Instant vs no-break vs disabled defrag on one heavy trace."""
    region = region or default_runtime_region()
    trace = heavy_runtime_trace(n_requests, seed)
    rows = []
    for strategy, label in (
        ("greedy-compaction", "defrag: instant (oracle)"),
        ("no-break", "defrag: no-break"),
        ("disabled", "defrag: disabled"),
    ):
        manager = RuntimePlacementManager(
            region, defrag_strategy_config(strategy)
        )
        log = manager.run(trace)
        s = manager.stats
        rows.append(
            DefragRow(
                label=label,
                admitted=s.admitted,
                rejected=s.rejected,
                p99_latency_ms=_p99_ms(log),
                defrags=s.defrags,
                planned_moves=s.defrag_planned_moves,
                executed_moves=s.defrag_executed_moves,
                aborted_moves=s.defrag_aborted_moves,
                defrag_time_ms=1e3 * s.defrag_time_s,
            )
        )
    return rows


def format_defrag(rows: Sequence[DefragRow]) -> str:
    """Tabular rendering of the defrag-strategy comparison."""
    header = (
        f"{'strategy':<26} {'admit':>6} {'reject':>7} {'p99(ms)':>8} "
        f"{'passes':>7} {'moves p/e/a':>12} {'dft(ms)':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        moves = f"{r.planned_moves}/{r.executed_moves}/{r.aborted_moves}"
        lines.append(
            f"{r.label:<26} {r.admitted:>6} {r.rejected:>7} "
            f"{r.p99_latency_ms:>8.2f} {r.defrags:>7} {moves:>12} "
            f"{r.defrag_time_ms:>8.1f}"
        )
    return "\n".join(lines)


def format_runtime(rows: Sequence[RuntimeRow]) -> str:
    """Tabular rendering of the runtime comparison."""
    header = (
        f"{'serving policy':<24} {'admit':>6} {'reject':>7} "
        f"{'util':>6} {'defrags':>8} {'lat(ms)':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.label:<24} {r.admitted:>6} {r.rejected:>7} "
            f"{r.mean_utilization:>5.1%} {r.defrags:>8} "
            f"{r.mean_latency_ms:>8.2f}"
        )
    return "\n".join(lines)


@dataclass
class ReservationRow:
    """One admission-policy serving run, summarized."""

    label: str
    admitted: int
    rejected: int
    booked: int
    reservation_admits: int
    expired: int
    mean_utilization: float

    @property
    def total(self) -> int:
        return self.admitted + self.rejected

    @property
    def rejection_ratio(self) -> float:
        return self.rejected / self.total if self.total else 0.0


def reservation_runtime_region(seed: int = 9) -> PartialRegion:
    """The reservation-study fabric: a narrower 32x12 irregular device.

    Narrow enough that slack-heavy bursts overflow an admit-now manager,
    which is the regime where booking against announced departures can
    change admission outcomes at all — the 48x12 demo fabric simply
    absorbs the whole trace.
    """
    from repro.fabric.devices import irregular_device

    return PartialRegion.whole_device(irregular_device(32, 12, seed=seed))


def slack_heavy_trace(
    n_requests: int = 80, seed: int = 7
) -> List[RuntimeRequest]:
    """The slack-heavy trace: bursty arrivals with generous deadlines.

    Bursts of ~4 requests share one arrival tick, separated by long
    gaps, and every request tolerates waiting well past the next burst
    (``deadline_slack`` defaults to ``2 * mean_lifetime``) — the
    workload reservation-based admission is built for."""
    return generate_workload(
        n_requests,
        seed=seed,
        mean_interarrival=2,
        mean_lifetime=20,
        profile="slack-heavy",
        generator_config=GeneratorConfig(
            clb_min=12, clb_max=48, bram_max=2, height_min=3, height_max=6
        ),
    )


def reservation_admission_config(horizon: int) -> RuntimeConfig:
    """The per-policy serving knobs of the reservation comparison.

    ``horizon = 0`` is the historical admit-now manager; a positive
    horizon turns on the book-ahead probe.  The queue is off for both
    runs so the comparison isolates the reservation mechanism from
    queueing — every non-fitting request either books or rejects."""
    return RuntimeConfig(
        probe="greedy",
        queue_capacity=0,
        reservation_horizon=horizon,
        frag_threshold=1.0,
        defrag_on_reject=False,
    )


def reservation_comparison(
    n_requests: int = 80,
    seed: int = 7,
    horizon: int = 16,
    region: Optional[PartialRegion] = None,
) -> List[ReservationRow]:
    """Admit-now vs reservation-based admission on one slack-heavy trace.

    Both runs serve the *same* seeded trace on the *same* fabric; the
    only difference is the ``reservation_horizon``.  On this workload
    the book-ahead probe strictly reduces rejections (pinned by
    ``tests/experiments/test_reservation_exp.py``): burst overflow that
    an admit-now manager turns away is booked onto departures already
    announced inside the horizon."""
    region = region or reservation_runtime_region()
    trace = slack_heavy_trace(n_requests, seed)
    rows = []
    for hz, label in (
        (0, "admission: admit-now"),
        (horizon, f"admission: reserve(h={horizon})"),
    ):
        manager = RuntimePlacementManager(
            region, reservation_admission_config(hz)
        )
        log = manager.run(trace)
        s = manager.stats
        rows.append(
            ReservationRow(
                label=label,
                admitted=s.admitted,
                rejected=s.rejected,
                booked=s.reservations_booked,
                reservation_admits=s.reservation_admits,
                expired=s.reservations_expired,
                mean_utilization=log.mean_utilization(),
            )
        )
    return rows


def format_reservations(rows: Sequence[ReservationRow]) -> str:
    """Tabular rendering of the reservation comparison."""
    header = (
        f"{'admission policy':<26} {'admit':>6} {'reject':>7} "
        f"{'booked':>7} {'commits':>8} {'expired':>8} {'util':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.label:<26} {r.admitted:>6} {r.rejected:>7} "
            f"{r.booked:>7} {r.reservation_admits:>8} {r.expired:>8} "
            f"{r.mean_utilization:>5.1%}"
        )
    return "\n".join(lines)

"""Runtime serving experiment (A6): design alternatives under load.

The paper's offline claim — alternatives reduce fragmentation, so more
fits — transplanted to the serving setting its introduction motivates.
One seeded arrival/departure trace (Table-I module distribution) is
served twice by :class:`~repro.core.runtime.RuntimePlacementManager`,
once with the full alternative sets and once restricted to the primary
shape; the comparison reports rejection counts, time-weighted mean
utilization and defragmentation activity.

The greedy probe is used so both runs are deterministic (no wall-clock
budget in the admission decision); the CP probe variant is exercised by
``benchmarks/test_bench_runtime.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.runtime import (
    RuntimeConfig,
    RuntimeLog,
    RuntimePlacementManager,
    RuntimeRequest,
    generate_workload,
)
from repro.fabric.region import PartialRegion
from repro.modules.generator import GeneratorConfig


@dataclass
class RuntimeRow:
    """One serving run, summarized."""

    label: str
    admitted: int
    rejected: int
    mean_utilization: float
    defrags: int
    defrag_moves: int
    mean_latency_ms: float

    @property
    def total(self) -> int:
        return self.admitted + self.rejected

    @property
    def rejection_ratio(self) -> float:
        return self.rejected / self.total if self.total else 0.0


def default_runtime_region(seed: int = 9) -> PartialRegion:
    """The demo fabric: a seeded irregular 48x12 device."""
    from repro.fabric.devices import irregular_device

    return PartialRegion.whole_device(irregular_device(48, 12, seed=seed))


def default_runtime_trace(
    n_requests: int = 60, seed: int = 7
) -> List[RuntimeRequest]:
    """The demo trace: Table-I sized modules scaled to the demo fabric."""
    return generate_workload(
        n_requests,
        seed=seed,
        mean_interarrival=2,
        mean_lifetime=24,
        generator_config=GeneratorConfig(
            clb_min=12, clb_max=48, bram_max=2, height_min=3, height_max=6
        ),
    )


def serve_trace(
    region: PartialRegion,
    trace: Sequence[RuntimeRequest],
    with_alternatives: bool,
    label: str,
    config: Optional[RuntimeConfig] = None,
) -> RuntimeRow:
    """One serving run; returns the summary row."""
    cfg = config or RuntimeConfig(probe="greedy")
    cfg.with_alternatives = with_alternatives
    manager = RuntimePlacementManager(region, cfg)
    log: RuntimeLog = manager.run(trace)
    return RuntimeRow(
        label=label,
        admitted=log.admitted,
        rejected=log.rejected,
        mean_utilization=log.mean_utilization(),
        defrags=log.stats.defrags,
        defrag_moves=log.stats.defrag_moves,
        mean_latency_ms=1e3 * log.stats.mean_latency_s,
    )


def runtime_comparison(
    n_requests: int = 60,
    seed: int = 7,
    region: Optional[PartialRegion] = None,
    allow_shape_change: bool = False,
) -> List[RuntimeRow]:
    """Alternatives-on vs alternatives-off on one seeded trace."""
    region = region or default_runtime_region()
    trace = default_runtime_trace(n_requests, seed)
    rows = []
    for with_alts, label in (
        (False, "runtime (1 shape)"),
        (True, "runtime (alternatives)"),
    ):
        rows.append(
            serve_trace(
                region,
                trace,
                with_alts,
                label,
                RuntimeConfig(
                    probe="greedy", allow_shape_change=allow_shape_change
                ),
            )
        )
    return rows


def format_runtime(rows: Sequence[RuntimeRow]) -> str:
    """Tabular rendering of the runtime comparison."""
    header = (
        f"{'serving policy':<24} {'admit':>6} {'reject':>7} "
        f"{'util':>6} {'defrags':>8} {'lat(ms)':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.label:<24} {r.admitted:>6} {r.rejected:>7} "
            f"{r.mean_utilization:>5.1%} {r.defrags:>8} "
            f"{r.mean_latency_ms:>8.2f}"
        )
    return "\n".join(lines)

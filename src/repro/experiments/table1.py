"""Table I: impact of module design alternatives.

Paper numbers (Section V, Table I), placing 30 generated modules, mean of
50 runs::

    Type                      Mean Area Util.   Mean Time   CLB   BRAM
    No design alternatives    53%               2.55 s      -     -
    Design alternatives       65%               10.82 s     0     0
    Change                    +12 points        +8.27 s     0     0

Our reproduction places the *same* generated module sets twice — once
restricted to the primary shape, once with all alternatives — using the
anytime CP+LNS placer, and reports mean utilization, mean time to first
solution (the component that scales with the number of shapes, standing in
for the paper's solve time; see EXPERIMENTS.md for the discussion), mean
total time, and the CLB/BRAM usage delta (the paper reports 0/0: the
chosen alternatives consume the same resources).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.lns import LNSConfig, LNSPlacer
from repro.core.result import PlacementResult
from repro.experiments.config import Table1Config
from repro.fabric.resource import ResourceType
from repro.metrics.stats import RunAggregate, aggregate_runs
from repro.metrics.utilization import extent_utilization
from repro.modules.generator import ModuleGenerator


@dataclass
class Table1Row:
    """One row of the reproduced Table I."""

    label: str
    mean_utilization: float
    mean_first_solution_time: float
    mean_total_time: float
    mean_clb: float
    mean_bram: float
    n_runs: int
    aggregates: Dict[str, RunAggregate]


def _resources_used(result: PlacementResult) -> Dict[ResourceType, int]:
    out: Dict[ResourceType, int] = {}
    for p in result.placements:
        for k, n in p.footprint.resource_counts().items():
            out[k] = out.get(k, 0) + n
    return out


def _run_once(
    cfg: Table1Config, seed: int, with_alternatives: bool
) -> Optional[Dict[str, float]]:
    region = cfg.region()
    gen_cfg = cfg.generator
    gen_cfg.n_alternatives = cfg.n_alternatives
    modules = ModuleGenerator(seed=seed, config=gen_cfg).generate_set(cfg.n_modules)
    if not with_alternatives:
        modules = [m.restricted(1) for m in modules]
    placer = LNSPlacer(LNSConfig(time_limit=cfg.time_limit, seed=seed))
    result = placer.place(region, modules)
    if not result.placements or not result.all_placed:
        return None
    result.verify()
    used = _resources_used(result)
    trajectory = result.stats.get("trajectory", [])
    first_time = trajectory[0][0] if trajectory else result.elapsed
    return {
        "utilization": extent_utilization(result),
        "first_solution_time": first_time,
        "total_time": result.elapsed,
        "clb": used.get(ResourceType.CLB, 0),
        "bram": used.get(ResourceType.BRAM, 0),
        "extent": float(result.extent or 0),
    }


def run_table1(cfg: Optional[Table1Config] = None) -> List[Table1Row]:
    """Run the full experiment; returns [without, with, change] rows."""
    cfg = cfg or Table1Config()
    rows: List[Table1Row] = []
    samples: Dict[bool, List[Dict[str, float]]] = {False: [], True: []}
    for i in range(cfg.n_runs):
        seed = cfg.base_seed + i
        pair = {
            with_alts: _run_once(cfg, seed, with_alts)
            for with_alts in (False, True)
        }
        # keep runs *paired*: the paper compares identical module sets, and
        # unpaired samples would break the CLB/BRAM change-of-zero check
        if pair[False] is None or pair[True] is None:
            continue
        for with_alts in (False, True):
            samples[with_alts].append(pair[with_alts])
    for with_alts, label in ((False, "No design alternatives"),
                             (True, "Design alternatives")):
        agg = aggregate_runs(samples[with_alts])
        rows.append(
            Table1Row(
                label=label,
                mean_utilization=agg["utilization"].mean,
                mean_first_solution_time=agg["first_solution_time"].mean,
                mean_total_time=agg["total_time"].mean,
                mean_clb=agg["clb"].mean,
                mean_bram=agg["bram"].mean,
                n_runs=agg["utilization"].n,
                aggregates=agg,
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render rows in the paper's Table I layout (plus our extra columns)."""
    header = (
        f"{'Type':<26} {'Mean Area Util.':>15} {'First-sol time':>15} "
        f"{'Total time':>11} {'CLB':>8} {'BRAM':>6} {'runs':>5}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.label:<26} {r.mean_utilization:>14.1%} "
            f"{r.mean_first_solution_time:>14.2f}s {r.mean_total_time:>10.2f}s "
            f"{r.mean_clb:>8.0f} {r.mean_bram:>6.0f} {r.n_runs:>5}"
        )
    if len(rows) == 2:
        a, b = rows
        lines.append(
            f"{'Change':<26} {b.mean_utilization - a.mean_utilization:>+14.1%} "
            f"{b.mean_first_solution_time - a.mean_first_solution_time:>+14.2f}s "
            f"{b.mean_total_time - a.mean_total_time:>+10.2f}s "
            f"{b.mean_clb - a.mean_clb:>+8.0f} {b.mean_bram - a.mean_bram:>+6.0f}"
        )
    lines.append(
        "(paper: 53% -> 65% utilization, 2.55s -> 10.82s, CLB/BRAM change 0)"
    )
    return "\n".join(lines)

"""Command-line experiment runner.

Regenerate any of the paper's artefacts (or our ablations) from a shell::

    python -m repro.experiments.runner table1
    python -m repro.experiments.runner fig1 fig3 fig4
    python -m repro.experiments.runner a1 a2 a3 a4 a5
    python -m repro.experiments.runner all

Set ``REPRO_FULL=1`` for paper-scale run counts and budgets.

``--profile-dir DIR`` wraps each experiment in a
:func:`repro.obs.profiling_session`: every CP solve the experiment runs
deposits its :class:`~repro.obs.SolveProfile`, and the merged profile is
written to ``DIR/<experiment>.profile.json`` (schema-validated) next to
the textual artefact.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict


def _table1() -> str:
    from repro.experiments.config import Table1Config
    from repro.experiments.table1 import format_table1, run_table1

    return format_table1(run_table1(Table1Config()))


def _fig1() -> str:
    from repro.experiments.figures import figure1_gallery

    return figure1_gallery()


def _fig3() -> str:
    from repro.experiments.figures import figure3_comparison

    _, _, fig = figure3_comparison()
    return fig


def _fig4() -> str:
    from repro.experiments.figures import figure4_constraint_anatomy

    a = figure4_constraint_anatomy()
    return (
        f"(a) in-bounds anchors:       {a.in_bounds}\n"
        f"(b) + resource matching:     {a.resource_matched}\n"
        f"(c) + reconfigurable region: {a.in_region}\n"
        f"(d) + non-overlap:           {a.non_overlapping}\n"
        f"monotone shrinkage: {a.monotone()}"
    )


def _a1() -> str:
    from repro.experiments.ablations import alternatives_sweep, format_sweep

    return format_sweep(alternatives_sweep(), "A1 — alternatives sweep")


def _a2() -> str:
    from repro.experiments.ablations import format_sweep, heterogeneity_sweep

    return format_sweep(heterogeneity_sweep(), "A2 — heterogeneity sweep")


def _a3() -> str:
    from repro.experiments.ablations import baseline_comparison, format_sweep

    return format_sweep(baseline_comparison(), "A3 — placer comparison")


def _a4() -> str:
    from repro.experiments.ablations import format_sweep, solver_strategy_sweep

    return format_sweep(solver_strategy_sweep(), "A4 — solver strategies")


def _a7() -> str:
    from repro.experiments.config import default_fabric
    from repro.metrics.utilization import extent_utilization
    from repro.modules.generator import ModuleGenerator
    from repro.placer import (
        BottomLeftPlacer, SlotConfig, SlotPlacer, slot_utilization,
    )

    region = default_fabric()
    modules = ModuleGenerator(seed=1).generate_set(30)
    one_d = SlotPlacer(SlotConfig(8)).place(region, modules)
    two_d = BottomLeftPlacer().place(region, modules)
    return (
        f"1D slots: placed {len(one_d.placements)}/30, "
        f"slot-util {slot_utilization(one_d, 8):.1%}\n"
        f"2D grid:  placed {len(two_d.placements)}/30, "
        f"util {extent_utilization(two_d):.1%}"
    )


def _a8() -> str:
    from repro.experiments.ablations import format_sweep, static_fraction_sweep

    return format_sweep(static_fraction_sweep(), "A8 — static-region fraction")


def _a5() -> str:
    from repro.experiments.online import format_online, online_comparison

    return format_online(online_comparison())


def _a6() -> str:
    from repro.experiments.runtime_exp import (
        defrag_comparison,
        format_defrag,
        format_runtime,
        runtime_comparison,
    )

    return (
        format_runtime(runtime_comparison())
        + "\n\n"
        + format_defrag(defrag_comparison())
    )


#: backend names selected with --backend (None = every registered backend);
#: set by main() before the experiments run
_BACKEND_SELECTION: "list[str] | None" = None


def _a9() -> str:
    from repro.experiments.ablations import backend_comparison, format_sweep

    return format_sweep(
        backend_comparison(names=_BACKEND_SELECTION),
        "A9 — backend comparison",
    )


def _a10() -> str:
    from repro.experiments.runtime_exp import (
        format_reservations,
        reservation_comparison,
    )

    return format_reservations(reservation_comparison())


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": _table1,
    "fig1": _fig1,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig3,  # same artefact at full-region rendering
    "a1": _a1,
    "a2": _a2,
    "a3": _a3,
    "a4": _a4,
    "a5": _a5,
    "a6": _a6,
    "a7": _a7,
    "a8": _a8,
    "a9": _a9,
    "a10": _a10,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artefacts to regenerate",
    )
    parser.add_argument(
        "--profile-dir",
        default=None,
        metavar="DIR",
        help="also write a merged solver profile JSON per experiment",
    )
    parser.add_argument(
        "--backend",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict backend-driven experiments (a9) to this registered "
        "backend; repeatable (default: every registered backend)",
    )
    args = parser.parse_args(argv)
    if args.backend is not None:
        from repro.core.backend import available_backends

        registered = set(available_backends())
        for name in args.backend:
            if name not in registered:
                parser.error(
                    f"unknown backend {name!r}; registered: "
                    f"{', '.join(sorted(registered))}"
                )
        global _BACKEND_SELECTION
        _BACKEND_SELECTION = list(args.backend)
    names = (
        sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    )
    for name in names:
        print(f"\n{'=' * 60}\n{name}\n{'=' * 60}")
        if args.profile_dir is None:
            print(EXPERIMENTS[name]())
        else:
            print(_run_profiled(name, args.profile_dir))
    return 0


def _run_profiled(name: str, profile_dir: str) -> str:
    """Run one experiment inside a profiling session; write its artifact."""
    from repro.obs import profiling_session, validate_profile

    os.makedirs(profile_dir, exist_ok=True)
    with profiling_session(name) as session:
        output = EXPERIMENTS[name]()
    profile = session.merged()
    doc = profile.to_dict()
    problems = validate_profile(doc)
    if problems:  # a broken artifact must fail loudly, not ship silently
        raise RuntimeError(
            f"profile for {name!r} violates the schema: {problems}"
        )
    path = os.path.join(profile_dir, f"{name}.profile.json")
    profile.save(path)
    return output + f"\n[profile: {path} — {profile.counts()}]"


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Ablation studies (A1-A4 in DESIGN.md).

Beyond reproducing the paper's numbers, these quantify the design choices:
how utilization scales with the number of alternatives, how fabric
heterogeneity interacts with alternatives, how the CP placer compares to
the related-work baselines, and what the solver heuristics contribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.lns import LNSConfig, LNSPlacer
from repro.core.placer import CPPlacer, PlacerConfig
from repro.experiments.config import default_fabric
from repro.fabric.devices import columnar_device, homogeneous_device, irregular_device
from repro.fabric.region import PartialRegion
from repro.metrics.utilization import extent_utilization
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.placer import (
    AnalyticalConfig,
    AnalyticalPlacer,
    AnnealingConfig,
    AnnealingPlacer,
    BestFitPlacer,
    BottomLeftPlacer,
    FirstFitPlacer,
    KamerPlacer,
)


@dataclass
class SweepPoint:
    """One measured configuration of a sweep."""

    label: str
    utilization: float
    extent: Optional[int]
    placed: int
    unplaced: int
    elapsed: float


def _place_lns(region, modules, time_limit: float, seed: int) -> SweepPoint:
    res = LNSPlacer(LNSConfig(time_limit=time_limit, seed=seed)).place(region, modules)
    if res.placements:
        res.verify()
    return SweepPoint(
        label="",
        utilization=extent_utilization(res),
        extent=res.extent,
        placed=len(res.placements),
        unplaced=len(res.unplaced),
        elapsed=res.elapsed,
    )


# ----------------------------------------------------------------------
# A1 — utilization vs number of design alternatives
# ----------------------------------------------------------------------
def alternatives_sweep(
    counts: Sequence[int] = (1, 2, 3, 4),
    n_modules: int = 30,
    seed: int = 5,
    time_limit: float = 6.0,
) -> List[SweepPoint]:
    """A1: place the same module sets restricted to k alternatives."""
    region = default_fabric()
    cfg = GeneratorConfig(n_alternatives=max(counts))
    base = ModuleGenerator(seed=seed, config=cfg).generate_set(n_modules)
    points = []
    for k in counts:
        modules = [m.restricted(k) for m in base]
        p = _place_lns(region, modules, time_limit, seed)
        p.label = f"alternatives={k}"
        points.append(p)
    return points


# ----------------------------------------------------------------------
# A2 — fabric heterogeneity
# ----------------------------------------------------------------------
def heterogeneity_sweep(
    n_modules: int = 20,
    seed: int = 5,
    time_limit: float = 6.0,
) -> List[SweepPoint]:
    """Homogeneous vs regular columns vs irregular clock-interrupted."""
    fabrics = {
        "homogeneous": homogeneous_device(160, 24),
        "columnar": columnar_device(160, 24, bram_stride=8, dsp_stride=0),
        "irregular": irregular_device(160, 24, seed=42),
    }
    # homogeneous fabrics cannot host BRAM modules; use a CLB-only workload
    cfg = GeneratorConfig(bram_min=0, bram_max=0)
    modules = ModuleGenerator(seed=seed, config=cfg).generate_set(n_modules)
    points = []
    for label, grid in fabrics.items():
        region = PartialRegion.whole_device(grid)
        p = _place_lns(region, modules, time_limit, seed)
        p.label = label
        points.append(p)
    return points


# ----------------------------------------------------------------------
# A3 — placer comparison
# ----------------------------------------------------------------------
def baseline_comparison(
    n_modules: int = 30,
    seed: int = 5,
    time_limit: float = 8.0,
) -> List[SweepPoint]:
    """A3: every placer on one Table-I style instance."""
    region = default_fabric()
    modules = ModuleGenerator(seed=seed).generate_set(n_modules)
    placers = [
        ("cp-lns", lambda: LNSPlacer(LNSConfig(time_limit=time_limit, seed=seed))),
        ("bottom-left", BottomLeftPlacer),
        ("best-fit", BestFitPlacer),
        ("first-fit", FirstFitPlacer),
        ("kamer", KamerPlacer),
        (
            "annealing",
            lambda: AnnealingPlacer(
                AnnealingConfig(time_limit=time_limit, seed=seed)
            ),
        ),
        (
            # a quarter of the annealing budget: the acceptance bar is
            # "at least annealing quality in at most 25% of its time"
            "analytical",
            lambda: AnalyticalPlacer(
                AnalyticalConfig(time_limit=time_limit / 4, seed=seed)
            ),
        ),
    ]
    points = []
    for label, factory in placers:
        res = factory().place(region, modules)
        if res.placements:
            res.verify()
        points.append(
            SweepPoint(
                label=label,
                utilization=extent_utilization(res),
                extent=res.extent,
                placed=len(res.placements),
                unplaced=len(res.unplaced),
                elapsed=res.elapsed,
            )
        )
    return points


# ----------------------------------------------------------------------
# A9 — uniform backend comparison (the registry-driven A3)
# ----------------------------------------------------------------------
def backend_comparison(
    names: Optional[Sequence[str]] = None,
    n_modules: int = 12,
    seed: int = 5,
    time_limit: float = 3.0,
) -> List[SweepPoint]:
    """A9: every registered backend on one instance, via the uniform
    :class:`~repro.core.backend.PlacementRequest` surface.

    Unlike :func:`baseline_comparison` (which hand-wires each placer's
    native config), this goes through the registry only — what the
    ``--backend`` runner flag selects from.
    """
    from repro.core.backend import (
        PlacementRequest,
        available_backends,
        create_backend,
    )
    from repro.core.portfolio import PortfolioConfig
    from repro.fabric.cache import AnchorMaskCache

    region = default_fabric()
    modules = ModuleGenerator(seed=seed).generate_set(n_modules)
    selected = list(names) if names else available_backends()
    # structural knobs the request cannot carry (worker counts etc.)
    configs = {
        "portfolio": PortfolioConfig(n_workers=2, time_limit=time_limit),
    }
    cache = AnchorMaskCache()
    points = []
    for name in selected:
        backend = create_backend(name, configs.get(name))
        res = backend.place(
            PlacementRequest(
                region, modules, seed=seed, time_limit=time_limit, cache=cache
            )
        )
        if res.placements:
            res.verify()
        points.append(
            SweepPoint(
                label=name,
                utilization=extent_utilization(res),
                extent=res.extent,
                placed=len(res.placements),
                unplaced=len(res.unplaced),
                elapsed=res.elapsed,
            )
        )
    return points


# ----------------------------------------------------------------------
# A4 — solver strategy / budget anatomy
# ----------------------------------------------------------------------
def solver_strategy_sweep(
    n_modules: int = 10,
    seed: int = 9,
    time_limit: float = 4.0,
) -> List[SweepPoint]:
    """fail-first vs static branching, with/without symmetry breaking."""
    region = default_fabric(96, 20, seed=21)
    modules = ModuleGenerator(seed=seed).generate_set(n_modules)
    variants = [
        ("fail-first", PlacerConfig(time_limit=time_limit, strategy="fail-first")),
        ("static", PlacerConfig(time_limit=time_limit, strategy="static")),
        (
            "fail-first/no-symmetry",
            PlacerConfig(
                time_limit=time_limit, strategy="fail-first",
                symmetry_breaking=False,
            ),
        ),
    ]
    points = []
    for label, cfg in variants:
        res = CPPlacer(cfg).place(region, modules)
        if res.placements:
            res.verify()
        points.append(
            SweepPoint(
                label=label,
                utilization=extent_utilization(res),
                extent=res.extent,
                placed=len(res.placements),
                unplaced=len(res.unplaced),
                elapsed=res.elapsed,
            )
        )
    return points


def format_sweep(points: List[SweepPoint], title: str = "") -> str:
    """Tabular rendering of sweep points."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'configuration':<26} {'util':>7} {'extent':>7} {'placed':>7} {'time':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for p in points:
        ext = str(p.extent) if p.extent is not None else "-"
        lines.append(
            f"{p.label:<26} {p.utilization:>6.1%} {ext:>7} "
            f"{p.placed:>4}/{p.placed + p.unplaced:<2} {p.elapsed:>7.2f}s"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# A8 — static-region fraction (the Figure 4c modelling)
# ----------------------------------------------------------------------
def static_fraction_sweep(
    fractions: Sequence[float] = (0.0, 0.25, 0.5),
    n_modules: int = 12,
    seed: int = 5,
    time_limit: float = 5.0,
) -> List[SweepPoint]:
    """A8: utilization as the static region grows (Fig. 4c models ~50%).

    The static region occupies the leftmost columns; the reconfigurable
    area shrinks accordingly, so the same workload packs tighter or stops
    fitting — quantifying how much slack the Figure 4c split leaves.
    """
    region_full = default_fabric()
    modules = ModuleGenerator(seed=seed).generate_set(n_modules)
    points = []
    for frac in fractions:
        if not 0.0 <= frac < 1.0:
            raise ValueError(f"static fraction {frac} outside [0, 1)")
        static_cols = int(round(frac * region_full.width))
        if static_cols:
            region = PartialRegion.with_static_box(
                region_full.grid, 0, 0, static_cols, region_full.height
            )
        else:
            region = region_full
        p = _place_lns(region, modules, time_limit, seed)
        p.label = f"static={frac:.0%}"
        points.append(p)
    return points

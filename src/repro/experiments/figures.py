"""Figure reproductions (Figures 1, 3, 4, 5).

The paper's figures are qualitative illustrations; these drivers
regenerate their content — alternative galleries, with/without placement
comparisons, and the constraint-by-constraint shrinkage of the valid
placement set — as data plus ASCII art, so the benches can both render
them and assert their quantitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.alternatives import expand_alternatives
from repro.core.lns import LNSConfig, LNSPlacer
from repro.core.result import PlacementResult
from repro.experiments.config import default_fabric
from repro.fabric.masks import compatibility_masks, valid_anchor_mask
from repro.fabric.region import PartialRegion
from repro.flow.visualize import alternatives_gallery, comparison_figure
from repro.modules.footprint import Footprint
from repro.modules.generator import ModuleGenerator
from repro.modules.module import Module
from repro.modules.transform import build_body


# ----------------------------------------------------------------------
# Figure 1 — one module, several functionally equivalent layouts
# ----------------------------------------------------------------------
def figure1_module(n_alternatives: int = 5) -> Module:
    """A module akin to Figure 1: 24 CLBs + 2 BRAMs, several layouts."""
    base = build_body(24, 6, bram_cells=2, bram_column=2)
    shapes = expand_alternatives(base, max_alternatives=n_alternatives, seed=3)
    return Module("fig1", shapes)


def figure1_gallery(n_alternatives: int = 5) -> str:
    """ASCII gallery of the Figure 1 module's alternatives."""
    return alternatives_gallery(figure1_module(n_alternatives))


# ----------------------------------------------------------------------
# Figures 3 & 5 — placements with vs without design alternatives
# ----------------------------------------------------------------------
def figure3_comparison(
    n_modules: int = 8,
    seed: int = 3,
    time_limit: float = 4.0,
) -> Tuple[PlacementResult, PlacementResult, str]:
    """Place a small module set both ways; returns (without, with, figure)."""
    region = default_fabric(64, 16, seed=7)
    modules = ModuleGenerator(seed=seed).generate_set(n_modules)
    without = LNSPlacer(LNSConfig(time_limit=time_limit, seed=seed)).place(
        region, [m.restricted(1) for m in modules]
    )
    with_alts = LNSPlacer(LNSConfig(time_limit=time_limit, seed=seed)).place(
        region, modules
    )
    return without, with_alts, comparison_figure(without, with_alts)


# ----------------------------------------------------------------------
# Figure 4 — how each constraint family restricts placement
# ----------------------------------------------------------------------
@dataclass
class ConstraintAnatomy:
    """Valid anchor counts as constraints are added (Figure 4 a-d)."""

    #: (a) in-bounds anchors only (bounding box of the device)
    in_bounds: int
    #: (b) + resource compatibility on the full device
    resource_matched: int
    #: (c) + restricted to the reconfigurable region (static masked)
    in_region: int
    #: (d) + non-overlap with one already-placed module
    non_overlapping: int

    def monotone(self) -> bool:
        return (
            self.in_bounds
            >= self.resource_matched
            >= self.in_region
            >= self.non_overlapping
        )


def figure4_constraint_anatomy(
    seed: int = 11, module_seed: int = 2
) -> ConstraintAnatomy:
    """Measure the shrinking valid-placement set of Figure 4."""
    from repro.fabric.devices import irregular_device
    from repro.fabric.resource import ResourceType

    grid = irregular_device(48, 16, seed=seed)
    # (a) bounding box only: anchors where the bbox fits, ignoring types
    module = ModuleGenerator(seed=module_seed).generate()
    fp = module.primary()
    in_bounds = (grid.width - fp.width + 1) * (grid.height - fp.height + 1)

    # (b) + resource matching on the whole device
    whole = PartialRegion.whole_device(grid)
    resource_matched = int(valid_anchor_mask(whole, sorted(fp.cells)).sum())

    # (c) + static region masked off (right half static, like Fig 4c)
    region = PartialRegion.with_static_box(
        grid, grid.width // 2, 0, grid.width - grid.width // 2, grid.height
    )
    in_region_mask = valid_anchor_mask(region, sorted(fp.cells))
    in_region = int(in_region_mask.sum())

    # (d) + one placed module blocking part of the region
    blocker = ModuleGenerator(seed=module_seed + 1).generate()
    bfp = blocker.primary()
    bmask = valid_anchor_mask(region, sorted(bfp.cells))
    ys, xs = np.nonzero(bmask)
    if xs.size == 0:
        non_overlapping = in_region
    else:
        k = np.lexsort((ys, xs))[0]
        bx, by = int(xs[k]), int(ys[k])
        occupied = np.zeros((region.height, region.width), dtype=bool)
        for dx, dy, _ in bfp.cells:
            occupied[by + dy, bx + dx] = True
        remaining = 0
        mys, mxs = np.nonzero(in_region_mask)
        for x, y in zip(mxs.tolist(), mys.tolist()):
            if not any(occupied[y + dy, x + dx] for dx, dy, _ in fp.cells):
                remaining += 1
        non_overlapping = remaining
    return ConstraintAnatomy(in_bounds, resource_matched, in_region, non_overlapping)

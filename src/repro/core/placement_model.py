"""The constraint model of Section III, assembled.

Per module ``i`` the model has three variables — anchor ``x_i``, ``y_i``
and shape alternative ``s_i`` — and posts:

* the :class:`~repro.geost.placement.PlacementKernel` enforcing M_a
  (in-region), M_b (resource matching) and M_c (non-overlap),
* the objective coupling of :mod:`repro.core.objective` (Eq. 6),
* a redundant :class:`~repro.cp.constraints.cumulative.Cumulative`
  projection when all alternatives of all modules are bounding-box-dense
  (a classic strengthening; skipped otherwise because projections of
  sparse footprints would be unsound with footprint heights), and
* symmetry breaking — interchangeable modules (identical alternative
  sets) are ordered by anchor x.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cp.constraints import Task
from repro.cp.model import Model
from repro.cp.variable import IntVar
from repro.core.objective import ObjectiveKind, build_objective
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.region import PartialRegion
from repro.geost.placement import PlacementKernel
from repro.modules.module import Module
from repro.obs.trace import CACHE_MASKS, Tracer


class PlacementModel:
    """CP model for placing a module set on a partial region.

    ``tracer``/``profile`` reach the engine before the kernel is posted,
    so the (expensive) root propagation is observable too.  ``cache``
    (an :class:`~repro.fabric.cache.AnchorMaskCache`) memoizes the static
    anchor masks across repeated constructions — the LNS/portfolio hot
    path; the per-construction hit/miss deltas land in
    :attr:`cache_stats` and, when a tracer is attached, in one
    ``cache.masks`` event.
    """

    def __init__(
        self,
        region: PartialRegion,
        modules: Sequence[Module],
        objective: ObjectiveKind = ObjectiveKind.MIN_EXTENT_X,
        symmetry_breaking: bool = True,
        redundant_cumulative: bool = True,
        tracer: Optional[Tracer] = None,
        profile: bool = False,
        cache: Optional[AnchorMaskCache] = None,
        incremental: bool = True,
        bitboard: bool = True,
    ) -> None:
        if not modules:
            raise ValueError("nothing to place")
        self.region = region
        self.modules = list(modules)
        self.model = Model("placement", tracer=tracer, profile=profile)
        m = self.model

        self.xs: List[IntVar] = []
        self.ys: List[IntVar] = []
        self.ss: List[IntVar] = []
        for i, mod in enumerate(self.modules):
            # anchors start at the full grid; the kernel prunes them to the
            # statically valid anchor sets on post (M_a and M_b)
            self.xs.append(m.int_var(0, region.width - 1, f"x[{i}]"))
            self.ys.append(m.int_var(0, region.height - 1, f"y[{i}]"))
            self.ss.append(m.int_var(0, mod.n_alternatives - 1, f"s[{i}]"))

        self.kernel = PlacementKernel(
            region, self.modules, self.xs, self.ys, self.ss, cache=cache,
            incremental=incremental, bitboard=bitboard,
        )
        #: anchor-mask cache increments of this construction (None = uncached)
        self.cache_stats = self.kernel.cache_stats
        if (
            self.cache_stats is not None
            and tracer is not None
            and tracer.enabled
        ):
            tracer.emit(CACHE_MASKS, **self.cache_stats)
        m.post(self.kernel)

        self.objective_var = build_objective(
            m, objective, self.modules, self.xs, self.ys, self.ss,
            region.width, region.height,
        )

        if symmetry_breaking:
            self._break_symmetries()
        if redundant_cumulative:
            self._post_cumulative()

    # ------------------------------------------------------------------
    def _break_symmetries(self) -> None:
        """Order anchors of interchangeable modules lexicographically."""
        groups: Dict[Tuple, List[int]] = {}
        for i, mod in enumerate(self.modules):
            groups.setdefault(tuple(mod.shapes), []).append(i)
        for indices in groups.values():
            for a, b in zip(indices, indices[1:]):
                # x_a <= x_b is a sound ordering for identical modules
                self.model.add_le(self.xs[a], self.xs[b])

    def _post_cumulative(self) -> None:
        """Redundant x-projection: sum of heights at any column <= H.

        Only sound when every alternative of every module fills its
        bounding box (dense rectangles) *and* alternatives of one module
        share dimensions; otherwise the projection over-approximates and
        is skipped.
        """
        tasks: List[Task] = []
        for i, mod in enumerate(self.modules):
            dims = {(fp.width, fp.height) for fp in mod.shapes}
            if len(dims) != 1 or not all(fp.is_rectangular() for fp in mod.shapes):
                return
            w, h = next(iter(dims))
            tasks.append(Task(self.xs[i], w, h))
        self.model.add_cumulative(tasks, self.region.height)

    # ------------------------------------------------------------------
    def decision_vars(self, order: Optional[Sequence[int]] = None) -> List[IntVar]:
        """Interleaved x, y, s per module, in the given module order.

        Fixing ``x`` then ``y`` lets the kernel prune ``y`` under the fixed
        column before it is branched, and ``s`` is usually fixed by
        propagation once the anchor is known.
        """
        if order is None:
            order = range(len(self.modules))
        out: List[IntVar] = []
        for i in order:
            out.extend((self.xs[i], self.ys[i], self.ss[i]))
        return out

    def area_order(self) -> List[int]:
        """Module indices by decreasing primary area (hardest first)."""
        return sorted(
            range(len(self.modules)),
            key=lambda i: -self.modules[i].primary().area,
        )

"""Online runtime placement: admission control, backpressure, defrag triggers.

The paper measures its utilization win offline, but its whole framing is
*runtime* reconfigurable systems: modules arrive, run for a while and
leave, and the free space shatters (Fekete et al. on dynamic
defragmentation, Ahmadinia et al. on online free-space management).
:class:`RuntimePlacementManager` is the serving loop that drives the
repo's existing parts under such a load:

* **Admission** — each arrival is placed on the residual region through a
  deterministic fallback chain of registered placement backends
  (:mod:`repro.core.backend`): by default a budgeted CP probe (anchor
  masks served from a shared :class:`~repro.fabric.cache.AnchorMaskCache`),
  then the bottom-left greedy rung, then reject.  ``RuntimeConfig.chain``
  overrides the rungs declaratively by backend name.
* **Fragmentation control** — external fragmentation of the live
  floorplan is monitored (:mod:`repro.metrics.fragmentation`); crossing a
  threshold, or any rejection, triggers a :func:`~repro.core.defrag.defragment`
  pass honoring either shape-change policy.
* **Backpressure** — rejected arrivals wait in a bounded pending queue
  with per-request deadlines; the queue is retried after every departure
  and defrag pass, expired or overflowing requests are rejected
  *gracefully* with machine-readable :class:`RejectReason` codes — no
  exception escapes the manager on the serving path.
* **Reservations** — with ``RuntimeConfig.reservation_horizon > 0`` an
  arrival that cannot run *now* is probed against the departures due
  within the horizon and booked at the first tick where its anchor
  masks fit the projected floorplan (:class:`Reservation`); the booked
  cells are promised (subtracted from the residual region) until the
  reservation commits, replans, or expires with
  :attr:`RejectReason.RESERVATION_EXPIRED`.  At ``horizon == 0`` every
  reservation path is dormant and the manager replays bit-identically
  to the pre-reservation code — pinned by the differential tests.
* **Observability** — every lifecycle step emits a structured trace event
  (``runtime.arrival`` / ``runtime.reject`` / ``runtime.defrag`` /
  ``runtime.depart``) and the per-request latency / occupancy counters
  aggregate into a :class:`~repro.obs.profile.SolveProfile` through the
  existing :mod:`repro.obs` layer.

Time model: the manager runs on the *logical* clock carried by the
requests (arrival/lifetime/deadline are simulation time units); solver
budgets (``probe_time_limit``) are wall-clock seconds.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import (
    PlacementRequest,
    available_backends,
    create_backend,
)
from repro.core.defrag import (
    Defragmenter,
    PlannedMove,
    available_defragmenters,
    create_defragmenter,
)
from repro.core.result import Placement, PlacementResult
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.region import PartialRegion
from repro.metrics.fragmentation import external_fragmentation
from repro.metrics.utilization import region_utilization
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module
from repro.obs import context as obs_context
from repro.obs.profile import SolveProfile
from repro.obs.trace import (
    RUNTIME_ARRIVAL,
    RUNTIME_DEFRAG,
    RUNTIME_DEFRAG_STEP,
    RUNTIME_DEPART,
    RUNTIME_REJECT,
    RUNTIME_RESERVATION_COMMIT,
    RUNTIME_RESERVATION_EXPIRE,
    RUNTIME_RESERVE,
    Tracer,
)


# ----------------------------------------------------------------------
# Requests and outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuntimeRequest:
    """One module arrival in the online stream."""

    module: Module
    #: logical arrival time
    arrival: int
    #: logical time the module stays placed once admitted
    lifetime: int
    #: latest logical time admission is still useful (None = arrival +
    #: the manager's ``max_queue_wait``)
    deadline: Optional[int] = None
    #: execution ticks for scheduling backends (None = untimed; the
    #: admission path ignores it, ``temporal-cp`` requests honor it)
    duration: Optional[int] = None
    #: name of a module that must finish before this one starts — a
    #: precedence edge for scheduling backends (None = unconstrained)
    after: Optional[str] = None

    def __post_init__(self) -> None:
        if self.lifetime <= 0:
            raise ValueError("request lifetime must be positive")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("request duration must be positive")


class RejectReason(str, Enum):
    """Machine-readable rejection codes (the manager never raises)."""

    #: no fallback rung produced a feasible placement
    NO_FIT = "no_fit"
    #: the pending queue was at capacity when the request arrived
    QUEUE_FULL = "queue_full"
    #: the request waited in the queue past its deadline
    DEADLINE = "deadline_expired"
    #: a module with the same name is already placed or pending
    DUPLICATE = "duplicate"
    #: the manager drained while the request still waited — its deadline
    #: had *not* passed; the serving run simply ended (reject-rate
    #: experiments must not conflate this with a real deadline miss)
    DRAINED = "drained"
    #: the request held a reservation whose planned cells never became
    #: usable before the deadline (reservation mode only)
    RESERVATION_EXPIRED = "reservation_expired"

    def __str__(self) -> str:  # "no_fit", not "RejectReason.NO_FIT"
        return self.value


@dataclass
class RequestOutcome:
    """The manager's answer for one request (mutated when a queued
    request is later admitted or expires)."""

    request: RuntimeRequest
    #: "admitted" | "queued" | "reserved" | "rejected"
    status: str = "rejected"
    #: fallback rung that produced the placement ("cp", "greedy",
    #: "cp+defrag", "greedy+defrag"); None when rejected
    method: Optional[str] = None
    reason: Optional[RejectReason] = None
    placement: Optional[Placement] = None
    #: logical time of admission (>= arrival when served from the queue)
    admitted_at: Optional[int] = None
    #: wall-clock seconds spent in admission attempts for this request
    latency_s: float = 0.0
    #: errors swallowed on the probe path (graceful degradation)
    errors: List[str] = field(default_factory=list)

    @property
    def admitted(self) -> bool:
        return self.status == "admitted"


@dataclass
class RuntimeConfig:
    """Knobs of the runtime placement manager."""

    #: admit with the full alternative set (False = primary shape only)
    with_alternatives: bool = True
    #: first fallback rung: "cp" (budgeted CP probe, then greedy) or
    #: "greedy" (skip the CP probe — deterministic and much faster)
    probe: str = "cp"
    #: explicit admission chain as registered backend names (overrides
    #: ``probe``); None = derived from ``probe``: ("cp", "greedy") or
    #: ("greedy",).  Every name must be registered and relocatable.
    chain: Optional[Sequence[str]] = None
    #: wall-clock budget of one CP probe (seconds)
    probe_time_limit: float = 0.25
    #: bounded pending queue (0 = reject immediately, no queueing)
    queue_capacity: int = 8
    #: default per-request deadline: arrival + this many logical ticks
    max_queue_wait: int = 16
    #: reservation lookahead in logical ticks: when an arrival cannot be
    #: admitted now, probe the departures due within this horizon and
    #: book the request at the first tick where it fits (0 = disabled —
    #: the manager behaves bit-identically to the pre-reservation code)
    reservation_horizon: int = 0
    #: bound on simultaneously outstanding reservations
    reservation_capacity: int = 8
    #: trigger a defrag pass when external fragmentation exceeds this
    frag_threshold: float = 0.6
    #: also defrag (once) when an arrival cannot be placed
    defrag_on_reject: bool = True
    #: may defrag pick a different design alternative? (the paper's
    #: stateful-module assumption says no; True is valid for
    #: stateless/restartable modules)
    allow_shape_change: bool = False
    #: hard cap on relocations per defrag pass (None = internal guard)
    defrag_max_moves: Optional[int] = None
    #: minimum logical ticks between fragmentation-triggered passes
    defrag_cooldown: int = 4
    #: registered defragmentation strategy: "greedy-compaction" applies
    #: the whole pass atomically (the historical teleporting behavior,
    #: kept as the oracle); "no-break" plans move sequences that respect
    #: running modules and executes them on the logical clock
    defragmenter: str = "greedy-compaction"
    #: reconfiguration frames rewritten per logical tick — a planned
    #: move's window lasts ceil(frames / this) ticks, during which the
    #: mover occupies both source and target
    defrag_frames_per_tick: int = 8
    #: verify the live floorplan (including in-flight move windows) at
    #: every move transition — O(cells) per check, for tests/experiments
    verify_moves: bool = False
    #: structured event sink for runtime.* events (None = off)
    tracer: Optional[Tracer] = None
    #: anchor-mask cache shared by all CP probes (None = new cache)
    cache: Optional[AnchorMaskCache] = None
    #: sample (clock, occupancy, utilization, fragmentation) into the log
    #: timeline after every request — the fragmentation metric is a pure
    #: Python maximal-rectangles pass, so high-throughput serving loops
    #: (the sharded service) switch it off
    sample_timeline: bool = True
    #: external admission solver hook: a callable ``(module, residual
    #: region) -> Optional[(Placement, method)]`` tried *before* the
    #: in-process chain — the sharded service's process-pool mode plugs
    #: its worker dispatch in here.  Exceptions degrade gracefully to the
    #: chain; None (the default) keeps the chain as the only path.
    solver: Optional[Callable[[Module, PartialRegion], Optional[Tuple[Placement, str]]]] = None

    def effective_chain(self) -> Tuple[str, ...]:
        """The admission rungs as registered backend names."""
        if self.chain is not None:
            return tuple(self.chain)
        return ("cp", "greedy") if self.probe == "cp" else ("greedy",)

    def validate(self) -> None:
        if self.probe not in ("cp", "greedy"):
            raise ValueError(f"unknown probe {self.probe!r}")
        chain = self.effective_chain()
        if not chain:
            raise ValueError("admission chain must name at least one backend")
        registered = set(available_backends())
        for name in chain:
            if name not in registered:
                raise ValueError(
                    f"unknown backend {name!r} in admission chain; "
                    f"registered: {', '.join(sorted(registered))}"
                )
            if not create_backend(name).capabilities.relocatable:
                raise ValueError(
                    f"backend {name!r} is not relocatable and cannot serve "
                    f"the runtime admission chain"
                )
        if self.solver is not None and not callable(self.solver):
            raise ValueError("solver must be callable (or None)")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")
        if self.max_queue_wait < 0:
            raise ValueError("max_queue_wait must be >= 0")
        if self.reservation_horizon < 0:
            raise ValueError("reservation_horizon must be >= 0")
        if self.reservation_capacity < 0:
            raise ValueError("reservation_capacity must be >= 0")
        if not 0.0 <= self.frag_threshold <= 1.0:
            raise ValueError("frag_threshold must be within [0, 1]")
        if self.defragmenter not in available_defragmenters():
            raise ValueError(
                f"unknown defragmenter {self.defragmenter!r}; registered: "
                f"{', '.join(available_defragmenters())}"
            )
        if self.defrag_frames_per_tick < 1:
            raise ValueError("defrag_frames_per_tick must be >= 1")


@dataclass
class RuntimeStats:
    """Aggregate counters of one manager lifetime."""

    arrivals: int = 0
    admitted: int = 0
    rejected: int = 0
    departures: int = 0
    defrags: int = 0
    defrag_moves: int = 0
    #: no-break accounting: moves a plan scheduled, moves that actually
    #: completed on the clock, moves cancelled (stale after an arrival,
    #: or their mover departed mid-window).  Instant passes count every
    #: move as planned+executed.
    defrag_planned_moves: int = 0
    defrag_executed_moves: int = 0
    defrag_aborted_moves: int = 0
    #: wall-clock seconds spent planning/applying defrag passes — kept
    #: out of per-request ``latency_s`` (a reject-triggered pass is
    #: floorplan maintenance, not the triggering request's work; charging
    #: it there skewed the p99 admission-latency gate)
    defrag_time_s: float = 0.0
    probe_errors: int = 0
    queued_admits: int = 0
    #: reservation accounting: bookings made, bookings that committed
    #: (directly or replanned), bookings that expired past their deadline
    reservations_booked: int = 0
    reservation_admits: int = 0
    reservations_expired: int = 0
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)
    admits_by_method: Dict[str, int] = field(default_factory=dict)
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    peak_occupied_cells: int = 0

    @property
    def rejection_ratio(self) -> float:
        total = self.admitted + self.rejected
        return self.rejected / total if total else 0.0

    @property
    def mean_latency_s(self) -> float:
        total = self.admitted + self.rejected
        return self.total_latency_s / total if total else 0.0

    def count_reject(self, reason: RejectReason) -> None:
        self.rejected += 1
        key = str(reason)
        self.rejected_by_reason[key] = self.rejected_by_reason.get(key, 0) + 1

    def count_admit(self, method: str, queued: bool) -> None:
        self.admitted += 1
        self.admits_by_method[method] = self.admits_by_method.get(method, 0) + 1
        if queued:
            self.queued_admits += 1

    def __add__(self, other: "RuntimeStats") -> "RuntimeStats":
        """Merge shard-local stats into one service-level record."""
        rejected_by = dict(self.rejected_by_reason)
        for key, n in other.rejected_by_reason.items():
            rejected_by[key] = rejected_by.get(key, 0) + n
        admits_by = dict(self.admits_by_method)
        for key, n in other.admits_by_method.items():
            admits_by[key] = admits_by.get(key, 0) + n
        return RuntimeStats(
            arrivals=self.arrivals + other.arrivals,
            admitted=self.admitted + other.admitted,
            rejected=self.rejected + other.rejected,
            departures=self.departures + other.departures,
            defrags=self.defrags + other.defrags,
            defrag_moves=self.defrag_moves + other.defrag_moves,
            defrag_planned_moves=(
                self.defrag_planned_moves + other.defrag_planned_moves
            ),
            defrag_executed_moves=(
                self.defrag_executed_moves + other.defrag_executed_moves
            ),
            defrag_aborted_moves=(
                self.defrag_aborted_moves + other.defrag_aborted_moves
            ),
            defrag_time_s=self.defrag_time_s + other.defrag_time_s,
            probe_errors=self.probe_errors + other.probe_errors,
            queued_admits=self.queued_admits + other.queued_admits,
            reservations_booked=(
                self.reservations_booked + other.reservations_booked
            ),
            reservation_admits=(
                self.reservation_admits + other.reservation_admits
            ),
            reservations_expired=(
                self.reservations_expired + other.reservations_expired
            ),
            rejected_by_reason=rejected_by,
            admits_by_method=admits_by,
            total_latency_s=self.total_latency_s + other.total_latency_s,
            max_latency_s=max(self.max_latency_s, other.max_latency_s),
            peak_occupied_cells=(
                self.peak_occupied_cells + other.peak_occupied_cells
            ),
        )


@dataclass
class RuntimeLog:
    """Everything :meth:`RuntimePlacementManager.run` observed."""

    outcomes: List[RequestOutcome]
    stats: RuntimeStats
    #: (clock, occupied_cells, region_utilization, external_fragmentation)
    #: sampled after every processed event
    timeline: List[Tuple[int, int, float, float]] = field(default_factory=list)

    @property
    def admitted(self) -> int:
        return self.stats.admitted

    @property
    def rejected(self) -> int:
        return self.stats.rejected

    def mean_utilization(self) -> float:
        """Time-weighted mean region utilization over the run."""
        if len(self.timeline) < 2:
            return self.timeline[0][2] if self.timeline else 0.0
        area = 0.0
        span = 0
        for (t0, _, u0, _), (t1, _, _, _) in zip(
            self.timeline, self.timeline[1:]
        ):
            area += u0 * (t1 - t0)
            span += t1 - t0
        return area / span if span else self.timeline[-1][2]


@dataclass
class _Pending:
    """A queued request plus its mutable outcome."""

    request: RuntimeRequest
    outcome: RequestOutcome
    deadline: int


@dataclass
class Reservation:
    """Capacity booked ahead of time for a request that cannot run *now*.

    A reservation pins a concrete planned placement to a future start
    tick (a departure the admission probe identified inside the
    reservation horizon).  When the clock reaches ``start`` the manager
    commits the planned placement if its cells are actually free,
    replans on the then-current floorplan if they are not, and expires
    the reservation honestly (:attr:`RejectReason.RESERVATION_EXPIRED`)
    once ``deadline`` passes without either succeeding.
    """

    request: RuntimeRequest
    outcome: RequestOutcome
    #: the planned placement (cells to hold free until ``start``)
    placement: Placement
    #: logical tick the reservation becomes due
    start: int
    #: latest logical tick a commit is still useful
    deadline: int
    #: logical tick the reservation was booked (== arrival clock)
    booked_at: int


@dataclass
class _ActiveMove:
    """A no-break move in flight: its window ends at logical ``ends``."""

    move: PlannedMove
    ends: int


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------
class RuntimePlacementManager:
    """Serves an online arrival/departure stream against a live fabric."""

    def __init__(
        self,
        region: PartialRegion,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.region = region
        self.config = config or RuntimeConfig()
        self.config.validate()
        self.clock = 0
        self.stats = RuntimeStats()
        self.outcomes: List[RequestOutcome] = []
        self._placements: Dict[str, Placement] = {}
        self._departures: List[Tuple[int, str]] = []  # heap
        self._pending: Deque[_Pending] = deque()
        #: outstanding reservations, kept sorted by start tick
        self._reservations: List[Reservation] = []
        self._last_defrag_clock: Optional[int] = None
        #: live occupancy, maintained incrementally on commit/depart/defrag
        #: (rebuilding it per probe was a per-request Python loop over
        #: every live cell — measurable at service throughput)
        self._occupancy = np.zeros(
            (region.height, region.width), dtype=bool
        )
        #: monotone stamp of the plannable floorplan (live occupancy and
        #: outstanding reservations); bumped on every mutation so the
        #: fragmentation memo invalidates without grid comparisons
        self._occupancy_rev = 0
        #: memoized fragmentation per view: "live"/"planning" -> (rev, value)
        self._frag_cache: Dict[str, Tuple[int, float]] = {}
        cfg = self.config
        #: one shared anchor-mask cache across every probe of every rung
        # explicit None test: AnchorMaskCache has __len__, so an *empty*
        # shared cache is falsy — `or` would silently un-share it
        self._cache = cfg.cache if cfg.cache is not None else AnchorMaskCache()
        #: the registered defragmentation strategy (planner)
        self._defragmenter: Defragmenter = create_defragmenter(
            cfg.defragmenter
        )
        #: no-break plan execution state: moves waiting their turn, and
        #: the single move currently holding its window on the fabric
        self._move_queue: Deque[PlannedMove] = deque()
        self._active_move: Optional[_ActiveMove] = None
        #: the admission rungs, instantiated once per manager
        self._chain = [
            (name, create_backend(name)) for name in cfg.effective_chain()
        ]
        tracer = cfg.tracer
        self._tracer = tracer if tracer is not None and tracer.enabled else None

    # ------------------------------------------------------------------
    # State views
    # ------------------------------------------------------------------
    @property
    def placements(self) -> List[Placement]:
        return list(self._placements.values())

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def reservations(self) -> List[Reservation]:
        """Outstanding reservations (sorted by start tick)."""
        return list(self._reservations)

    @property
    def moves_in_flight(self) -> int:
        """Planned moves not yet completed (active + queued)."""
        return (self._active_move is not None) + len(self._move_queue)

    def result(self) -> PlacementResult:
        return PlacementResult(self.region, self.placements)

    def occupancy_mask(self) -> np.ndarray:
        return self._occupancy.copy()

    def residual_region(self) -> PartialRegion:
        free = self.region.reconfigurable & ~self._occupancy
        if self._reservations:
            # booked cells are promised to their reservations: admitting
            # a new module onto them would force a replan at commit time
            free = free & ~self._reserved_mask()
        return PartialRegion(
            self.region.grid, free, f"{self.region.name}-residual"
        )

    def _reserved_mask(
        self, exclude: Optional[Reservation] = None
    ) -> np.ndarray:
        """Cells promised to outstanding reservations (H, W bool)."""
        mask = np.zeros_like(self._occupancy)
        for r in self._reservations:
            if r is exclude:
                continue
            for x, y, _ in r.placement.absolute_cells():
                mask[y, x] = True
        return mask

    def _residual_excluding(self, reservation: Reservation) -> PartialRegion:
        """Residual region for replanning one reservation: its own booked
        cells are fair game, the other reservations' cells stay promised."""
        free = self.region.reconfigurable & ~self._occupancy
        if len(self._reservations) > 1:
            free = free & ~self._reserved_mask(exclude=reservation)
        return PartialRegion(
            self.region.grid, free, f"{self.region.name}-residual"
        )

    # -- occupancy maintenance -----------------------------------------
    @staticmethod
    def _imprint_into(occ: np.ndarray, placement: Placement) -> None:
        """Mark one placement's cells in an arbitrary occupancy array
        (the reservation probe projects onto scratch floorplans)."""
        cells = placement.absolute_cells()
        xs = np.fromiter((c[0] for c in cells), dtype=np.int64, count=len(cells))
        ys = np.fromiter((c[1] for c in cells), dtype=np.int64, count=len(cells))
        occ[ys, xs] = True

    def _imprint(self, placement: Placement, value: bool) -> None:
        cells = placement.absolute_cells()
        xs = np.fromiter((c[0] for c in cells), dtype=np.int64, count=len(cells))
        ys = np.fromiter((c[1] for c in cells), dtype=np.int64, count=len(cells))
        self._occupancy[ys, xs] = value
        self._occupancy_rev += 1

    def _rebuild_occupancy(self) -> None:
        self._occupancy[:] = False
        self._occupancy_rev += 1
        for p in self._placements.values():
            self._imprint(p, True)

    def fragmentation(self) -> float:
        """External fragmentation of the live floorplan, memoized on the
        occupancy revision: the least-fragmented router probes it once
        per candidate shard per request, and the KAMER staircase behind
        the metric is pure Python — recomputing it on an unchanged
        floorplan was the serving hot path's dominant cost."""
        cached = self._frag_cache.get("live")
        if cached is not None and cached[0] == self._occupancy_rev:
            return cached[1]
        value = external_fragmentation(self.result())
        self._frag_cache["live"] = (self._occupancy_rev, value)
        return value

    def planning_fragmentation(self) -> float:
        """External fragmentation of the *plannable* floorplan: live
        placements plus the cells promised to outstanding reservations.
        This is the free-space picture an admission router should rank
        by — booked cells shatter usable space exactly like placed ones.
        Equals :meth:`fragmentation` when no reservations are
        outstanding.  Memoized like :meth:`fragmentation` (reservation
        churn bumps the same revision stamp)."""
        if not self._reservations:
            return self.fragmentation()
        cached = self._frag_cache.get("planning")
        if cached is not None and cached[0] == self._occupancy_rev:
            return cached[1]
        placements = self.placements + [
            r.placement for r in self._reservations
        ]
        value = external_fragmentation(
            PlacementResult(self.region, placements)
        )
        self._frag_cache["planning"] = (self._occupancy_rev, value)
        return value

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def submit(self, request: RuntimeRequest) -> RequestOutcome:
        """Process one arrival (advancing the logical clock first)."""
        self.advance_to(request.arrival)
        self.stats.arrivals += 1
        self._emit(
            RUNTIME_ARRIVAL,
            module=request.module.name,
            clock=self.clock,
            queue=len(self._pending),
        )
        outcome = RequestOutcome(request)
        self.outcomes.append(outcome)
        if self._is_duplicate(request.module.name):
            self._reject(outcome, RejectReason.DUPLICATE)
            return outcome
        if self._try_admit(request, outcome, allow_defrag=True):
            return outcome
        self._queue_or_reject(request, outcome)
        return outcome

    def offer(self, request: RuntimeRequest) -> Optional[RequestOutcome]:
        """Spill probe (service hook): admit *now* or decline untraced.

        Advances the clock and attempts the full admission chain, but —
        unlike :meth:`submit` — a failure records nothing: no arrival, no
        queueing, no rejection.  The sharded service probes spill-over
        shards through this, so a declined probe does not distort the
        shard's log.  On success the admitted outcome is recorded exactly
        as a submitted arrival would be.
        """
        self.advance_to(request.arrival)
        if self._is_duplicate(request.module.name):
            return None
        outcome = RequestOutcome(request)
        if not self._try_admit(request, outcome, allow_defrag=True):
            return None
        self.stats.arrivals += 1
        self._emit(
            RUNTIME_ARRIVAL,
            module=request.module.name,
            clock=self.clock,
            queue=len(self._pending),
        )
        self.outcomes.append(outcome)
        return outcome

    def park(self, request: RuntimeRequest) -> RequestOutcome:
        """Record an arrival that failed its spill probes (service hook).

        The request already failed :meth:`offer` on every candidate shard
        — including this one — so the admission chain is *not* re-run;
        the request goes straight under the backpressure rules (queue,
        or reject honestly).
        """
        self.stats.arrivals += 1
        self._emit(
            RUNTIME_ARRIVAL,
            module=request.module.name,
            clock=self.clock,
            queue=len(self._pending),
        )
        outcome = RequestOutcome(request)
        self.outcomes.append(outcome)
        if self._is_duplicate(request.module.name):
            self._reject(outcome, RejectReason.DUPLICATE)
            return outcome
        self._queue_or_reject(request, outcome)
        return outcome

    def _queue_or_reject(
        self, request: RuntimeRequest, outcome: RequestOutcome
    ) -> None:
        """No rung fit right now: reserve ahead if the horizon allows,
        else queue under the backpressure rules."""
        if self.config.reservation_horizon > 0 and self._try_reserve(
            request, outcome
        ):
            return
        if self.config.queue_capacity == 0:
            # queueing disabled: the honest reason is the failed placement
            self._reject(outcome, RejectReason.NO_FIT)
            return
        if self.config.queue_capacity <= len(self._pending):
            self._reject(outcome, RejectReason.QUEUE_FULL)
            return
        deadline = (
            request.deadline
            if request.deadline is not None
            else request.arrival + self.config.max_queue_wait
        )
        if deadline <= self.clock:
            self._reject(outcome, RejectReason.DEADLINE)
            return
        outcome.status = "queued"
        self._pending.append(_Pending(request, outcome, deadline))

    def depart(self, name: str) -> Optional[Placement]:
        """Explicitly remove a placed module (None if unknown)."""
        placement = self._placements.pop(name, None)
        if placement is not None:
            self._remove_cells(name, placement)
            self.stats.departures += 1
            self._emit(RUNTIME_DEPART, module=name, clock=self.clock)
            self._after_space_freed()
        return placement

    def next_departure(self) -> Optional[int]:
        """Logical time of the next scheduled event — a departure or a
        reservation becoming due (external-clock drivers — the sharded
        service — step shards through this)."""
        times = []
        if self._departures:
            times.append(self._departures[0][0])
        if self._reservations:
            times.append(min(r.start for r in self._reservations))
        return min(times) if times else None

    def advance_to(self, t: int) -> None:
        """Advance the logical clock: move completions, departures and
        due reservations in time order (a completion due at the same
        tick lands first, so the freed source cells are visible to that
        tick's departures' retry pass; a departure lands before a
        same-tick reservation so the booked cells are actually free at
        commit), then queue upkeep."""
        if t < self.clock:
            raise ValueError(
                f"clock may not go backwards ({t} < {self.clock})"
            )
        # a due reservation that fails to commit (and has not expired)
        # stays booked — attempt each at most once per advance, or the
        # event loop would spin on it
        attempted: set = set()
        while True:
            dep = self._departures[0][0] if self._departures else None
            active = self._active_move
            fin = active.ends if active is not None else None
            resv = min(
                (
                    r.start
                    for r in self._reservations
                    if id(r) not in attempted
                ),
                default=None,
            )
            if (
                fin is not None
                and fin <= t
                and (dep is None or fin <= dep)
                and (resv is None or fin <= resv)
            ):
                self.clock = max(self.clock, fin)
                self._complete_active_move()
                continue
            if dep is not None and dep <= t and (resv is None or dep <= resv):
                due, name = heapq.heappop(self._departures)
                self.clock = max(self.clock, due)
                placement = self._placements.pop(name, None)
                if placement is not None:
                    self._remove_cells(name, placement)
                    self.stats.departures += 1
                    self._emit(RUNTIME_DEPART, module=name, clock=self.clock)
                    self._expire_pending()
                    self._after_space_freed()
                continue
            if resv is not None and resv <= t:
                self.clock = max(self.clock, resv)
                for r in self._reservations:
                    if r.start <= self.clock:
                        attempted.add(id(r))
                self._commit_due_reservations()
                continue
            break
        self.clock = max(self.clock, t)
        self._expire_pending()
        if self._reservations:
            self._commit_due_reservations()
        self._maybe_defrag(trigger="fragmentation")

    def drain(self) -> None:
        """Play out every scheduled departure and settle the queue."""
        if self._departures:
            self.advance_to(max(t for t, _ in self._departures))
        # finish (or abort) any no-break plan still executing so the
        # final floorplan reflects every move that could complete
        while self._active_move is not None:
            self.advance_to(self._active_move.ends)
        # settle every outstanding reservation: step to each remaining
        # start (commits add new departures — re-drain those), then to
        # the deadlines so blocked bookings expire honestly rather than
        # dangle.  Terminates: every step removes at least the earliest
        # due reservation (commit or expiry) or strictly advances the
        # clock toward one.
        while self._reservations:
            future = [
                r.start for r in self._reservations if r.start > self.clock
            ]
            if future:
                self.advance_to(min(future))
            else:
                self.advance_to(
                    min(
                        max(r.deadline, self.clock)
                        for r in self._reservations
                    )
                )
            if self._departures:
                self.advance_to(max(t for t, _ in self._departures))
            while self._active_move is not None:
                self.advance_to(self._active_move.ends)
        # whatever is still pending can never be admitted: its module
        # didn't fit an otherwise empty(er) fabric.  Label honestly —
        # only requests whose deadline actually passed are deadline
        # rejections; the rest were cut off by the drain itself.
        while self._pending:
            item = self._pending.popleft()
            reason = (
                RejectReason.DEADLINE
                if item.deadline <= self.clock
                else RejectReason.DRAINED
            )
            self._reject(item.outcome, reason)

    def run(self, trace: Sequence[RuntimeRequest]) -> RuntimeLog:
        """Consume a whole trace, then drain; returns the full log."""
        sample = self.config.sample_timeline
        log = RuntimeLog(outcomes=self.outcomes, stats=self.stats)
        for request in sorted(trace, key=lambda r: r.arrival):
            self.submit(request)
            if sample:
                log.timeline.append(self._sample())
        self.drain()
        if sample:
            log.timeline.append(self._sample())
        self._record_profile()
        return log

    # ------------------------------------------------------------------
    # Admission (the fallback chain)
    # ------------------------------------------------------------------
    def _try_admit(
        self,
        request: RuntimeRequest,
        outcome: RequestOutcome,
        allow_defrag: bool,
        queued: bool = False,
    ) -> bool:
        cfg = self.config
        module = (
            request.module
            if cfg.with_alternatives
            else request.module.restricted(1)
        )
        start = time.monotonic()
        defrag_before = self.stats.defrag_time_s
        placement, method = self._place_once(module, outcome)
        if placement is None and allow_defrag and self._defrag(
            trigger="reject"
        ):
            placement, method = self._place_once(module, outcome)
            method = f"{method}+defrag" if placement is not None else method
        # a reject-triggered defrag pass is floorplan maintenance, not
        # this request's work: charge it to stats.defrag_time_s (already
        # accumulated inside _defrag), not to the request's latency —
        # the old accounting skewed the p99 admission-latency gate
        elapsed = time.monotonic() - start
        outcome.latency_s += max(
            0.0, elapsed - (self.stats.defrag_time_s - defrag_before)
        )
        if placement is None:
            return False
        self._commit(request, outcome, placement, method, queued)
        return True

    def _place_once(
        self,
        module: Module,
        outcome: RequestOutcome,
        region: Optional[PartialRegion] = None,
    ) -> Tuple[Optional[Placement], str]:
        """One sweep down the fallback chain; exceptions degrade a rung.

        ``region`` overrides the residual region (reservation replanning
        carves its own residual that keeps sibling bookings protected).
        """
        cfg = self.config
        if region is None:
            region = self.residual_region()
        if cfg.solver is not None:
            try:
                solved = cfg.solver(module, region)
                # None is the solver's definitive no-fit — don't re-run
                # the same chain in-process on top of it
                return solved if solved is not None else (None, "none")
            except Exception as exc:  # graceful: fall back to the chain
                self.stats.probe_errors += 1
                outcome.errors.append(f"solver: {exc}")
        for name, backend in self._chain:
            try:
                request = PlacementRequest(
                    region=region,
                    modules=[module],
                    time_limit=cfg.probe_time_limit,
                    first_solution_only=True,
                    cache=self._cache,
                    tracer=self._tracer,
                )
                res = backend.place(request)
                if res.placements:
                    return res.placements[0], name
            except Exception as exc:  # graceful: fall through to next rung
                self.stats.probe_errors += 1
                outcome.errors.append(f"{name}: {exc}")
        return None, "none"

    def _commit(
        self,
        request: RuntimeRequest,
        outcome: RequestOutcome,
        placement: Placement,
        method: str,
        queued: bool,
    ) -> None:
        self._placements[placement.module.name] = placement
        self._imprint(placement, True)
        heapq.heappush(
            self._departures,
            (self.clock + request.lifetime, placement.module.name),
        )
        outcome.status = "admitted"
        outcome.method = method
        outcome.placement = placement
        outcome.admitted_at = self.clock
        self.stats.count_admit(method, queued)
        self.stats.total_latency_s += outcome.latency_s
        self.stats.max_latency_s = max(
            self.stats.max_latency_s, outcome.latency_s
        )
        occupied = sum(
            p.footprint.area for p in self._placements.values()
        )
        self.stats.peak_occupied_cells = max(
            self.stats.peak_occupied_cells, occupied
        )

    def _reject(self, outcome: RequestOutcome, reason: RejectReason) -> None:
        outcome.status = "rejected"
        outcome.reason = reason
        self.stats.count_reject(reason)
        self._emit(
            RUNTIME_REJECT,
            module=outcome.request.module.name,
            clock=self.clock,
            reason=str(reason),
        )

    def _is_duplicate(self, name: str) -> bool:
        return (
            name in self._placements
            or any(
                item.request.module.name == name for item in self._pending
            )
            or any(
                r.request.module.name == name for r in self._reservations
            )
        )

    # ------------------------------------------------------------------
    # Reservations (horizon-bounded book-ahead admission)
    # ------------------------------------------------------------------
    def _try_reserve(
        self, request: RuntimeRequest, outcome: RequestOutcome
    ) -> bool:
        """Book the request at a future departure tick inside the horizon.

        The probe walks the departure ticks due within
        ``reservation_horizon`` in time order; at each candidate tick it
        projects the floorplan forward (modules still resident then, an
        in-flight move window, sibling reservations whose run window
        overlaps the request's) and gathers the request's static anchor
        masks over that projection — the same vectorized check the
        greedy baselines use.  The first tick with a feasible anchor
        books a concrete planned placement at its bottom-left-most
        anchor.
        """
        cfg = self.config
        if len(self._reservations) >= cfg.reservation_capacity:
            return False
        module = (
            request.module
            if cfg.with_alternatives
            else request.module.restricted(1)
        )
        deadline = (
            request.deadline
            if request.deadline is not None
            else request.arrival + cfg.max_queue_wait
        )
        # earliest scheduled departure per live module (the heap may hold
        # stale entries for explicitly departed names)
        dep_of: Dict[str, int] = {}
        for due, name in self._departures:
            if name in self._placements:
                prev = dep_of.get(name)
                dep_of[name] = due if prev is None else min(prev, due)
        ticks = sorted(
            {
                due
                for due in dep_of.values()
                if self.clock < due <= self.clock + cfg.reservation_horizon
                and due <= deadline
            }
        )
        if not ticks:
            return False
        cache = self._cache
        key = cache.region_key(self.region)
        shapes = [
            (
                si,
                cache.anchor_mask(self.region, fp, region_key=key),
                np.array(
                    [(dy, dx) for dx, dy, _ in sorted(fp.cells)],
                    dtype=np.int64,
                ),
            )
            for si, fp in enumerate(module.shapes)
        ]
        for start in ticks:
            future = self._projected_occupancy(
                start, request.lifetime, dep_of
            )
            best: Optional[Tuple[int, int, int]] = None
            for si, static, off in shapes:
                ys, xs = np.nonzero(static)
                if ys.size == 0:
                    continue
                cy = ys[:, None] + off[None, :, 0]
                cx = xs[:, None] + off[None, :, 1]
                free = ~future[cy, cx].any(axis=1)
                if not free.any():
                    continue
                fy, fx = ys[free], xs[free]
                i = np.lexsort((fy, fx))[0]  # bottom-left: min (x, y)
                cand = (int(fx[i]), int(fy[i]), si)
                if best is None or cand < best:
                    best = cand
            if best is None:
                continue
            x, y, si = best
            reservation = Reservation(
                request=request,
                outcome=outcome,
                placement=Placement(module, si, x, y),
                start=start,
                deadline=deadline,
                booked_at=self.clock,
            )
            self._reservations.append(reservation)
            self._reservations.sort(key=lambda r: r.start)
            self._occupancy_rev += 1  # booked cells change the planning view
            outcome.status = "reserved"
            self.stats.reservations_booked += 1
            self._emit(
                RUNTIME_RESERVE,
                module=request.module.name,
                clock=self.clock,
                start=start,
            )
            return True
        return False

    def _projected_occupancy(
        self, tick: int, lifetime: int, dep_of: Dict[str, int]
    ) -> np.ndarray:
        """The floorplan projected to ``tick``: modules still resident
        then (a module with no scheduled departure counts as resident
        forever), an in-flight move window, and sibling reservations
        whose run window overlaps ``[tick, tick + lifetime)``."""
        occ = np.zeros_like(self._occupancy)
        for name, placement in self._placements.items():
            due = dep_of.get(name)
            if due is None or due > tick:
                self._imprint_into(occ, placement)
        active = self._active_move
        if active is not None:
            for x, y in active.move.window_cells:
                occ[y, x] = True
        end = tick + lifetime
        for r in self._reservations:
            if r.start < end and tick < r.start + r.request.lifetime:
                self._imprint_into(occ, r.placement)
        return occ

    def _commit_due_reservations(self) -> None:
        """Land every due reservation (``start <= clock``): commit the
        planned placement when its cells are free, replan on the live
        floorplan when they are not, expire past the deadline."""
        for r in list(self._reservations):
            if r.start > self.clock:
                break  # sorted by start
            if self._commit_reservation(r):
                self._reservations.remove(r)
                self._occupancy_rev += 1
            elif r.deadline <= self.clock:
                self._reservations.remove(r)
                self._occupancy_rev += 1
                self.stats.reservations_expired += 1
                self._emit(
                    RUNTIME_RESERVATION_EXPIRE,
                    module=r.request.module.name,
                    clock=self.clock,
                    deadline=r.deadline,
                )
                self._reject(r.outcome, RejectReason.RESERVATION_EXPIRED)

    def _commit_reservation(self, r: Reservation) -> bool:
        """One commit attempt; True when the request landed (either on
        its planned cells or replanned on the current floorplan)."""
        cells = r.placement.absolute_cells()
        if not any(self._occupancy[y, x] for x, y, _ in cells):
            self._commit(
                r.request, r.outcome, r.placement, "reservation", queued=False
            )
            self.stats.reservation_admits += 1
            self._emit(
                RUNTIME_RESERVATION_COMMIT,
                module=r.request.module.name,
                clock=self.clock,
                start=r.start,
            )
            return True
        # the planned cells were claimed since booking (a defrag window,
        # an instant pass teleporting a module onto them): replan on the
        # live floorplan with the sibling bookings still protected
        module = (
            r.request.module
            if self.config.with_alternatives
            else r.request.module.restricted(1)
        )
        placement, method = self._place_once(
            module, r.outcome, region=self._residual_excluding(r)
        )
        if placement is None:
            return False
        self._commit(
            r.request,
            r.outcome,
            placement,
            f"reservation+{method}",
            queued=False,
        )
        self.stats.reservation_admits += 1
        self._emit(
            RUNTIME_RESERVATION_COMMIT,
            module=r.request.module.name,
            clock=self.clock,
            start=r.start,
        )
        return True

    # ------------------------------------------------------------------
    # Queue upkeep and defragmentation
    # ------------------------------------------------------------------
    def _expire_pending(self) -> None:
        kept: Deque[_Pending] = deque()
        while self._pending:
            item = self._pending.popleft()
            if item.deadline <= self.clock:
                self._reject(item.outcome, RejectReason.DEADLINE)
            else:
                kept.append(item)
        self._pending = kept

    def _retry_pending(self) -> None:
        """FIFO retry of queued requests against the current floorplan."""
        remaining: Deque[_Pending] = deque()
        while self._pending:
            item = self._pending.popleft()
            if item.deadline <= self.clock:
                self._reject(item.outcome, RejectReason.DEADLINE)
                continue
            if not self._try_admit(
                item.request, item.outcome, allow_defrag=False, queued=True
            ):
                remaining.append(item)
        self._pending = remaining

    def _after_space_freed(self) -> None:
        # due reservations hold seniority over the pending queue: they
        # were booked against exactly this kind of departure
        if self._reservations:
            self._commit_due_reservations()
        self._retry_pending()
        self._maybe_defrag(trigger="fragmentation")

    def _maybe_defrag(self, trigger: str) -> None:
        cfg = self.config
        if self._active_move is not None or self._move_queue:
            return
        if len(self._placements) < 2:
            return
        if (
            self._last_defrag_clock is not None
            and self.clock - self._last_defrag_clock < cfg.defrag_cooldown
        ):
            return
        # a threshold of 1.0 can never be exceeded (external fragmentation
        # is a ratio in [0, 1]) — skip the metric, a pure-Python
        # maximal-rectangles pass that would otherwise run per event
        if cfg.frag_threshold >= 1.0:
            return
        if self.fragmentation() <= cfg.frag_threshold:
            return
        self._defrag(trigger=trigger)

    def _defrag(self, trigger: str) -> bool:
        """One defrag pass over the live floorplan; True if it moved.

        Every pass that actually moved modules retries the pending queue:
        compaction frees usable space exactly like a departure does.
        Without this, a reject-triggered pass inside :meth:`submit` left
        queued requests starving until the next departure even when they
        fit the compacted floorplan (the retry lived only on the
        departure path) — the regression is pinned in the tests.
        """
        cfg = self.config
        if trigger == "reject" and not cfg.defrag_on_reject:
            return False
        if not self._placements:
            return False
        if self._active_move is not None or self._move_queue:
            # one plan at a time: replanning mid-execution would move
            # modules whose recorded positions are about to change
            return False
        t0 = time.monotonic()
        try:
            plan = self._defragmenter.plan(
                self.result(),
                allow_shape_change=cfg.allow_shape_change,
                max_moves=cfg.defrag_max_moves,
                cache=self._cache,
            )
            self._last_defrag_clock = self.clock
            if not plan.moves:
                return False
            self.stats.defrags += 1
            self.stats.defrag_planned_moves += len(plan.moves)
            self._emit(
                RUNTIME_DEFRAG,
                clock=self.clock,
                trigger=trigger,
                moves=len(plan.moves),
                extent_before=plan.initial_extent,
                extent_after=plan.final_extent,
            )
            if plan.instant:
                self._placements = {
                    p.module.name: p for p in plan.result.placements
                }
                self._rebuild_occupancy()
                self.stats.defrag_moves += len(plan.moves)
                self.stats.defrag_executed_moves += len(plan.moves)
                self._retry_pending()
                return True
            # incremental: the plan starts holding its first window now
            # and completes move by move as the clock advances; space is
            # freed gradually, so the pending retry fires per completion
            self._move_queue.extend(plan.moves)
            self._start_next_move()
            return True
        finally:
            self.stats.defrag_time_s += time.monotonic() - t0

    # ------------------------------------------------------------------
    # No-break move execution
    # ------------------------------------------------------------------
    def _move_duration(self, move: PlannedMove) -> int:
        """Logical ticks the move window lasts (at least one)."""
        per_tick = self.config.defrag_frames_per_tick
        return max(1, -(-move.frames // per_tick))

    def _imprint_window(self, move: PlannedMove, value: bool) -> None:
        for x, y in move.window_cells:
            self._occupancy[y, x] = value
        self._occupancy_rev += 1

    def _validate_move(self, move: PlannedMove) -> bool:
        """Is the planned move still executable right now?

        Arrivals interleave with plan execution: the mover may have
        departed, been teleported by an instant pass, or an admission
        may have claimed part of the move window since planning.
        """
        p = self._placements.get(move.module)
        if (
            p is None
            or p.shape_index != move.from_shape
            or (p.x, p.y) != move.from_pos
        ):
            return False
        own = {(x, y) for x, y, _ in p.absolute_cells()}
        return all(
            (x, y) in own or not self._occupancy[y, x]
            for x, y in move.window_cells
        )

    def _start_next_move(self) -> None:
        """Pop queued moves until one validates and holds its window."""
        while self._move_queue:
            move = self._move_queue.popleft()
            if self._validate_move(move):
                self._active_move = _ActiveMove(
                    move, ends=self.clock + self._move_duration(move)
                )
                self._imprint_window(move, True)
                self._emit(
                    RUNTIME_DEFRAG_STEP,
                    module=move.module,
                    clock=self.clock,
                    status="started",
                    move_kind=move.kind,
                    frames=move.frames,
                )
                self._check_moves()
                return
            self.stats.defrag_aborted_moves += 1
            self._emit(
                RUNTIME_DEFRAG_STEP,
                module=move.module,
                clock=self.clock,
                status="aborted",
                move_kind=move.kind,
                frames=move.frames,
            )

    def _complete_active_move(self) -> None:
        """The active move's window elapsed: switch over to the target."""
        active = self._active_move
        self._active_move = None
        move = active.move
        self._imprint_window(move, False)
        p = self._placements[move.module]
        new_p = Placement(p.module, move.to_shape, *move.to_pos)
        self._placements[move.module] = new_p
        self._imprint(new_p, True)
        self.stats.defrag_moves += 1
        self.stats.defrag_executed_moves += 1
        self._emit(
            RUNTIME_DEFRAG_STEP,
            module=move.module,
            clock=self.clock,
            status="completed",
            move_kind=move.kind,
            frames=move.frames,
        )
        self._check_moves()
        self._expire_pending()
        self._retry_pending()
        self._start_next_move()

    def _remove_cells(self, name: str, placement: Placement) -> None:
        """Clear a departing module's cells, cancelling its in-flight
        move (the caller already popped it from the placement table)."""
        active = self._active_move
        if active is not None and active.move.module == name:
            self._active_move = None
            self._imprint_window(active.move, False)
            self.stats.defrag_aborted_moves += 1
            self._emit(
                RUNTIME_DEFRAG_STEP,
                module=name,
                clock=self.clock,
                status="aborted",
                move_kind=active.move.kind,
                frames=active.move.frames,
            )
            self._start_next_move()
        else:
            self._imprint(placement, False)

    def check_invariants(self) -> None:
        """Verify the live floorplan, including any in-flight window.

        Raises ValueError on the first violation: an invalid placement
        (via :meth:`PlacementResult.verify`), a move window overlapping
        a placed module or leaving the allowed region, or an occupancy
        bitmap out of sync with the placement table + window.
        """
        result = self.result()
        result.verify()
        expected = result.occupancy_mask()
        active = self._active_move
        if active is not None:
            move = active.move
            p = self._placements.get(move.module)
            own = (
                {(x, y) for x, y, _ in p.absolute_cells()}
                if p is not None
                else set()
            )
            allowed = self.region.allowed_mask()
            for x, y in move.window_cells:
                if not allowed[y, x]:
                    raise ValueError(
                        f"move window cell ({x},{y}) of {move.module!r} "
                        f"is outside the allowed region"
                    )
                if (x, y) not in own and expected[y, x]:
                    raise ValueError(
                        f"move window cell ({x},{y}) of {move.module!r} "
                        f"overlaps a placed module"
                    )
                expected[y, x] = True
        if not np.array_equal(expected, self._occupancy):
            raise ValueError(
                "occupancy bitmap out of sync with placements + move window"
            )

    def _check_moves(self) -> None:
        if self.config.verify_moves:
            self.check_invariants()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _emit(self, event: str, **data) -> None:
        # positional-style first param: event payloads may carry a field
        # literally named "kind" (runtime.defrag.step does)
        if self._tracer is not None:
            self._tracer.emit(event, **data)

    def _sample(self) -> Tuple[int, int, float, float]:
        res = self.result()
        return (
            self.clock,
            res.used_cells(),
            region_utilization(res),
            external_fragmentation(res),
        )

    def profile(self, shard: Optional[str] = None) -> SolveProfile:
        """The manager's counters as a mergeable SolveProfile record.

        ``shard`` labels the record for service-level merges (the sharded
        service passes its shard name so per-shard profiles stay
        attributable after a ``+`` merge).
        """
        s = self.stats
        cache = self._cache.stats()
        profile = SolveProfile(
            elapsed=s.total_latency_s,
            stop_reason="runtime",
            cache_hits=cache["hits"],
            cache_misses=cache["misses"],
            cache_narrowed=cache["narrowed"],
            cache_evictions=cache["evictions"],
            meta={
                "runtime.arrivals": s.arrivals,
                "runtime.admitted": s.admitted,
                "runtime.rejected": s.rejected,
                "runtime.departures": s.departures,
                "runtime.defrags": s.defrags,
                "runtime.defrag_moves": s.defrag_moves,
                "runtime.defrag_planned": s.defrag_planned_moves,
                "runtime.defrag_executed": s.defrag_executed_moves,
                "runtime.defrag_aborted": s.defrag_aborted_moves,
                "runtime.defrag_time_s": round(s.defrag_time_s, 6),
                "runtime.probe_errors": s.probe_errors,
                "runtime.queued_admits": s.queued_admits,
                "runtime.reservations_booked": s.reservations_booked,
                "runtime.reservation_admits": s.reservation_admits,
                "runtime.reservations_expired": s.reservations_expired,
                "runtime.mean_latency_s": round(s.mean_latency_s, 6),
                "runtime.max_latency_s": round(s.max_latency_s, 6),
                "runtime.peak_occupied_cells": s.peak_occupied_cells,
            },
        )
        if shard is not None:
            profile.meta["shard"] = shard
        return profile

    def _record_profile(self) -> None:
        session = obs_context.current()
        if session is not None:
            session.record(self.profile())


# ----------------------------------------------------------------------
# Workload generation (the Table-I module distribution, made online)
# ----------------------------------------------------------------------
def generate_workload(
    n_requests: int,
    seed: int = 0,
    mean_interarrival: int = 2,
    mean_lifetime: int = 24,
    deadline_slack: Optional[int] = None,
    generator_config: Optional[GeneratorConfig] = None,
    duration_range: Optional[Tuple[int, int]] = None,
    precedence_p: float = 0.0,
    profile: str = "uniform",
) -> List[RuntimeRequest]:
    """A seeded arrival/lifetime trace over the Table-I distribution.

    Interarrival gaps and lifetimes are uniform around their means (all
    driven by one seeded :class:`random.Random`), module footprints come
    from :class:`~repro.modules.generator.ModuleGenerator` — by default
    the paper's Table-I workload (20–100 CLBs, 0–4 BRAMs, four design
    alternatives per module).

    ``profile`` selects the arrival process:

    * ``"uniform"`` (default) — the historical uniform-gap trace.  With
      the scheduling extensions off this path draws from the primary RNG
      in exactly the historical order, so existing ``(seed, kwargs)``
      combinations reproduce byte-identical traces — pinned by the
      workload fingerprints in the tests.
    * ``"slack-heavy"`` — bursty arrivals (bursts of ~4 requests sharing
      one tick separated by long gaps), short lifetimes and generous
      deadlines (``deadline_slack`` defaults to ``2 * mean_lifetime``).
      The trace reservation-based admission is built for: admit-now
      managers reject burst overflow that a horizon probe can book onto
      the imminent departures.

    The scheduling fields ride on a *derived* RNG (seeded from ``seed``)
    so enabling them never perturbs the primary draws: ``duration_range
    = (lo, hi)`` stamps a uniform per-request ``duration``;
    ``precedence_p`` chains each request to its predecessor (``after``)
    with that probability.
    """
    import random

    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if profile not in ("uniform", "slack-heavy"):
        raise ValueError(f"unknown workload profile {profile!r}")
    if not 0.0 <= precedence_p <= 1.0:
        raise ValueError("precedence_p must be within [0, 1]")
    if duration_range is not None:
        lo, hi = duration_range
        if lo < 1 or hi < lo:
            raise ValueError("duration_range must satisfy 1 <= lo <= hi")
    rng = random.Random(seed)
    gen = ModuleGenerator(seed=seed, config=generator_config)
    # scheduling fields draw from a derived stream so that turning them
    # on cannot shift the primary stream's historical draw order
    aux = random.Random(seed ^ 0x7E3A)
    t = 0
    out: List[RuntimeRequest] = []
    prev_name: Optional[str] = None
    for i in range(n_requests):
        if profile == "slack-heavy":
            if i % 4 == 0:  # burst boundary: one long gap, then pile up
                t += max(1, 4 * mean_interarrival)
            lifetime = rng.randint(2, max(2, mean_lifetime))
            slack = (
                deadline_slack
                if deadline_slack is not None
                else 2 * mean_lifetime
            )
            deadline: Optional[int] = t + slack
        else:
            t += rng.randint(1, max(1, 2 * mean_interarrival - 1))
            lifetime = rng.randint(2, max(2, 2 * mean_lifetime - 2))
            deadline = None if deadline_slack is None else t + deadline_slack
        module = gen.generate()
        duration = (
            aux.randint(duration_range[0], duration_range[1])
            if duration_range is not None
            else None
        )
        after = None
        if (
            precedence_p > 0.0
            and prev_name is not None
            and aux.random() < precedence_p
        ):
            after = prev_name
        out.append(
            RuntimeRequest(
                module=module,
                arrival=t,
                lifetime=lifetime,
                deadline=deadline,
                duration=duration,
                after=after,
            )
        )
        prev_name = module.name
    return out

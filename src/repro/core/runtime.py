"""Online runtime placement: admission control, backpressure, defrag triggers.

The paper measures its utilization win offline, but its whole framing is
*runtime* reconfigurable systems: modules arrive, run for a while and
leave, and the free space shatters (Fekete et al. on dynamic
defragmentation, Ahmadinia et al. on online free-space management).
:class:`RuntimePlacementManager` is the serving loop that drives the
repo's existing parts under such a load:

* **Admission** — each arrival is placed on the residual region through a
  deterministic fallback chain of registered placement backends
  (:mod:`repro.core.backend`): by default a budgeted CP probe (anchor
  masks served from a shared :class:`~repro.fabric.cache.AnchorMaskCache`),
  then the bottom-left greedy rung, then reject.  ``RuntimeConfig.chain``
  overrides the rungs declaratively by backend name.
* **Fragmentation control** — external fragmentation of the live
  floorplan is monitored (:mod:`repro.metrics.fragmentation`); crossing a
  threshold, or any rejection, triggers a :func:`~repro.core.defrag.defragment`
  pass honoring either shape-change policy.
* **Backpressure** — rejected arrivals wait in a bounded pending queue
  with per-request deadlines; the queue is retried after every departure
  and defrag pass, expired or overflowing requests are rejected
  *gracefully* with machine-readable :class:`RejectReason` codes — no
  exception escapes the manager on the serving path.
* **Observability** — every lifecycle step emits a structured trace event
  (``runtime.arrival`` / ``runtime.reject`` / ``runtime.defrag`` /
  ``runtime.depart``) and the per-request latency / occupancy counters
  aggregate into a :class:`~repro.obs.profile.SolveProfile` through the
  existing :mod:`repro.obs` layer.

Time model: the manager runs on the *logical* clock carried by the
requests (arrival/lifetime/deadline are simulation time units); solver
budgets (``probe_time_limit``) are wall-clock seconds.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import (
    PlacementRequest,
    available_backends,
    create_backend,
)
from repro.core.defrag import (
    Defragmenter,
    PlannedMove,
    available_defragmenters,
    create_defragmenter,
)
from repro.core.result import Placement, PlacementResult
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.region import PartialRegion
from repro.metrics.fragmentation import external_fragmentation
from repro.metrics.utilization import region_utilization
from repro.modules.generator import GeneratorConfig, ModuleGenerator
from repro.modules.module import Module
from repro.obs import context as obs_context
from repro.obs.profile import SolveProfile
from repro.obs.trace import (
    RUNTIME_ARRIVAL,
    RUNTIME_DEFRAG,
    RUNTIME_DEFRAG_STEP,
    RUNTIME_DEPART,
    RUNTIME_REJECT,
    Tracer,
)


# ----------------------------------------------------------------------
# Requests and outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuntimeRequest:
    """One module arrival in the online stream."""

    module: Module
    #: logical arrival time
    arrival: int
    #: logical time the module stays placed once admitted
    lifetime: int
    #: latest logical time admission is still useful (None = arrival +
    #: the manager's ``max_queue_wait``)
    deadline: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lifetime <= 0:
            raise ValueError("request lifetime must be positive")


class RejectReason(str, Enum):
    """Machine-readable rejection codes (the manager never raises)."""

    #: no fallback rung produced a feasible placement
    NO_FIT = "no_fit"
    #: the pending queue was at capacity when the request arrived
    QUEUE_FULL = "queue_full"
    #: the request waited in the queue past its deadline
    DEADLINE = "deadline_expired"
    #: a module with the same name is already placed or pending
    DUPLICATE = "duplicate"
    #: the manager drained while the request still waited — its deadline
    #: had *not* passed; the serving run simply ended (reject-rate
    #: experiments must not conflate this with a real deadline miss)
    DRAINED = "drained"

    def __str__(self) -> str:  # "no_fit", not "RejectReason.NO_FIT"
        return self.value


@dataclass
class RequestOutcome:
    """The manager's answer for one request (mutated when a queued
    request is later admitted or expires)."""

    request: RuntimeRequest
    #: "admitted" | "queued" | "rejected"
    status: str = "rejected"
    #: fallback rung that produced the placement ("cp", "greedy",
    #: "cp+defrag", "greedy+defrag"); None when rejected
    method: Optional[str] = None
    reason: Optional[RejectReason] = None
    placement: Optional[Placement] = None
    #: logical time of admission (>= arrival when served from the queue)
    admitted_at: Optional[int] = None
    #: wall-clock seconds spent in admission attempts for this request
    latency_s: float = 0.0
    #: errors swallowed on the probe path (graceful degradation)
    errors: List[str] = field(default_factory=list)

    @property
    def admitted(self) -> bool:
        return self.status == "admitted"


@dataclass
class RuntimeConfig:
    """Knobs of the runtime placement manager."""

    #: admit with the full alternative set (False = primary shape only)
    with_alternatives: bool = True
    #: first fallback rung: "cp" (budgeted CP probe, then greedy) or
    #: "greedy" (skip the CP probe — deterministic and much faster)
    probe: str = "cp"
    #: explicit admission chain as registered backend names (overrides
    #: ``probe``); None = derived from ``probe``: ("cp", "greedy") or
    #: ("greedy",).  Every name must be registered and relocatable.
    chain: Optional[Sequence[str]] = None
    #: wall-clock budget of one CP probe (seconds)
    probe_time_limit: float = 0.25
    #: bounded pending queue (0 = reject immediately, no queueing)
    queue_capacity: int = 8
    #: default per-request deadline: arrival + this many logical ticks
    max_queue_wait: int = 16
    #: trigger a defrag pass when external fragmentation exceeds this
    frag_threshold: float = 0.6
    #: also defrag (once) when an arrival cannot be placed
    defrag_on_reject: bool = True
    #: may defrag pick a different design alternative? (the paper's
    #: stateful-module assumption says no; True is valid for
    #: stateless/restartable modules)
    allow_shape_change: bool = False
    #: hard cap on relocations per defrag pass (None = internal guard)
    defrag_max_moves: Optional[int] = None
    #: minimum logical ticks between fragmentation-triggered passes
    defrag_cooldown: int = 4
    #: registered defragmentation strategy: "greedy-compaction" applies
    #: the whole pass atomically (the historical teleporting behavior,
    #: kept as the oracle); "no-break" plans move sequences that respect
    #: running modules and executes them on the logical clock
    defragmenter: str = "greedy-compaction"
    #: reconfiguration frames rewritten per logical tick — a planned
    #: move's window lasts ceil(frames / this) ticks, during which the
    #: mover occupies both source and target
    defrag_frames_per_tick: int = 8
    #: verify the live floorplan (including in-flight move windows) at
    #: every move transition — O(cells) per check, for tests/experiments
    verify_moves: bool = False
    #: structured event sink for runtime.* events (None = off)
    tracer: Optional[Tracer] = None
    #: anchor-mask cache shared by all CP probes (None = new cache)
    cache: Optional[AnchorMaskCache] = None
    #: sample (clock, occupancy, utilization, fragmentation) into the log
    #: timeline after every request — the fragmentation metric is a pure
    #: Python maximal-rectangles pass, so high-throughput serving loops
    #: (the sharded service) switch it off
    sample_timeline: bool = True
    #: external admission solver hook: a callable ``(module, residual
    #: region) -> Optional[(Placement, method)]`` tried *before* the
    #: in-process chain — the sharded service's process-pool mode plugs
    #: its worker dispatch in here.  Exceptions degrade gracefully to the
    #: chain; None (the default) keeps the chain as the only path.
    solver: Optional[Callable[[Module, PartialRegion], Optional[Tuple[Placement, str]]]] = None

    def effective_chain(self) -> Tuple[str, ...]:
        """The admission rungs as registered backend names."""
        if self.chain is not None:
            return tuple(self.chain)
        return ("cp", "greedy") if self.probe == "cp" else ("greedy",)

    def validate(self) -> None:
        if self.probe not in ("cp", "greedy"):
            raise ValueError(f"unknown probe {self.probe!r}")
        chain = self.effective_chain()
        if not chain:
            raise ValueError("admission chain must name at least one backend")
        registered = set(available_backends())
        for name in chain:
            if name not in registered:
                raise ValueError(
                    f"unknown backend {name!r} in admission chain; "
                    f"registered: {', '.join(sorted(registered))}"
                )
            if not create_backend(name).capabilities.relocatable:
                raise ValueError(
                    f"backend {name!r} is not relocatable and cannot serve "
                    f"the runtime admission chain"
                )
        if self.solver is not None and not callable(self.solver):
            raise ValueError("solver must be callable (or None)")
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")
        if self.max_queue_wait < 0:
            raise ValueError("max_queue_wait must be >= 0")
        if not 0.0 <= self.frag_threshold <= 1.0:
            raise ValueError("frag_threshold must be within [0, 1]")
        if self.defragmenter not in available_defragmenters():
            raise ValueError(
                f"unknown defragmenter {self.defragmenter!r}; registered: "
                f"{', '.join(available_defragmenters())}"
            )
        if self.defrag_frames_per_tick < 1:
            raise ValueError("defrag_frames_per_tick must be >= 1")


@dataclass
class RuntimeStats:
    """Aggregate counters of one manager lifetime."""

    arrivals: int = 0
    admitted: int = 0
    rejected: int = 0
    departures: int = 0
    defrags: int = 0
    defrag_moves: int = 0
    #: no-break accounting: moves a plan scheduled, moves that actually
    #: completed on the clock, moves cancelled (stale after an arrival,
    #: or their mover departed mid-window).  Instant passes count every
    #: move as planned+executed.
    defrag_planned_moves: int = 0
    defrag_executed_moves: int = 0
    defrag_aborted_moves: int = 0
    #: wall-clock seconds spent planning/applying defrag passes — kept
    #: out of per-request ``latency_s`` (a reject-triggered pass is
    #: floorplan maintenance, not the triggering request's work; charging
    #: it there skewed the p99 admission-latency gate)
    defrag_time_s: float = 0.0
    probe_errors: int = 0
    queued_admits: int = 0
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)
    admits_by_method: Dict[str, int] = field(default_factory=dict)
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    peak_occupied_cells: int = 0

    @property
    def rejection_ratio(self) -> float:
        total = self.admitted + self.rejected
        return self.rejected / total if total else 0.0

    @property
    def mean_latency_s(self) -> float:
        total = self.admitted + self.rejected
        return self.total_latency_s / total if total else 0.0

    def count_reject(self, reason: RejectReason) -> None:
        self.rejected += 1
        key = str(reason)
        self.rejected_by_reason[key] = self.rejected_by_reason.get(key, 0) + 1

    def count_admit(self, method: str, queued: bool) -> None:
        self.admitted += 1
        self.admits_by_method[method] = self.admits_by_method.get(method, 0) + 1
        if queued:
            self.queued_admits += 1

    def __add__(self, other: "RuntimeStats") -> "RuntimeStats":
        """Merge shard-local stats into one service-level record."""
        rejected_by = dict(self.rejected_by_reason)
        for key, n in other.rejected_by_reason.items():
            rejected_by[key] = rejected_by.get(key, 0) + n
        admits_by = dict(self.admits_by_method)
        for key, n in other.admits_by_method.items():
            admits_by[key] = admits_by.get(key, 0) + n
        return RuntimeStats(
            arrivals=self.arrivals + other.arrivals,
            admitted=self.admitted + other.admitted,
            rejected=self.rejected + other.rejected,
            departures=self.departures + other.departures,
            defrags=self.defrags + other.defrags,
            defrag_moves=self.defrag_moves + other.defrag_moves,
            defrag_planned_moves=(
                self.defrag_planned_moves + other.defrag_planned_moves
            ),
            defrag_executed_moves=(
                self.defrag_executed_moves + other.defrag_executed_moves
            ),
            defrag_aborted_moves=(
                self.defrag_aborted_moves + other.defrag_aborted_moves
            ),
            defrag_time_s=self.defrag_time_s + other.defrag_time_s,
            probe_errors=self.probe_errors + other.probe_errors,
            queued_admits=self.queued_admits + other.queued_admits,
            rejected_by_reason=rejected_by,
            admits_by_method=admits_by,
            total_latency_s=self.total_latency_s + other.total_latency_s,
            max_latency_s=max(self.max_latency_s, other.max_latency_s),
            peak_occupied_cells=(
                self.peak_occupied_cells + other.peak_occupied_cells
            ),
        )


@dataclass
class RuntimeLog:
    """Everything :meth:`RuntimePlacementManager.run` observed."""

    outcomes: List[RequestOutcome]
    stats: RuntimeStats
    #: (clock, occupied_cells, region_utilization, external_fragmentation)
    #: sampled after every processed event
    timeline: List[Tuple[int, int, float, float]] = field(default_factory=list)

    @property
    def admitted(self) -> int:
        return self.stats.admitted

    @property
    def rejected(self) -> int:
        return self.stats.rejected

    def mean_utilization(self) -> float:
        """Time-weighted mean region utilization over the run."""
        if len(self.timeline) < 2:
            return self.timeline[0][2] if self.timeline else 0.0
        area = 0.0
        span = 0
        for (t0, _, u0, _), (t1, _, _, _) in zip(
            self.timeline, self.timeline[1:]
        ):
            area += u0 * (t1 - t0)
            span += t1 - t0
        return area / span if span else self.timeline[-1][2]


@dataclass
class _Pending:
    """A queued request plus its mutable outcome."""

    request: RuntimeRequest
    outcome: RequestOutcome
    deadline: int


@dataclass
class _ActiveMove:
    """A no-break move in flight: its window ends at logical ``ends``."""

    move: PlannedMove
    ends: int


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------
class RuntimePlacementManager:
    """Serves an online arrival/departure stream against a live fabric."""

    def __init__(
        self,
        region: PartialRegion,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.region = region
        self.config = config or RuntimeConfig()
        self.config.validate()
        self.clock = 0
        self.stats = RuntimeStats()
        self.outcomes: List[RequestOutcome] = []
        self._placements: Dict[str, Placement] = {}
        self._departures: List[Tuple[int, str]] = []  # heap
        self._pending: Deque[_Pending] = deque()
        self._last_defrag_clock: Optional[int] = None
        #: live occupancy, maintained incrementally on commit/depart/defrag
        #: (rebuilding it per probe was a per-request Python loop over
        #: every live cell — measurable at service throughput)
        self._occupancy = np.zeros(
            (region.height, region.width), dtype=bool
        )
        cfg = self.config
        #: one shared anchor-mask cache across every probe of every rung
        # explicit None test: AnchorMaskCache has __len__, so an *empty*
        # shared cache is falsy — `or` would silently un-share it
        self._cache = cfg.cache if cfg.cache is not None else AnchorMaskCache()
        #: the registered defragmentation strategy (planner)
        self._defragmenter: Defragmenter = create_defragmenter(
            cfg.defragmenter
        )
        #: no-break plan execution state: moves waiting their turn, and
        #: the single move currently holding its window on the fabric
        self._move_queue: Deque[PlannedMove] = deque()
        self._active_move: Optional[_ActiveMove] = None
        #: the admission rungs, instantiated once per manager
        self._chain = [
            (name, create_backend(name)) for name in cfg.effective_chain()
        ]
        tracer = cfg.tracer
        self._tracer = tracer if tracer is not None and tracer.enabled else None

    # ------------------------------------------------------------------
    # State views
    # ------------------------------------------------------------------
    @property
    def placements(self) -> List[Placement]:
        return list(self._placements.values())

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def moves_in_flight(self) -> int:
        """Planned moves not yet completed (active + queued)."""
        return (self._active_move is not None) + len(self._move_queue)

    def result(self) -> PlacementResult:
        return PlacementResult(self.region, self.placements)

    def occupancy_mask(self) -> np.ndarray:
        return self._occupancy.copy()

    def residual_region(self) -> PartialRegion:
        free = self.region.reconfigurable & ~self._occupancy
        return PartialRegion(
            self.region.grid, free, f"{self.region.name}-residual"
        )

    # -- occupancy maintenance -----------------------------------------
    def _imprint(self, placement: Placement, value: bool) -> None:
        cells = placement.absolute_cells()
        xs = np.fromiter((c[0] for c in cells), dtype=np.int64, count=len(cells))
        ys = np.fromiter((c[1] for c in cells), dtype=np.int64, count=len(cells))
        self._occupancy[ys, xs] = value

    def _rebuild_occupancy(self) -> None:
        self._occupancy[:] = False
        for p in self._placements.values():
            self._imprint(p, True)

    def fragmentation(self) -> float:
        return external_fragmentation(self.result())

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def submit(self, request: RuntimeRequest) -> RequestOutcome:
        """Process one arrival (advancing the logical clock first)."""
        self.advance_to(request.arrival)
        self.stats.arrivals += 1
        self._emit(
            RUNTIME_ARRIVAL,
            module=request.module.name,
            clock=self.clock,
            queue=len(self._pending),
        )
        outcome = RequestOutcome(request)
        self.outcomes.append(outcome)
        if self._is_duplicate(request.module.name):
            self._reject(outcome, RejectReason.DUPLICATE)
            return outcome
        if self._try_admit(request, outcome, allow_defrag=True):
            return outcome
        self._queue_or_reject(request, outcome)
        return outcome

    def offer(self, request: RuntimeRequest) -> Optional[RequestOutcome]:
        """Spill probe (service hook): admit *now* or decline untraced.

        Advances the clock and attempts the full admission chain, but —
        unlike :meth:`submit` — a failure records nothing: no arrival, no
        queueing, no rejection.  The sharded service probes spill-over
        shards through this, so a declined probe does not distort the
        shard's log.  On success the admitted outcome is recorded exactly
        as a submitted arrival would be.
        """
        self.advance_to(request.arrival)
        if self._is_duplicate(request.module.name):
            return None
        outcome = RequestOutcome(request)
        if not self._try_admit(request, outcome, allow_defrag=True):
            return None
        self.stats.arrivals += 1
        self._emit(
            RUNTIME_ARRIVAL,
            module=request.module.name,
            clock=self.clock,
            queue=len(self._pending),
        )
        self.outcomes.append(outcome)
        return outcome

    def park(self, request: RuntimeRequest) -> RequestOutcome:
        """Record an arrival that failed its spill probes (service hook).

        The request already failed :meth:`offer` on every candidate shard
        — including this one — so the admission chain is *not* re-run;
        the request goes straight under the backpressure rules (queue,
        or reject honestly).
        """
        self.stats.arrivals += 1
        self._emit(
            RUNTIME_ARRIVAL,
            module=request.module.name,
            clock=self.clock,
            queue=len(self._pending),
        )
        outcome = RequestOutcome(request)
        self.outcomes.append(outcome)
        if self._is_duplicate(request.module.name):
            self._reject(outcome, RejectReason.DUPLICATE)
            return outcome
        self._queue_or_reject(request, outcome)
        return outcome

    def _queue_or_reject(
        self, request: RuntimeRequest, outcome: RequestOutcome
    ) -> None:
        """No rung fit right now: queue under the backpressure rules."""
        if self.config.queue_capacity == 0:
            # queueing disabled: the honest reason is the failed placement
            self._reject(outcome, RejectReason.NO_FIT)
            return
        if self.config.queue_capacity <= len(self._pending):
            self._reject(outcome, RejectReason.QUEUE_FULL)
            return
        deadline = (
            request.deadline
            if request.deadline is not None
            else request.arrival + self.config.max_queue_wait
        )
        if deadline <= self.clock:
            self._reject(outcome, RejectReason.DEADLINE)
            return
        outcome.status = "queued"
        self._pending.append(_Pending(request, outcome, deadline))

    def depart(self, name: str) -> Optional[Placement]:
        """Explicitly remove a placed module (None if unknown)."""
        placement = self._placements.pop(name, None)
        if placement is not None:
            self._remove_cells(name, placement)
            self.stats.departures += 1
            self._emit(RUNTIME_DEPART, module=name, clock=self.clock)
            self._after_space_freed()
        return placement

    def next_departure(self) -> Optional[int]:
        """Logical time of the next scheduled departure (external-clock
        drivers — the sharded service — step shards through this)."""
        return self._departures[0][0] if self._departures else None

    def advance_to(self, t: int) -> None:
        """Advance the logical clock: move completions and departures in
        time order (a completion due at the same tick lands first, so
        the freed source cells are visible to that tick's departures'
        retry pass), then queue upkeep."""
        if t < self.clock:
            raise ValueError(
                f"clock may not go backwards ({t} < {self.clock})"
            )
        while True:
            dep = self._departures[0][0] if self._departures else None
            active = self._active_move
            fin = active.ends if active is not None else None
            if fin is not None and fin <= t and (dep is None or fin <= dep):
                self.clock = max(self.clock, fin)
                self._complete_active_move()
                continue
            if dep is not None and dep <= t:
                due, name = heapq.heappop(self._departures)
                self.clock = max(self.clock, due)
                placement = self._placements.pop(name, None)
                if placement is not None:
                    self._remove_cells(name, placement)
                    self.stats.departures += 1
                    self._emit(RUNTIME_DEPART, module=name, clock=self.clock)
                    self._expire_pending()
                    self._after_space_freed()
                continue
            break
        self.clock = max(self.clock, t)
        self._expire_pending()
        self._maybe_defrag(trigger="fragmentation")

    def drain(self) -> None:
        """Play out every scheduled departure and settle the queue."""
        if self._departures:
            self.advance_to(max(t for t, _ in self._departures))
        # finish (or abort) any no-break plan still executing so the
        # final floorplan reflects every move that could complete
        while self._active_move is not None:
            self.advance_to(self._active_move.ends)
        # whatever is still pending can never be admitted: its module
        # didn't fit an otherwise empty(er) fabric.  Label honestly —
        # only requests whose deadline actually passed are deadline
        # rejections; the rest were cut off by the drain itself.
        while self._pending:
            item = self._pending.popleft()
            reason = (
                RejectReason.DEADLINE
                if item.deadline <= self.clock
                else RejectReason.DRAINED
            )
            self._reject(item.outcome, reason)

    def run(self, trace: Sequence[RuntimeRequest]) -> RuntimeLog:
        """Consume a whole trace, then drain; returns the full log."""
        sample = self.config.sample_timeline
        log = RuntimeLog(outcomes=self.outcomes, stats=self.stats)
        for request in sorted(trace, key=lambda r: r.arrival):
            self.submit(request)
            if sample:
                log.timeline.append(self._sample())
        self.drain()
        if sample:
            log.timeline.append(self._sample())
        self._record_profile()
        return log

    # ------------------------------------------------------------------
    # Admission (the fallback chain)
    # ------------------------------------------------------------------
    def _try_admit(
        self,
        request: RuntimeRequest,
        outcome: RequestOutcome,
        allow_defrag: bool,
        queued: bool = False,
    ) -> bool:
        cfg = self.config
        module = (
            request.module
            if cfg.with_alternatives
            else request.module.restricted(1)
        )
        start = time.monotonic()
        defrag_before = self.stats.defrag_time_s
        placement, method = self._place_once(module, outcome)
        if placement is None and allow_defrag and self._defrag(
            trigger="reject"
        ):
            placement, method = self._place_once(module, outcome)
            method = f"{method}+defrag" if placement is not None else method
        # a reject-triggered defrag pass is floorplan maintenance, not
        # this request's work: charge it to stats.defrag_time_s (already
        # accumulated inside _defrag), not to the request's latency —
        # the old accounting skewed the p99 admission-latency gate
        elapsed = time.monotonic() - start
        outcome.latency_s += max(
            0.0, elapsed - (self.stats.defrag_time_s - defrag_before)
        )
        if placement is None:
            return False
        self._commit(request, outcome, placement, method, queued)
        return True

    def _place_once(
        self, module: Module, outcome: RequestOutcome
    ) -> Tuple[Optional[Placement], str]:
        """One sweep down the fallback chain; exceptions degrade a rung."""
        cfg = self.config
        if cfg.solver is not None:
            try:
                solved = cfg.solver(module, self.residual_region())
                # None is the solver's definitive no-fit — don't re-run
                # the same chain in-process on top of it
                return solved if solved is not None else (None, "none")
            except Exception as exc:  # graceful: fall back to the chain
                self.stats.probe_errors += 1
                outcome.errors.append(f"solver: {exc}")
        for name, backend in self._chain:
            try:
                request = PlacementRequest(
                    region=self.residual_region(),
                    modules=[module],
                    time_limit=cfg.probe_time_limit,
                    first_solution_only=True,
                    cache=self._cache,
                    tracer=self._tracer,
                )
                res = backend.place(request)
                if res.placements:
                    return res.placements[0], name
            except Exception as exc:  # graceful: fall through to next rung
                self.stats.probe_errors += 1
                outcome.errors.append(f"{name}: {exc}")
        return None, "none"

    def _commit(
        self,
        request: RuntimeRequest,
        outcome: RequestOutcome,
        placement: Placement,
        method: str,
        queued: bool,
    ) -> None:
        self._placements[placement.module.name] = placement
        self._imprint(placement, True)
        heapq.heappush(
            self._departures,
            (self.clock + request.lifetime, placement.module.name),
        )
        outcome.status = "admitted"
        outcome.method = method
        outcome.placement = placement
        outcome.admitted_at = self.clock
        self.stats.count_admit(method, queued)
        self.stats.total_latency_s += outcome.latency_s
        self.stats.max_latency_s = max(
            self.stats.max_latency_s, outcome.latency_s
        )
        occupied = sum(
            p.footprint.area for p in self._placements.values()
        )
        self.stats.peak_occupied_cells = max(
            self.stats.peak_occupied_cells, occupied
        )

    def _reject(self, outcome: RequestOutcome, reason: RejectReason) -> None:
        outcome.status = "rejected"
        outcome.reason = reason
        self.stats.count_reject(reason)
        self._emit(
            RUNTIME_REJECT,
            module=outcome.request.module.name,
            clock=self.clock,
            reason=str(reason),
        )

    def _is_duplicate(self, name: str) -> bool:
        return name in self._placements or any(
            item.request.module.name == name for item in self._pending
        )

    # ------------------------------------------------------------------
    # Queue upkeep and defragmentation
    # ------------------------------------------------------------------
    def _expire_pending(self) -> None:
        kept: Deque[_Pending] = deque()
        while self._pending:
            item = self._pending.popleft()
            if item.deadline <= self.clock:
                self._reject(item.outcome, RejectReason.DEADLINE)
            else:
                kept.append(item)
        self._pending = kept

    def _retry_pending(self) -> None:
        """FIFO retry of queued requests against the current floorplan."""
        remaining: Deque[_Pending] = deque()
        while self._pending:
            item = self._pending.popleft()
            if item.deadline <= self.clock:
                self._reject(item.outcome, RejectReason.DEADLINE)
                continue
            if not self._try_admit(
                item.request, item.outcome, allow_defrag=False, queued=True
            ):
                remaining.append(item)
        self._pending = remaining

    def _after_space_freed(self) -> None:
        self._retry_pending()
        self._maybe_defrag(trigger="fragmentation")

    def _maybe_defrag(self, trigger: str) -> None:
        cfg = self.config
        if self._active_move is not None or self._move_queue:
            return
        if len(self._placements) < 2:
            return
        if (
            self._last_defrag_clock is not None
            and self.clock - self._last_defrag_clock < cfg.defrag_cooldown
        ):
            return
        # a threshold of 1.0 can never be exceeded (external fragmentation
        # is a ratio in [0, 1]) — skip the metric, a pure-Python
        # maximal-rectangles pass that would otherwise run per event
        if cfg.frag_threshold >= 1.0:
            return
        if self.fragmentation() <= cfg.frag_threshold:
            return
        self._defrag(trigger=trigger)

    def _defrag(self, trigger: str) -> bool:
        """One defrag pass over the live floorplan; True if it moved.

        Every pass that actually moved modules retries the pending queue:
        compaction frees usable space exactly like a departure does.
        Without this, a reject-triggered pass inside :meth:`submit` left
        queued requests starving until the next departure even when they
        fit the compacted floorplan (the retry lived only on the
        departure path) — the regression is pinned in the tests.
        """
        cfg = self.config
        if trigger == "reject" and not cfg.defrag_on_reject:
            return False
        if not self._placements:
            return False
        if self._active_move is not None or self._move_queue:
            # one plan at a time: replanning mid-execution would move
            # modules whose recorded positions are about to change
            return False
        t0 = time.monotonic()
        try:
            plan = self._defragmenter.plan(
                self.result(),
                allow_shape_change=cfg.allow_shape_change,
                max_moves=cfg.defrag_max_moves,
                cache=self._cache,
            )
            self._last_defrag_clock = self.clock
            if not plan.moves:
                return False
            self.stats.defrags += 1
            self.stats.defrag_planned_moves += len(plan.moves)
            self._emit(
                RUNTIME_DEFRAG,
                clock=self.clock,
                trigger=trigger,
                moves=len(plan.moves),
                extent_before=plan.initial_extent,
                extent_after=plan.final_extent,
            )
            if plan.instant:
                self._placements = {
                    p.module.name: p for p in plan.result.placements
                }
                self._rebuild_occupancy()
                self.stats.defrag_moves += len(plan.moves)
                self.stats.defrag_executed_moves += len(plan.moves)
                self._retry_pending()
                return True
            # incremental: the plan starts holding its first window now
            # and completes move by move as the clock advances; space is
            # freed gradually, so the pending retry fires per completion
            self._move_queue.extend(plan.moves)
            self._start_next_move()
            return True
        finally:
            self.stats.defrag_time_s += time.monotonic() - t0

    # ------------------------------------------------------------------
    # No-break move execution
    # ------------------------------------------------------------------
    def _move_duration(self, move: PlannedMove) -> int:
        """Logical ticks the move window lasts (at least one)."""
        per_tick = self.config.defrag_frames_per_tick
        return max(1, -(-move.frames // per_tick))

    def _imprint_window(self, move: PlannedMove, value: bool) -> None:
        for x, y in move.window_cells:
            self._occupancy[y, x] = value

    def _validate_move(self, move: PlannedMove) -> bool:
        """Is the planned move still executable right now?

        Arrivals interleave with plan execution: the mover may have
        departed, been teleported by an instant pass, or an admission
        may have claimed part of the move window since planning.
        """
        p = self._placements.get(move.module)
        if (
            p is None
            or p.shape_index != move.from_shape
            or (p.x, p.y) != move.from_pos
        ):
            return False
        own = {(x, y) for x, y, _ in p.absolute_cells()}
        return all(
            (x, y) in own or not self._occupancy[y, x]
            for x, y in move.window_cells
        )

    def _start_next_move(self) -> None:
        """Pop queued moves until one validates and holds its window."""
        while self._move_queue:
            move = self._move_queue.popleft()
            if self._validate_move(move):
                self._active_move = _ActiveMove(
                    move, ends=self.clock + self._move_duration(move)
                )
                self._imprint_window(move, True)
                self._emit(
                    RUNTIME_DEFRAG_STEP,
                    module=move.module,
                    clock=self.clock,
                    status="started",
                    move_kind=move.kind,
                    frames=move.frames,
                )
                self._check_moves()
                return
            self.stats.defrag_aborted_moves += 1
            self._emit(
                RUNTIME_DEFRAG_STEP,
                module=move.module,
                clock=self.clock,
                status="aborted",
                move_kind=move.kind,
                frames=move.frames,
            )

    def _complete_active_move(self) -> None:
        """The active move's window elapsed: switch over to the target."""
        active = self._active_move
        self._active_move = None
        move = active.move
        self._imprint_window(move, False)
        p = self._placements[move.module]
        new_p = Placement(p.module, move.to_shape, *move.to_pos)
        self._placements[move.module] = new_p
        self._imprint(new_p, True)
        self.stats.defrag_moves += 1
        self.stats.defrag_executed_moves += 1
        self._emit(
            RUNTIME_DEFRAG_STEP,
            module=move.module,
            clock=self.clock,
            status="completed",
            move_kind=move.kind,
            frames=move.frames,
        )
        self._check_moves()
        self._expire_pending()
        self._retry_pending()
        self._start_next_move()

    def _remove_cells(self, name: str, placement: Placement) -> None:
        """Clear a departing module's cells, cancelling its in-flight
        move (the caller already popped it from the placement table)."""
        active = self._active_move
        if active is not None and active.move.module == name:
            self._active_move = None
            self._imprint_window(active.move, False)
            self.stats.defrag_aborted_moves += 1
            self._emit(
                RUNTIME_DEFRAG_STEP,
                module=name,
                clock=self.clock,
                status="aborted",
                move_kind=active.move.kind,
                frames=active.move.frames,
            )
            self._start_next_move()
        else:
            self._imprint(placement, False)

    def check_invariants(self) -> None:
        """Verify the live floorplan, including any in-flight window.

        Raises ValueError on the first violation: an invalid placement
        (via :meth:`PlacementResult.verify`), a move window overlapping
        a placed module or leaving the allowed region, or an occupancy
        bitmap out of sync with the placement table + window.
        """
        result = self.result()
        result.verify()
        expected = result.occupancy_mask()
        active = self._active_move
        if active is not None:
            move = active.move
            p = self._placements.get(move.module)
            own = (
                {(x, y) for x, y, _ in p.absolute_cells()}
                if p is not None
                else set()
            )
            allowed = self.region.allowed_mask()
            for x, y in move.window_cells:
                if not allowed[y, x]:
                    raise ValueError(
                        f"move window cell ({x},{y}) of {move.module!r} "
                        f"is outside the allowed region"
                    )
                if (x, y) not in own and expected[y, x]:
                    raise ValueError(
                        f"move window cell ({x},{y}) of {move.module!r} "
                        f"overlaps a placed module"
                    )
                expected[y, x] = True
        if not np.array_equal(expected, self._occupancy):
            raise ValueError(
                "occupancy bitmap out of sync with placements + move window"
            )

    def _check_moves(self) -> None:
        if self.config.verify_moves:
            self.check_invariants()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _emit(self, event: str, **data) -> None:
        # positional-style first param: event payloads may carry a field
        # literally named "kind" (runtime.defrag.step does)
        if self._tracer is not None:
            self._tracer.emit(event, **data)

    def _sample(self) -> Tuple[int, int, float, float]:
        res = self.result()
        return (
            self.clock,
            res.used_cells(),
            region_utilization(res),
            external_fragmentation(res),
        )

    def profile(self, shard: Optional[str] = None) -> SolveProfile:
        """The manager's counters as a mergeable SolveProfile record.

        ``shard`` labels the record for service-level merges (the sharded
        service passes its shard name so per-shard profiles stay
        attributable after a ``+`` merge).
        """
        s = self.stats
        cache = self._cache.stats()
        profile = SolveProfile(
            elapsed=s.total_latency_s,
            stop_reason="runtime",
            cache_hits=cache["hits"],
            cache_misses=cache["misses"],
            cache_narrowed=cache["narrowed"],
            cache_evictions=cache["evictions"],
            meta={
                "runtime.arrivals": s.arrivals,
                "runtime.admitted": s.admitted,
                "runtime.rejected": s.rejected,
                "runtime.departures": s.departures,
                "runtime.defrags": s.defrags,
                "runtime.defrag_moves": s.defrag_moves,
                "runtime.defrag_planned": s.defrag_planned_moves,
                "runtime.defrag_executed": s.defrag_executed_moves,
                "runtime.defrag_aborted": s.defrag_aborted_moves,
                "runtime.defrag_time_s": round(s.defrag_time_s, 6),
                "runtime.probe_errors": s.probe_errors,
                "runtime.queued_admits": s.queued_admits,
                "runtime.mean_latency_s": round(s.mean_latency_s, 6),
                "runtime.max_latency_s": round(s.max_latency_s, 6),
                "runtime.peak_occupied_cells": s.peak_occupied_cells,
            },
        )
        if shard is not None:
            profile.meta["shard"] = shard
        return profile

    def _record_profile(self) -> None:
        session = obs_context.current()
        if session is not None:
            session.record(self.profile())


# ----------------------------------------------------------------------
# Workload generation (the Table-I module distribution, made online)
# ----------------------------------------------------------------------
def generate_workload(
    n_requests: int,
    seed: int = 0,
    mean_interarrival: int = 2,
    mean_lifetime: int = 24,
    deadline_slack: Optional[int] = None,
    generator_config: Optional[GeneratorConfig] = None,
) -> List[RuntimeRequest]:
    """A seeded arrival/lifetime trace over the Table-I distribution.

    Interarrival gaps and lifetimes are uniform around their means (all
    driven by one seeded :class:`random.Random`), module footprints come
    from :class:`~repro.modules.generator.ModuleGenerator` — by default
    the paper's Table-I workload (20–100 CLBs, 0–4 BRAMs, four design
    alternatives per module).
    """
    import random

    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    rng = random.Random(seed)
    gen = ModuleGenerator(seed=seed, config=generator_config)
    t = 0
    out: List[RuntimeRequest] = []
    for _ in range(n_requests):
        t += rng.randint(1, max(1, 2 * mean_interarrival - 1))
        lifetime = rng.randint(2, max(2, 2 * mean_lifetime - 2))
        out.append(
            RuntimeRequest(
                module=gen.generate(),
                arrival=t,
                lifetime=lifetime,
                deadline=None if deadline_slack is None else t + deadline_slack,
            )
        )
    return out

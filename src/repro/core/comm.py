"""Communication-aware placement.

The ReCoBus setting connects modules over a shared horizontal bus; wide
physical separation between heavily communicating modules costs bus
segments (and latency on segmented buses).  This extension places modules
minimizing *weighted wirelength* — the sum over communication edges of
``w_ij * |cx_i - cx_j|`` where ``cx`` is the module's anchor column —
subject to an optional cap on the occupied extent (so compactness is not
given up entirely).

This is an extension beyond the paper (its objective is extent only), but
it exercises the same machinery: the kernel provides feasibility, element
couplings bind shape-dependent data, and branch-and-bound minimizes the
scalarized objective.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cp.bnb import BranchAndBound, Objective
from repro.cp.branching import min_value
from repro.cp.engine import Inconsistent
from repro.cp.search import SearchLimit
from repro.core.placement_model import PlacementModel
from repro.core.placer import _kernel_fail_first
from repro.core.result import Placement, PlacementResult
from repro.fabric.region import PartialRegion
from repro.modules.module import Module

#: (module index a, module index b, weight)
CommEdge = Tuple[int, int, int]


@dataclass
class CommConfig:
    time_limit: Optional[float] = 10.0
    #: optional hard cap on the occupied x extent
    max_extent: Optional[int] = None
    node_limit: Optional[int] = None


@dataclass
class CommResult:
    """Placement plus its communication cost."""

    placement: PlacementResult
    wirelength: Optional[int] = None
    edges: List[CommEdge] = field(default_factory=list)

    def edge_lengths(self) -> List[int]:
        ps = self.placement.placements
        return [
            w * abs(ps[a].x - ps[b].x) for a, b, w in self.edges
        ]


class CommAwarePlacer:
    """Minimize weighted anchor-column wirelength over a comm graph."""

    def __init__(self, config: Optional[CommConfig] = None) -> None:
        self.config = config or CommConfig()

    def place(
        self,
        region: PartialRegion,
        modules: Sequence[Module],
        edges: Sequence[CommEdge],
    ) -> CommResult:
        cfg = self.config
        n = len(modules)
        for a, b, w in edges:
            if not (0 <= a < n and 0 <= b < n) or a == b:
                raise ValueError(f"invalid communication edge ({a},{b})")
            if w <= 0:
                raise ValueError("edge weights must be positive")
        start = time.monotonic()
        try:
            # symmetry breaking orders interchangeable modules by x — sound
            # for the extent objective, but communication edges distinguish
            # otherwise identical modules, so it must stay off here
            pm = PlacementModel(region, modules, symmetry_breaking=False)
            m = pm.model
            if cfg.max_extent is not None:
                pm.objective_var.remove_above(cfg.max_extent)
            # wirelength = sum of weighted |x_a - x_b|
            terms = []
            coeffs = []
            for a, b, w in edges:
                z = m.abs_diff_of(pm.xs[a], pm.xs[b], f"d[{a},{b}]")
                terms.append(z)
                coeffs.append(w)
            bound = sum(
                w * region.width for _, _, w in edges
            )
            wl = m.int_var(0, max(bound, 0), "wirelength")
            m.add_linear_eq(coeffs + [-1], terms + [wl], 0)
            m.engine.fixpoint()
        except Inconsistent:
            return CommResult(
                PlacementResult(
                    region, [], list(modules), status="infeasible",
                    elapsed=time.monotonic() - start,
                ),
                edges=list(edges),
            )

        captured: List[List[Placement]] = []

        def on_improve(_sol, _val) -> None:
            captured.append(
                [
                    Placement(p.module, p.shape_index, p.x, p.y)
                    for p in pm.kernel.placements()
                ]
            )

        bnb = BranchAndBound(
            m.engine,
            Objective.minimize(wl),
            pm.decision_vars(pm.area_order()),
            var_select=_kernel_fail_first(pm),
            val_select=min_value,
            limit=SearchLimit(
                time_seconds=cfg.time_limit, nodes=cfg.node_limit
            ),
            on_improve=on_improve,
        )
        res = bnb.run()
        elapsed = time.monotonic() - start
        if res.best is None or not captured:
            status = "infeasible" if res.proved_optimal else "unknown"
            return CommResult(
                PlacementResult(
                    region, [], list(modules), status=status, elapsed=elapsed,
                    stats={"search": res.stats},
                ),
                edges=list(edges),
            )
        placements = captured[-1]
        status = "optimal" if res.proved_optimal else "feasible"
        return CommResult(
            PlacementResult(
                region,
                placements,
                [],
                status=status,
                elapsed=elapsed,
                stats={"search": res.stats},
            ),
            wirelength=res.objective,
            edges=list(edges),
        )

"""Sharded multi-device placement service.

The paper evaluates design alternatives on one device; its admission
story only becomes interesting at *service* scale — a fleet of
reconfigurable fabrics fed from one arrival stream.
:class:`ShardedPlacementService` owns N fabric shards (each a
:class:`~repro.core.runtime.RuntimePlacementManager` over its own
:class:`~repro.fabric.region.PartialRegion`) and adds the three things a
single manager cannot express:

* **Routing** — a pluggable policy ranks the shards per arrival
  (round-robin, least-loaded, least-fragmented, module-name affinity)
  behind a small name-keyed registry mirroring the backend registry of
  :mod:`repro.core.backend.registry`.  Routers return a *preference
  order*, not a single pick, which is what makes spill (below) a policy
  property rather than a hard-coded loop.  The least-fragmented policy
  keeps admission coupled to per-shard fragmentation — the router
  observes exactly the metric the defragmentation literature says
  admission quality depends on.
* **Spill** — a request declined by its routed shard is *offered* to the
  next-best shards before it counts against anyone: only the shard that
  finally admits records the arrival, and only the primary shard queues
  or rejects it after every candidate declined
  (:meth:`RuntimePlacementManager.offer` /
  :meth:`~repro.core.runtime.RuntimePlacementManager.park`).
* **Execution modes** — ``inline`` solves admissions in-process;
  ``process`` dispatches them to a persistent worker pool through
  :func:`repro.core.backend.worker.solve_in_worker`, with per-worker
  process-resident :class:`~repro.fabric.cache.AnchorMaskCache`\\ s
  (optionally warmed once and persisted via
  :func:`~repro.core.backend.worker.warm_process_cache`).  The pool
  plugs into each shard through the
  :attr:`~repro.core.runtime.RuntimeConfig.solver` hook, so queueing,
  deadlines, and defrag semantics stay in the one manager code path.

With **one** shard the service delegates :meth:`submit` straight to the
shard's own :meth:`~repro.core.runtime.RuntimePlacementManager.submit`,
so single-shard mode is bit-identical to a bare manager — pinned by the
determinism tests.

Observability: routing decisions emit ``service.route``, spills
``service.spill``, drains ``service.drain``; per-shard stats merge via
``RuntimeStats.__add__`` and per-shard profiles (labelled with their
shard name) via ``SolveProfile.__add__``.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend.worker import solve_in_worker, warm_process_cache
from repro.core.result import Placement
from repro.core.runtime import (
    RequestOutcome,
    RuntimeConfig,
    RuntimePlacementManager,
    RuntimeRequest,
    RuntimeStats,
)
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.grid import FabricGrid
from repro.fabric.io import region_to_dict
from repro.fabric.region import PartialRegion
from repro.modules.module import Module
from repro.modules.spec import module_to_dict
from repro.obs.profile import SolveProfile
from repro.obs.trace import (
    SERVICE_DRAIN,
    SERVICE_ROUTE,
    SERVICE_SPILL,
    Tracer,
)


# ----------------------------------------------------------------------
# Routers: preference order over shards, behind a name-keyed registry
# ----------------------------------------------------------------------
class Router:
    """Ranks shards for one arrival; index 0 is the primary shard.

    Routers see the live managers (read-only) so load- and
    fragmentation-aware policies can observe current state.  They must
    be deterministic functions of (request, shard states, own internal
    counters) — the service's determinism tests replay traces and expect
    identical routes.
    """

    name = "router"

    def order(
        self,
        request: RuntimeRequest,
        shards: Sequence[RuntimePlacementManager],
    ) -> List[int]:
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle the primary shard; spill order continues the rotation."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def order(self, request, shards) -> List[int]:
        n = len(shards)
        first = self._next % n
        self._next = (self._next + 1) % n
        return [(first + k) % n for k in range(n)]


class LeastLoadedRouter(Router):
    """Prefer the shard with the lowest occupied fraction.

    Load is occupied cells over available area — O(live placements) per
    shard, no geometry scan.  Outstanding reservations count at their
    planned footprint: booked cells are promised capacity the shard
    cannot offer a new arrival, exactly like placed cells.  Ties break
    on shard index.
    """

    name = "least-loaded"

    @staticmethod
    def _load(shard: RuntimePlacementManager) -> float:
        area = shard.region.available_area()
        if area == 0:
            return 1.0
        occupied = sum(p.footprint.area for p in shard.placements)
        occupied += sum(
            r.placement.footprint.area for r in shard.reservations
        )
        return occupied / area

    def order(self, request, shards) -> List[int]:
        return sorted(
            range(len(shards)), key=lambda i: (self._load(shards[i]), i)
        )


class LeastFragmentedRouter(Router):
    """Prefer the shard whose free space is least shattered.

    Runs the external-fragmentation metric per shard per arrival — a
    pure-Python maximal-rectangles pass, the expensive policy.  Use it
    when admission quality matters more than routing throughput.  Ranks
    by :meth:`RuntimePlacementManager.planning_fragmentation`, so booked
    reservation cells shatter a shard's free space exactly like placed
    cells do.
    """

    name = "least-fragmented"

    def order(self, request, shards) -> List[int]:
        return sorted(
            range(len(shards)),
            key=lambda i: (shards[i].planning_fragmentation(), i),
        )


class AffinityRouter(Router):
    """Pin each module name to a shard via a stable content hash.

    Uses CRC-32 of the module name — *not* Python's randomized
    ``hash()`` — so the same trace routes identically across runs and
    interpreter restarts.  Spill order continues round the ring.
    """

    name = "affinity"

    def order(self, request, shards) -> List[int]:
        n = len(shards)
        first = zlib.crc32(request.module.name.encode("utf-8")) % n
        return [(first + k) % n for k in range(n)]


_ROUTERS: Dict[str, Callable[[], Router]] = {}


def register_router(
    name: str, factory: Callable[[], Router], replace: bool = False
) -> None:
    """Register a router factory under ``name`` (loud on duplicates)."""
    if not replace and name in _ROUTERS:
        raise ValueError(
            f"router {name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _ROUTERS[name] = factory


def available_routers() -> List[str]:
    """Sorted names of every registered routing policy."""
    return sorted(_ROUTERS)


def create_router(name: str) -> Router:
    """Instantiate the registered router ``name`` (loud when unknown)."""
    try:
        factory = _ROUTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; registered: "
            f"{', '.join(available_routers())}"
        ) from None
    return factory()


for _cls in (
    RoundRobinRouter,
    LeastLoadedRouter,
    LeastFragmentedRouter,
    AffinityRouter,
):
    register_router(_cls.name, _cls)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class ServiceConfig:
    """Knobs of the sharded placement service."""

    #: registered router name picking the shard preference order
    router: str = "round-robin"
    #: template for every shard's manager; each shard gets its own copy
    #: (and, unless ``share_cache``, its own anchor-mask cache)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    #: may a declined request spill to the next-best shards?
    spill: bool = True
    #: one anchor-mask cache shared by all shards (structurally identical
    #: shards then share entries, the fingerprint keying makes it safe)
    share_cache: bool = True
    #: "inline" solves admissions in-process; "process" dispatches each
    #: admission to a persistent worker pool via ``solve_in_worker``
    mode: str = "inline"
    #: worker pool size for process mode (None = one per shard)
    workers: Optional[int] = None
    #: LRU capacity handed to per-worker caches in process mode (None =
    #: unbounded; long-running services should bound this — see
    #: :class:`~repro.fabric.cache.AnchorMaskCache`)
    worker_cache_capacity: Optional[int] = None
    #: event sink for ``service.*`` events (shards inherit
    #: ``runtime.tracer`` for their ``runtime.*`` events)
    tracer: Optional[Tracer] = None

    def validate(self) -> None:
        if self.router not in _ROUTERS:
            raise ValueError(
                f"unknown router {self.router!r}; registered: "
                f"{', '.join(available_routers())}"
            )
        if self.mode not in ("inline", "process"):
            raise ValueError(f"unknown service mode {self.mode!r}")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None)")
        self.runtime.validate()


@dataclass
class ServiceLog:
    """Everything :meth:`ShardedPlacementService.run` observed."""

    #: outcomes in submission order (the admitting/owning shard's record)
    outcomes: List[RequestOutcome]
    #: merged service-level stats (sum of the per-shard stats)
    stats: RuntimeStats
    #: per-shard stats keyed by shard name
    per_shard: Dict[str, RuntimeStats]
    #: admitted module name -> shard name that holds it
    shard_of: Dict[str, str] = field(default_factory=dict)

    @property
    def admitted(self) -> int:
        return self.stats.admitted

    @property
    def rejected(self) -> int:
        return self.stats.rejected


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class ShardedPlacementService:
    """Serves one arrival stream against a fleet of fabric shards."""

    def __init__(
        self,
        regions: Sequence[PartialRegion],
        config: Optional[ServiceConfig] = None,
    ) -> None:
        if not regions:
            raise ValueError("need at least one shard region")
        self.config = config or ServiceConfig()
        self.config.validate()
        cfg = self.config
        self._router = create_router(cfg.router)
        # explicit None test: AnchorMaskCache has __len__, so an *empty*
        # user-provided cache is falsy — `or` would silently replace it
        shared_cache = (
            (
                cfg.runtime.cache
                if cfg.runtime.cache is not None
                else AnchorMaskCache()
            )
            if cfg.share_cache
            else None
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        if cfg.mode == "process":
            self._pool = ProcessPoolExecutor(
                max_workers=cfg.workers or len(regions)
            )
        self.shards: List[RuntimePlacementManager] = []
        for region in regions:
            shard_cfg = replace(
                cfg.runtime,
                cache=shared_cache if cfg.share_cache else None,
            )
            if cfg.mode == "process":
                shard_cfg.solver = self._make_worker_solver(
                    region.name, shard_cfg
                )
            self.shards.append(RuntimePlacementManager(region, shard_cfg))
        tracer = cfg.tracer
        self._tracer = (
            tracer if tracer is not None and tracer.enabled else None
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def replicated(
        cls,
        region: PartialRegion,
        n: int,
        config: Optional[ServiceConfig] = None,
    ) -> "ShardedPlacementService":
        """N structurally identical shards of one region (a device fleet).

        Structural identity means a shared anchor-mask cache serves all
        shards from the same entries (content-hash keys ignore names).
        """
        if n < 1:
            raise ValueError("need at least one shard")
        shards = [
            PartialRegion(
                region.grid,
                region.reconfigurable.copy(),
                name=f"{region.name}-s{k}",
            )
            for k in range(n)
        ]
        return cls(shards, config)

    @staticmethod
    def split(region: PartialRegion, n: int) -> List[PartialRegion]:
        """Column-split one fabric into ``n`` near-equal vertical slabs.

        Models one physical device partitioned into independently
        reconfigurable shards (smaller regions also make every anchor
        sweep proportionally cheaper).  Cut columns are not bridged:
        a module must fit entirely inside one slab.
        """
        if n < 1:
            raise ValueError("need at least one shard")
        if n > region.width:
            raise ValueError(
                f"cannot split width {region.width} into {n} shards"
            )
        out: List[PartialRegion] = []
        for k, cols in enumerate(np.array_split(np.arange(region.width), n)):
            a, b = int(cols[0]), int(cols[-1]) + 1
            out.append(
                PartialRegion(
                    FabricGrid(region.grid.cells[:, a:b].copy()),
                    region.reconfigurable[:, a:b].copy(),
                    name=f"{region.name}-cols{a}-{b}",
                )
            )
        return out

    # ------------------------------------------------------------------
    # State views
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def clock(self) -> int:
        return max(s.clock for s in self.shards)

    @property
    def stats(self) -> RuntimeStats:
        merged = RuntimeStats()
        for shard in self.shards:
            merged = merged + shard.stats
        return merged

    def shard_stats(self) -> Dict[str, RuntimeStats]:
        return {s.region.name: s.stats for s in self.shards}

    def shard_of(self, name: str) -> Optional[str]:
        """The shard currently holding module ``name`` (None if absent)."""
        for shard in self.shards:
            if any(p.module.name == name for p in shard.placements):
                return shard.region.name
        return None

    def profiles(self) -> List[SolveProfile]:
        """Per-shard profiles, each labelled with its shard name."""
        return [s.profile(shard=s.region.name) for s in self.shards]

    def profile(self) -> SolveProfile:
        """The merged service-level record over all shards.

        Built from the merged :class:`RuntimeStats` (profile ``meta``
        entries do not sum under ``SolveProfile.__add__``), with cache
        counters deduplicated by cache instance — under ``share_cache``
        every shard reports the *same* cache, which must count once.
        """
        s = self.stats
        caches = {id(sh._cache): sh._cache for sh in self.shards}
        cache_totals = {"hits": 0, "misses": 0, "narrowed": 0, "evictions": 0}
        for cache in caches.values():
            for key, value in cache.stats().items():
                if key in cache_totals:
                    cache_totals[key] += value
        return SolveProfile(
            elapsed=s.total_latency_s,
            stop_reason="service",
            cache_hits=cache_totals["hits"],
            cache_misses=cache_totals["misses"],
            cache_narrowed=cache_totals["narrowed"],
            cache_evictions=cache_totals["evictions"],
            meta={
                "shards": self.n_shards,
                "router": self.config.router,
                "defragmenter": self.config.runtime.defragmenter,
                "runtime.arrivals": s.arrivals,
                "runtime.admitted": s.admitted,
                "runtime.rejected": s.rejected,
                "runtime.departures": s.departures,
                "runtime.defrags": s.defrags,
                "runtime.defrag_moves": s.defrag_moves,
                "runtime.defrag_planned": s.defrag_planned_moves,
                "runtime.defrag_executed": s.defrag_executed_moves,
                "runtime.defrag_aborted": s.defrag_aborted_moves,
                "runtime.defrag_time_s": round(s.defrag_time_s, 6),
                "runtime.probe_errors": s.probe_errors,
                "runtime.queued_admits": s.queued_admits,
                "runtime.reservations_booked": s.reservations_booked,
                "runtime.reservation_admits": s.reservation_admits,
                "runtime.reservations_expired": s.reservations_expired,
                "runtime.mean_latency_s": round(s.mean_latency_s, 6),
                "runtime.max_latency_s": round(s.max_latency_s, 6),
                "runtime.peak_occupied_cells": s.peak_occupied_cells,
            },
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, request: RuntimeRequest) -> RequestOutcome:
        """Route one arrival; spill across shards before rejecting.

        Single-shard services delegate to the shard's own ``submit`` —
        bit-identical to a bare manager by construction.
        """
        if self.n_shards == 1:
            return self.shards[0].submit(request)
        # every shard observes the clock advance (departures are played
        # out) *before* routing, so load/fragmentation policies rank
        # current state, not stale snapshots
        for shard in self.shards:
            shard.advance_to(request.arrival)
        order = self._router.order(request, self.shards)
        candidates = order if self.config.spill else order[:1]
        prev = None
        for rank, index in enumerate(candidates):
            shard = self.shards[index]
            if prev is not None:
                self._emit(
                    SERVICE_SPILL,
                    module=request.module.name,
                    from_shard=prev,
                    to_shard=shard.region.name,
                )
            outcome = shard.offer(request)
            if outcome is not None:
                self._emit(
                    SERVICE_ROUTE,
                    module=request.module.name,
                    shard=shard.region.name,
                    policy=self.config.router,
                    rank=rank,
                )
                return outcome
            prev = shard.region.name
        # nobody admitted: the request belongs to its primary shard,
        # which queues or rejects it under the backpressure rules
        primary = self.shards[order[0]]
        self._emit(
            SERVICE_ROUTE,
            module=request.module.name,
            shard=primary.region.name,
            policy=self.config.router,
            rank=0,
        )
        return primary.park(request)

    def depart(self, name: str) -> Optional[Placement]:
        """Explicitly remove a module from whichever shard holds it."""
        for shard in self.shards:
            placement = shard.depart(name)
            if placement is not None:
                return placement
        return None

    def advance_to(self, t: int) -> None:
        for shard in self.shards:
            shard.advance_to(t)

    def drain(self) -> None:
        """Drain every shard, then settle all clocks to the service max."""
        for shard in self.shards:
            shard.drain()
        settle = self.clock
        for shard in self.shards:
            shard.advance_to(settle)
        self._emit(SERVICE_DRAIN, shards=self.n_shards, clock=settle)

    def run(self, trace: Sequence[RuntimeRequest]) -> ServiceLog:
        """Consume a whole trace, then drain; returns the service log."""
        outcomes: List[RequestOutcome] = []
        for request in sorted(trace, key=lambda r: r.arrival):
            outcomes.append(self.submit(request))
        self.drain()
        shard_of = {
            o.placement.module.name: self.shard_of(o.placement.module.name)
            for o in outcomes
            if o.admitted and o.placement is not None
        }
        return ServiceLog(
            outcomes=outcomes,
            stats=self.stats,
            per_shard=self.shard_stats(),
            shard_of={k: v for k, v in shard_of.items() if v is not None},
        )

    # ------------------------------------------------------------------
    # Process mode
    # ------------------------------------------------------------------
    def warm(self, modules: Sequence[Module]) -> int:
        """Warm the caches for a module library; returns masks computed.

        Inline mode warms the in-process caches directly; process mode
        dispatches one warm task per shard so the pool's resident caches
        start hot before serving.
        """
        total = 0
        if self._pool is None:
            for shard in self.shards:
                total += shard._cache.warm(shard.region, modules)
            return total
        payloads = [module_to_dict(m) for m in modules]
        futures = [
            self._pool.submit(
                warm_process_cache,
                shard.region.name,
                region_to_dict(shard.region),
                payloads,
                self.config.worker_cache_capacity,
            )
            for shard in self.shards
        ]
        for fut in futures:
            total += fut.result()
        return total

    def _make_worker_solver(
        self, shard_name: str, shard_cfg: RuntimeConfig
    ) -> Callable[[Module, PartialRegion], Optional[Tuple[Placement, str]]]:
        chain = shard_cfg.effective_chain()
        time_limit = shard_cfg.probe_time_limit
        capacity = self.config.worker_cache_capacity

        def solver(
            module: Module, region: PartialRegion
        ) -> Optional[Tuple[Placement, str]]:
            fut = self._pool.submit(
                solve_in_worker,
                region_to_dict(region),
                module_to_dict(module),
                chain,
                time_limit,
                0,
                shard_name,
                capacity,
            )
            solved = fut.result()
            if solved is None:
                return None
            shape_index, x, y, backend = solved
            return Placement(module, shape_index, x, y), f"worker:{backend}"

        return solver

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (no-op in inline mode)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedPlacementService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _emit(self, kind: str, **data) -> None:
        if self._tracer is not None:
            self._tracer.emit(kind, **data)

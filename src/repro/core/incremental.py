"""Incremental / interactive placement.

The paper positions the placer as "part of an interactive tool": a
designer adds and removes modules while the committed floorplan stays put.
:class:`IncrementalPlacer` maintains a committed placement set; adding a
module solves a small CP subproblem on the residual region (committed
cells are masked unavailable), and removing a module frees its cells.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.placer import CPPlacer, PlacerConfig
from repro.core.result import Placement, PlacementResult
from repro.fabric.region import PartialRegion
from repro.modules.module import Module


class IncrementalPlacer:
    """Maintains a committed floorplan; places/removes modules one by one."""

    def __init__(
        self, region: PartialRegion, config: Optional[PlacerConfig] = None
    ) -> None:
        self.region = region
        self.config = config or PlacerConfig(time_limit=2.0)
        self._placements: Dict[str, Placement] = {}

    # ------------------------------------------------------------------
    @property
    def placements(self) -> List[Placement]:
        return list(self._placements.values())

    def occupancy(self) -> np.ndarray:
        mask = np.zeros((self.region.height, self.region.width), dtype=bool)
        for p in self._placements.values():
            for x, y, _ in p.absolute_cells():
                mask[y, x] = True
        return mask

    def residual_region(self) -> PartialRegion:
        """The region with committed module cells masked off."""
        free = self.region.reconfigurable & ~self.occupancy()
        return PartialRegion(self.region.grid, free, f"{self.region.name}-residual")

    # ------------------------------------------------------------------
    def add(self, module: Module) -> Optional[Placement]:
        """Place one module on the residual region; None if impossible."""
        if module.name in self._placements:
            raise ValueError(f"{module.name!r} is already placed")
        placer = CPPlacer(self.config)
        result = placer.place(self.residual_region(), [module])
        if not result.placements:
            return None
        placement = result.placements[0]
        self._placements[module.name] = placement
        return placement

    def add_all(self, modules: Sequence[Module]) -> List[Module]:
        """Place modules one by one; returns those that did not fit."""
        rejected: List[Module] = []
        for m in modules:
            if self.add(m) is None:
                rejected.append(m)
        return rejected

    def remove(self, name: str) -> Placement:
        """Free a committed module's cells."""
        try:
            return self._placements.pop(name)
        except KeyError:
            raise KeyError(f"no committed module named {name!r}") from None

    def result(self) -> PlacementResult:
        return PlacementResult(self.region, self.placements)

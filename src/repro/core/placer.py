"""The CP placer: optimal / anytime placement with design alternatives.

Search strategy: modules are branched hardest-first (decreasing area) and
per module the anchor column is fixed first with the smallest value
(bottom-left packing, aligned with the min-extent objective of Eq. 6),
then the row, then the shape alternative — usually already fixed by kernel
propagation once the anchor is known.  Branch-and-bound tightens the
extent after every solution; interrupted runs return the best placement
found, which makes the Table I experiments budget-controllable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cp.bnb import BranchAndBound, Objective
from repro.cp.branching import input_order, min_value
from repro.cp.engine import Inconsistent
from repro.cp.search import SearchLimit
from repro.core.objective import ObjectiveKind
from repro.core.placement_model import PlacementModel
from repro.core.result import Placement, PlacementResult
from repro.fabric.cache import AnchorMaskCache
from repro.fabric.region import PartialRegion
from repro.modules.module import Module
from repro.obs import context as obs_context
from repro.obs.profile import SolveProfile
from repro.obs.trace import Tracer


@dataclass
class PlacerConfig:
    """Knobs of the CP placer."""

    objective: ObjectiveKind = ObjectiveKind.MIN_EXTENT_X
    #: anytime budget in seconds (None = run to proven optimality)
    time_limit: Optional[float] = 10.0
    node_limit: Optional[int] = None
    #: module branching order: "area" (hardest first) or "input"
    order: str = "area"
    #: variable selection: "fail-first" picks the unplaced module with the
    #: fewest remaining anchors at every node (dynamic, kernel-driven);
    #: "static" follows the fixed module order
    strategy: str = "fail-first"
    #: construction mode for ``first_solution_only``: "dive" is one DFS
    #: descent; "restart" adds Luby restarts with randomized value tails —
    #: slower on easy instances, far more robust on thrashing-prone ones
    construction: str = "dive"
    #: random seed for the "restart" construction
    seed: int = 0
    symmetry_breaking: bool = True
    redundant_cumulative: bool = True
    #: stop at the first solution instead of optimizing (service mode)
    first_solution_only: bool = False
    #: per-propagator accounting; the run's :class:`SolveProfile` lands in
    #: ``result.stats["profile"]`` (also forced on by an active
    #: :func:`repro.obs.profiling_session`)
    profile: bool = False
    #: structured event sink threaded into the engine (None = off)
    tracer: Optional[Tracer] = None
    #: anchor-mask cache shared across model constructions (None = compute
    #: masks fresh); the LNS driver and portfolio workers thread one in
    cache: Optional[AnchorMaskCache] = None
    #: incremental geost propagation (dirty-object maintenance + cached
    #: anchor counts); False re-filters every module per wake-up — the
    #: wholesale oracle, bit-identical by construction, kept for the
    #: differential harness
    incremental: bool = True
    #: bitboard-first vectorized sweep (batched per-shape mask reductions
    #: + batched anchor counting); False keeps the per-shape scalar path
    #: — the other rung of the differential oracle ladder
    bitboard: bool = True
    #: name of a registered backend (usually ``"analytical"``) whose
    #: legalized placement becomes the initial incumbent: the objective is
    #: clamped to beat it before search starts, so the branch-and-bound
    #: never spends nodes reaching feasibility (None = cold start)
    warm_start: Optional[str] = None
    #: fraction of ``time_limit`` granted to the warm-start seeder
    warm_start_budget: float = 0.25


class CPPlacer:
    """Places a module library on a partial region via CP + B&B."""

    def __init__(self, config: Optional[PlacerConfig] = None) -> None:
        self.config = config or PlacerConfig()

    # ------------------------------------------------------------------
    def place(
        self, region: PartialRegion, modules: Sequence[Module]
    ) -> PlacementResult:
        return self._place(region, modules, None)

    def place_bounded(
        self,
        region: PartialRegion,
        modules: Sequence[Module],
        max_extent: int,
    ) -> PlacementResult:
        """Place with a hard upper bound on the extent objective.

        Used by the LNS driver: the subproblem must strictly beat the
        incumbent, so its objective is clamped before search starts.
        """
        return self._place(region, modules, max_extent)

    def _warm_solve(
        self,
        region: PartialRegion,
        modules: Sequence[Module],
        max_extent: Optional[int],
    ) -> Optional[PlacementResult]:
        """Run the warm-start backend; None when its answer is unusable.

        Unusable = partial, failing verification, or already violating an
        external ``max_extent`` bound — the caller then falls back to a
        cold search, never to a wrong incumbent.
        """
        # function-local imports: the backend adapters import this module
        from repro.core.backend.protocol import PlacementRequest
        from repro.core.backend.registry import create_backend

        cfg = self.config
        budget = (
            cfg.time_limit * cfg.warm_start_budget
            if cfg.time_limit is not None
            else None
        )
        result = create_backend(cfg.warm_start).place(
            PlacementRequest(
                region,
                list(modules),
                seed=cfg.seed,
                time_limit=budget,
                cache=cfg.cache,
                tracer=cfg.tracer,
            )
        )
        if not result.placements or not result.all_placed:
            return None
        try:
            result.verify()
        except ValueError:
            return None
        value = _objective_value(result.placements, cfg.objective)
        if max_extent is not None and value > max_extent:
            return None
        return result

    def _place(
        self,
        region: PartialRegion,
        modules: Sequence[Module],
        max_extent: Optional[int],
    ) -> PlacementResult:
        cfg = self.config
        start = time.monotonic()
        profiling = cfg.profile or obs_context.current() is not None

        warm_placements: Optional[List[Placement]] = None
        warm_value: Optional[int] = None
        warm_stats: Dict[str, object] = {}
        if cfg.warm_start and modules:
            warm = self._warm_solve(region, modules, max_extent)
            if warm is not None:
                warm_placements = [
                    Placement(p.module, p.shape_index, p.x, p.y)
                    for p in warm.placements
                ]
                warm_value = _objective_value(warm_placements, cfg.objective)
                warm_stats = {
                    "backend": cfg.warm_start,
                    "objective": warm_value,
                    "elapsed": warm.elapsed,
                }

        if warm_placements is not None and cfg.first_solution_only:
            # service mode only needs *a* feasible placement — the warm
            # seeder already produced a verified one, no search required
            elapsed = time.monotonic() - start
            stats: Dict[str, object] = {
                "warm_start": warm_stats,
                "first_incumbent_nodes": 0,
            }
            if profiling:
                profile = SolveProfile(
                    elapsed=elapsed,
                    stop_reason="warm-start",
                    meta={"placer": "cp", "warm_start": cfg.warm_start},
                )
                session = obs_context.current()
                if session is not None:
                    session.record(profile)
                stats["profile"] = profile
            return PlacementResult(
                region,
                warm_placements,
                [],
                status="feasible",
                elapsed=elapsed,
                stats=stats,
            )

        try:
            pm = PlacementModel(
                region,
                modules,
                objective=cfg.objective,
                symmetry_breaking=cfg.symmetry_breaking,
                redundant_cumulative=cfg.redundant_cumulative,
                tracer=cfg.tracer,
                profile=profiling,
                cache=cfg.cache,
                incremental=cfg.incremental,
                bitboard=cfg.bitboard,
            )
            if max_extent is not None:
                pm.objective_var.remove_above(max_extent)
                pm.model.engine.fixpoint()
        except Inconsistent:
            return PlacementResult(
                region, [], list(modules), status="infeasible",
                elapsed=time.monotonic() - start,
            )

        if warm_value is not None:
            # incumbent injection: the search may only visit solutions
            # strictly better than the warm placement
            try:
                pm.objective_var.remove_above(warm_value - 1)
                pm.model.engine.fixpoint()
            except Inconsistent:
                # nothing beats the incumbent — it is proven optimal
                elapsed = time.monotonic() - start
                stats = {
                    "warm_start": warm_stats,
                    "first_incumbent_nodes": 0,
                }
                if profiling:
                    stats["profile"] = self._capture_profile(
                        pm, None, region, modules
                    )
                return PlacementResult(
                    region,
                    warm_placements,
                    [],
                    status="optimal",
                    elapsed=elapsed,
                    stats=stats,
                )

        order = pm.area_order() if cfg.order == "area" else list(range(len(modules)))
        decision_vars = pm.decision_vars(order)
        var_select = (
            _kernel_fail_first(pm) if cfg.strategy == "fail-first" else input_order
        )

        if cfg.first_solution_only and cfg.construction == "restart":
            return self._construct_with_restarts(
                pm, region, modules, decision_vars, var_select, start, profiling
            )

        limit = SearchLimit(
            time_seconds=cfg.time_limit,
            nodes=cfg.node_limit,
            solutions=1 if cfg.first_solution_only else None,
        )

        best_placements: List[List[Placement]] = []

        def on_improve(solution, value) -> None:
            # engine state reflects the solution while the callback runs
            best_placements.append(
                [
                    Placement(p.module, p.shape_index, p.x, p.y)
                    for p in pm.kernel.placements()
                ]
            )

        bnb = BranchAndBound(
            pm.model.engine,
            Objective.minimize(pm.objective_var),
            decision_vars,
            var_select=var_select,
            val_select=min_value,
            limit=limit,
            on_improve=on_improve,
        )
        res = bnb.run()
        elapsed = time.monotonic() - start

        if res.best is None:
            if warm_placements is not None:
                # the clamped search found nothing better: the warm
                # incumbent stands — proven optimal iff the search space
                # below it was exhausted
                status = "optimal" if res.proved_optimal else "feasible"
                stats = {
                    "search": res.stats,
                    "warm_start": warm_stats,
                    "first_incumbent_nodes": 0,
                }
                if profiling:
                    stats["profile"] = self._capture_profile(
                        pm, res.stats, region, modules
                    )
                return PlacementResult(
                    region,
                    warm_placements,
                    [],
                    status=status,
                    elapsed=elapsed,
                    stats=stats,
                )
            status = "infeasible" if res.proved_optimal else "unknown"
            stats = {"search": res.stats}
            if profiling:
                stats["profile"] = self._capture_profile(
                    pm, res.stats, region, modules
                )
            return PlacementResult(
                region, [], list(modules), status=status, elapsed=elapsed,
                stats=stats,
            )

        placements = best_placements[-1]
        status = "optimal" if res.proved_optimal else "feasible"
        stats = {
            "search": res.stats,
            "trajectory": res.trajectory,
            "shapes_considered": sum(m.n_alternatives for m in modules),
            "first_incumbent_nodes": (
                0 if warm_placements is not None else res.first_incumbent_nodes
            ),
        }
        if warm_placements is not None:
            stats["warm_start"] = warm_stats
        if profiling:
            stats["profile"] = self._capture_profile(
                pm, res.stats, region, modules
            )
        return PlacementResult(
            region,
            placements,
            [],
            extent=res.objective,
            status=status,
            elapsed=elapsed,
            stats=stats,
        )

    def _capture_profile(
        self, pm, search_stats, region, modules, restarts: int = 0
    ) -> SolveProfile:
        """Snapshot the engine into a profile and feed any active session."""
        profile = SolveProfile.capture(
            pm.model.engine,
            search_stats,
            instance=region.name,
            modules=len(modules),
            placer="cp",
        )
        profile.restarts = restarts
        if pm.cache_stats is not None:
            profile.cache_hits = pm.cache_stats["hits"]
            profile.cache_evictions = pm.cache_stats.get("evictions", 0)
            profile.cache_misses = pm.cache_stats["misses"]
            profile.cache_narrowed = pm.cache_stats["narrowed"]
        inc = pm.kernel.inc_stats
        profile.geost_dirty = inc.dirty
        profile.geost_reused = inc.reused
        profile.geost_rasterized = inc.rasterized
        profile.bitboard_rows_tested = inc.rows_tested
        profile.bitboard_fallbacks = inc.fallbacks
        session = obs_context.current()
        if session is not None:
            session.record(profile)
        return profile


    def _construct_with_restarts(
        self, pm, region, modules, decision_vars, var_select, start,
        profiling: bool = False,
    ) -> PlacementResult:
        from repro.cp.restart import RestartingSearch

        cfg = self.config
        captured: List[List[Placement]] = []

        def on_solution(_sol) -> None:
            captured.append(
                [
                    Placement(p.module, p.shape_index, p.x, p.y)
                    for p in pm.kernel.placements()
                ]
            )

        search = RestartingSearch(
            pm.model.engine,
            decision_vars,
            var_select=var_select,
            time_limit=cfg.time_limit,
            seed=cfg.seed,
            on_solution=on_solution,
        )
        solution = search.first_solution()
        elapsed = time.monotonic() - start
        if solution is None or not captured:
            status = (
                "infeasible"
                if search.stats.stop_reason == "exhausted"
                else "unknown"
            )
            stats = {"search": search.stats, "restarts": search.restarts}
            if profiling:
                stats["profile"] = self._capture_profile(
                    pm, search.stats, region, modules, restarts=search.restarts
                )
            return PlacementResult(
                region, [], list(modules), status=status, elapsed=elapsed,
                stats=stats,
            )
        placements = captured[-1]
        stats = {
            "search": search.stats,
            "restarts": search.restarts,
            "shapes_considered": sum(m.n_alternatives for m in modules),
        }
        if profiling:
            stats["profile"] = self._capture_profile(
                pm, search.stats, region, modules, restarts=search.restarts
            )
        return PlacementResult(
            region,
            placements,
            [],
            extent=max(p.right for p in placements),
            status="feasible",
            elapsed=elapsed,
            stats=stats,
        )


def _objective_value(
    placements: Sequence[Placement], kind: ObjectiveKind
) -> int:
    """Objective value of a complete placement, matching the CP model."""
    if kind is ObjectiveKind.MIN_EXTENT_Y:
        return max(p.top for p in placements)
    if kind is ObjectiveKind.MIN_TOTAL_RIGHT:
        return sum(p.right for p in placements)
    return max(p.right for p in placements)


def _kernel_fail_first(pm: PlacementModel):
    """Dynamic variable selection: branch the most constrained module.

    At every node, pick the unplaced module with the fewest remaining
    (shape, x, y) anchors — the classic fail-first principle, computed from
    the kernel's live anchor masks — and branch its first unfixed variable
    in x, y, s order (fixing x lets the kernel collapse y and s).  Falls
    back to input order for auxiliary variables (objective coupling).
    Ties break on anchor count, then area (hardest first), then module
    index — all explicit key components, so the chosen branch never
    depends on container iteration order.
    """
    kernel = pm.kernel

    def select(variables):
        best_item = None
        best_key = None
        for item in kernel.items:
            if item.placed or item.is_fixed():
                continue
            key = (
                kernel.anchor_count(item.index),
                -item.module.primary().area,
                item.index,
            )
            if best_key is None or key < best_key:
                best_key, best_item = key, item
        if best_item is not None:
            for v in (best_item.x, best_item.y, best_item.s):
                if not v.is_fixed():
                    return v
        for v in variables:  # auxiliary vars (sizes, edges, objective)
            if not v.is_fixed():
                return v
        return None

    return select


def place(
    region: PartialRegion,
    modules: Sequence[Module],
    time_limit: Optional[float] = 10.0,
    **kwargs,
) -> PlacementResult:
    """Convenience wrapper: place with default configuration."""
    cfg = PlacerConfig(time_limit=time_limit, **kwargs)
    return CPPlacer(cfg).place(region, modules)
